//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the *exact* subset of the `rand 0.8` API the workspace
//! uses: `StdRng`/`SeedableRng::seed_from_u64`, the `Rng` extension methods
//! `gen`, `gen_range`, and `gen_bool`, `seq::SliceRandom::shuffle`, and
//! `seq::index::sample`. The generator behind `StdRng` is xoshiro256++
//! seeded through SplitMix64 — not the upstream ChaCha12 stream, but a
//! high-quality deterministic generator, which is all the callers rely on
//! (they assert statistical properties, never concrete draws).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Subset of `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(uniform_u64(rng, span))) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (i128::from(hi) - i128::from(lo)) as u128;
                if span >= u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (i128::from(lo) + i128::from(uniform_u64(rng, span as u64 + 1))) as $t
            }
        }
    )*};
}

signed_sample_range!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of span that fits in u64; reject draws above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Extension methods on random generators. Subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed. Subset of
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), state-initialized with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers. Subset of `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices. Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement. Subset of `rand::seq::index`.
    pub mod index {
        use crate::{Rng, RngCore};

        /// The result of [`sample`]: a set of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into a `Vec<usize>`.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn index_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = super::seq::index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
    }
}
