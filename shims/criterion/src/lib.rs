//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the criterion 0.5 API the workspace's benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up for ~0.3 s, then timed
//! over enough iterations to fill ~1 s, reporting mean and best time per
//! iteration (and element throughput when declared). There is no
//! statistical analysis, HTML report, or saved baseline — just stable,
//! comparable wall-clock numbers printed to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many "items" one iteration of a benchmark processes.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    result: Option<Sample>,
}

/// One completed measurement.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: discover the per-iteration cost.
        let warm_started = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_started.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement window into `sample_size` timed batches.
        let total_iters = ((self.measure.as_secs_f64() / per_iter).ceil() as u64).max(10);
        let samples = self.sample_size as u64;
        let batch = (total_iters / samples).max(1);
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut done: u64 = 0;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            done += batch;
            let per = dt / u32::try_from(batch).unwrap_or(u32::MAX);
            if per < best {
                best = per;
            }
        }
        self.result = Some(Sample {
            mean: total / u32::try_from(done).unwrap_or(u32::MAX),
            best,
            iters: done,
        });
    }
}

/// Top-level benchmark driver. Honors the name filter `cargo bench`
/// forwards on the command line.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards e.g. `tree_insert --bench`; keep non-flag
        // args as substring filters.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (the default already reads the args).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let sample_size = self.sample_size;
        if self.matches(name) {
            run_one(name, sample_size, None, f);
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the number of timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark under `group_name/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let full = format!("{}/{name}", self.name);
        if self.criterion.matches(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(&full, n, self.throughput, f);
        }
    }

    /// Runs a benchmark with an input value under `group_name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        if self.criterion.matches(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(&full, n, self.throughput, |b| f(b, input));
        }
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up: Duration::from_millis(300),
        measure: Duration::from_secs(1),
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => {
            let mut line = format!(
                "{name:<40} mean {:>12}  best {:>12}  ({} iters)",
                fmt_ns(s.mean),
                fmt_ns(s.best),
                s.iters
            );
            if let Some(tp) = tp {
                let per_sec = |n: u64| n as f64 / s.mean.as_secs_f64();
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:.3} Melem/s", per_sec(n) / 1e6));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                    }
                }
            }
            println!("{line}");
        }
        None => println!("{name:<40} (no measurement: closure never called iter)"),
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
