//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), the [`Strategy`]
//! trait with `prop_map`, range/tuple/vec/select/oneof strategies,
//! [`any`], and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` times against freshly generated
//! inputs from a deterministic per-test RNG. Failing cases are reported by
//! the panic message; there is **no shrinking** — failures reproduce
//! deterministically because the RNG seed is fixed per test name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy constructors grouped like upstream's `proptest::prop` modules.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Vectors of `elem` with a length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniform choice from a slice of values.
        ///
        /// # Panics
        ///
        /// Panics if `items` is empty.
        pub fn select<T: Clone>(items: &[T]) -> Select<T> {
            assert!(!items.is_empty(), "select from empty slice");
            Select {
                items: items.to_vec(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// Uniform `true`/`false`.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy producing arbitrary values of `T`. See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's macro grammar for the
/// forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in points(40)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}
