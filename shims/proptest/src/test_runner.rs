//! The deterministic RNG behind generated test cases.

/// A SplitMix64-fed xoshiro256++ generator, seeded from the test name so
/// every property test is deterministic across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for a named test (FNV-1a over the name).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Builds the generator from an explicit 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling span");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}
