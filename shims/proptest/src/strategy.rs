//! The [`Strategy`] trait and the built-in strategy combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy. See [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice between strategies. Built by `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct OneOf<V>(Vec<BoxedStrategy<V>>);

impl<V> OneOf<V> {
    /// Builds from the already-boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Uniform choice from a fixed set. See `prop::sample::select`.
#[derive(Debug, Clone)]
pub struct Select<T> {
    pub(crate) items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.items.len() as u64) as usize;
        self.items[i].clone()
    }
}

/// Uniform booleans. See `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Vectors with a random length. See `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_in_bounds");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..2.0).generate(&mut rng);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::deterministic("map_and_tuple_compose");
        let s = (0usize..10, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_honored() {
        let mut rng = TestRng::deterministic("vec_lengths_honored");
        let s = VecStrategy {
            elem: 0usize..5,
            size: 2..7,
        };
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_arms() {
        let mut rng = TestRng::deterministic("oneof_covers_arms");
        let s = OneOf::new(vec![(0usize..1).boxed(), (10usize..11).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}
