#!/usr/bin/env bash
# Bench-regression gate: re-run the two throughput benches with the same
# seeds/reps that produced the committed BENCH_*.json baselines, then diff
# fresh vs committed with bench_gate.
#
# Rules (enforced by crates/bench/src/bin/bench_gate.rs):
#   * >25% regression fails (speedup ratio down for insert_kernel —
#     the same-process scalar÷kernel ratio rides out machine-wide
#     wall-clock swings that whipsaw raw kernel_ns on shared runners —
#     points_per_s down for phase1_scaling; for phase3_scaling the
#     deterministic NN-chain work counters up, or the same-process
#     heap÷chain wall ratio down).
#   * insert_kernel rows with baseline kernel_ns < 1000 (sub-µs) and
#     phase1_scaling runs with baseline wall_s < 0.05 are skipped as
#     timer/scheduler noise — every skip is printed, never silent.
#     phase3_scaling rows whose baseline heap ratio is null (oracle
#     skipped past its quadratic memory wall at 100k) skip the ratio
#     check but still gate the work counters.
#   * checkpoint_io holds the deterministic snapshot_bytes to the
#     threshold (format bloat, not machine noise) and gates the
#     checkpoint/reopen MB/s rates, loud-skipping rows whose baseline
#     wall is sub-50ms.
#   * cf_stability is an accuracy bench; it has no throughput gate.
#
# The CI job invoking this is non-blocking (continue-on-error): shared
# runners are too noisy for a hard 25% gate, so its role is to surface
# perf cliffs in the PR log, not to block merges.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH=${FRESH_DIR:-target/bench-gate}
mkdir -p "$FRESH"

echo "== regenerating benches (release) into $FRESH =="
cargo run --release -p birch-bench --bin insert_kernel -- \
    --seed 42 --reps 5 --out "$FRESH/BENCH_insert_kernel.json"
cargo run --release -p birch-bench --bin phase1_scaling -- \
    --seed 42 --reps 3 --out "$FRESH/BENCH_phase1_scaling.json"
# Minutes-scale walls; reps=1 with deterministic work counters (see the
# bin's docs) keeps this the longest but still bounded step of the gate.
cargo run --release -p birch-bench --bin phase3_scaling -- \
    --seed 42 --reps 1 --out "$FRESH/BENCH_phase3_scaling.json"
cargo run --release -p birch-bench --bin checkpoint_io -- \
    --seed 42 --reps 5 --out "$FRESH/BENCH_checkpoint_io.json"

echo "== diffing against committed baselines =="
cargo run --release -p birch-bench --bin bench_gate -- \
    --threshold 1.25 \
    --baseline BENCH_insert_kernel.json --fresh "$FRESH/BENCH_insert_kernel.json" \
    --baseline BENCH_phase1_scaling.json --fresh "$FRESH/BENCH_phase1_scaling.json" \
    --baseline BENCH_phase3_scaling.json --fresh "$FRESH/BENCH_phase3_scaling.json" \
    --baseline BENCH_checkpoint_io.json --fresh "$FRESH/BENCH_checkpoint_io.json"
