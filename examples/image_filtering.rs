//! The paper's §6.8 application: filter trees out of two-band (NIR/VIS)
//! images by clustering pixels — two BIRCH passes, the second finer.
//!
//! The original satellite-ish images were never published, so the scene is
//! synthesized with the five pixel populations the paper names (see
//! `birch_datagen::image`).
//!
//! ```text
//! cargo run --release --example image_filtering
//! ```

use birch::prelude::*;
use birch_datagen::image::{NirVisImage, PixelClass};
use birch_eval::quality::purity;

fn main() {
    let img = NirVisImage::generate(512, 128, 42);
    println!("scene: {}x{} = {} pixels", img.width, img.height, img.len());

    // Pass 1: (NIR, VIS*10), K=5 — separate trees from sky/cloud.
    let pts = img.scaled_points(1.0, 10.0);
    let model = Birch::new(
        BirchConfig::with_clusters(5)
            .total_points(pts.len() as u64)
            .refinement_passes(2),
    )
    .fit(&pts)
    .expect("pass 1");

    println!("\npass 1 clusters (VIS weighted 10x):");
    for (i, c) in model.clusters().iter().enumerate() {
        let kind = if c.centroid[1] / 10.0 >= 150.0 {
            "background"
        } else {
            "tree part"
        };
        println!(
            "  #{i}: {:>6.0} px  NIR {:>5.1}  VIS {:>5.1}  -> {kind}",
            c.weight(),
            c.centroid[0],
            c.centroid[1] / 10.0
        );
    }

    // Collect tree pixels (clusters with dim VIS).
    let labels = model.labels().expect("labels");
    let tree_cluster: Vec<bool> = model
        .clusters()
        .iter()
        .map(|c| c.centroid[1] / 10.0 < 150.0)
        .collect();
    let tree_pixels: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.and_then(|l| tree_cluster[l].then_some(i)))
        .collect();

    let found: Vec<Option<usize>> = labels
        .iter()
        .map(|l| l.map(|l| usize::from(tree_cluster[l])))
        .collect();
    let truth: Vec<Option<usize>> = img
        .truth
        .iter()
        .map(|c| Some(usize::from(c.is_tree())))
        .collect();
    println!(
        "\ntree/background purity: {:.1}% ({} tree pixels)",
        purity(&found, &truth) * 100.0,
        tree_pixels.len()
    );

    // Pass 2: NIR only, finer clustering of the tree pixels.
    let nir = img.nir_points(&tree_pixels);
    let model2 = Birch::new(
        BirchConfig::with_clusters(2)
            .total_points(nir.len() as u64)
            .refinement_passes(2),
    )
    .fit(&nir)
    .expect("pass 2");

    println!("\npass 2 clusters (NIR only):");
    for (i, c) in model2.clusters().iter().enumerate() {
        println!("  #{i}: {:>6.0} px  NIR {:>5.1}", c.weight(), c.centroid[0]);
    }

    let labels2 = model2.labels().expect("labels");
    let leaves = model2
        .clusters()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.centroid[0].total_cmp(&b.1.centroid[0]))
        .map(|(i, _)| i)
        .expect("clusters");
    let found2: Vec<Option<usize>> = labels2
        .iter()
        .map(|l| l.map(|l| usize::from(l == leaves)))
        .collect();
    let truth2: Vec<Option<usize>> = tree_pixels
        .iter()
        .map(|&i| Some(usize::from(img.truth[i] == PixelClass::SunlitLeaves)))
        .collect();
    println!(
        "\nsunlit-leaves vs branches purity: {:.1}%",
        purity(&found2, &truth2) * 100.0
    );
}
