//! The paper's base workload end-to-end: generate DS1/DS2/DS3, cluster
//! each with BIRCH, and score against the generator's ground truth —
//! a miniature of §6.4's Table 4 with extra label-based metrics.
//!
//! ```text
//! cargo run --release --example base_workload
//! ```

use birch::prelude::*;
use birch_datagen::{presets, Dataset};
use birch_eval::matching::match_clusters;
use birch_eval::quality::{adjusted_rand_index, weighted_average_diameter};

fn main() {
    // 10% of the paper's size keeps this example snappy; the shapes hold.
    let per_cluster = 100;

    for (name, mut spec) in [
        ("DS1 (grid)", presets::ds1(42)),
        ("DS2 (sine)", presets::ds2(42)),
        ("DS3 (random)", presets::ds3(42)),
    ] {
        if spec.n_low == spec.n_high {
            spec.n_low = per_cluster;
            spec.n_high = per_cluster;
        } else {
            spec.n_high = 2 * per_cluster;
        }
        let ds = Dataset::generate(&spec);

        let config = BirchConfig::with_clusters(100)
            .memory(16 * 1024)
            .total_points(ds.len() as u64);
        let model = Birch::new(config).fit(&ds.points).expect("fit");

        let cfs: Vec<_> = model.clusters().iter().map(|c| c.cf.clone()).collect();
        let d = weighted_average_diameter(&cfs);
        let report = match_clusters(&cfs, &ds.clusters);
        let ari = adjusted_rand_index(model.labels().expect("phase 4 on"), &ds.labels);

        println!("=== {name} ===");
        println!("  N = {}, clusters found = {}", ds.len(), cfs.len());
        println!(
            "  D = {:.3} (actual {:.3}),  ARI = {:.3}",
            d,
            ds.actual_weighted_diameter(),
            ari
        );
        println!(
            "  centroid displacement {:.3}, size error {:.1}%, rebuilds {}",
            report.mean_centroid_distance,
            report.mean_size_rel_error * 100.0,
            model.stats().io.rebuilds
        );
        println!();
    }
}
