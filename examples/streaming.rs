//! Streaming / anytime clustering with [`StreamingBirch`].
//!
//! BIRCH is "incremental … and can typically give a good clustering with a
//! single scan" (§1). This example pushes an unbounded sensor stream into
//! a [`StreamingBirch`] and snapshots an anytime clustering whenever it
//! likes — no restart, no second pass, no raw points retained.
//!
//! It also shows the telemetry layer: a custom [`EventSink`] announces
//! rebuilds the moment they happen, and each round ends with the
//! recorder's one-line metrics summary.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use birch::prelude::*;
use birch_core::StreamingBirch;

/// A live sink: print a line the moment the stream's tree is rebuilt.
/// Everything else (counters, histogram, trajectory) is aggregated by the
/// built-in recorder — a custom sink is only for *reacting* to events.
struct RebuildAnnouncer;

impl EventSink for RebuildAnnouncer {
    fn record(&mut self, event: &Event) {
        if let Event::RebuildTriggered {
            old_threshold,
            new_threshold,
            ..
        } = event
        {
            println!(
                "    [telemetry] memory full — rebuilding, T {old_threshold:.3} -> \
                 {new_threshold:.3}"
            );
        }
    }
}

/// A fake endless sensor: three drifting sources emitting interleaved
/// readings.
fn reading(t: usize) -> Point {
    let source = t % 3;
    let drift = t as f64 * 1e-4;
    let base = source as f64 * 25.0;
    let wobble = ((t as f64) * 0.7).sin();
    Point::xy(base + drift + wobble * 0.5, base - drift + wobble * 0.3)
}

fn main() {
    let mut stream = StreamingBirch::with_sink(
        BirchConfig::with_clusters(3).memory(16 * 1024),
        2,
        RebuildAnnouncer,
    );

    let chunk = 20_000usize;
    for round in 1..=3 {
        for t in (round - 1) * chunk..round * chunk {
            stream.push(&reading(t));
        }

        // Anytime snapshot: globally cluster the current summary.
        let snapshot = stream.snapshot();
        println!(
            "after {:>6} readings: summary holds {} entries, {} clusters:",
            stream.points_seen(),
            stream.summary_size(),
            snapshot.len()
        );
        for (i, c) in snapshot.iter().enumerate() {
            println!(
                "    cluster {i}: {:>7.0} readings around ({:>6.2}, {:>6.2}), radius {:.2}",
                c.weight(),
                c.centroid[0],
                c.centroid[1],
                c.radius
            );
        }
        println!("    metrics: {}", stream.metrics().one_line());
    }

    let (final_clusters, out) = stream.finish();
    println!(
        "\nfinal: {} clusters from {} points using {} tree pages \
         ({} rebuilds, thresholds {:?})",
        final_clusters.len(),
        out.points_scanned,
        out.tree.node_count(),
        out.io.rebuilds,
        out.threshold_history
            .iter()
            .map(|t| (t * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("the stream itself was never stored: only CF summaries survive");
}
