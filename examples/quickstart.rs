//! Quickstart: cluster a small synthetic dataset with BIRCH defaults.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use birch::prelude::*;
use birch_datagen::{Dataset, DatasetSpec, Pattern};

fn main() {
    // Generate 5 well-separated Gaussian blobs (2000 points).
    let spec = DatasetSpec {
        pattern: Pattern::Grid { kg: 10.0 },
        k: 5,
        n_low: 400,
        n_high: 400,
        r_low: 1.0,
        r_high: 1.0,
        noise_fraction: 0.0,
        ordering: Ordering::Randomized,
        seed: 7,
    };
    let ds = Dataset::generate(&spec);
    println!("dataset: {} points in {} clusters", ds.len(), spec.k);

    // Fit BIRCH with the paper's Table-2 defaults, asking for 5 clusters.
    let model = Birch::new(BirchConfig::with_clusters(5))
        .fit(&ds.points)
        .expect("non-empty 2-d data");

    println!("\nfound {} clusters:", model.clusters().len());
    for (i, c) in model.clusters().iter().enumerate() {
        println!(
            "  #{i}: {:>5.0} points, centroid ({:>6.2}, {:>6.2}), radius {:.2}",
            c.weight(),
            c.centroid[0],
            c.centroid[1],
            c.radius
        );
    }

    let d = weighted_average_diameter(
        &model
            .clusters()
            .iter()
            .map(|c| c.cf.clone())
            .collect::<Vec<_>>(),
    );
    println!(
        "\nweighted average diameter D = {d:.3} (actual {:.3})",
        ds.actual_weighted_diameter()
    );
    println!(
        "phase times: p1 {:?}, p2 {:?}, p3 {:?}, p4 {:?}",
        model.stats().phase1_time,
        model.stats().phase2_time,
        model.stats().phase3_time,
        model.stats().phase4_time
    );

    // Classify a brand-new point.
    let probe = Point::xy(5.0, 5.0);
    println!(
        "\npoint {probe:?} belongs to cluster {}",
        model.predict(&probe)
    );
}
