//! Plain-CSV dataset I/O.
//!
//! BIRCH is a *database* clustering method: real deployments read points
//! from flat files or cursors, not in-memory vectors. This module gives
//! the workspace (and its CLI/examples) a dependency-free interchange
//! format:
//!
//! ```text
//! x0,x1,...,xd-1[,label]
//! ```
//!
//! with an optional integer label column (ground truth; empty = noise).
//! Buffered line-at-a-time reading follows the database-Rust guidance —
//! one reusable `String`, no per-line allocation beyond the parsed floats.

use birch_core::Point;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Points plus (when requested) per-point ground-truth labels.
pub type LabeledPoints = (Vec<Point>, Option<Vec<Option<usize>>>);

/// Writes points (and optional labels) to a CSV file.
///
/// # Errors
///
/// Propagates file-creation and write errors.
///
/// # Panics
///
/// Panics if `labels` is provided with a mismatched length.
pub fn write_points(
    path: &Path,
    points: &[Point],
    labels: Option<&[Option<usize>]>,
) -> io::Result<()> {
    if let Some(l) = labels {
        assert_eq!(l.len(), points.len(), "labels/points length mismatch");
    }
    let mut out = BufWriter::new(File::create(path)?);
    for (i, p) in points.iter().enumerate() {
        let mut first = true;
        for c in p.iter() {
            if !first {
                out.write_all(b",")?;
            }
            write!(out, "{c}")?;
            first = false;
        }
        if let Some(l) = labels {
            match l[i] {
                Some(v) => write!(out, ",{v}")?,
                None => out.write_all(b",")?,
            }
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads points (and labels, when `labeled` is true) from a CSV file.
///
/// # Errors
///
/// Returns an I/O error for file problems, or `InvalidData` for malformed
/// rows (wrong arity, unparsable numbers).
pub fn read_points(path: &Path, labeled: bool) -> io::Result<LabeledPoints> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut points = Vec::new();
    let mut labels: Vec<Option<usize>> = Vec::new();
    let mut line = String::new();
    let mut dim: Option<usize> = None;
    let mut row = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        row += 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = trimmed.split(',').collect();
        let label = if labeled {
            let raw = fields
                .pop()
                .ok_or_else(|| bad(row, "missing label column"))?;
            if raw.is_empty() {
                None
            } else {
                Some(
                    raw.parse::<usize>()
                        .map_err(|e| bad(row, &format!("label: {e}")))?,
                )
            }
        } else {
            None
        };
        let coords: Vec<f64> = fields
            .iter()
            .map(|f| f.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| bad(row, &format!("coordinate: {e}")))?;
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(bad(row, &format!("arity {} != {d}", coords.len())));
            }
            Some(_) => {}
        }
        points.push(Point::new(coords));
        if labeled {
            labels.push(label);
        }
    }
    Ok((points, labeled.then_some(labels)))
}

fn bad(row: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("csv row {row}: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("birch-csv-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_unlabeled() {
        let path = tmp("plain");
        let pts = vec![Point::xy(1.5, -2.25), Point::xy(0.0, 3.0)];
        write_points(&path, &pts, None).unwrap();
        let (back, labels) = read_points(&path, false).unwrap();
        assert_eq!(back, pts);
        assert!(labels.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_labeled_with_noise() {
        let path = tmp("labeled");
        let pts = vec![
            Point::xy(1.0, 2.0),
            Point::xy(3.0, 4.0),
            Point::xy(5.0, 6.0),
        ];
        let labels = vec![Some(0), None, Some(7)];
        write_points(&path, &pts, Some(&labels)).unwrap();
        let (back, back_labels) = read_points(&path, true).unwrap();
        assert_eq!(back, pts);
        assert_eq!(back_labels.unwrap(), labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_rows_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, "1.0,2.0\n3.0,oops\n").unwrap();
        let err = read_points(&path, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("row 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let path = tmp("arity");
        std::fs::write(&path, "1.0,2.0\n3.0,4.0,5.0\n").unwrap();
        let err = read_points(&path, false).unwrap_err();
        assert!(err.to_string().contains("arity"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_skipped() {
        let path = tmp("blank");
        std::fs::write(&path, "1.0,2.0\n\n3.0,4.0\n").unwrap();
        let (pts, _) = read_points(&path, false).unwrap();
        assert_eq!(pts.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn high_dimensional_roundtrip() {
        let path = tmp("highd");
        let pts = vec![Point::new((0..32).map(f64::from).collect())];
        write_points(&path, &pts, None).unwrap();
        let (back, _) = read_points(&path, false).unwrap();
        assert_eq!(back, pts);
        std::fs::remove_file(&path).ok();
    }
}
