//! Dataset specification — the paper's Table 1 parameters.
//!
//! | Parameter | Meaning |
//! |---|---|
//! | `pattern` | cluster-center placement: grid / sine / random |
//! | `k`       | number of clusters `K` |
//! | `n_low..=n_high` | per-cluster point count range `[nl, nh]` |
//! | `r_low..=r_high` | per-cluster radius range `[rl, rh]` |
//! | `kg`      | grid spacing between neighbouring centers |
//! | `cycles`  | number of sine cycles the `K` centers trace (`nc`) |
//! | `noise_fraction` | `rn`: fraction of extra uniform background noise |
//! | `ordering` | input order: cluster-by-cluster vs randomized |

use std::fmt;

/// How cluster centers are placed (paper §6.2: grid / sine / random).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Centers on a `√K × √K` grid with spacing `kg` on both axes.
    Grid {
        /// Distance between neighbouring centers.
        kg: f64,
    },
    /// Centers along a sine curve: cluster `i` at `x = 2π·i`,
    /// `y = A·sin(2π·i·cycles/K)` with amplitude `A = 2π·K/8` (chosen so
    /// the curve's aspect matches the paper's Fig. 5 overview).
    Sine {
        /// Number of full sine cycles traced by the `K` centers (`nc`).
        cycles: usize,
    },
    /// Centers uniformly random in a square of side `√K · kg` (matching
    /// the grid pattern's overall density for the same `kg`).
    Random {
        /// Side scale of the placement square, per `√K`.
        kg: f64,
    },
}

/// Input presentation order (§6.2: the data points of a cluster may be
/// placed together or the whole dataset randomized; BIRCH should be
/// insensitive, CLARANS is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Points grouped cluster by cluster, noise appended at the end — the
    /// paper's `o = ordered` (DS1O/DS2O/DS3O).
    Ordered,
    /// Full random shuffle — the paper's default base workload.
    #[default]
    Randomized,
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ordering::Ordered => f.write_str("ordered"),
            Ordering::Randomized => f.write_str("randomized"),
        }
    }
}

/// Complete description of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Center placement pattern.
    pub pattern: Pattern,
    /// Number of clusters `K`.
    pub k: usize,
    /// Minimum points per cluster `nl`.
    pub n_low: usize,
    /// Maximum points per cluster `nh`.
    pub n_high: usize,
    /// Minimum cluster radius `rl`.
    pub r_low: f64,
    /// Maximum cluster radius `rh`.
    pub r_high: f64,
    /// Fraction of additional uniform background noise `rn` (0.0–1.0,
    /// relative to the clustered point count).
    pub noise_fraction: f64,
    /// Input ordering `o`.
    pub ordering: Ordering,
    /// RNG seed (all generation is deterministic given the spec).
    pub seed: u64,
}

impl DatasetSpec {
    /// Validates parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics on an impossible spec (`k == 0`, inverted ranges, negative
    /// radii or noise, or a spec that can generate zero points).
    pub fn validate(&self) {
        assert!(self.k >= 1, "need at least one cluster");
        assert!(self.n_low <= self.n_high, "nl > nh");
        assert!(self.n_high >= 1, "nh must be >= 1");
        assert!(
            self.r_low >= 0.0 && self.r_low <= self.r_high,
            "invalid radius range [{}, {}]",
            self.r_low,
            self.r_high
        );
        assert!(
            (0.0..=1.0).contains(&self.noise_fraction),
            "noise fraction out of [0,1]"
        );
        match self.pattern {
            Pattern::Grid { kg } | Pattern::Random { kg } => {
                assert!(kg > 0.0, "kg must be positive");
            }
            Pattern::Sine { cycles } => assert!(cycles >= 1, "need >= 1 sine cycle"),
        }
    }

    /// Expected number of clustered points, `K · (nl + nh)/2`.
    #[must_use]
    pub fn expected_points(&self) -> usize {
        self.k * (self.n_low + self.n_high) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DatasetSpec {
        DatasetSpec {
            pattern: Pattern::Grid { kg: 4.0 },
            k: 100,
            n_low: 1000,
            n_high: 1000,
            r_low: 2f64.sqrt(),
            r_high: 2f64.sqrt(),
            noise_fraction: 0.0,
            ordering: Ordering::Randomized,
            seed: 1,
        }
    }

    #[test]
    fn valid_spec_passes() {
        base().validate();
        assert_eq!(base().expected_points(), 100_000);
    }

    #[test]
    #[should_panic(expected = "nl > nh")]
    fn inverted_n_range_rejected() {
        DatasetSpec {
            n_low: 10,
            n_high: 5,
            ..base()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "invalid radius range")]
    fn inverted_r_range_rejected() {
        DatasetSpec {
            r_low: 3.0,
            r_high: 1.0,
            ..base()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn bad_noise_rejected() {
        DatasetSpec {
            noise_fraction: 1.5,
            ..base()
        }
        .validate();
    }

    #[test]
    fn ordering_display() {
        assert_eq!(Ordering::Ordered.to_string(), "ordered");
        assert_eq!(Ordering::Randomized.to_string(), "randomized");
    }
}
