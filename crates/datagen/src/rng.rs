//! Seeded randomness helpers for the generator.
//!
//! `rand 0.8` no longer ships a normal distribution (it lives in the
//! out-of-scope `rand_distr` crate), so Gaussian draws use the classic
//! Box–Muller transform here.

use rand::Rng;

/// Draws one standard-normal sample via Box–Muller.
///
/// Uses the `(0, 1]` trick on the uniform so `ln` never sees zero.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shifted_normal() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
