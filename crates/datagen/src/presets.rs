//! The paper's base workload, Table 3.
//!
//! | Dataset | Pattern | Parameters |
//! |---|---|---|
//! | DS1 | grid   | K=100, nl=nh=1000, rl=rh=√2, kg=4, rn=0%, randomized |
//! | DS2 | sine   | K=100, nl=nh=1000, rl=rh=√2, nc=4, rn=0%, randomized |
//! | DS3 | random | K=100, nl=0, nh=2000, rl=0, rh=4, rn=0%, randomized |
//! | DS1O/DS2O/DS3O | same, but `o = ordered` |
//!
//! Each preset takes the RNG seed so experiments can repeat across seeds.
//! The scalability figures (Figs. 4–5) reuse these with `n` or `K` scaled —
//! see [`ds1_scaled_n`] and [`ds1_scaled_k`] and their DS2/DS3 siblings.

use crate::spec::{DatasetSpec, Ordering, Pattern};

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// DS1: 10×10 grid of equal clusters (Table 3 row 1).
#[must_use]
pub fn ds1(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pattern: Pattern::Grid { kg: 4.0 },
        k: 100,
        n_low: 1000,
        n_high: 1000,
        r_low: SQRT2,
        r_high: SQRT2,
        noise_fraction: 0.0,
        ordering: Ordering::Randomized,
        seed,
    }
}

/// DS2: 100 clusters along a 4-cycle sine curve (Table 3 row 2).
#[must_use]
pub fn ds2(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pattern: Pattern::Sine { cycles: 4 },
        ..ds1(seed)
    }
}

/// DS3: randomly placed clusters with variable sizes and radii
/// (Table 3 row 3).
#[must_use]
pub fn ds3(seed: u64) -> DatasetSpec {
    DatasetSpec {
        pattern: Pattern::Random { kg: 4.0 },
        n_low: 0,
        n_high: 2000,
        r_low: 0.0,
        r_high: 4.0,
        ..ds1(seed)
    }
}

/// DS1O: DS1 presented cluster-by-cluster.
#[must_use]
pub fn ds1o(seed: u64) -> DatasetSpec {
    DatasetSpec {
        ordering: Ordering::Ordered,
        ..ds1(seed)
    }
}

/// DS2O: DS2 presented cluster-by-cluster.
#[must_use]
pub fn ds2o(seed: u64) -> DatasetSpec {
    DatasetSpec {
        ordering: Ordering::Ordered,
        ..ds2(seed)
    }
}

/// DS3O: DS3 presented cluster-by-cluster.
#[must_use]
pub fn ds3o(seed: u64) -> DatasetSpec {
    DatasetSpec {
        ordering: Ordering::Ordered,
        ..ds3(seed)
    }
}

/// DS1 with `n` points per cluster — the Fig. 4 sweep (N grows by growing
/// cluster sizes, K fixed at 100).
#[must_use]
pub fn ds1_scaled_n(seed: u64, n_per_cluster: usize) -> DatasetSpec {
    DatasetSpec {
        n_low: n_per_cluster,
        n_high: n_per_cluster,
        ..ds1(seed)
    }
}

/// DS2 variant of [`ds1_scaled_n`].
#[must_use]
pub fn ds2_scaled_n(seed: u64, n_per_cluster: usize) -> DatasetSpec {
    DatasetSpec {
        n_low: n_per_cluster,
        n_high: n_per_cluster,
        ..ds2(seed)
    }
}

/// DS3 variant of [`ds1_scaled_n`]: keeps `nl = 0` and scales `nh` so the
/// expected cluster size matches `n_per_cluster`.
#[must_use]
pub fn ds3_scaled_n(seed: u64, n_per_cluster: usize) -> DatasetSpec {
    DatasetSpec {
        n_low: 0,
        n_high: 2 * n_per_cluster,
        ..ds3(seed)
    }
}

/// DS1 with `k` clusters — the Fig. 5 sweep (N grows by growing K,
/// cluster size fixed at 1000).
#[must_use]
pub fn ds1_scaled_k(seed: u64, k: usize) -> DatasetSpec {
    DatasetSpec { k, ..ds1(seed) }
}

/// DS2 variant of [`ds1_scaled_k`].
#[must_use]
pub fn ds2_scaled_k(seed: u64, k: usize) -> DatasetSpec {
    DatasetSpec { k, ..ds2(seed) }
}

/// DS3 variant of [`ds1_scaled_k`].
#[must_use]
pub fn ds3_scaled_k(seed: u64, k: usize) -> DatasetSpec {
    DatasetSpec { k, ..ds3(seed) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn table3_sizes() {
        assert_eq!(ds1(1).expected_points(), 100_000);
        assert_eq!(ds2(1).expected_points(), 100_000);
        assert_eq!(ds3(1).expected_points(), 100_000);
    }

    #[test]
    fn ordered_variants_only_differ_in_ordering() {
        let a = ds1(7);
        let b = ds1o(7);
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.k, b.k);
        assert_ne!(a.ordering, b.ordering);
        assert_eq!(b.ordering, Ordering::Ordered);
        assert_eq!(ds2o(7).ordering, Ordering::Ordered);
        assert_eq!(ds3o(7).ordering, Ordering::Ordered);
    }

    #[test]
    fn scaled_presets() {
        assert_eq!(ds1_scaled_n(1, 2500).expected_points(), 250_000);
        assert_eq!(ds1_scaled_k(1, 250).expected_points(), 250_000);
        assert_eq!(ds2_scaled_n(1, 500).n_high, 500);
        assert_eq!(ds3_scaled_n(1, 1000).n_high, 2000);
        assert_eq!(ds2_scaled_k(1, 150).k, 150);
        assert_eq!(ds3_scaled_k(1, 150).k, 150);
    }

    #[test]
    fn ds1_generates_and_validates() {
        // Shrunk version for test speed: same shape, fewer points.
        let spec = DatasetSpec {
            k: 25,
            n_low: 50,
            n_high: 50,
            ..ds1(3)
        };
        let ds = Dataset::generate(&spec);
        assert_eq!(ds.len(), 1250);
        assert_eq!(ds.clusters.len(), 25);
    }

    #[test]
    fn ds3_generates_variable_clusters() {
        let spec = DatasetSpec {
            k: 30,
            n_high: 100,
            ..ds3(3)
        };
        let ds = Dataset::generate(&spec);
        let sizes: Vec<usize> = ds.clusters.iter().map(|c| c.n).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "DS3 cluster sizes should vary: {sizes:?}");
    }
}
