//! Synthetic workloads for the BIRCH evaluation (§6.2, Table 1, Table 3).
//!
//! The paper studies BIRCH on controlled synthetic datasets: `K` clusters
//! of normally distributed points, with cluster centers placed on a *grid*,
//! along a *sine* curve, or at *random*; per-cluster sizes and radii drawn
//! from `[nl, nh]` and `[rl, rh]`; optional uniform background noise; and
//! input presented either *ordered* (cluster by cluster) or *randomized*.
//!
//! This crate reproduces that generator deterministic-seeded, exposes the
//! paper's base workload presets DS1/DS2/DS3 (and their ordered variants
//! DS1O/DS2O/DS3O, Table 3), and synthesizes the NIR/VIS tree-image
//! workload of §6.8 (see [`image`]; the real images were never published —
//! DESIGN.md substitution 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod image;
pub mod presets;
pub mod rng;
pub mod spec;

pub use dataset::{ActualCluster, Dataset};
pub use presets::{ds1, ds1o, ds2, ds2o, ds3, ds3o};
pub use spec::{DatasetSpec, Ordering, Pattern};
