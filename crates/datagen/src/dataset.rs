//! The generator proper: turns a [`DatasetSpec`] into points with ground
//! truth.
//!
//! Per the paper (§6.2): each cluster's points are 2-d normally distributed
//! around its center with the variance chosen so the *cluster radius* (eq.
//! 2: root-mean-square distance to the centroid) equals the requested `r`
//! — for a 2-d isotropic normal, `R² = 2σ²`, so `σ = r/√2`. Noise points
//! are uniform over the data's bounding box. A point may land arbitrarily
//! far from its own center ("outsiders" in the paper's terminology); it
//! still *belongs* to that cluster in the ground truth.

use crate::rng::normal;
use crate::spec::{DatasetSpec, Ordering, Pattern};
use birch_core::{Cf, Point};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Ground-truth description of one generated cluster.
#[derive(Debug, Clone)]
pub struct ActualCluster {
    /// The center the generator placed.
    pub center: Point,
    /// The radius the generator targeted.
    pub target_radius: f64,
    /// Number of points generated for this cluster.
    pub n: usize,
    /// Exact CF of the generated points (the "actual cluster" the paper
    /// compares against).
    pub cf: Cf,
}

/// A generated dataset: points, per-point ground truth, and the actual
/// clusters.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The data points, in presentation order.
    pub points: Vec<Point>,
    /// Ground-truth labels aligned with `points`; `None` marks noise.
    pub labels: Vec<Option<usize>>,
    /// The actual clusters (index = label).
    pub clusters: Vec<ActualCluster>,
    /// The spec that produced this dataset.
    pub spec: DatasetSpec,
}

impl Dataset {
    /// Generates the dataset described by `spec` (deterministic in the
    /// spec, including its seed).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`DatasetSpec::validate`]).
    #[must_use]
    pub fn generate(spec: &DatasetSpec) -> Self {
        spec.validate();
        let mut rng = StdRng::seed_from_u64(spec.seed);

        let centers = place_centers(spec);
        let mut points: Vec<Point> = Vec::with_capacity(spec.expected_points());
        let mut labels: Vec<Option<usize>> = Vec::with_capacity(spec.expected_points());
        let mut clusters = Vec::with_capacity(spec.k);

        for (ci, center) in centers.iter().enumerate() {
            let n = if spec.n_low == spec.n_high {
                spec.n_low
            } else {
                rng.gen_range(spec.n_low..=spec.n_high)
            };
            let r = if (spec.r_high - spec.r_low).abs() < f64::EPSILON {
                spec.r_low
            } else {
                rng.gen_range(spec.r_low..=spec.r_high)
            };
            // R² = d·σ² for an isotropic d-dim normal; d = 2 here.
            let sigma = r / 2f64.sqrt();
            let mut cf: Option<Cf> = None;
            let mut count = 0usize;
            for _ in 0..n {
                let p = Point::xy(
                    normal(&mut rng, center[0], sigma),
                    normal(&mut rng, center[1], sigma),
                );
                match &mut cf {
                    Some(cf) => cf.add_point(&p),
                    None => cf = Some(Cf::from_point(&p)),
                }
                points.push(p);
                labels.push(Some(ci));
                count += 1;
            }
            clusters.push(ActualCluster {
                center: center.clone(),
                target_radius: r,
                n: count,
                cf: cf.unwrap_or_else(|| Cf::empty(2)),
            });
        }

        // Background noise, uniform over the bounding box of the clustered
        // points (expanded a touch so noise can sit outside every cluster).
        let n_noise = (points.len() as f64 * spec.noise_fraction).round() as usize;
        if n_noise > 0 && !points.is_empty() {
            let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in &points {
                lo_x = lo_x.min(p[0]);
                hi_x = hi_x.max(p[0]);
                lo_y = lo_y.min(p[1]);
                hi_y = hi_y.max(p[1]);
            }
            let pad_x = 0.05 * (hi_x - lo_x).max(1.0);
            let pad_y = 0.05 * (hi_y - lo_y).max(1.0);
            for _ in 0..n_noise {
                points.push(Point::xy(
                    rng.gen_range(lo_x - pad_x..=hi_x + pad_x),
                    rng.gen_range(lo_y - pad_y..=hi_y + pad_y),
                ));
                labels.push(None);
            }
        }

        // Presentation order.
        if spec.ordering == Ordering::Randomized {
            let mut idx: Vec<usize> = (0..points.len()).collect();
            idx.shuffle(&mut rng);
            let points_shuffled = idx.iter().map(|&i| points[i].clone()).collect();
            let labels_shuffled = idx.iter().map(|&i| labels[i]).collect();
            points = points_shuffled;
            labels = labels_shuffled;
        }

        Self {
            points,
            labels,
            clusters,
            spec: spec.clone(),
        }
    }

    /// Total number of points (clustered + noise).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of noise points.
    #[must_use]
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// The actual clusters' weighted-average diameter — the baseline the
    /// paper's quality columns compare against.
    #[must_use]
    pub fn actual_weighted_diameter(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for c in &self.clusters {
            if c.n > 1 {
                let d = c.cf.diameter();
                num += c.n as f64 * d * d;
                den += c.n as f64;
            }
        }
        if den == 0.0 {
            0.0
        } else {
            (num / den).sqrt()
        }
    }
}

/// Places the `K` cluster centers per the pattern.
fn place_centers(spec: &DatasetSpec) -> Vec<Point> {
    let k = spec.k;
    match spec.pattern {
        Pattern::Grid { kg } => {
            let side = (k as f64).sqrt().ceil() as usize;
            (0..k)
                .map(|i| {
                    let row = i / side;
                    let col = i % side;
                    Point::xy((col as f64 + 0.5) * kg, (row as f64 + 0.5) * kg)
                })
                .collect()
        }
        Pattern::Sine { cycles } => {
            let amplitude = std::f64::consts::TAU * k as f64 / 8.0;
            (0..k)
                .map(|i| {
                    let x = std::f64::consts::TAU * i as f64;
                    let phase = std::f64::consts::TAU * (i as f64) * (cycles as f64) / k as f64;
                    Point::xy(x, amplitude * phase.sin())
                })
                .collect()
        }
        Pattern::Random { kg } => {
            // Deterministic sub-stream so center placement doesn't shift
            // when per-cluster draws change.
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed_cafe_f00d_d00d);
            let side = (k as f64).sqrt() * kg;
            (0..k)
                .map(|_| Point::xy(rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid_spec() -> DatasetSpec {
        DatasetSpec {
            pattern: Pattern::Grid { kg: 4.0 },
            k: 9,
            n_low: 200,
            n_high: 200,
            r_low: 2f64.sqrt(),
            r_high: 2f64.sqrt(),
            noise_fraction: 0.0,
            ordering: Ordering::Ordered,
            seed: 99,
        }
    }

    #[test]
    fn grid_centers_are_a_grid() {
        let ds = Dataset::generate(&small_grid_spec());
        assert_eq!(ds.clusters.len(), 9);
        // 3x3 grid with spacing 4, offset 2.
        assert_eq!(ds.clusters[0].center.coords(), &[2.0, 2.0]);
        assert_eq!(ds.clusters[1].center.coords(), &[6.0, 2.0]);
        assert_eq!(ds.clusters[3].center.coords(), &[2.0, 6.0]);
    }

    #[test]
    fn point_count_and_labels() {
        let ds = Dataset::generate(&small_grid_spec());
        assert_eq!(ds.len(), 9 * 200);
        assert_eq!(ds.labels.len(), ds.points.len());
        assert_eq!(ds.noise_count(), 0);
        for c in &ds.clusters {
            assert_eq!(c.n, 200);
        }
    }

    #[test]
    fn cluster_radius_close_to_target() {
        let ds = Dataset::generate(&DatasetSpec {
            n_low: 5000,
            n_high: 5000,
            k: 4,
            ..small_grid_spec()
        });
        for c in &ds.clusters {
            let r = c.cf.radius();
            assert!(
                (r - c.target_radius).abs() / c.target_radius < 0.05,
                "generated radius {r} vs target {}",
                c.target_radius
            );
        }
    }

    #[test]
    fn cluster_centroid_close_to_center() {
        let ds = Dataset::generate(&small_grid_spec());
        for c in &ds.clusters {
            let centroid = c.cf.centroid();
            assert!(
                centroid.dist(&c.center) < 0.5,
                "{centroid:?} vs {:?}",
                c.center
            );
        }
    }

    #[test]
    fn ordered_keeps_clusters_contiguous() {
        let ds = Dataset::generate(&small_grid_spec());
        // Labels must be non-decreasing for ordered input without noise.
        let labs: Vec<usize> = ds.labels.iter().map(|l| l.unwrap()).collect();
        assert!(labs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn randomized_interleaves_clusters() {
        let ds = Dataset::generate(&DatasetSpec {
            ordering: Ordering::Randomized,
            ..small_grid_spec()
        });
        let labs: Vec<usize> = ds.labels.iter().map(|l| l.unwrap()).collect();
        // Count order inversions: a shuffled list has many.
        let changes = labs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes > ds.len() / 2, "only {changes} label changes");
    }

    #[test]
    fn noise_points_present_and_unlabeled() {
        let ds = Dataset::generate(&DatasetSpec {
            noise_fraction: 0.1,
            ..small_grid_spec()
        });
        let expected_noise = (9.0 * 200.0 * 0.1_f64).round() as usize;
        assert_eq!(ds.noise_count(), expected_noise);
        assert_eq!(ds.len(), 9 * 200 + expected_noise);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Dataset::generate(&small_grid_spec());
        let b = Dataset::generate(&small_grid_spec());
        assert_eq!(a.points.len(), b.points.len());
        assert_eq!(a.points[17], b.points[17]);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&small_grid_spec());
        let b = Dataset::generate(&DatasetSpec {
            seed: 100,
            ..small_grid_spec()
        });
        assert_ne!(a.points[0], b.points[0]);
    }

    #[test]
    fn sine_pattern_traces_sine() {
        let ds = Dataset::generate(&DatasetSpec {
            pattern: Pattern::Sine { cycles: 4 },
            k: 100,
            n_low: 1,
            n_high: 1,
            ..small_grid_spec()
        });
        assert_eq!(ds.clusters.len(), 100);
        // x strictly increasing; y bounded by the amplitude.
        let amp = std::f64::consts::TAU * 100.0 / 8.0;
        for w in ds.clusters.windows(2) {
            assert!(w[1].center[0] > w[0].center[0]);
        }
        assert!(ds.clusters.iter().all(|c| c.center[1].abs() <= amp + 1e-9));
        // The curve actually oscillates: both signs appear.
        assert!(ds.clusters.iter().any(|c| c.center[1] > amp * 0.5));
        assert!(ds.clusters.iter().any(|c| c.center[1] < -amp * 0.5));
    }

    #[test]
    fn random_pattern_in_bounds() {
        let ds = Dataset::generate(&DatasetSpec {
            pattern: Pattern::Random { kg: 4.0 },
            k: 25,
            n_low: 1,
            n_high: 1,
            ..small_grid_spec()
        });
        let side = 5.0 * 4.0;
        for c in &ds.clusters {
            assert!((0.0..=side).contains(&c.center[0]));
            assert!((0.0..=side).contains(&c.center[1]));
        }
    }

    #[test]
    fn variable_n_and_r_ranges() {
        let ds = Dataset::generate(&DatasetSpec {
            n_low: 0,
            n_high: 100,
            r_low: 0.0,
            r_high: 4.0,
            k: 50,
            ..small_grid_spec()
        });
        assert!(ds.clusters.iter().any(|c| c.n < 50));
        assert!(ds.clusters.iter().any(|c| c.n > 50));
        assert!(ds
            .clusters
            .iter()
            .all(|c| (0.0..=4.0).contains(&c.target_radius)));
    }

    #[test]
    fn actual_weighted_diameter_positive() {
        let ds = Dataset::generate(&small_grid_spec());
        let d = ds.actual_weighted_diameter();
        // r = sqrt(2) -> expected diameter ~= sqrt(2)*r = 2.
        assert!((d - 2.0).abs() < 0.2, "weighted diameter {d}");
    }
}
