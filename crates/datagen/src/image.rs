//! Synthetic NIR/VIS tree-image workload (paper §6.8, Figs. 9–10).
//!
//! The paper's real-data application clusters the pixels of two 512×1024
//! images of trees — one near-infrared (NIR) band, one visible (VIS) band —
//! to filter trees from background. The original images were never
//! published, so this module synthesizes a scene with the five populations
//! the paper identifies and the brightness relationships it describes
//! (DESIGN.md substitution 2):
//!
//! 1. **very bright part of sky** (bright VIS, low NIR),
//! 2. **ordinary part of sky** i.e. cloudy background (very bright VIS),
//! 3. **sunlit leaves** (high NIR — healthy vegetation reflects NIR),
//! 4. **branches + shadows on the trees, part A** (dark in both bands),
//! 5. **branches + shadows, part B** (dark, slightly different mix).
//!
//! The paper's experiment is two-pass: first cluster `(NIR, VIS)` pairs
//! with VIS weighted 10× into 5 clusters and pull out the tree parts
//! (leaves and branches/shadows) from the background; then re-cluster the
//! tree-part pixels on NIR with a finer threshold to split sunlit leaves
//! from branches/shadows. [`NirVisImage`] provides the data and the
//! ground-truth masks to verify both passes.

use crate::rng::normal;
use birch_core::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth pixel class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelClass {
    /// Bright sky (background).
    Sky,
    /// Cloud (background).
    Cloud,
    /// Sunlit leaves (tree).
    SunlitLeaves,
    /// Branches and shadows, first population (tree).
    BranchShadowA,
    /// Branches and shadows, second population (tree).
    BranchShadowB,
}

impl PixelClass {
    /// All five populations.
    pub const ALL: [PixelClass; 5] = [
        PixelClass::Sky,
        PixelClass::Cloud,
        PixelClass::SunlitLeaves,
        PixelClass::BranchShadowA,
        PixelClass::BranchShadowB,
    ];

    /// Whether this class belongs to the tree (vs the background).
    #[must_use]
    pub fn is_tree(self) -> bool {
        matches!(
            self,
            PixelClass::SunlitLeaves | PixelClass::BranchShadowA | PixelClass::BranchShadowB
        )
    }

    /// `(NIR mean, VIS mean, NIR σ, VIS σ)` of the population, on a 0–255
    /// brightness scale. The relations follow §6.8: sky/cloud are pulled
    /// far from the tree parts by VIS brightness; leaves vs branches are
    /// separated by NIR; the two branch/shadow parts are similar to each
    /// other (the paper needed the finer second pass to tell them apart
    /// from leaves, and they stayed together).
    #[must_use]
    pub fn distribution(self) -> (f64, f64, f64, f64) {
        match self {
            PixelClass::Sky => (45.0, 200.0, 10.0, 8.0),
            PixelClass::Cloud => (110.0, 235.0, 12.0, 6.0),
            PixelClass::SunlitLeaves => (185.0, 95.0, 14.0, 12.0),
            PixelClass::BranchShadowA => (60.0, 50.0, 10.0, 9.0),
            PixelClass::BranchShadowB => (85.0, 65.0, 11.0, 10.0),
        }
    }

    /// Fraction of the scene covered by this population.
    #[must_use]
    pub fn coverage(self) -> f64 {
        match self {
            PixelClass::Sky => 0.20,
            PixelClass::Cloud => 0.15,
            PixelClass::SunlitLeaves => 0.35,
            PixelClass::BranchShadowA => 0.15,
            PixelClass::BranchShadowB => 0.15,
        }
    }
}

/// A synthesized two-band image: per-pixel `(NIR, VIS)` values plus ground
/// truth.
#[derive(Debug, Clone)]
pub struct NirVisImage {
    /// Per-pixel `(NIR, VIS)` brightness values.
    pub pixels: Vec<(f64, f64)>,
    /// Ground-truth class per pixel.
    pub truth: Vec<PixelClass>,
    /// Image width (pixels are row-major, `width × height`).
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl NirVisImage {
    /// Synthesizes a `width × height` scene, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the image has zero pixels.
    #[must_use]
    pub fn generate(width: usize, height: usize, seed: u64) -> Self {
        let n = width * height;
        assert!(n > 0, "image must have at least one pixel");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);

        // Cumulative coverage for class sampling.
        let classes = PixelClass::ALL;
        let mut cum = [0.0f64; 5];
        let mut acc = 0.0;
        for (i, c) in classes.iter().enumerate() {
            acc += c.coverage();
            cum[i] = acc;
        }

        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..acc);
            let class = classes[cum.iter().position(|&c| u < c).unwrap_or(4)];
            let (nir_m, vis_m, nir_s, vis_s) = class.distribution();
            let nir = normal(&mut rng, nir_m, nir_s).clamp(0.0, 255.0);
            let vis = normal(&mut rng, vis_m, vis_s).clamp(0.0, 255.0);
            pixels.push((nir, vis));
            truth.push(class);
        }

        Self {
            pixels,
            truth,
            width,
            height,
        }
    }

    /// Number of pixels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the image is empty (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// The pixels as 2-d points with the bands scaled — the paper's pass 1
    /// weights VIS 10× to pull the (bright-VIS) background away from the
    /// tree parts.
    #[must_use]
    pub fn scaled_points(&self, nir_scale: f64, vis_scale: f64) -> Vec<Point> {
        self.pixels
            .iter()
            .map(|&(nir, vis)| Point::xy(nir * nir_scale, vis * vis_scale))
            .collect()
    }

    /// NIR-only 1-d points for a subset of pixels — the paper's pass 2
    /// re-clusters the tree-part pixels on the NIR band alone.
    #[must_use]
    pub fn nir_points(&self, indices: &[usize]) -> Vec<Point> {
        indices
            .iter()
            .map(|&i| Point::new(vec![self.pixels[i].0]))
            .collect()
    }

    /// Indices of pixels whose ground truth is a tree part.
    #[must_use]
    pub fn tree_indices(&self) -> Vec<usize> {
        self.truth
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_tree().then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_basics() {
        let img = NirVisImage::generate(64, 32, 5);
        assert_eq!(img.len(), 64 * 32);
        assert_eq!(img.truth.len(), img.pixels.len());
        assert!(!img.is_empty());
    }

    #[test]
    fn coverage_fractions_roughly_met() {
        let img = NirVisImage::generate(256, 256, 5);
        for class in PixelClass::ALL {
            let frac = img.truth.iter().filter(|&&c| c == class).count() as f64 / img.len() as f64;
            assert!(
                (frac - class.coverage()).abs() < 0.02,
                "{class:?}: {frac} vs {}",
                class.coverage()
            );
        }
    }

    #[test]
    fn population_means_roughly_met() {
        let img = NirVisImage::generate(256, 256, 8);
        for class in PixelClass::ALL {
            let vals: Vec<&(f64, f64)> = img
                .pixels
                .iter()
                .zip(&img.truth)
                .filter_map(|(p, &c)| (c == class).then_some(p))
                .collect();
            let n = vals.len() as f64;
            let nir_mean: f64 = vals.iter().map(|p| p.0).sum::<f64>() / n;
            let (want_nir, want_vis, _, _) = class.distribution();
            assert!(
                (nir_mean - want_nir).abs() < 2.0,
                "{class:?} NIR {nir_mean}"
            );
            let vis_mean: f64 = vals.iter().map(|p| p.1).sum::<f64>() / n;
            assert!(
                (vis_mean - want_vis).abs() < 2.0,
                "{class:?} VIS {vis_mean}"
            );
        }
    }

    #[test]
    fn values_clamped_to_byte_range() {
        let img = NirVisImage::generate(128, 128, 13);
        assert!(img
            .pixels
            .iter()
            .all(|&(n, v)| (0.0..=255.0).contains(&n) && (0.0..=255.0).contains(&v)));
    }

    #[test]
    fn vis_separates_background_from_tree() {
        // The design requirement of pass 1: background VIS ≫ tree VIS.
        let img = NirVisImage::generate(128, 128, 21);
        let (mut bg, mut bg_n) = (0.0, 0);
        let (mut tree, mut tree_n) = (0.0, 0);
        for (p, c) in img.pixels.iter().zip(&img.truth) {
            if c.is_tree() {
                tree += p.1;
                tree_n += 1;
            } else {
                bg += p.1;
                bg_n += 1;
            }
        }
        assert!(bg / bg_n as f64 > tree / tree_n as f64 + 80.0);
    }

    #[test]
    fn nir_separates_leaves_from_branches() {
        // The design requirement of pass 2.
        let img = NirVisImage::generate(128, 128, 22);
        let mean_of = |class: PixelClass| {
            let v: Vec<f64> = img
                .pixels
                .iter()
                .zip(&img.truth)
                .filter_map(|(p, &c)| (c == class).then_some(p.0))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let leaves = mean_of(PixelClass::SunlitLeaves);
        let branch_a = mean_of(PixelClass::BranchShadowA);
        let branch_b = mean_of(PixelClass::BranchShadowB);
        assert!(leaves > branch_a + 60.0);
        assert!(leaves > branch_b + 60.0);
    }

    #[test]
    fn scaled_points_and_tree_indices() {
        let img = NirVisImage::generate(32, 32, 9);
        let pts = img.scaled_points(1.0, 10.0);
        assert_eq!(pts.len(), img.len());
        assert!((pts[0][1] - img.pixels[0].1 * 10.0).abs() < 1e-12);
        let tree = img.tree_indices();
        assert!(!tree.is_empty());
        let nir = img.nir_points(&tree);
        assert_eq!(nir.len(), tree.len());
        assert_eq!(nir[0].dim(), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = NirVisImage::generate(16, 16, 1);
        let b = NirVisImage::generate(16, 16, 1);
        assert_eq!(a.pixels, b.pixels);
        let c = NirVisImage::generate(16, 16, 2);
        assert_ne!(a.pixels, c.pixels);
    }
}
