//! Property-based tests of the workload generator: for any valid spec the
//! generated dataset must honour its own ground truth.

use birch_datagen::{Dataset, DatasetSpec, Ordering, Pattern};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (1.0f64..20.0).prop_map(|kg| Pattern::Grid { kg }),
        (1usize..8).prop_map(|cycles| Pattern::Sine { cycles }),
        (1.0f64..20.0).prop_map(|kg| Pattern::Random { kg }),
    ]
}

fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (
        arb_pattern(),
        1usize..30,      // k
        0usize..40,      // n_low
        1usize..60,      // extra onto n_high
        0.0f64..3.0,     // r_low
        0.0f64..3.0,     // extra onto r_high
        0.0f64..0.3,     // noise
        prop::bool::ANY, // ordered?
        any::<u64>(),    // seed
    )
        .prop_map(
            |(pattern, k, n_low, n_extra, r_low, r_extra, noise, ordered, seed)| DatasetSpec {
                pattern,
                k,
                n_low,
                n_high: n_low + n_extra,
                r_low,
                r_high: r_low + r_extra,
                noise_fraction: noise,
                ordering: if ordered {
                    Ordering::Ordered
                } else {
                    Ordering::Randomized
                },
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bookkeeping: points, labels and per-cluster counts all agree.
    #[test]
    fn ground_truth_is_consistent(spec in arb_spec()) {
        let ds = Dataset::generate(&spec);
        prop_assert_eq!(ds.points.len(), ds.labels.len());
        prop_assert_eq!(ds.clusters.len(), spec.k);

        // Per-cluster counts match the labels.
        let mut counts = vec![0usize; spec.k];
        for l in ds.labels.iter().flatten() {
            prop_assert!(*l < spec.k);
            counts[*l] += 1;
        }
        for (c, &n) in ds.clusters.iter().zip(&counts) {
            prop_assert_eq!(c.n, n);
        }

        // Cluster CF weight equals its count.
        for c in &ds.clusters {
            prop_assert!((c.cf.n() - c.n as f64).abs() < 1e-9);
        }

        // Sizes within the requested range.
        for c in &ds.clusters {
            prop_assert!(c.n >= spec.n_low && c.n <= spec.n_high);
            prop_assert!(c.target_radius >= spec.r_low - 1e-12);
            prop_assert!(c.target_radius <= spec.r_high + 1e-12);
        }
    }

    /// Determinism: the same spec yields the same dataset.
    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = Dataset::generate(&spec);
        let b = Dataset::generate(&spec);
        prop_assert_eq!(a.points, b.points);
        prop_assert_eq!(a.labels, b.labels);
    }

    /// The noise fraction is honoured (rounded).
    #[test]
    fn noise_count_matches_fraction(spec in arb_spec()) {
        let ds = Dataset::generate(&spec);
        let clustered: usize = ds.clusters.iter().map(|c| c.n).sum();
        let expected = (clustered as f64 * spec.noise_fraction).round() as usize;
        // Zero clustered points -> zero noise (nothing to bound the box).
        if clustered == 0 {
            prop_assert_eq!(ds.noise_count(), 0);
        } else {
            prop_assert_eq!(ds.noise_count(), expected);
        }
    }

    /// Ordered datasets keep clusters contiguous; randomized ones with at
    /// least two non-trivial clusters do not (statistically).
    #[test]
    fn ordering_semantics(spec in arb_spec()) {
        let ds = Dataset::generate(&spec);
        if spec.ordering == Ordering::Ordered {
            let clustered: Vec<usize> =
                ds.labels.iter().flatten().copied().collect();
            prop_assert!(clustered.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// All generated coordinates are finite.
    #[test]
    fn coordinates_finite(spec in arb_spec()) {
        let ds = Dataset::generate(&spec);
        for p in &ds.points {
            prop_assert!(p.iter().all(|c| c.is_finite()));
        }
    }
}
