//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the BIRCH paper's §6 (see DESIGN.md's experiment index).
//!
//! Each binary accepts:
//!
//! * `--scale <f>`   — dataset size as a fraction of the paper's (default
//!   0.1: the paper uses N = 100,000 per base dataset; 0.1 keeps every
//!   binary interactive while preserving every qualitative shape. Use
//!   `--scale 1.0` to run at full paper size).
//! * `--seed <u64>`  — generator seed (default 42).
//!
//! The library provides argument parsing, the scaled Table-3 workloads,
//! and fixed-width table printing so every binary reports the same way.

#![forbid(unsafe_code)]

use birch_core::{Birch, BirchConfig, BirchModel, Cf, DistanceMetric};
use birch_datagen::{presets, Dataset, DatasetSpec};
use std::time::{Duration, Instant};

/// Memo-free, block-free replica of [`DistanceMetric::distance`] for the
/// active CF backend: every self-term is re-derived from the `Cf`'s own
/// statistics (no `‖·‖²` cache, no SoA block) — the seed-era scalar
/// arithmetic the batched kernels replaced.
///
/// The kernel benches and the `insert_kernel` bin use this as their
/// scalar baseline. Results are bit-identical to the production path
/// (the memo is itself refreshed by exact recomputation, and the operand
/// order below matches `distance.rs` term for term); only the cost
/// differs. The default (stable) build repeats the deviation-form
/// kernel (compensated `Δμ`); under `classic-cf` the replica repeats
/// the classic closed forms instead.
#[cfg(feature = "classic-cf")]
#[must_use]
pub fn scalar_distance_replica(metric: DistanceMetric, a: &Cf, b: &Cf) -> f64 {
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
    let (na, nb) = (a.n(), b.n());
    let (lsa, lsb) = (a.vec_stat(), b.vec_stat());
    match metric {
        DistanceMetric::D0 => lsa
            .iter()
            .zip(lsb)
            .map(|(&x, &y)| {
                let d = x / na - y / nb;
                d * d
            })
            .sum::<f64>()
            .sqrt(),
        DistanceMetric::D1 => lsa
            .iter()
            .zip(lsb)
            .map(|(&x, &y)| (x / na - y / nb).abs())
            .sum(),
        DistanceMetric::D2 => {
            let num = nb * a.scalar_stat() + na * b.scalar_stat() - 2.0 * dot(lsa, lsb);
            (num.max(0.0) / (na * nb)).sqrt()
        }
        DistanceMetric::D3 => {
            let n = na + nb;
            if n <= 1.0 {
                return 0.0;
            }
            let ss = a.scalar_stat() + b.scalar_stat();
            let merged = dot(lsa, lsa) + 2.0 * dot(lsa, lsb) + dot(lsb, lsb);
            let num = 2.0 * n * ss - 2.0 * merged;
            (num.max(0.0) / (n * (n - 1.0))).sqrt()
        }
        DistanceMetric::D4 => {
            let n = na + nb;
            let merged = dot(lsa, lsa) + 2.0 * dot(lsa, lsb) + dot(lsb, lsb);
            let inc = dot(lsa, lsa) / na + dot(lsb, lsb) / nb - merged / n;
            inc.max(0.0).sqrt()
        }
    }
}

/// Stable-backend variant: repeats `distance.rs`'s deviation-form kernel
/// (`Δμᵢ = (μ_aᵢ − μ_bᵢ) + (c_aᵢ − c_bᵢ)`) term for term. See the
/// classic variant's docs.
#[cfg(not(feature = "classic-cf"))]
#[must_use]
pub fn scalar_distance_replica(metric: DistanceMetric, a: &Cf, b: &Cf) -> f64 {
    let dmu = |i: usize| (a.mean()[i] - b.mean()[i]) + (a.mean_carry()[i] - b.mean_carry()[i]);
    let dmu_sq = || {
        let mut s = 0.0;
        for i in 0..a.mean().len() {
            let d = dmu(i);
            s += d * d;
        }
        s
    };
    match metric {
        DistanceMetric::D0 => dmu_sq().sqrt(),
        DistanceMetric::D1 => (0..a.mean().len()).map(|i| dmu(i).abs()).sum(),
        DistanceMetric::D2 => (a.scalar_stat() / a.n() + b.scalar_stat() / b.n() + dmu_sq())
            .max(0.0)
            .sqrt(),
        DistanceMetric::D3 => {
            let n = a.n() + b.n();
            if n <= 1.0 {
                return 0.0;
            }
            let sse_m = a.scalar_stat() + b.scalar_stat() + (a.n() * b.n() / n) * dmu_sq();
            (2.0 * sse_m / (n - 1.0)).max(0.0).sqrt()
        }
        DistanceMetric::D4 => {
            let n = a.n() + b.n();
            ((a.n() * b.n() / n) * dmu_sq()).max(0.0).sqrt()
        }
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Fraction of the paper's dataset sizes to run at.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Args {
    /// Parses `--scale` and `--seed` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed values.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = Args {
            scale: 0.1,
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    args.scale = v.parse().expect("--scale must be a float");
                    assert!(args.scale > 0.0, "--scale must be positive");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    args.seed = v.parse().expect("--seed must be an integer");
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--scale f] [--seed n]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        args
    }

    /// Scales a per-cluster point count.
    #[must_use]
    pub fn n_per_cluster(&self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.scale).round() as usize).max(2)
    }
}

/// A named Table-3 workload at the chosen scale.
pub struct Workload {
    /// Dataset name as in the paper (DS1, DS2O, …).
    pub name: &'static str,
    /// The scaled spec.
    pub spec: DatasetSpec,
}

/// The six base workloads of Table 3 (randomized + ordered variants),
/// scaled by `args.scale` (cluster count stays at K = 100; per-cluster
/// sizes shrink).
#[must_use]
pub fn base_workloads(args: &Args) -> Vec<Workload> {
    let n = args.n_per_cluster(1000);
    let nh3 = args.n_per_cluster(2000);
    let scale_n = |mut spec: DatasetSpec, nl: usize, nh: usize| {
        spec.n_low = nl;
        spec.n_high = nh;
        spec
    };
    vec![
        Workload {
            name: "DS1",
            spec: scale_n(presets::ds1(args.seed), n, n),
        },
        Workload {
            name: "DS2",
            spec: scale_n(presets::ds2(args.seed), n, n),
        },
        Workload {
            name: "DS3",
            spec: scale_n(presets::ds3(args.seed), 0, nh3),
        },
        Workload {
            name: "DS1O",
            spec: scale_n(presets::ds1o(args.seed), n, n),
        },
        Workload {
            name: "DS2O",
            spec: scale_n(presets::ds2o(args.seed), n, n),
        },
        Workload {
            name: "DS3O",
            spec: scale_n(presets::ds3o(args.seed), 0, nh3),
        },
    ]
}

/// The paper's default BIRCH configuration (Table 2) for `k` clusters,
/// with the memory budget scaled with the dataset (the paper's 80 KB is
/// ~5% of its 100k-point datasets; we keep the same ratio so rebuild
/// behaviour matches at reduced scale).
#[must_use]
pub fn paper_config(k: usize, dataset_points: usize) -> BirchConfig {
    // 80 KB per 100_000 points. The floor of 16 pages keeps enough leaf
    // entries for K=100 clusters at reduced --scale; below it the tree is
    // too coarse for the touching grid clusters of DS1.
    let mem = ((80.0 * 1024.0) * (dataset_points as f64 / 100_000.0)) as usize;
    BirchConfig::with_clusters(k)
        .memory(mem.max(16 * 1024))
        .total_points(dataset_points as u64)
}

/// Times one closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Runs BIRCH on a dataset with the paper's defaults; returns the model.
///
/// # Panics
///
/// Panics if the fit fails (datasets here are never empty).
#[must_use]
pub fn run_birch(ds: &Dataset, k: usize) -> BirchModel {
    let config = paper_config(k, ds.len());
    Birch::new(config).fit(&ds.points).expect("fit succeeds")
}

/// Extracts cluster CFs from a model.
#[must_use]
pub fn model_cfs(model: &BirchModel) -> Vec<Cf> {
    model.clusters().iter().map(|c| c.cf.clone()).collect()
}

/// Prints one BIRCH run's telemetry as a machine-greppable line:
/// `# METRICS <label> <json>` — the same JSON `birch-cli --metrics-json`
/// writes, so experiment output can feed the same tooling.
pub fn print_metrics(label: &str, model: &BirchModel) {
    println!("# METRICS {label} {}", model.stats().to_json());
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row followed by a dashed rule.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(ToString::to_string).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a `Duration` in seconds with millisecond resolution.
#[must_use]
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_scale() {
        let args = Args {
            scale: 0.05,
            seed: 1,
        };
        let w = base_workloads(&args);
        assert_eq!(w.len(), 6);
        assert_eq!(w[0].spec.n_low, 50);
        assert_eq!(w[2].spec.n_high, 100);
        assert_eq!(w[0].spec.k, 100);
    }

    #[test]
    fn paper_config_scales_memory() {
        let c = paper_config(100, 100_000);
        assert_eq!(c.memory_bytes, 80 * 1024);
        let c = paper_config(100, 20_000);
        assert_eq!(c.memory_bytes, 16 * 1024);
        let c = paper_config(100, 100);
        assert_eq!(c.memory_bytes, 16 * 1024); // floor
    }

    #[test]
    fn n_per_cluster_floor() {
        let args = Args {
            scale: 0.0001,
            seed: 0,
        };
        assert_eq!(args.n_per_cluster(1000), 2);
    }

    #[test]
    fn scalar_replica_bit_matches_production_distance() {
        use birch_core::Point;
        let mk = |seed: u64, n: usize, dim: usize| {
            let mut cf = Cf::empty(dim);
            let mut s = seed;
            for _ in 0..n {
                let coords: Vec<f64> = (0..dim)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 53) as f64 * 20.0
                    })
                    .collect();
                cf.add_point(&Point::new(coords));
            }
            cf
        };
        for dim in [2usize, 8, 32] {
            let a = mk(0xA11CE, 5, dim);
            let b = mk(0xB0B, 3, dim);
            for metric in DistanceMetric::ALL {
                let replica = scalar_distance_replica(metric, &a, &b);
                let production = metric.distance(&a, &b);
                assert_eq!(
                    replica.to_bits(),
                    production.to_bits(),
                    "replica diverged under {metric:?} at dim {dim}: {replica} vs {production}"
                );
            }
        }
    }

    #[test]
    fn run_birch_smoke() {
        let args = Args {
            scale: 0.01,
            seed: 3,
        };
        let w = &base_workloads(&args)[0];
        let ds = Dataset::generate(&w.spec);
        let model = run_birch(&ds, 100);
        assert!(!model.clusters().is_empty());
        assert_eq!(model_cfs(&model).len(), model.clusters().len());
    }
}
