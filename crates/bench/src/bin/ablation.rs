//! Ablation study of BIRCH's design choices (beyond the paper's own
//! sensitivity analysis): what each mechanism buys on the base workload.
//!
//! * **Distance metric D0–D4** — the paper defaults to D2 and reports
//!   (in the tech-report version) that metrics behave similarly; verify.
//! * **Threshold statistic** — diameter (default) vs radius.
//! * **Merging refinement (§4.3)** — on/off: page utilization and splits
//!   under *ordered* input, the case it was designed for.
//! * **Phase 2 condensation** — on/off: Phase-3 input size vs time.
//! * **Phase 4 refinement** — 0/1/3 passes: label quality gain.
//!
//! ```text
//! cargo run --release -p birch-bench --bin ablation [-- --scale 0.1]
//! ```

use birch_bench::{base_workloads, model_cfs, paper_config, print_header, print_row, secs, Args};
use birch_core::{Birch, BirchConfig, DistanceMetric, ThresholdKind};
use birch_datagen::Dataset;
use birch_eval::quality::{adjusted_rand_index, weighted_average_diameter};

fn fit_stats(ds: &Dataset, config: BirchConfig) -> (f64, f64, std::time::Duration, u64, u64) {
    let model = Birch::new(config).fit(&ds.points).expect("fit");
    let d = weighted_average_diameter(&model_cfs(&model));
    let ari = model
        .labels()
        .map_or(f64::NAN, |l| adjusted_rand_index(l, &ds.labels));
    (
        d,
        ari,
        model.stats().total_time(),
        model.stats().io.splits,
        model.stats().io.merge_refinements,
    )
}

fn main() {
    let args = Args::parse();
    let workloads = base_workloads(&args);
    let ds1 = Dataset::generate(&workloads[0].spec);
    let ds1o = Dataset::generate(&workloads[3].spec);
    let widths = [10, 10, 10, 10, 12, 12];

    println!("Ablation: distance metric (DS1, scale {})\n", args.scale);
    print_header(&["metric", "D", "ARI", "time-s", "splits", ""], &widths);
    for metric in DistanceMetric::ALL {
        let cfg = paper_config(100, ds1.len()).metric(metric);
        let (d, ari, t, splits, _) = fit_stats(&ds1, cfg);
        print_row(
            &[
                metric.to_string(),
                format!("{d:.3}"),
                format!("{ari:.3}"),
                secs(t),
                splits.to_string(),
                String::new(),
            ],
            &widths,
        );
    }

    println!("\nAblation: threshold statistic (DS1)\n");
    print_header(&["stat", "D", "ARI", "time-s", "", ""], &widths);
    for (name, kind) in [
        ("diameter", ThresholdKind::Diameter),
        ("radius", ThresholdKind::Radius),
    ] {
        let cfg = paper_config(100, ds1.len()).threshold_kind(kind);
        let (d, ari, t, _, _) = fit_stats(&ds1, cfg);
        print_row(
            &[
                name.to_string(),
                format!("{d:.3}"),
                format!("{ari:.3}"),
                secs(t),
                String::new(),
                String::new(),
            ],
            &widths,
        );
    }

    println!("\nAblation: merging refinement on ordered input (DS1O)\n");
    print_header(
        &["refine", "D", "ARI", "time-s", "splits", "refines"],
        &widths,
    );
    for on in [true, false] {
        let mut cfg = paper_config(100, ds1o.len());
        cfg.merge_refinement = on;
        let (d, ari, t, splits, refines) = fit_stats(&ds1o, cfg);
        print_row(
            &[
                if on { "on" } else { "off" }.to_string(),
                format!("{d:.3}"),
                format!("{ari:.3}"),
                secs(t),
                splits.to_string(),
                refines.to_string(),
            ],
            &widths,
        );
    }

    println!("\nAblation: Phase 2 condensation (DS1)\n");
    print_header(&["phase2", "D", "ARI", "time-s", "", ""], &widths);
    for on in [true, false] {
        let cfg = paper_config(100, ds1.len()).phase2(on);
        let (d, ari, t, _, _) = fit_stats(&ds1, cfg);
        print_row(
            &[
                if on { "on" } else { "off" }.to_string(),
                format!("{d:.3}"),
                format!("{ari:.3}"),
                secs(t),
                String::new(),
                String::new(),
            ],
            &widths,
        );
    }

    println!("\nAblation: Phase 3 global method (DS1)\n");
    print_header(&["method", "D", "ARI", "time-s", "", ""], &widths);
    for (name, method) in [
        ("hier", birch_core::phase3::GlobalMethod::Hierarchical),
        (
            "kmeans",
            birch_core::phase3::GlobalMethod::KMeans { max_iters: 50 },
        ),
    ] {
        let cfg = paper_config(100, ds1.len()).global_method(method);
        let (d, ari, t, _, _) = fit_stats(&ds1, cfg);
        print_row(
            &[
                name.to_string(),
                format!("{d:.3}"),
                format!("{ari:.3}"),
                secs(t),
                String::new(),
                String::new(),
            ],
            &widths,
        );
    }

    println!("\nAblation: Phase 4 passes (DS1)\n");
    print_header(&["passes", "D", "ARI", "time-s", "", ""], &widths);
    for passes in [0usize, 1, 3] {
        let cfg = paper_config(100, ds1.len()).refinement_passes(passes);
        let (d, ari, t, _, _) = fit_stats(&ds1, cfg);
        print_row(
            &[
                passes.to_string(),
                format!("{d:.3}"),
                if ari.is_nan() {
                    "-".to_string()
                } else {
                    format!("{ari:.3}")
                },
                secs(t),
                String::new(),
                String::new(),
            ],
            &widths,
        );
    }
    println!(
        "\nexpected: metrics comparable (D2 default justified); refinement cuts splits on \
         ordered input; phase 4 passes improve ARI then saturate"
    );
}
