//! Regenerates **Table 5** — CLARANS vs BIRCH on the base workload
//! (§6.7 "Comparison of BIRCH and CLARANS").
//!
//! Paper shape to reproduce: CLARANS needs the whole dataset in memory and
//! runs ~15–50× slower; its quality `D` is visibly worse (paper: 1.94–2.44
//! vs BIRCH's 1.87–2.11 at actual ~2.00) and it degrades dramatically on
//! ordered input, while BIRCH barely moves.
//!
//! CLARANS's cost is O(numlocal · maxneighbor · N) with
//! `maxneighbor = 1.25%·K(N−K)`, i.e. super-quadratic in N — the default
//! `--scale 0.1` keeps it minutes-not-hours. BIRCH runs at whatever scale
//! you pick.
//!
//! ```text
//! cargo run --release -p birch-bench --bin table5 [-- --scale 0.05]
//! ```

use birch_baselines::Clarans;
use birch_bench::{base_workloads, model_cfs, print_header, print_row, secs, timed, Args};
use birch_core::{Birch, Cf};
use birch_datagen::Dataset;
use birch_eval::quality::weighted_average_diameter;

fn main() {
    let args = Args::parse();
    println!(
        "Table 5: BIRCH vs CLARANS on the base workload (scale {}, K=100)\n",
        args.scale
    );
    let widths = [6, 9, 11, 9, 11, 9, 10];
    print_header(
        &[
            "name", "birch-s", "birch-D", "clar-s", "clar-D", "actual", "speedup",
        ],
        &widths,
    );

    for w in base_workloads(&args) {
        let ds = Dataset::generate(&w.spec);
        let config = birch_bench::paper_config(100, ds.len());
        let (model, birch_time) =
            timed(|| Birch::new(config.clone()).fit(&ds.points).expect("fit"));
        let birch_d = weighted_average_diameter(&model_cfs(&model));

        let (clarans_model, clarans_time) = timed(|| Clarans::new(100, args.seed).fit(&ds.points));
        let clarans_cfs = clusters_from_labels(&ds, &clarans_model.labels, 100);
        let clarans_d = weighted_average_diameter(&clarans_cfs);

        print_row(
            &[
                w.name.to_string(),
                secs(birch_time),
                format!("{birch_d:.3}"),
                secs(clarans_time),
                format!("{clarans_d:.3}"),
                format!("{:.3}", ds.actual_weighted_diameter()),
                format!(
                    "{:.1}x",
                    clarans_time.as_secs_f64() / birch_time.as_secs_f64().max(1e-9)
                ),
            ],
            &widths,
        );
    }
    println!(
        "\npaper shape: CLARANS 15-50x slower, worse D, and much worse on the \
         ordered (xxO) rows; BIRCH stable across orders"
    );
}

/// Builds per-cluster CFs from a label assignment.
fn clusters_from_labels(ds: &Dataset, labels: &[usize], k: usize) -> Vec<Cf> {
    let mut cfs: Vec<Cf> = (0..k).map(|_| Cf::empty(2)).collect();
    for (p, &l) in ds.points.iter().zip(labels) {
        cfs[l].add_point(p);
    }
    cfs.retain(|c| !c.is_empty());
    cfs
}
