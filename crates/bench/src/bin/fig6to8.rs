//! Regenerates **Figures 6–8** — the DS1 cluster visualizations:
//! actual clusters (Fig 6), BIRCH clusters (Fig 7), CLARANS clusters
//! (Fig 8) — plus the §6.4/§6.7 match statistics the paper reads off
//! them ("BIRCH clusters differ from actual by < 4% in point count…",
//! "CLARANS centroids displaced, radii up to 1.44 of actual").
//!
//! ```text
//! cargo run --release -p birch-bench --bin fig6to8 [-- --scale 0.05]
//! ```

use birch_baselines::Clarans;
use birch_bench::{base_workloads, model_cfs, Args};
use birch_core::Cf;
use birch_datagen::Dataset;
use birch_eval::matching::match_clusters;
use birch_eval::visualize::ascii_cluster_plot;

fn main() {
    let args = Args::parse();
    let w = &base_workloads(&args)[0]; // DS1
    let ds = Dataset::generate(&w.spec);
    println!("DS1 at scale {} -> N = {}\n", args.scale, ds.len());

    // Fig 6: the actual clusters.
    let actual_cfs: Vec<Cf> = ds.clusters.iter().map(|c| c.cf.clone()).collect();
    println!("Fig 6 — actual clusters of DS1 (o = radius ring, */# = centroid):");
    println!("{}", ascii_cluster_plot(&actual_cfs, 72, 24));

    // Fig 7: BIRCH clusters.
    let model = birch_bench::run_birch(&ds, 100);
    let birch_cfs = model_cfs(&model);
    println!("Fig 7 — BIRCH clusters of DS1:");
    println!("{}", ascii_cluster_plot(&birch_cfs, 72, 24));
    let report = match_clusters(&birch_cfs, &ds.clusters);
    println!(
        "BIRCH vs actual: {} clusters, mean centroid displacement {:.3}, \
         mean size error {:.1}%, well-located {:.0}%\n",
        birch_cfs.len(),
        report.mean_centroid_distance,
        report.mean_size_rel_error * 100.0,
        report.well_located_fraction * 100.0
    );

    // Fig 8: CLARANS clusters.
    let clarans = Clarans::new(100, args.seed).fit(&ds.points);
    let mut cfs: Vec<Cf> = (0..100).map(|_| Cf::empty(2)).collect();
    for (p, &l) in ds.points.iter().zip(&clarans.labels) {
        cfs[l].add_point(p);
    }
    cfs.retain(|c| !c.is_empty());
    println!("Fig 8 — CLARANS clusters of DS1:");
    println!("{}", ascii_cluster_plot(&cfs, 72, 24));
    let report = match_clusters(&cfs, &ds.clusters);
    println!(
        "CLARANS vs actual: {} clusters, mean centroid displacement {:.3}, \
         mean size error {:.1}%, well-located {:.0}%",
        cfs.len(),
        report.mean_centroid_distance,
        report.mean_size_rel_error * 100.0,
        report.well_located_fraction * 100.0
    );
    println!(
        "\npaper shape: Fig 7 ~= Fig 6 (BIRCH recovers the grid); Fig 8 shows \
         displaced/merged clusters (CLARANS splits dense regions, merges neighbours)"
    );
}
