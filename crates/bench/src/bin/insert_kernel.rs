//! Insert-path kernel microbenchmark: production batch kernels vs their
//! scalar oracle forms, swept over dimensionality.
//!
//! Three hot loops are timed per dim ∈ {2, 8, 32, 128} × metric ∈ D0–D4:
//!
//! * `descent` — the §4.3 closest-child scan at B = 25:
//!   [`closest_among_scalar`] vs the production [`closest_among`].
//! * `split` — the §4.3 split seeding: farthest pair among L+1 = 32
//!   entries, [`farthest_pair_scalar`] vs [`farthest_pair`].
//! * `phase3` — the Phase-3 heap-init pairwise matrix over 64 leaf
//!   entries, [`pair_in_block_scalar`] vs [`pair_in_block`].
//!
//! Both sides scan the same [`CfBlock`]; the baseline routes every
//! distance through the scalar kernel (bit-identical to
//! `DistanceMetric::distance`) while the production side takes whatever
//! [`KERNEL_KIND`] names — the lane path on default builds, the same
//! scalar path under `classic-cf` / `--no-default-features`. The reported
//! speedup therefore isolates exactly the lane-vs-scalar dispatch choice
//! the `simd` feature makes. On lane builds the bin asserts the speedup
//! matrix stays at or above [`MIN_LANE_SPEEDUP`] in every cell.
//! Writes `BENCH_insert_kernel.json` (each row carries a `simd` column
//! naming the kernel family measured) and finishes with two end-to-end
//! `# METRICS` lines (D0 descent-prune off/on) so the distance-call
//! counters land in the committed bench trajectory.
//!
//! ```text
//! cargo run --release -p birch-bench --bin insert_kernel \
//!     [-- --seed 42 --reps 5 --out BENCH_insert_kernel.json]
//! ```

use birch_bench::{print_header, print_metrics, print_row};
use birch_core::distance::{
    closest_among, closest_among_scalar, farthest_pair, farthest_pair_scalar, pair_in_block,
    pair_in_block_scalar, CfBlock, KERNEL_KIND,
};
use birch_core::{Birch, BirchConfig, Cf, DistanceMetric, Point};
use std::time::Instant;

const DIMS: [usize; 4] = [2, 8, 32, 128];
const DESCENT_FANOUT: usize = 25;
const SPLIT_ENTRIES: usize = 32;
const PHASE3_ENTRIES: usize = 64;

/// Floor the full speedup matrix must clear on lane builds: the lane
/// path must never be slower than the scalar kernel form it replaces.
/// The dim ≤ 4 serial specializations share the scalar arithmetic but
/// hoist the slab accessors out of the scan (the scalar form re-derives
/// its row views per distance), so even the smallest cells measure
/// ~1.1–1.5x and clear 1.0 with margin when the machine is quiet.
const MIN_LANE_SPEEDUP: f64 = 1.0;

/// Measurement-noise allowance on the floor assert. Small cells on a
/// shared machine jitter by up to ~10% even after min-wall retries
/// (loaded runners dip ~1.2x cells to readings of 0.95), so a reading
/// just under 1.0 is parity noise, not a regression; a real lane
/// slowdown (the pre-specialization dim-2 cells sat at 0.6–0.8x) still
/// trips the assert by a wide margin. The committed
/// `BENCH_insert_kernel.json` is regenerated on a quiet machine and
/// holds the full matrix at ≥ 1.0 outright.
const LANE_NOISE_TOL: f64 = 0.1;

/// xorshift64 — deterministic input without external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn make_cfs(dim: usize, count: usize, rng: &mut Rng) -> Vec<Cf> {
    (0..count)
        .map(|_| {
            let mut cf = Cf::empty(dim);
            for _ in 0..3 {
                cf.add_point(&Point::new((0..dim).map(|_| rng.f64() * 50.0).collect()));
            }
            cf
        })
        .collect()
}

/// Min-of-`reps` wall time per call of `f`, each rep running `iters`
/// calls back to back.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            sink += f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    assert!(sink.is_finite(), "benchmark kernels must stay finite");
    best
}

/// Min-wall times for one (scalar, kernel) cell. The two sides are
/// sampled in *interleaved* windows (scalar, kernel, scalar, …) so a
/// load episode on a shared machine inflates adjacent windows of both
/// sides rather than one side's whole block — the asymmetry that makes a
/// blocked measurement read a ~1.2x cell as 0.9x. When the cell still
/// lands under [`MIN_LANE_SPEEDUP`], both mins are re-sampled (more
/// draws only sharpen a min-wall estimate) a few times before the matrix
/// assert judges it.
fn timed_cell(
    reps: usize,
    iters: usize,
    mut scalar: impl FnMut() -> f64,
    mut kernel: impl FnMut() -> f64,
) -> (f64, f64) {
    let mut scalar_ns = f64::INFINITY;
    let mut kernel_ns = f64::INFINITY;
    for pass in 0..4 {
        if pass > 0 && scalar_ns / kernel_ns >= MIN_LANE_SPEEDUP {
            break;
        }
        for _ in 0..reps {
            scalar_ns = scalar_ns.min(time_ns(1, iters, &mut scalar));
            kernel_ns = kernel_ns.min(time_ns(1, iters, &mut kernel));
        }
    }
    (scalar_ns, kernel_ns)
}

struct Row {
    dim: usize,
    metric: DistanceMetric,
    op: &'static str,
    scalar_ns: f64,
    kernel_ns: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

fn main() {
    let mut seed = 42u64;
    let mut reps = 5usize;
    let mut out_path = String::from("BENCH_insert_kernel.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps must be an integer");
                assert!(reps >= 1, "--reps must be >= 1");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a value");
            }
            "--help" | "-h" => {
                eprintln!("usage: insert_kernel [--seed n] [--reps n] [--out f]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    println!(
        "Insert-path kernels vs scalar baseline: dims {DIMS:?}, reps={reps} (min wall kept)\n"
    );
    let widths = [5, 7, 8, 11, 11, 8];
    print_header(
        &["dim", "metric", "op", "scalar-ns", "kernel-ns", "speedup"],
        &widths,
    );

    let mut rows: Vec<Row> = Vec::new();
    for &dim in &DIMS {
        // Scale inner iterations down as dims grow to keep runtime flat.
        let iters = (200_000 / dim).max(500);
        for metric in DistanceMetric::ALL {
            let mut rng = Rng(seed ^ (dim as u64) << 8 ^ metric as u64);

            // -- descent: closest child among B candidates.
            let cands = make_cfs(dim, DESCENT_FANOUT, &mut rng);
            let probe = make_cfs(dim, 1, &mut rng).pop().unwrap();
            let block = CfBlock::from_cfs(&cands);
            let (scalar_ns, kernel_ns) = timed_cell(
                reps,
                iters,
                || closest_among_scalar(metric, &probe, &block).map_or(0.0, |(_, d)| d),
                || closest_among(metric, &probe, &block).map_or(0.0, |(_, d)| d),
            );
            rows.push(Row {
                dim,
                metric,
                op: "descent",
                scalar_ns,
                kernel_ns,
            });

            // -- split: farthest pair among L+1 entries.
            let entries = make_cfs(dim, SPLIT_ENTRIES, &mut rng);
            let eblock = CfBlock::from_cfs(&entries);
            let pair_iters = (iters / 20).max(50);
            let (scalar_ns, kernel_ns) = timed_cell(
                reps,
                pair_iters,
                || farthest_pair_scalar(metric, &eblock).map_or(0.0, |(_, _, d)| d),
                || farthest_pair(metric, &eblock).map_or(0.0, |(_, _, d)| d),
            );
            rows.push(Row {
                dim,
                metric,
                op: "split",
                scalar_ns,
                kernel_ns,
            });

            // -- phase3: the heap-init pairwise matrix over leaf entries.
            let leaves = make_cfs(dim, PHASE3_ENTRIES, &mut rng);
            let lblock = CfBlock::from_cfs(&leaves);
            let mat_iters = (iters / 80).max(20);
            let (scalar_ns, kernel_ns) = timed_cell(
                reps,
                mat_iters,
                || {
                    let mut acc = 0.0;
                    for i in 0..lblock.len() {
                        for j in (i + 1)..lblock.len() {
                            acc += pair_in_block_scalar(metric, &lblock, i, j);
                        }
                    }
                    acc
                },
                || {
                    let mut acc = 0.0;
                    for i in 0..lblock.len() {
                        for j in (i + 1)..lblock.len() {
                            acc += pair_in_block(metric, &lblock, i, j);
                        }
                    }
                    acc
                },
            );
            rows.push(Row {
                dim,
                metric,
                op: "phase3",
                scalar_ns,
                kernel_ns,
            });
        }
    }

    for r in &rows {
        print_row(
            &[
                format!("{}", r.dim),
                format!("{}", r.metric),
                r.op.to_string(),
                format!("{:.1}", r.scalar_ns),
                format!("{:.1}", r.kernel_ns),
                format!("{:.2}", r.scalar_ns / r.kernel_ns),
            ],
            &widths,
        );
    }

    let mut json = format!(
        "{{\"bench\":\"insert_kernel\",\"seed\":{seed},\"reps\":{reps},\
         \"simd\":\"{KERNEL_KIND}\",\
         \"descent_fanout\":{DESCENT_FANOUT},\"split_entries\":{SPLIT_ENTRIES},\
         \"phase3_entries\":{PHASE3_ENTRIES},\"rows\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"dim\":{},\"metric\":\"{}\",\"op\":\"{}\",\"simd\":\"{KERNEL_KIND}\",\
             \"scalar_ns\":{},\"kernel_ns\":{},\"speedup\":{}}}",
            r.dim,
            r.metric,
            r.op,
            json_f64(r.scalar_ns),
            json_f64(r.kernel_ns),
            json_f64(r.scalar_ns / r.kernel_ns),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nresults written to {out_path}");

    // On lane builds the dispatch contract is "never slower than the
    // scalar form": every cell of the speedup matrix must clear the
    // noise-calibrated floor. Scalar-only builds time the same path twice,
    // so the ratio is pure timer noise and the assert would be vacuous.
    if KERNEL_KIND == "lane" {
        let worst = rows
            .iter()
            .min_by(|a, b| {
                let (sa, sb) = (a.scalar_ns / a.kernel_ns, b.scalar_ns / b.kernel_ns);
                sa.total_cmp(&sb)
            })
            .expect("bench produced rows");
        let worst_speedup = worst.scalar_ns / worst.kernel_ns;
        assert!(
            worst_speedup >= MIN_LANE_SPEEDUP - LANE_NOISE_TOL,
            "lane kernel slower than its scalar form: dim={} metric={} op={} speedup={:.2} < {} - {LANE_NOISE_TOL} noise allowance",
            worst.dim,
            worst.metric,
            worst.op,
            worst_speedup,
            MIN_LANE_SPEEDUP,
        );
        println!(
            "speedup matrix floor: {worst_speedup:.2} (>= {} - {LANE_NOISE_TOL} noise allowance required)",
            MIN_LANE_SPEEDUP
        );
    }

    // End-to-end counter datapoints: a fixed D0 workload with the descent
    // prune off vs on. The clusterings are identical (the prune is
    // selection-exact); only the distance-call counters move.
    let mut rng = Rng(seed ^ 0xE2E);
    let pts: Vec<Point> = (0..20_000)
        .map(|i| {
            let c = f64::from(i % 10) * 40.0;
            Point::xy(c + rng.f64() * 3.0, c + rng.f64() * 3.0)
        })
        .collect();
    for (label, prune) in [
        ("insert_kernel_prune_off", false),
        ("insert_kernel_prune_on", true),
    ] {
        let config = BirchConfig::with_clusters(10)
            .memory(32 * 1024)
            .metric(DistanceMetric::D0)
            .descend_prune(prune)
            .total_points(pts.len() as u64);
        let model = Birch::new(config).fit(&pts).expect("fit succeeds");
        print_metrics(label, &model);
    }
}
