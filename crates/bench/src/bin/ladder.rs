//! The quality/cost ladder across the §2 algorithm lineage, on one
//! dataset: exact hierarchical clustering (the quality reference), PAM,
//! CLARA, CLARANS, k-means, and BIRCH — the context in which the paper
//! positions BIRCH as "the best available" trade-off for large data.
//!
//! PAM is O(K(N−K)²) per iteration, so the sample it runs on is capped;
//! everything else sees the full (scaled) dataset.
//!
//! ```text
//! cargo run --release -p birch-bench --bin ladder [-- --scale 0.02]
//! ```

use birch_baselines::hierarchical::agglomerative;
use birch_baselines::{Clara, Clarans, KMeans, Pam};
use birch_bench::{base_workloads, model_cfs, print_header, print_row, secs, timed, Args};
use birch_core::{Birch, Cf, DistanceMetric};
use birch_datagen::Dataset;
use birch_eval::quality::weighted_average_diameter;

fn cfs_from_labels(ds: &Dataset, labels: &[usize], k: usize) -> Vec<Cf> {
    let mut cfs: Vec<Cf> = (0..k).map(|_| Cf::empty(2)).collect();
    for (p, &l) in ds.points.iter().zip(labels) {
        cfs[l].add_point(p);
    }
    cfs.retain(|c| !c.is_empty());
    cfs
}

fn main() {
    let args = Args::parse();
    // Shrink DS1 to K=25 so PAM and exact HC stay tractable.
    let mut spec = base_workloads(&args)[0].spec.clone();
    spec.k = 25;
    let ds = Dataset::generate(&spec);
    let k = 25;
    println!(
        "Algorithm ladder on DS1-shaped data: K={k}, N={} (scale {})\n",
        ds.len(),
        args.scale
    );
    let widths = [10, 10, 10, 22];
    print_header(&["algo", "D", "time-s", "note"], &widths);

    // BIRCH.
    let (model, t) = timed(|| {
        Birch::new(birch_bench::paper_config(k, ds.len()))
            .fit(&ds.points)
            .expect("fit")
    });
    let d = weighted_average_diameter(&model_cfs(&model));
    print_row(
        &[
            "BIRCH".into(),
            format!("{d:.3}"),
            secs(t),
            "single scan, bounded mem".into(),
        ],
        &widths,
    );

    // k-means.
    let (km, t) = timed(|| KMeans::new(k, args.seed).fit(&ds.points));
    let d = weighted_average_diameter(&cfs_from_labels(&ds, &km.labels, km.centroids.len()));
    print_row(
        &[
            "k-means".into(),
            format!("{d:.3}"),
            secs(t),
            format!("{} iters, full data in mem", km.iterations),
        ],
        &widths,
    );

    // CLARA.
    let (clara, t) = timed(|| Clara::new(k, args.seed).fit(&ds.points));
    let d = weighted_average_diameter(&cfs_from_labels(&ds, &clara.labels, k));
    print_row(
        &[
            "CLARA".into(),
            format!("{d:.3}"),
            secs(t),
            "PAM on 5 samples".into(),
        ],
        &widths,
    );

    // CLARANS.
    let (clarans, t) = timed(|| Clarans::new(k, args.seed).fit(&ds.points));
    let d = weighted_average_diameter(&cfs_from_labels(&ds, &clarans.labels, k));
    print_row(
        &[
            "CLARANS".into(),
            format!("{d:.3}"),
            secs(t),
            format!("{} swap evals", clarans.evaluations),
        ],
        &widths,
    );

    // PAM on a capped subsample (it is O(K(N-K)^2) per round).
    let cap = 600.min(ds.points.len());
    let sample: Vec<_> = ds.points.iter().take(cap).cloned().collect();
    let (pam, t) = timed(|| Pam::new(k).fit(&sample));
    let mut cfs: Vec<Cf> = (0..k).map(|_| Cf::empty(2)).collect();
    for (p, &l) in sample.iter().zip(&pam.labels) {
        cfs[l].add_point(p);
    }
    cfs.retain(|c| !c.is_empty());
    let d = weighted_average_diameter(&cfs);
    print_row(
        &[
            "PAM".into(),
            format!("{d:.3}"),
            secs(t),
            format!("first {cap} points only"),
        ],
        &widths,
    );

    // Exact hierarchical on the same capped subsample (O(N^2) memory).
    let (hc, t) = timed(|| agglomerative(&sample, k, DistanceMetric::D2));
    let d = weighted_average_diameter(&hc.clusters);
    print_row(
        &[
            "exact-HC".into(),
            format!("{d:.3}"),
            secs(t),
            format!("first {cap} points only"),
        ],
        &widths,
    );

    println!(
        "\nactual clusters' D = {:.3}; expected ladder: BIRCH ~= k-means ~= exact-HC \
         quality at a fraction of the cost of the medoid family",
        ds.actual_weighted_diameter()
    );
    birch_bench::print_metrics("ladder:DS1-K25", &model);
}
