//! Phase-3 scaling sweep: the NN-chain agglomerator vs the all-pairs
//! heap oracle at entries ∈ {1k, 10k, 100k} on DS1-shaped CF summaries,
//! for both reducible metrics (D2, D4). Writes
//! `BENCH_phase3_scaling.json` with, per (entries, metric) row: chain
//! wall time, peak candidate memory, pairs evaluated vs pruned, and the
//! heap-over-chain wall ratio.
//!
//! The heap oracle runs only up to [`HEAP_ORACLE_MAX`] entries — its
//! candidate state is Θ(m²) (≈ 2 GB of heap entries at 10k, ≈ 200 GB at
//! 100k), which is the wall this PR removes — so the 100k rows carry a
//! `null` ratio and a loudly printed skip. Where the oracle does run,
//! the row doubles as a differential check: chain labels and cluster
//! CFs must equal the heap's bit for bit (reducible metrics, tie-free
//! synthetic data), and the bin asserts exactly that.
//!
//! Unlike the µs-scale kernel benches, these walls are seconds to
//! minutes, so `--reps` defaults to 1: scheduler jitter is a rounding
//! error at that scale, and the gate leans on the run's *deterministic*
//! work counters (pairs evaluated/pruned, peak candidate bytes) plus
//! the same-process heap÷chain ratio rather than raw walls.
//!
//! ```text
//! cargo run --release -p birch-bench --bin phase3_scaling \
//!     [-- --scale 1.0 --seed 42 --reps 1 --out BENCH_phase3_scaling.json]
//! ```

use birch_bench::{print_header, print_row, timed};
use birch_core::distance::DistanceMetric;
use birch_core::hierarchical::{agglomerate_with, HacAlgorithm, HierarchicalResult, StopRule};
use birch_core::Cf;
use birch_datagen::{presets, Dataset};
use std::time::Duration;

/// Paper-shaped sweep: Phase 3 input sizes from "rebuilt-tree leaf
/// count" up to "every input point survived as its own summary".
const ENTRY_SWEEP: [usize; 3] = [1_000, 10_000, 100_000];

/// Largest size the Θ(m²)-memory heap oracle is run at.
const HEAP_ORACLE_MAX: usize = 10_000;

/// Phase-3 target cluster count (paper: K = 100 for the DS workloads).
const STOP_CLUSTERS: usize = 100;

struct Row {
    entries: usize,
    metric: DistanceMetric,
    chain_wall: Duration,
    chain_peak_bytes: usize,
    pairs_evaluated: u64,
    pairs_pruned: u64,
    heap_wall: Option<Duration>,
    heap_peak_bytes: Option<usize>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

/// DS1-shaped CF summaries: `m` singleton CFs over the paper's K = 100
/// grid of clusters. Phase 3 never sees raw points in production, but a
/// singleton CF *is* the degenerate leaf entry a threshold-zero tree
/// would hand it — and using the shared generator keeps the workload's
/// cluster structure identical to every other DS1 bench.
fn entries_at(m: usize, seed: u64) -> Vec<Cf> {
    let mut spec = presets::ds1(seed);
    let per = (m / 100).max(1);
    spec.n_low = per;
    spec.n_high = per;
    let ds = Dataset::generate(&spec);
    ds.points.iter().map(Cf::from_point).collect()
}

fn run_once(
    entries: &[Cf],
    metric: DistanceMetric,
    algorithm: HacAlgorithm,
) -> (HierarchicalResult, Duration) {
    timed(|| {
        agglomerate_with(
            entries,
            metric,
            StopRule::ClusterCount(STOP_CLUSTERS.min(entries.len())),
            algorithm,
            true,
        )
    })
}

fn main() {
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut reps = 1usize;
    let mut out_path = String::from("BENCH_phase3_scaling.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be a float");
                assert!(scale > 0.0, "--scale must be positive");
            }
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps must be an integer");
                assert!(reps >= 1, "--reps must be >= 1");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a value");
            }
            "--help" | "-h" => {
                eprintln!("usage: phase3_scaling [--scale f] [--seed n] [--reps n] [--out f]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    println!("Phase-3 scaling on DS1 summaries: K={STOP_CLUSTERS}, reps={reps} (min wall kept)\n");
    let widths = [9, 7, 11, 10, 12, 9, 11, 8];
    print_header(
        &[
            "entries",
            "metric",
            "chain-s",
            "peak-KB",
            "evaluated",
            "pruned%",
            "heap-s",
            "ratio",
        ],
        &widths,
    );

    let mut rows: Vec<Row> = Vec::new();
    for &base in &ENTRY_SWEEP {
        let m = ((base as f64 * scale).round() as usize).max(STOP_CLUSTERS);
        let entries = entries_at(m, seed);
        for metric in [DistanceMetric::D2, DistanceMetric::D4] {
            let mut chain: Option<(HierarchicalResult, Duration)> = None;
            for _ in 0..reps {
                let run = run_once(&entries, metric, HacAlgorithm::NnChain);
                chain = match chain {
                    Some(b) if b.1 <= run.1 => Some(b),
                    _ => Some(run),
                };
            }
            let (chain_result, chain_wall) = chain.expect("reps >= 1");

            let heap = if entries.len() <= HEAP_ORACLE_MAX {
                let mut best: Option<(HierarchicalResult, Duration)> = None;
                for _ in 0..reps {
                    let run = run_once(&entries, metric, HacAlgorithm::Heap);
                    best = match best {
                        Some(b) if b.1 <= run.1 => Some(b),
                        _ => Some(run),
                    };
                }
                let (heap_result, heap_wall) = best.expect("reps >= 1");
                // Differential: the oracle must agree bit for bit.
                assert_eq!(
                    chain_result.labels, heap_result.labels,
                    "entries={m} {metric}: chain labels diverged from heap oracle"
                );
                assert_eq!(
                    chain_result.clusters, heap_result.clusters,
                    "entries={m} {metric}: chain cluster CFs diverged from heap oracle"
                );
                Some((heap_wall, heap_result.stats.peak_candidate_bytes))
            } else {
                println!(
                    "# SKIP heap oracle at entries={m}: candidate state would be \
                     ~{:.0} GB (the quadratic wall this bench demonstrates)",
                    (m as f64 * (m as f64 - 1.0) / 2.0) * 40.0 / 1e9
                );
                None
            };

            let stats = &chain_result.stats;
            let scanned = stats.pairs_evaluated + stats.pairs_pruned;
            let ratio = heap.map(|(w, _)| w.as_secs_f64() / chain_wall.as_secs_f64());
            print_row(
                &[
                    format!("{m}"),
                    format!("{metric}"),
                    format!("{:.3}", chain_wall.as_secs_f64()),
                    format!("{}", stats.peak_candidate_bytes / 1024),
                    format!("{}", stats.pairs_evaluated),
                    format!(
                        "{:.1}",
                        100.0 * stats.pairs_pruned as f64 / scanned.max(1) as f64
                    ),
                    heap.map_or_else(
                        || String::from("skip"),
                        |(w, _)| format!("{:.3}", w.as_secs_f64()),
                    ),
                    ratio.map_or_else(|| String::from("null"), |r| format!("{r:.2}")),
                ],
                &widths,
            );
            rows.push(Row {
                entries: m,
                metric,
                chain_wall,
                chain_peak_bytes: stats.peak_candidate_bytes,
                pairs_evaluated: stats.pairs_evaluated,
                pairs_pruned: stats.pairs_pruned,
                heap_wall: heap.map(|(w, _)| w),
                heap_peak_bytes: heap.map(|(_, b)| b),
            });
        }
    }

    let mut json = format!(
        "{{\"bench\":\"phase3_scaling\",\"dataset\":\"DS1\",\"stop_clusters\":{STOP_CLUSTERS},\
         \"heap_oracle_max\":{HEAP_ORACLE_MAX},\"seed\":{seed},\"scale\":{},\"reps\":{reps},\
         \"rows\":[",
        json_f64(scale)
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let opt_f64 = |v: Option<f64>| v.map_or_else(|| String::from("null"), json_f64);
        let opt_usize =
            |v: Option<usize>| v.map_or_else(|| String::from("null"), |b| b.to_string());
        json.push_str(&format!(
            "{{\"entries\":{},\"metric\":\"{}\",\"chain_wall_s\":{},\
             \"chain_peak_candidate_bytes\":{},\"pairs_evaluated\":{},\"pairs_pruned\":{},\
             \"heap_wall_s\":{},\"heap_peak_candidate_bytes\":{},\"heap_over_chain_wall\":{}}}",
            r.entries,
            r.metric,
            json_f64(r.chain_wall.as_secs_f64()),
            r.chain_peak_bytes,
            r.pairs_evaluated,
            r.pairs_pruned,
            opt_f64(r.heap_wall.map(|w| w.as_secs_f64())),
            opt_usize(r.heap_peak_bytes),
            opt_f64(
                r.heap_wall
                    .map(|w| w.as_secs_f64() / r.chain_wall.as_secs_f64())
            ),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nresults written to {out_path}");

    // Sanity: chain candidate state must stay linear across the sweep —
    // the largest row's bytes-per-entry may not exceed the smallest's by
    // more than capacity-rounding slack.
    for metric in [DistanceMetric::D2, DistanceMetric::D4] {
        let per: Vec<f64> = rows
            .iter()
            .filter(|r| r.metric == metric)
            .map(|r| r.chain_peak_bytes as f64 / r.entries as f64)
            .collect();
        let (lo, hi) = per
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(
            hi <= 4.0 * lo,
            "{metric}: chain bytes/entry spread {lo:.1}..{hi:.1} is not linear"
        );
    }
}
