//! Regenerates **Figure 5** — scalability as N grows by growing the number
//! of clusters `K` (§6.6, "Increasing the Number of Clusters").
//!
//! The paper sweeps K from 100 to 250 with n = 1000 fixed, and plots time
//! for Phases 1–3 and 1–4. Phase 3's hierarchical step is O(K·N)-ish
//! overall, so the curve stays near-linear — slightly steeper than Fig 4's.
//!
//! ```text
//! cargo run --release -p birch-bench --bin fig5 [-- --scale 1.0]
//! ```

use birch_bench::{paper_config, Args};
use birch_core::Birch;
use birch_datagen::{presets, Dataset};

fn main() {
    let args = Args::parse();
    let ks = [100usize, 150, 200, 250];
    let n = args.n_per_cluster(1000);
    println!(
        "Fig 5: time vs N, growing cluster count (scale {}, n={n}/cluster)",
        args.scale
    );
    println!("dataset\tK\tN\tphase1-3_s\tphase1-4_s");

    for name in ["DS1", "DS2", "DS3"] {
        for &k in &ks {
            let mut spec = match name {
                "DS1" => presets::ds1_scaled_k(args.seed, k),
                "DS2" => presets::ds2_scaled_k(args.seed, k),
                "DS3" => presets::ds3_scaled_k(args.seed, k),
                _ => unreachable!(),
            };
            match name {
                "DS3" => {
                    spec.n_low = 0;
                    spec.n_high = 2 * n;
                }
                _ => {
                    spec.n_low = n;
                    spec.n_high = n;
                }
            }
            let ds = Dataset::generate(&spec);
            let model = Birch::new(paper_config(k, ds.len()))
                .fit(&ds.points)
                .expect("fit");
            println!(
                "{name}\t{k}\t{}\t{:.3}\t{:.3}",
                ds.len(),
                model.stats().time_phases_1to3().as_secs_f64(),
                model.stats().total_time().as_secs_f64(),
            );
        }
    }
    println!("# paper shape: near-linear in N; K only affects the (bounded) global phase");
}
