//! Regenerates **Figure 4** — scalability as N grows by growing the
//! cluster size `n` (§6.6, "Increasing the Number of Points per Cluster").
//!
//! The paper sweeps n so that N runs from 100k to 250k, for DS1/DS2/DS3,
//! and plots running time of Phases 1–3 and Phases 1–4 against N; both
//! series should be (close to) straight lines through the origin region —
//! the linear-scan claim.
//!
//! Output is a TSV series per dataset, ready to plot.
//!
//! ```text
//! cargo run --release -p birch-bench --bin fig4 [-- --scale 1.0]
//! ```

use birch_bench::{paper_config, Args};
use birch_core::Birch;
use birch_datagen::{presets, Dataset};

fn main() {
    let args = Args::parse();
    // The paper's sweep: n from 1000 to 2500 per cluster, K = 100.
    let steps = [1000usize, 1500, 2000, 2500];
    println!(
        "Fig 4: time vs N, growing points-per-cluster (scale {}, K=100)",
        args.scale
    );
    println!("dataset\tN\tphase1-3_s\tphase1-4_s");

    for name in ["DS1", "DS2", "DS3"] {
        for &paper_n in &steps {
            let n = args.n_per_cluster(paper_n);
            let spec = match name {
                "DS1" => presets::ds1_scaled_n(args.seed, n),
                "DS2" => presets::ds2_scaled_n(args.seed, n),
                "DS3" => presets::ds3_scaled_n(args.seed, n),
                _ => unreachable!(),
            };
            let ds = Dataset::generate(&spec);
            let model = Birch::new(paper_config(100, ds.len()))
                .fit(&ds.points)
                .expect("fit");
            println!(
                "{name}\t{}\t{:.3}\t{:.3}",
                ds.len(),
                model.stats().time_phases_1to3().as_secs_f64(),
                model.stats().total_time().as_secs_f64(),
            );
            birch_bench::print_metrics(&format!("fig4:{name}:N{}", ds.len()), &model);
        }
    }
    println!("# paper shape: both series linear in N for every dataset");
}
