//! Regenerates the **§6.8 image application** (Figs. 9–10): two-pass
//! BIRCH filtering of a (synthesized) NIR/VIS tree scene.
//!
//! Pass 1: cluster all pixels on `(NIR, VIS·10)` — the paper weights the
//! visible band 10× — into K = 5 clusters; the bright-VIS clusters are
//! background (sky, cloud), the rest are tree parts (sunlit leaves +
//! branches/shadows).
//!
//! Pass 2: re-cluster the tree-part pixels on NIR alone with a finer
//! threshold into 2 populations, separating sunlit leaves from
//! branches/shadows.
//!
//! Reported per pass: cluster table (n, centroid, radius) and purity
//! against the synthetic ground truth.
//!
//! ```text
//! cargo run --release -p birch-bench --bin image [-- --scale 1.0]
//! ```
//! (scale 1.0 = the paper's 512×1024 pixels; the default 0.1 uses
//! 512×102.)

use birch_bench::{print_header, print_row, Args};
use birch_core::{Birch, BirchConfig, Point};
use birch_datagen::image::{NirVisImage, PixelClass};
use birch_eval::quality::purity;

fn main() {
    let args = Args::parse();
    let height = ((1024.0 * args.scale) as usize).max(16);
    let img = NirVisImage::generate(512, height, args.seed);
    println!(
        "Image application: {}x{} = {} pixels (paper: 512x1024)\n",
        img.width,
        img.height,
        img.len()
    );

    // ---- Pass 1: (NIR, VIS*10), K = 5. ----
    let pts = img.scaled_points(1.0, 10.0);
    let config = BirchConfig::with_clusters(5)
        .memory(80 * 1024)
        .total_points(pts.len() as u64)
        .refinement_passes(2);
    let model = Birch::new(config).fit(&pts).expect("fit pass 1");
    println!("Pass 1 (VIS weighted 10x, K=5):");
    let widths = [8, 10, 12, 12, 10];
    print_header(
        &["cluster", "pixels", "NIR-mean", "VIS-mean", "radius"],
        &widths,
    );
    for (i, c) in model.clusters().iter().enumerate() {
        print_row(
            &[
                i.to_string(),
                format!("{:.0}", c.weight()),
                format!("{:.1}", c.centroid[0]),
                format!("{:.1}", c.centroid[1] / 10.0),
                format!("{:.1}", c.radius),
            ],
            &widths,
        );
    }

    // Background = clusters whose (unscaled) VIS centroid is bright.
    let labels = model.labels().expect("phase 4 ran");
    let is_tree_cluster: Vec<bool> = model
        .clusters()
        .iter()
        .map(|c| c.centroid[1] / 10.0 < 150.0)
        .collect();
    let tree_pixels: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|l| (i, l)))
        .filter_map(|(i, l)| is_tree_cluster[l].then_some(i))
        .collect();

    // Purity of the tree/background split against ground truth.
    let found_split: Vec<Option<usize>> = labels
        .iter()
        .map(|l| l.map(|l| usize::from(is_tree_cluster[l])))
        .collect();
    let truth_split: Vec<Option<usize>> = img
        .truth
        .iter()
        .map(|c| Some(usize::from(c.is_tree())))
        .collect();
    println!(
        "\ntree/background separation purity: {:.1}%  ({} pixels classified tree)",
        purity(&found_split, &truth_split) * 100.0,
        tree_pixels.len()
    );

    // ---- Pass 2: NIR only on the tree pixels, K = 2 (leaves vs branches). ----
    let nir: Vec<Point> = img.nir_points(&tree_pixels);
    let config2 = BirchConfig::with_clusters(2)
        .memory(80 * 1024)
        .total_points(nir.len() as u64)
        .refinement_passes(2);
    let model2 = Birch::new(config2).fit(&nir).expect("fit pass 2");
    println!("\nPass 2 (NIR only on tree pixels, K=2):");
    let w2 = [8, 10, 12, 10];
    print_header(&["cluster", "pixels", "NIR-mean", "radius"], &w2);
    for (i, c) in model2.clusters().iter().enumerate() {
        print_row(
            &[
                i.to_string(),
                format!("{:.0}", c.weight()),
                format!("{:.1}", c.centroid[0]),
                format!("{:.1}", c.radius),
            ],
            &w2,
        );
    }

    // Leaves = the brighter-NIR cluster.
    let labels2 = model2.labels().expect("phase 4 ran");
    let leaves_cluster = model2
        .clusters()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.centroid[0].total_cmp(&b.1.centroid[0]))
        .map(|(i, _)| i)
        .expect("two clusters");
    let found_leaves: Vec<Option<usize>> = labels2
        .iter()
        .map(|l| l.map(|l| usize::from(l == leaves_cluster)))
        .collect();
    let truth_leaves: Vec<Option<usize>> = tree_pixels
        .iter()
        .map(|&i| Some(usize::from(img.truth[i] == PixelClass::SunlitLeaves)))
        .collect();
    println!(
        "\nsunlit-leaves vs branches/shadows purity: {:.1}%",
        purity(&found_leaves, &truth_leaves) * 100.0
    );
    println!(
        "\npaper shape (Fig 10): pass 1 separates trees from sky/cloud by VIS; \
         pass 2 splits sunlit leaves from branches+shadows by NIR"
    );
}
