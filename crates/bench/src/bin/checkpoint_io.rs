//! Checkpoint/restore throughput: build a Phase-1 CF-tree on DS1 at a
//! few scales, then time `CfTree::checkpoint` (snapshot encode + write)
//! and `CfTree::reopen` (read + checksum verify + decode) against the
//! snapshot size on disk. Writes `BENCH_checkpoint_io.json`.
//!
//! `snapshot_bytes` is deterministic for a fixed seed (same tree, same
//! versioned encoding), so the gate can hold format growth to the
//! threshold exactly; the MB/s rates are machine-dependent and gated
//! with the usual sub-50ms loud-skip for jitter-dominated walls.
//!
//! ```text
//! cargo run --release -p birch-bench --bin checkpoint_io \
//!     [-- --seed 42 --reps 5 --out BENCH_checkpoint_io.json]
//! ```

use birch_bench::{paper_config, print_header, print_row, timed};
use birch_core::tree::CfTree;
use birch_core::{phase1, Cf};
use birch_datagen::{presets, Dataset};

/// Points per run: DS1 shape (100 clusters) scaled by per-cluster count.
const PER_CLUSTER_SWEEP: [usize; 3] = [250, 1000, 4000];

struct Row {
    points: usize,
    nodes: usize,
    leaf_entries: usize,
    snapshot_bytes: u64,
    checkpoint_s: f64,
    reopen_s: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

fn main() {
    let mut seed = 42u64;
    let mut reps = 5usize;
    let mut out_path = String::from("BENCH_checkpoint_io.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps must be an integer");
                assert!(reps >= 1, "--reps must be >= 1");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a value");
            }
            "--help" | "-h" => {
                eprintln!("usage: checkpoint_io [--seed n] [--reps n] [--out f]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    let snap = std::env::temp_dir().join(format!("birch-bench-ckpt-{}.snap", std::process::id()));
    println!(
        "Checkpoint I/O on DS1: reps={reps} (min wall kept), snapshot at {}\n",
        snap.display()
    );
    let widths = [9, 8, 8, 11, 8, 12, 8, 12];
    print_header(
        &[
            "points",
            "nodes",
            "leaves",
            "snap-bytes",
            "ckpt-ms",
            "ckpt-MB/s",
            "open-ms",
            "open-MB/s",
        ],
        &widths,
    );

    let mut rows: Vec<Row> = Vec::new();
    for &per in &PER_CLUSTER_SWEEP {
        let mut spec = presets::ds1(seed);
        spec.n_low = per;
        spec.n_high = per;
        let ds = Dataset::generate(&spec);
        let n = ds.len();
        let config = paper_config(100, n);
        let mut out = phase1::run(&config, 2, ds.points.iter().map(Cf::from_point));

        let mut best_ckpt = f64::INFINITY;
        let mut best_open = f64::INFINITY;
        let mut snapshot_bytes = 0u64;
        for _ in 0..reps {
            let ((), ckpt_wall) = timed(|| out.tree.checkpoint(&snap).expect("checkpoint"));
            snapshot_bytes = std::fs::metadata(&snap).expect("stat snapshot").len();
            let (reopened, open_wall) = timed(|| CfTree::reopen(&snap).expect("reopen"));
            // Paranoia, not timing: a bench that measures decoding garbage
            // fast would be worse than useless.
            assert!(
                (reopened.total_cf().n() - out.tree.total_cf().n()).abs() < 1e-9,
                "reopened tree lost points"
            );
            best_ckpt = best_ckpt.min(ckpt_wall.as_secs_f64());
            best_open = best_open.min(open_wall.as_secs_f64());
        }
        std::fs::remove_file(&snap).ok();

        let row = Row {
            points: n,
            nodes: out.tree.node_count(),
            leaf_entries: out.tree.leaf_entry_count(),
            snapshot_bytes,
            checkpoint_s: best_ckpt,
            reopen_s: best_open,
        };
        let mb = row.snapshot_bytes as f64 / (1024.0 * 1024.0);
        print_row(
            &[
                format!("{}", row.points),
                format!("{}", row.nodes),
                format!("{}", row.leaf_entries),
                format!("{}", row.snapshot_bytes),
                format!("{:.2}", 1e3 * row.checkpoint_s),
                format!("{:.1}", mb / row.checkpoint_s),
                format!("{:.2}", 1e3 * row.reopen_s),
                format!("{:.1}", mb / row.reopen_s),
            ],
            &widths,
        );
        rows.push(row);
    }

    let mut json = format!(
        "{{\"bench\":\"checkpoint_io\",\"dataset\":\"DS1\",\"seed\":{seed},\"reps\":{reps},\"rows\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let mb = r.snapshot_bytes as f64 / (1024.0 * 1024.0);
        json.push_str(&format!(
            "{{\"points\":{},\"nodes\":{},\"leaf_entries\":{},\"snapshot_bytes\":{},\
             \"checkpoint_wall_s\":{},\"checkpoint_mb_per_s\":{},\
             \"reopen_wall_s\":{},\"reopen_mb_per_s\":{}}}",
            r.points,
            r.nodes,
            r.leaf_entries,
            r.snapshot_bytes,
            json_f64(r.checkpoint_s),
            json_f64(mb / r.checkpoint_s),
            json_f64(r.reopen_s),
            json_f64(mb / r.reopen_s),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nresults written to {out_path}");
}
