//! Phase-1 thread-scaling sweep: serial scan vs the sharded parallel
//! build (`birch_core::parallel`) at threads ∈ {1, 2, 4, 8} on a
//! full-scale DS1-shaped dataset (K = 100 × 1000 points = 100k by
//! default). Writes `BENCH_phase1_scaling.json` with wall time,
//! points/sec, speedup vs the serial scan per thread count, and the
//! per-level walls of the tournament merge tree (`merge_round_walls_s`;
//! ⌈log₂ shards⌉ − 1 scoped-thread rounds — the final ≤2-way merge is
//! part of `merge_s`, not a round), plus
//! `host_cpus` — speedup is bounded by the physical cores actually
//! available, so the numbers are only interpretable next to that field
//! (on a single-core container the parallel path shows its overhead,
//! not its speedup; on an n-core host Phase 1 scales with the shards
//! because the workers share nothing until the merge).
//!
//! ```text
//! cargo run --release -p birch-bench --bin phase1_scaling \
//!     [-- --scale 1.0 --seed 42 --reps 3 --out BENCH_phase1_scaling.json]
//! ```

use birch_bench::{paper_config, print_header, print_row, timed};
use birch_core::{parallel, phase1, Cf};
use birch_datagen::{presets, Dataset};
use std::time::Duration;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    wall: Duration,
    merge: Duration,
    rebuilds: u64,
    leaf_entries: usize,
    shard_walls: Vec<f64>,
    merge_round_walls: Vec<f64>,
    total_cf_n: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

fn main() {
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut reps = 3usize;
    let mut out_path = String::from("BENCH_phase1_scaling.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be a float");
                assert!(scale > 0.0, "--scale must be positive");
            }
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--reps" => {
                reps = it
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps must be an integer");
                assert!(reps >= 1, "--reps must be >= 1");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a value");
            }
            "--help" | "-h" => {
                eprintln!("usage: phase1_scaling [--scale f] [--seed n] [--reps n] [--out f]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    // DS1 at the chosen scale (scale 1.0 = the paper's 100 clusters x
    // 1000 points = 100k points).
    let mut spec = presets::ds1(seed);
    let per = ((1000.0 * scale).round() as usize).max(2);
    spec.n_low = per;
    spec.n_high = per;
    let ds = Dataset::generate(&spec);
    let n = ds.len();
    let config = paper_config(100, n);
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);

    println!(
        "Phase-1 scaling on DS1: N={n}, M={} KB, host_cpus={host_cpus}, reps={reps} (min wall kept)\n",
        config.memory_bytes / 1024
    );
    let widths = [8, 10, 12, 9, 9, 10, 8];
    print_header(
        &[
            "threads", "wall-s", "points/s", "speedup", "rebuilds", "merge-s", "rounds",
        ],
        &widths,
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut serial_wall = Duration::ZERO;
    for &threads in &THREAD_SWEEP {
        let mut best: Option<Run> = None;
        for _ in 0..reps {
            let run = if threads == 1 {
                let (out, wall) =
                    timed(|| phase1::run(&config, 2, ds.points.iter().map(Cf::from_point)));
                Run {
                    threads,
                    wall,
                    merge: Duration::ZERO,
                    rebuilds: out.io.rebuilds,
                    leaf_entries: out.tree.leaf_entry_count(),
                    shard_walls: Vec::new(),
                    merge_round_walls: Vec::new(),
                    total_cf_n: out.tree.total_cf().n(),
                }
            } else {
                let (out, wall) = timed(|| parallel::run(&config, 2, &ds.points, threads));
                Run {
                    threads,
                    wall,
                    merge: out.merge_wall,
                    rebuilds: out.io.rebuilds,
                    leaf_entries: out.tree.leaf_entry_count(),
                    shard_walls: out.shards.iter().map(|s| s.wall.as_secs_f64()).collect(),
                    merge_round_walls: out
                        .merge_round_walls
                        .iter()
                        .map(Duration::as_secs_f64)
                        .collect(),
                    total_cf_n: out.tree.total_cf().n(),
                }
            };
            best = match best {
                Some(b) if b.wall <= run.wall => Some(b),
                _ => Some(run),
            };
        }
        let run = best.expect("reps >= 1");
        if threads == 1 {
            serial_wall = run.wall;
        }
        let speedup = serial_wall.as_secs_f64() / run.wall.as_secs_f64();
        print_row(
            &[
                format!("{threads}"),
                format!("{:.3}", run.wall.as_secs_f64()),
                format!("{:.0}", n as f64 / run.wall.as_secs_f64()),
                format!("{speedup:.2}"),
                format!("{}", run.rebuilds),
                format!("{:.3}", run.merge.as_secs_f64()),
                format!("{}", run.merge_round_walls.len()),
            ],
            &widths,
        );
        runs.push(run);
    }

    let mut json = format!(
        "{{\"bench\":\"phase1_scaling\",\"dataset\":\"DS1\",\"points\":{n},\
         \"seed\":{seed},\"scale\":{},\"memory_bytes\":{},\"host_cpus\":{host_cpus},\
         \"reps\":{reps},\"runs\":[",
        json_f64(scale),
        config.memory_bytes
    );
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let shard_walls = r
            .shard_walls
            .iter()
            .map(|w| json_f64(*w))
            .collect::<Vec<_>>()
            .join(",");
        let round_walls = r
            .merge_round_walls
            .iter()
            .map(|w| json_f64(*w))
            .collect::<Vec<_>>()
            .join(",");
        json.push_str(&format!(
            "{{\"threads\":{},\"wall_s\":{},\"points_per_s\":{},\"speedup_vs_serial\":{},\
             \"merge_s\":{},\"rebuilds\":{},\"leaf_entries\":{},\"shard_walls_s\":[{}],\
             \"merge_round_walls_s\":[{}],\"total_cf_n\":{}}}",
            r.threads,
            json_f64(r.wall.as_secs_f64()),
            json_f64(n as f64 / r.wall.as_secs_f64()),
            json_f64(serial_wall.as_secs_f64() / r.wall.as_secs_f64()),
            json_f64(r.merge.as_secs_f64()),
            r.rebuilds,
            r.leaf_entries,
            shard_walls,
            round_walls,
            json_f64(r.total_cf_n),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nresults written to {out_path}");

    // Sanity: every thread count must summarize (essentially) the whole
    // dataset. Outlier handling is on (paper defaults), so a handful of
    // sparse entries may legitimately be discarded — but losing more than
    // 1% of a noise-free DS1 means the merge dropped data.
    for r in &runs {
        assert!(
            r.total_cf_n <= n as f64 + 1e-6 && r.total_cf_n >= 0.99 * n as f64,
            "threads={} kept {} of {n} points",
            r.threads,
            r.total_cf_n
        );
    }
}
