//! Regenerates **Table 4** — BIRCH performance on the base workload, with
//! both input orders (§6.4, §6.6 "Input Order" columns).
//!
//! Paper columns: per dataset, the running time, the quality `D` (weighted
//! average diameter), and the number of clusters found. The paper's
//! headline claims this binary checks:
//!
//! * BIRCH's `D` is close to (even slightly better than) the actual
//!   clusters' `D`;
//! * the ordered variants (DS1O/DS2O/DS3O) give *almost identical* time
//!   and quality — order insensitivity.
//!
//! ```text
//! cargo run --release -p birch-bench --bin table4 [-- --scale 1.0]
//! ```

use birch_bench::{base_workloads, model_cfs, print_header, print_row, secs, Args};
use birch_core::{Birch, BirchConfig};
use birch_datagen::Dataset;
use birch_eval::quality::weighted_average_diameter;

fn main() {
    let args = Args::parse();
    println!(
        "Table 4: BIRCH on the base workload (scale {}, K=100)\n",
        args.scale
    );
    let widths = [6, 10, 10, 10, 10, 10, 12];
    print_header(
        &["name", "N", "time-s", "p1-3-s", "D", "actual-D", "clusters"],
        &widths,
    );

    for w in base_workloads(&args) {
        let ds = Dataset::generate(&w.spec);
        let config: BirchConfig = birch_bench::paper_config(100, ds.len());
        let model = Birch::new(config).fit(&ds.points).expect("fit");
        let d = weighted_average_diameter(&model_cfs(&model));
        print_row(
            &[
                w.name.to_string(),
                ds.len().to_string(),
                secs(model.stats().total_time()),
                secs(model.stats().time_phases_1to3()),
                format!("{d:.3}"),
                format!("{:.3}", ds.actual_weighted_diameter()),
                model.clusters().len().to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\npaper shape: D within ~5% of actual-D; ordered (xxO) rows ~= randomized rows \
         (order insensitivity); time linear in N"
    );
}
