//! CF numerical-stability sweep: classic (N, LS, SS) vs stable
//! (N, μ, SSE) backends against a 128-bit ground truth.
//!
//! For each dim ∈ {2, 8, 32} × coordinate offset ∈ {0, 1e4, 1e8}, two
//! tight clusters are generated with *dyadic* spreads (exact multiples
//! of 2⁻¹¹), so the shifted cloud is an exact translate of the origin
//! cloud and every reported error is CF-algebra arithmetic, not input
//! rounding. Both backends ingest the identical points; their radius and
//! D4 (between the two clusters) are compared to a double-double
//! recomputation from the realized points.
//!
//! The committed `BENCH_cf_stability.json` is the evidence pair for the
//! cancellation bug: classic's relative error explodes (or clamps to
//! exactly 0, which is reported as error 1) by offset 1e8, while stable
//! stays ≤ 1e-9 across the whole sweep — asserted at the end of the run.
//!
//! ```text
//! cargo run --release -p birch-bench --bin cf_stability \
//!     [-- --seed 42 --out BENCH_cf_stability.json]
//! ```

use birch_core::cf::{classic, stable};
use birch_core::quad::{dd_mean, dd_sq_deviation, Dd};

const DIMS: [usize; 3] = [2, 8, 32];
const OFFSETS: [f64; 3] = [0.0, 1e4, 1e8];
const PER_CLUSTER: usize = 64;
/// Dyadic spread quantum (2⁻¹¹): an exact multiple of ulp(1e8) = 2⁻²⁶,
/// so `offset + k·QUANTUM` is exactly representable at every offset.
const QUANTUM: f64 = 4.882_812_5e-4;
/// Inter-cluster gap along every axis (2¹, trivially dyadic).
const GAP: f64 = 2.0;

/// xorshift64 — deterministic input without external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// A point cloud whose every coordinate is `offset + k·2⁻¹¹ (+ GAP)`
/// with k < 64 — spreads of ~0.03, exactly translatable.
fn cluster(dim: usize, offset: f64, shifted_by_gap: bool, rng: &mut Rng) -> Vec<Vec<f64>> {
    let base = if shifted_by_gap { offset + GAP } else { offset };
    (0..PER_CLUSTER)
        .map(|_| {
            (0..dim)
                .map(|_| base + (rng.next() % 64) as f64 * QUANTUM)
                .collect()
        })
        .collect()
}

/// Ground truth in double-double from the realized points: per-cluster
/// radius and the D4 distance between the two clusters.
fn dd_truth(a: &[Vec<f64>], b: &[Vec<f64>]) -> (f64, f64) {
    let dim = a[0].len();
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let mean_a = dd_mean(a.iter().map(Vec::as_slice), dim);
    let mean_b = dd_mean(b.iter().map(Vec::as_slice), dim);
    let sq_dev = dd_sq_deviation(a.iter().map(Vec::as_slice), &mean_a);
    let radius = sq_dev.div_f64(na).to_f64().max(0.0).sqrt();
    let mut dmu_sq = Dd::ZERO;
    for d in 0..dim {
        let delta = mean_a[d] - mean_b[d];
        dmu_sq = dmu_sq + delta * delta;
    }
    let d4 = dmu_sq.mul_f64(na * nb / (na + nb)).to_f64().max(0.0).sqrt();
    (radius, d4)
}

/// Relative error, treating an exact-zero estimate of a nonzero truth
/// (the `.max(0.0)` clamp swallowing a negative cancellation residue)
/// as total loss (error 1) rather than dividing into it.
fn rel_err(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return estimate.abs();
    }
    (estimate - truth).abs() / truth
}

struct Row {
    dim: usize,
    offset: f64,
    stat: &'static str,
    truth: f64,
    classic_err: f64,
    stable_err: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        String::from("null")
    }
}

fn main() {
    let mut seed = 42u64;
    let mut out_path = String::from("BENCH_cf_stability.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out needs a value");
            }
            "--help" | "-h" => {
                eprintln!("usage: cf_stability [--seed n] [--out f]");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    println!(
        "CF backend stability sweep: dims {DIMS:?} x offsets {OFFSETS:?}, \
         {PER_CLUSTER} pts/cluster\n"
    );
    println!(
        "{:>4} {:>8} {:>7} {:>13} {:>13} {:>13}",
        "dim", "offset", "stat", "truth", "classic-err", "stable-err"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &dim in &DIMS {
        for &offset in &OFFSETS {
            // Same spread pattern at every offset (seed ignores the
            // offset), so each sweep row is an exact translate of its
            // offset-0 sibling.
            let mut rng = Rng(seed ^ ((dim as u64) << 8));
            let pts_a = cluster(dim, offset, false, &mut rng);
            let pts_b = cluster(dim, offset, true, &mut rng);

            let mut ca = classic::Cf::empty(dim);
            let mut sa = stable::Cf::empty(dim);
            for p in &pts_a {
                ca.add_point(&birch_core::Point::new(p.clone()));
                sa.add_point(&birch_core::Point::new(p.clone()));
            }
            let mut cb = classic::Cf::empty(dim);
            let mut sb = stable::Cf::empty(dim);
            for p in &pts_b {
                cb.add_point(&birch_core::Point::new(p.clone()));
                sb.add_point(&birch_core::Point::new(p.clone()));
            }

            let (radius_truth, d4_truth) = dd_truth(&pts_a, &pts_b);

            use birch_core::distance::{
                classic_distance, stable_distance, ClassicView, StableView,
            };
            let classic_d4 = classic_distance(
                birch_core::DistanceMetric::D4,
                &ClassicView::of(&ca),
                &ClassicView::of(&cb),
            );
            let stable_d4 = stable_distance(
                birch_core::DistanceMetric::D4,
                &StableView::of(&sa),
                &StableView::of(&sb),
            );

            for (stat, truth, c_est, s_est) in [
                ("radius", radius_truth, ca.radius(), sa.radius()),
                ("d4", d4_truth, classic_d4, stable_d4),
            ] {
                let row = Row {
                    dim,
                    offset,
                    stat,
                    truth,
                    classic_err: rel_err(c_est, truth),
                    stable_err: rel_err(s_est, truth),
                };
                println!(
                    "{:>4} {:>8.0e} {:>7} {:>13.6e} {:>13.3e} {:>13.3e}",
                    row.dim, row.offset, row.stat, row.truth, row.classic_err, row.stable_err
                );
                rows.push(row);
            }
        }
    }

    // Which backend `birch_core::Cf` aliases in this build — the sweep
    // itself always measures both explicitly, but the committed JSON
    // should name the default the claims defend.
    let default_backend = if cfg!(feature = "classic-cf") {
        "classic"
    } else {
        "stable"
    };
    let mut json = format!(
        "{{\"bench\":\"cf_stability\",\"seed\":{seed},\
         \"default_backend\":\"{default_backend}\",\
         \"points_per_cluster\":{PER_CLUSTER},\"gap\":{GAP},\
         \"spread_quantum\":{QUANTUM},\"rows\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"dim\":{},\"offset\":{},\"stat\":\"{}\",\"truth\":{},\
             \"classic_rel_err\":{},\"stable_rel_err\":{}}}",
            r.dim,
            json_f64(r.offset),
            r.stat,
            json_f64(r.truth),
            json_f64(r.classic_err),
            json_f64(r.stable_err),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nresults written to {out_path}");

    // The committed claims, enforced so a regression can't silently
    // rewrite the evidence: stable holds 1e-9 everywhere; classic has
    // visibly lost the statistic (>= 1e-2 relative, which includes the
    // exact-0 collapse reported as error 1) at offset 1e8.
    for r in &rows {
        assert!(
            r.stable_err <= 1e-9,
            "stable backend drifted: dim {} offset {:e} {} rel err {:e}",
            r.dim,
            r.offset,
            r.stat,
            r.stable_err
        );
        if r.offset == 1e8 {
            assert!(
                r.classic_err >= 1e-2,
                "classic backend unexpectedly survived dim {} offset {:e} {} (rel err {:e})",
                r.dim,
                r.offset,
                r.stat,
                r.classic_err
            );
        }
    }
    println!("claims hold: stable <= 1e-9 everywhere; classic >= 1e-2 at offset 1e8");
}
