//! Regenerates **Table 3** — the base workload definitions — by actually
//! generating each dataset and reporting its realized statistics next to
//! the nominal parameters.
//!
//! ```text
//! cargo run --release -p birch-bench --bin table3 [-- --scale 1.0]
//! ```

use birch_bench::{base_workloads, print_header, print_row, Args};
use birch_datagen::Dataset;

fn main() {
    let args = Args::parse();
    println!(
        "Table 3: base workload (scale {} of the paper's N=100k per dataset)\n",
        args.scale
    );
    let widths = [6, 10, 8, 8, 8, 10, 10, 12];
    print_header(
        &[
            "name", "pattern", "K", "N", "noise", "actual-D", "min-n", "ordering",
        ],
        &widths,
    );
    for w in base_workloads(&args) {
        let ds = Dataset::generate(&w.spec);
        let pattern = match w.spec.pattern {
            birch_datagen::Pattern::Grid { .. } => "grid",
            birch_datagen::Pattern::Sine { .. } => "sine",
            birch_datagen::Pattern::Random { .. } => "random",
        };
        let min_n = ds.clusters.iter().map(|c| c.n).min().unwrap_or(0);
        print_row(
            &[
                w.name.to_string(),
                pattern.to_string(),
                w.spec.k.to_string(),
                ds.len().to_string(),
                ds.noise_count().to_string(),
                format!("{:.3}", ds.actual_weighted_diameter()),
                min_n.to_string(),
                w.spec.ordering.to_string(),
            ],
            &widths,
        );
    }
    println!("\nactual-D = weighted average diameter of the generator's actual clusters");
}
