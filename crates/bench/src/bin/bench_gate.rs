//! `bench_gate` — regression gate diffing fresh bench JSON against the
//! committed baselines.
//!
//! ```text
//! bench_gate --baseline BENCH_insert_kernel.json --fresh fresh/BENCH_insert_kernel.json \
//!            [--baseline BENCH_phase1_scaling.json --fresh fresh/BENCH_phase1_scaling.json] \
//!            [--threshold 1.25]
//! ```
//!
//! Rules (documented in `scripts/bench_gate.sh` and CI):
//!
//! * `insert_kernel` rows compare the `speedup` ratio (scalar-form time ÷
//!   production-kernel time, both measured in the same process from
//!   interleaved windows) per (dim, metric, op); a row regresses when
//!   `fresh < baseline ÷ threshold`. The ratio is what the PR-level
//!   claim actually is — the production kernel staying ahead of its
//!   scalar oracle — and unlike raw `kernel_ns` it survives the
//!   machine-wide wall-clock swings of shared runners (steal time moves
//!   both sides of a ratio together but moves absolute ns by ±50%).
//!   Rows whose baseline `kernel_ns < 1000` (sub-µs) are skipped as
//!   timer noise.
//! * `phase1_scaling` runs compare `points_per_s` per thread count; a
//!   run regresses when `fresh < baseline ÷ threshold`. Runs whose
//!   baseline `wall_s < 0.05` are skipped — wall clocks that short are
//!   dominated by scheduling jitter, not throughput.
//! * `phase3_scaling` rows (keyed by entries × metric) compare the
//!   deterministic NN-chain work counters (`pairs_evaluated`,
//!   `chain_peak_candidate_bytes`; fresh may not exceed baseline ×
//!   threshold — seeds are fixed, so these never move with machine
//!   speed) and the same-process `heap_over_chain_wall` ratio (fresh <
//!   baseline ÷ threshold fails; rows whose baseline ratio is `null` —
//!   the heap oracle skipped past its Θ(m²) memory wall — or whose
//!   baseline chain wall is sub-50ms are skipped loudly).
//! * `checkpoint_io` rows (keyed by point count) hold the deterministic
//!   `snapshot_bytes` to the threshold exactly (fixed seed → same tree →
//!   same versioned encoding, so growth is format bloat, not noise) and
//!   compare the `checkpoint_mb_per_s` / `reopen_mb_per_s` rates (fresh
//!   < baseline ÷ threshold fails; rows whose baseline wall is sub-50ms
//!   are skipped loudly as timer noise).
//! * `cf_stability` is an accuracy bench, not a throughput bench — it
//!   has no gate.
//!
//! Exit code 1 when any compared entry regresses; skipped entries are
//! listed so the gate never silently narrows its coverage. The CI job
//! running this is **non-blocking** (shared-runner noise makes a hard
//! gate flaky); it exists to flag perf cliffs in review, not to merge-block.

use std::process::ExitCode;

/// Extracts the top-level `"rows"`/`"runs"` array of one bench JSON file
/// as raw per-row object strings (balance-counted; no serde — these files
/// come from our own hand-rolled emitters).
fn row_objects(json: &str, key: &str) -> Vec<String> {
    let Some(start) = json.find(&format!("\"{key}\":[")) else {
        return Vec::new();
    };
    let body = &json[start + key.len() + 4..];
    let mut rows = Vec::new();
    let mut depth = 0usize;
    let mut row_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    row_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = row_start.take() {
                        rows.push(body[s..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    rows
}

/// Pulls `"field":<number>` out of a row object.
fn num_field(row: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let at = row.find(&pat)? + pat.len();
    let rest = &row[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"field":"<string>"` out of a row object.
fn str_field(row: &str, field: &str) -> Option<String> {
    let pat = format!("\"{field}\":\"");
    let at = row.find(&pat)? + pat.len();
    let rest = &row[at..];
    Some(rest[..rest.find('"')?].to_string())
}

struct Outcome {
    compared: usize,
    skipped: usize,
    regressions: Vec<String>,
}

/// insert_kernel: higher `speedup` (scalar ÷ kernel, same-process ratio)
/// is better; keyed by (dim, metric, op).
fn gate_insert_kernel(baseline: &str, fresh: &str, threshold: f64) -> Outcome {
    let key = |row: &str| {
        format!(
            "dim={} metric={} op={}",
            num_field(row, "dim").unwrap_or(-1.0),
            str_field(row, "metric").unwrap_or_default(),
            str_field(row, "op").unwrap_or_default()
        )
    };
    let fresh_rows: Vec<(String, f64)> = row_objects(fresh, "rows")
        .iter()
        .filter_map(|r| Some((key(r), num_field(r, "speedup")?)))
        .collect();
    let mut out = Outcome {
        compared: 0,
        skipped: 0,
        regressions: Vec::new(),
    };
    for row in row_objects(baseline, "rows") {
        let k = key(&row);
        let (Some(base_ns), Some(base)) =
            (num_field(&row, "kernel_ns"), num_field(&row, "speedup"))
        else {
            continue;
        };
        if base_ns < 1000.0 {
            out.skipped += 1;
            println!("  skip {k}: baseline {base_ns:.0}ns is sub-µs timer noise");
            continue;
        }
        let Some((_, new)) = fresh_rows.iter().find(|(fk, _)| *fk == k) else {
            out.regressions
                .push(format!("{k}: present in baseline, missing from fresh run"));
            continue;
        };
        out.compared += 1;
        if *new < base / threshold {
            out.regressions.push(format!(
                "{k}: speedup {base:.2} -> {new:.2} ({:+.1}%)",
                100.0 * (new / base - 1.0)
            ));
        }
    }
    out
}

/// phase1_scaling: higher `points_per_s` is better; keyed by thread count.
fn gate_phase1_scaling(baseline: &str, fresh: &str, threshold: f64) -> Outcome {
    let fresh_rows: Vec<(f64, f64)> = row_objects(fresh, "runs")
        .iter()
        .filter_map(|r| Some((num_field(r, "threads")?, num_field(r, "points_per_s")?)))
        .collect();
    let mut out = Outcome {
        compared: 0,
        skipped: 0,
        regressions: Vec::new(),
    };
    for row in row_objects(baseline, "runs") {
        let (Some(threads), Some(base), Some(wall)) = (
            num_field(&row, "threads"),
            num_field(&row, "points_per_s"),
            num_field(&row, "wall_s"),
        ) else {
            continue;
        };
        if wall < 0.05 {
            out.skipped += 1;
            println!("  skip threads={threads}: baseline wall {wall:.3}s is jitter-dominated");
            continue;
        }
        let Some((_, new)) = fresh_rows.iter().find(|(t, _)| (t - threads).abs() < 0.5) else {
            out.regressions.push(format!(
                "threads={threads}: present in baseline, missing from fresh run"
            ));
            continue;
        };
        out.compared += 1;
        if *new < base / threshold {
            out.regressions.push(format!(
                "threads={threads}: points_per_s {base:.0} -> {new:.0} ({:+.1}%)",
                100.0 * (new / base - 1.0)
            ));
        }
    }
    out
}

/// checkpoint_io: keyed by point count. `snapshot_bytes` is
/// deterministic for a fixed seed (same tree, same versioned page
/// encoding), so format bloat past the threshold fails outright; the
/// two MB/s rates (higher is better) are machine-dependent and skip
/// rows whose baseline wall is sub-50ms — loudly, never silently.
fn gate_checkpoint_io(baseline: &str, fresh: &str, threshold: f64) -> Outcome {
    let key = |row: &str| format!("points={}", num_field(row, "points").unwrap_or(-1.0));
    let fresh_rows: Vec<(String, String)> = row_objects(fresh, "rows")
        .into_iter()
        .map(|r| (key(&r), r))
        .collect();
    let mut out = Outcome {
        compared: 0,
        skipped: 0,
        regressions: Vec::new(),
    };
    for row in row_objects(baseline, "rows") {
        let k = key(&row);
        let Some((_, new_row)) = fresh_rows.iter().find(|(fk, _)| *fk == k) else {
            out.regressions
                .push(format!("{k}: present in baseline, missing from fresh run"));
            continue;
        };
        // Deterministic snapshot size: growth is a format regression.
        if let (Some(base), Some(new)) = (
            num_field(&row, "snapshot_bytes"),
            num_field(new_row, "snapshot_bytes"),
        ) {
            out.compared += 1;
            if new > base * threshold {
                out.regressions.push(format!(
                    "{k}: snapshot_bytes {base:.0} -> {new:.0} ({:+.1}%)",
                    100.0 * (new / base - 1.0)
                ));
            }
        }
        // Throughput rates: higher is better, sub-50ms walls skipped.
        for (rate, wall) in [
            ("checkpoint_mb_per_s", "checkpoint_wall_s"),
            ("reopen_mb_per_s", "reopen_wall_s"),
        ] {
            let (Some(base), Some(base_wall)) = (num_field(&row, rate), num_field(&row, wall))
            else {
                continue;
            };
            if base_wall < 0.05 {
                out.skipped += 1;
                println!("  skip {k} {rate}: baseline wall {base_wall:.4}s is jitter-dominated");
                continue;
            }
            let Some(new) = num_field(new_row, rate) else {
                out.regressions.push(format!(
                    "{k}: {rate} present in baseline, missing from fresh run"
                ));
                continue;
            };
            out.compared += 1;
            if new < base / threshold {
                out.regressions.push(format!(
                    "{k}: {rate} {base:.1} -> {new:.1} ({:+.1}%)",
                    100.0 * (new / base - 1.0)
                ));
            }
        }
    }
    out
}

/// phase3_scaling: keyed by (entries, metric). Three rules per row:
///
/// * `pairs_evaluated` and `chain_peak_candidate_bytes` are
///   *deterministic* for a fixed seed — machine speed cannot move them,
///   so growth past the threshold means the prune bound or the chain's
///   candidate bookkeeping actually regressed (lower is better).
/// * `heap_over_chain_wall` is a same-process ratio like
///   `insert_kernel`'s speedup (higher is better); rows where the
///   baseline ratio is `null` (the heap oracle was skipped past its
///   Θ(m²) memory wall) or the baseline `chain_wall_s < 0.05` are
///   skipped loudly.
fn gate_phase3_scaling(baseline: &str, fresh: &str, threshold: f64) -> Outcome {
    let key = |row: &str| {
        format!(
            "entries={} metric={}",
            num_field(row, "entries").unwrap_or(-1.0),
            str_field(row, "metric").unwrap_or_default()
        )
    };
    let fresh_rows: Vec<(String, String)> = row_objects(fresh, "rows")
        .into_iter()
        .map(|r| (key(&r), r))
        .collect();
    let mut out = Outcome {
        compared: 0,
        skipped: 0,
        regressions: Vec::new(),
    };
    for row in row_objects(baseline, "rows") {
        let k = key(&row);
        let Some((_, new_row)) = fresh_rows.iter().find(|(fk, _)| *fk == k) else {
            out.regressions
                .push(format!("{k}: present in baseline, missing from fresh run"));
            continue;
        };
        // Deterministic work counters: lower is better, no noise skip.
        for field in ["pairs_evaluated", "chain_peak_candidate_bytes"] {
            let (Some(base), Some(new)) = (num_field(&row, field), num_field(new_row, field))
            else {
                continue;
            };
            out.compared += 1;
            if new > base * threshold {
                out.regressions.push(format!(
                    "{k}: {field} {base:.0} -> {new:.0} ({:+.1}%)",
                    100.0 * (new / base - 1.0)
                ));
            }
        }
        // Same-process wall ratio: higher is better.
        match num_field(&row, "heap_over_chain_wall") {
            None => {
                out.skipped += 1;
                println!("  skip {k}: baseline heap oracle skipped (past its memory wall)");
            }
            Some(base) => {
                if num_field(&row, "chain_wall_s").is_some_and(|w| w < 0.05) {
                    out.skipped += 1;
                    println!("  skip {k}: baseline chain wall < 0.05s is jitter-dominated");
                } else if let Some(new) = num_field(new_row, "heap_over_chain_wall") {
                    out.compared += 1;
                    if new < base / threshold {
                        out.regressions.push(format!(
                            "{k}: heap_over_chain_wall {base:.2} -> {new:.2} ({:+.1}%)",
                            100.0 * (new / base - 1.0)
                        ));
                    }
                } else {
                    out.regressions.push(format!(
                        "{k}: heap_over_chain_wall present in baseline, null in fresh run"
                    ));
                }
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut threshold = 1.25;
    let mut pending_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--baseline" => pending_baseline = Some(value()),
            "--fresh" => {
                let Some(b) = pending_baseline.take() else {
                    eprintln!("error: --fresh without a preceding --baseline");
                    return ExitCode::from(2);
                };
                pairs.push((b, value()));
            }
            "--threshold" => {
                threshold = value().parse().expect("--threshold must be a number");
                assert!(threshold > 1.0, "--threshold must be > 1.0");
            }
            other => {
                eprintln!("error: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if pairs.is_empty() {
        eprintln!(
            "usage: bench_gate --baseline <committed.json> --fresh <fresh.json> \
             [--baseline ... --fresh ...] [--threshold 1.25]"
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    for (baseline_path, fresh_path) in &pairs {
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("error reading {p}: {e}");
                std::process::exit(2);
            })
        };
        let baseline = read(baseline_path);
        let fresh = read(fresh_path);
        let bench = str_field(&baseline, "bench").unwrap_or_default();
        println!("gate: {bench} ({baseline_path} vs {fresh_path}, threshold {threshold}x)");
        let outcome = match bench.as_str() {
            "insert_kernel" => gate_insert_kernel(&baseline, &fresh, threshold),
            "phase1_scaling" => gate_phase1_scaling(&baseline, &fresh, threshold),
            "phase3_scaling" => gate_phase3_scaling(&baseline, &fresh, threshold),
            "checkpoint_io" => gate_checkpoint_io(&baseline, &fresh, threshold),
            other => {
                println!("  no gate rules for bench {other:?} (accuracy bench?) — skipping file");
                continue;
            }
        };
        println!(
            "  {} compared, {} skipped, {} regressions",
            outcome.compared,
            outcome.skipped,
            outcome.regressions.len()
        );
        for r in &outcome.regressions {
            println!("  REGRESSION {r}");
        }
        failed |= !outcome.regressions.is_empty();
    }
    if failed {
        eprintln!("bench gate: throughput regressions above threshold — see above");
        ExitCode::FAILURE
    } else {
        println!("bench gate: ok");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"bench":"insert_kernel","rows":[
        {"dim":2,"metric":"D0","op":"descent","scalar_ns":200.0,"kernel_ns":210.0,"speedup":0.95},
        {"dim":8,"metric":"D1","op":"split","scalar_ns":6000.0,"kernel_ns":5000.0,"speedup":1.2}]}"#;

    #[test]
    fn sub_microsecond_rows_are_skipped() {
        let fresh = BASE.replace("\"speedup\":0.95", "\"speedup\":0.2"); // collapsed but sub-µs
        let o = gate_insert_kernel(BASE, &fresh, 1.25);
        assert_eq!(o.skipped, 1);
        assert_eq!(o.compared, 1);
        assert!(o.regressions.is_empty());
    }

    #[test]
    fn speedup_collapse_past_threshold_fails() {
        let fresh = BASE.replace("\"speedup\":1.2", "\"speedup\":0.9");
        let o = gate_insert_kernel(BASE, &fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("split"));
    }

    #[test]
    fn within_threshold_passes() {
        let fresh = BASE.replace("\"speedup\":1.2", "\"speedup\":1.0");
        let o = gate_insert_kernel(BASE, &fresh, 1.25);
        assert!(o.regressions.is_empty(), "{:?}", o.regressions);
    }

    #[test]
    fn missing_fresh_kernel_row_is_a_regression() {
        let fresh = r#"{"bench":"insert_kernel","rows":[
            {"dim":2,"metric":"D0","op":"descent","scalar_ns":200.0,"kernel_ns":210.0,"speedup":0.95}]}"#;
        let o = gate_insert_kernel(BASE, fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("missing"));
    }

    const SCALING: &str = r#"{"bench":"phase1_scaling","runs":[
        {"threads":1,"wall_s":0.03,"points_per_s":3000000.0},
        {"threads":4,"wall_s":1.5,"points_per_s":1000000.0}]}"#;

    #[test]
    fn jittery_short_walls_are_skipped_and_throughput_drop_fails() {
        let fresh = SCALING
            .replace("3000000.0", "100000.0") // skipped: wall 0.03s
            .replace("1000000.0", "700000.0"); // -30% on the 1.5s run
        let o = gate_phase1_scaling(SCALING, &fresh, 1.25);
        assert_eq!(o.skipped, 1);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("threads=4"));
    }

    #[test]
    fn missing_fresh_row_is_a_regression_not_a_silent_pass() {
        let fresh = r#"{"bench":"phase1_scaling","runs":[
            {"threads":1,"wall_s":0.03,"points_per_s":3000000.0}]}"#;
        let o = gate_phase1_scaling(SCALING, fresh, 1.25);
        assert_eq!(o.regressions.len(), 1);
        assert!(o.regressions[0].contains("missing"));
    }

    const PHASE3: &str = r#"{"bench":"phase3_scaling","rows":[
        {"entries":10000,"metric":"D2","chain_wall_s":1.5,"chain_peak_candidate_bytes":2000000,
         "pairs_evaluated":3400000,"pairs_pruned":140000000,"heap_wall_s":28.0,
         "heap_peak_candidate_bytes":2000000000,"heap_over_chain_wall":18.6},
        {"entries":100000,"metric":"D2","chain_wall_s":150.0,"chain_peak_candidate_bytes":20000000,
         "pairs_evaluated":340000000,"pairs_pruned":14000000000,"heap_wall_s":null,
         "heap_peak_candidate_bytes":null,"heap_over_chain_wall":null}]}"#;

    #[test]
    fn phase3_null_heap_ratio_is_skipped_not_failed() {
        let o = gate_phase3_scaling(PHASE3, PHASE3, 1.25);
        // 100k row: both counters compared, ratio skipped (null baseline).
        assert_eq!(o.skipped, 1);
        assert_eq!(o.compared, 5, "{:?}", o.regressions);
        assert!(o.regressions.is_empty(), "{:?}", o.regressions);
    }

    #[test]
    fn phase3_pair_count_growth_fails_deterministically() {
        // Prune efficacy lost: 60% more evaluations at the same seed.
        let fresh = PHASE3.replace(
            "\"pairs_evaluated\":3400000,",
            "\"pairs_evaluated\":5500000,",
        );
        let o = gate_phase3_scaling(PHASE3, &fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("pairs_evaluated"));
    }

    #[test]
    fn phase3_candidate_memory_growth_fails() {
        let fresh = PHASE3.replace(
            "\"chain_peak_candidate_bytes\":20000000,",
            "\"chain_peak_candidate_bytes\":90000000,",
        );
        let o = gate_phase3_scaling(PHASE3, &fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("chain_peak_candidate_bytes"));
    }

    const CKPT: &str = r#"{"bench":"checkpoint_io","rows":[
        {"points":25000,"nodes":40,"leaf_entries":700,"snapshot_bytes":80000,
         "checkpoint_wall_s":0.002,"checkpoint_mb_per_s":40.0,
         "reopen_wall_s":0.001,"reopen_mb_per_s":80.0},
        {"points":400000,"nodes":60,"leaf_entries":1100,"snapshot_bytes":120000,
         "checkpoint_wall_s":0.2,"checkpoint_mb_per_s":30.0,
         "reopen_wall_s":0.1,"reopen_mb_per_s":60.0}]}"#;

    #[test]
    fn checkpoint_sub_50ms_walls_skip_rates_but_still_gate_bytes() {
        // The 25k row's walls are sub-50ms: both rates skipped, but its
        // snapshot size still gates — so does the 400k row's everything.
        let o = gate_checkpoint_io(CKPT, CKPT, 1.25);
        assert_eq!(o.skipped, 2);
        assert_eq!(o.compared, 4, "{:?}", o.regressions);
        assert!(o.regressions.is_empty(), "{:?}", o.regressions);
    }

    #[test]
    fn checkpoint_snapshot_bloat_fails_deterministically() {
        let fresh = CKPT.replace("\"snapshot_bytes\":80000,", "\"snapshot_bytes\":160000,");
        let o = gate_checkpoint_io(CKPT, &fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("snapshot_bytes"));
    }

    #[test]
    fn checkpoint_rate_collapse_fails_and_missing_row_is_a_regression() {
        let fresh = CKPT.replace("\"reopen_mb_per_s\":60.0", "\"reopen_mb_per_s\":30.0");
        let o = gate_checkpoint_io(CKPT, &fresh, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("reopen_mb_per_s"));

        let gone = r#"{"bench":"checkpoint_io","rows":[
            {"points":25000,"snapshot_bytes":80000,
             "checkpoint_wall_s":0.002,"checkpoint_mb_per_s":40.0,
             "reopen_wall_s":0.001,"reopen_mb_per_s":80.0}]}"#;
        let o = gate_checkpoint_io(CKPT, gone, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("missing"));
    }

    #[test]
    fn phase3_ratio_collapse_and_fresh_null_fail() {
        let collapsed = PHASE3.replace(
            "\"heap_over_chain_wall\":18.6",
            "\"heap_over_chain_wall\":9.0",
        );
        let o = gate_phase3_scaling(PHASE3, &collapsed, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("heap_over_chain_wall"));

        // A fresh run that silently stopped running the oracle must fail,
        // not narrow coverage.
        let gone = PHASE3.replace(
            "\"heap_over_chain_wall\":18.6",
            "\"heap_over_chain_wall\":null",
        );
        let o = gate_phase3_scaling(PHASE3, &gone, 1.25);
        assert_eq!(o.regressions.len(), 1, "{:?}", o.regressions);
        assert!(o.regressions[0].contains("null in fresh"));
    }
}
