//! Regenerates the **§6.5 sensitivity study**: how BIRCH's time and
//! quality respond to the initial threshold `T0`, the page size `P`, the
//! memory budget `M`, and the outlier options.
//!
//! Paper findings this binary checks:
//!
//! * **T0**: performance is stable as long as T0 is not excessively high
//!   wrt the dataset; a knowledgeable non-zero T0 is rewarded with less
//!   rebuilding time.
//! * **P** (64…4096): smaller P → finer tree → slightly better Phase-3
//!   quality but more expensive; Phase 4 compensates, leaving end quality
//!   almost flat.
//! * **M**: more memory → finer subclusters → better (or equal) quality,
//!   traded against time.
//! * **Outlier options** on DS3-with-noise: turning the options on removes
//!   noise without hurting the real clusters.
//!
//! ```text
//! cargo run --release -p birch-bench --bin sensitivity [-- --scale 0.1]
//! ```

use birch_bench::{base_workloads, model_cfs, print_header, print_row, secs, Args};
use birch_core::{Birch, BirchConfig};
use birch_datagen::{Dataset, DatasetSpec};
use birch_eval::quality::weighted_average_diameter;

fn run(label: &str, ds: &Dataset, config: BirchConfig) -> (f64, std::time::Duration, u64, usize) {
    let model = Birch::new(config).fit(&ds.points).expect("fit");
    birch_bench::print_metrics(label, &model);
    (
        weighted_average_diameter(&model_cfs(&model)),
        model.stats().total_time(),
        model.stats().io.rebuilds,
        model.clusters().len(),
    )
}

fn main() {
    let args = Args::parse();
    let workloads = base_workloads(&args);
    let widths = [8, 10, 10, 10, 10, 10];

    // --- Initial threshold T0 (§6.5 "Initial threshold"). ---
    println!(
        "Sensitivity: initial threshold T0 (DS1, scale {})\n",
        args.scale
    );
    let ds1 = Dataset::generate(&workloads[0].spec);
    print_header(&["T0", "D", "time-s", "rebuilds", "clusters", ""], &widths);
    for t0 in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let cfg = birch_bench::paper_config(100, ds1.len()).initial_threshold(t0);
        let (d, t, rebuilds, k) = run(&format!("sensitivity:T0={t0}"), &ds1, cfg);
        print_row(
            &[
                format!("{t0}"),
                format!("{d:.3}"),
                secs(t),
                rebuilds.to_string(),
                k.to_string(),
                String::new(),
            ],
            &widths,
        );
    }
    println!("paper shape: good T0 saves rebuilds; quality stable until T0 is excessive\n");

    // --- Page size P (§6.5 "Page Size"). ---
    println!("Sensitivity: page size P (DS1)\n");
    print_header(&["P", "D", "time-s", "rebuilds", "clusters", ""], &widths);
    for p in [256usize, 512, 1024, 4096] {
        let cfg = birch_bench::paper_config(100, ds1.len()).page_size(p);
        let (d, t, rebuilds, k) = run(&format!("sensitivity:P={p}"), &ds1, cfg);
        print_row(
            &[
                p.to_string(),
                format!("{d:.3}"),
                secs(t),
                rebuilds.to_string(),
                k.to_string(),
                String::new(),
            ],
            &widths,
        );
    }
    println!("paper shape: with Phase 4 on, end quality almost flat across P\n");

    // --- Memory M. ---
    println!("Sensitivity: memory budget M (DS1)\n");
    print_header(
        &["M-KB", "D", "time-s", "rebuilds", "clusters", ""],
        &widths,
    );
    let base_mem = birch_bench::paper_config(100, ds1.len()).memory_bytes;
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mem = ((base_mem as f64 * factor) as usize).max(4 * 1024);
        let cfg = birch_bench::paper_config(100, ds1.len()).memory(mem);
        let (d, t, rebuilds, k) = run(&format!("sensitivity:M-KB={}", mem / 1024), &ds1, cfg);
        print_row(
            &[
                (mem / 1024).to_string(),
                format!("{d:.3}"),
                secs(t),
                rebuilds.to_string(),
                k.to_string(),
                String::new(),
            ],
            &widths,
        );
    }
    println!("paper shape: more memory never hurts quality; less memory costs rebuilds\n");

    // --- Outlier options on noisy DS3 (rn = 10%). ---
    println!("Sensitivity: outlier options (DS3 + 10% noise)\n");
    let noisy_spec = DatasetSpec {
        noise_fraction: 0.10,
        ..workloads[2].spec.clone()
    };
    let noisy = Dataset::generate(&noisy_spec);
    let w2 = [14, 10, 10, 10, 10, 12];
    print_header(
        &[
            "options",
            "D",
            "time-s",
            "rebuilds",
            "clusters",
            "discarded",
        ],
        &w2,
    );
    for (label, outliers, delay) in [
        ("none", false, false),
        ("outlier", true, false),
        ("delay", false, true),
        ("both", true, true),
    ] {
        let cfg = birch_bench::paper_config(100, noisy.len())
            .outliers(outliers)
            .delay_split(delay);
        let model = Birch::new(cfg).fit(&noisy.points).expect("fit");
        birch_bench::print_metrics(&format!("sensitivity:outliers={label}"), &model);
        print_row(
            &[
                label.to_string(),
                format!("{:.3}", weighted_average_diameter(&model_cfs(&model))),
                secs(model.stats().total_time()),
                model.stats().io.rebuilds.to_string(),
                model.clusters().len().to_string(),
                model.stats().io.outliers_discarded.to_string(),
            ],
            &w2,
        );
    }
    println!("paper shape: outlier option discards noise and improves D on noisy data");
}
