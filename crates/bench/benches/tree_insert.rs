//! CF-tree insertion throughput — the §6.1 complexity claim: per-point
//! cost grows with the tree depth O(log_B(M/P)) and the per-node scan
//! O(B), but *not* with N once the tree reaches its memory-bounded size.
//!
//! The `descent_scan` group compares the batched closest-child kernel
//! (one [`CfBlock`] sweep, memoized norms) against a scalar baseline that
//! walks a `Vec<Cf>` re-deriving every `‖LS‖²` — the seed-era inner loop.
//! The `prune` group measures whole-tree insertion with the optional D0
//! triangle-inequality descent prune off vs on.

use birch_bench::scalar_distance_replica;
use birch_core::distance::{closest_among, CfBlock};
use birch_core::{Cf, CfTree, DistanceMetric, Point, ThresholdKind, TreeParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let i = i as f64;
            Point::xy((i * 0.618).rem_euclid(100.0), (i * 0.414).rem_euclid(100.0))
        })
        .collect()
}

fn params(threshold: f64) -> TreeParams {
    TreeParams {
        dim: 2,
        branching: 25,
        leaf_capacity: 31,
        threshold,
        threshold_kind: ThresholdKind::Diameter,
        metric: DistanceMetric::D2,
        merge_refinement: true,
        descend_prune: false,
    }
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert");
    let pts = points(10_000);
    for threshold in [0.5f64, 2.0] {
        group.throughput(Throughput::Elements(pts.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("threshold", threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    let mut tree = CfTree::new(params(t));
                    for p in &pts {
                        tree.insert_point(black_box(p));
                    }
                    black_box(tree.leaf_entry_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert_branching");
    let pts = points(5_000);
    for b_factor in [4usize, 25, 64] {
        group.throughput(Throughput::Elements(pts.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(b_factor),
            &b_factor,
            |bench, &bf| {
                bench.iter(|| {
                    let mut tree = CfTree::new(TreeParams {
                        branching: bf,
                        leaf_capacity: bf,
                        ..params(1.0)
                    });
                    for p in &pts {
                        tree.insert_point(black_box(p));
                    }
                    black_box(tree.node_count())
                });
            },
        );
    }
    group.finish();
}

/// `dim`-dimensional multi-point CFs with deterministic scatter.
fn make_cfs(dim: usize, count: usize, seed: u64) -> Vec<Cf> {
    let mut s = seed;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..count)
        .map(|_| {
            let mut cf = Cf::empty(dim);
            for _ in 0..3 {
                cf.add_point(&Point::new((0..dim).map(|_| next() * 50.0).collect()));
            }
            cf
        })
        .collect()
}

/// The §4.3 closest-child scan at B = 25, kernel vs scalar, across the
/// dimension sweep — the single hottest loop of Phase 1.
fn bench_descent_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("descent_scan");
    for dim in [2usize, 8, 32, 128] {
        let cands = make_cfs(dim, 25, 0xDE5CE17 ^ dim as u64);
        let probe = make_cfs(dim, 1, 0x9208E ^ dim as u64).pop().unwrap();
        let block = CfBlock::from_cfs(&cands);
        let metric = DistanceMetric::D2;
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| {
                let mut best: Option<(usize, f64)> = None;
                for (i, cand) in cands.iter().enumerate() {
                    let d = scalar_distance_replica(metric, black_box(&probe), cand);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                black_box(best)
            });
        });
        group.bench_with_input(BenchmarkId::new("kernel", dim), &dim, |b, _| {
            b.iter(|| black_box(closest_among(metric, black_box(&probe), &block)));
        });
    }
    group.finish();
}

/// Whole-tree insertion under D0 with the triangle-inequality descent
/// prune off vs on (output-identical; only the scan cost differs).
fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert_d0_prune");
    let pts = points(10_000);
    for (label, prune) in [("off", false), ("on", true)] {
        group.throughput(Throughput::Elements(pts.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &prune, |b, &pr| {
            b.iter(|| {
                let mut tree = CfTree::new(TreeParams {
                    metric: DistanceMetric::D0,
                    descend_prune: pr,
                    ..params(0.5)
                });
                for p in &pts {
                    tree.insert_point(black_box(p));
                }
                black_box(tree.stats().distance_calls)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_branching,
    bench_descent_scan,
    bench_prune
);
criterion_main!(benches);
