//! CF-tree insertion throughput — the §6.1 complexity claim: per-point
//! cost grows with the tree depth O(log_B(M/P)) and the per-node scan
//! O(B), but *not* with N once the tree reaches its memory-bounded size.

use birch_core::{CfTree, DistanceMetric, Point, ThresholdKind, TreeParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let i = i as f64;
            Point::xy((i * 0.618).rem_euclid(100.0), (i * 0.414).rem_euclid(100.0))
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert");
    let pts = points(10_000);
    for threshold in [0.5f64, 2.0] {
        group.throughput(Throughput::Elements(pts.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("threshold", threshold),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    let mut tree = CfTree::new(TreeParams {
                        dim: 2,
                        branching: 25,
                        leaf_capacity: 31,
                        threshold: t,
                        threshold_kind: ThresholdKind::Diameter,
                        metric: DistanceMetric::D2,
                        merge_refinement: true,
                    });
                    for p in &pts {
                        tree.insert_point(black_box(p));
                    }
                    black_box(tree.leaf_entry_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert_branching");
    let pts = points(5_000);
    for b_factor in [4usize, 25, 64] {
        group.throughput(Throughput::Elements(pts.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(b_factor),
            &b_factor,
            |bench, &bf| {
                bench.iter(|| {
                    let mut tree = CfTree::new(TreeParams {
                        dim: 2,
                        branching: bf,
                        leaf_capacity: bf,
                        threshold: 1.0,
                        threshold_kind: ThresholdKind::Diameter,
                        metric: DistanceMetric::D2,
                        merge_refinement: true,
                    });
                    for p in &pts {
                        tree.insert_point(black_box(p));
                    }
                    black_box(tree.node_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_branching);
criterion_main!(benches);
