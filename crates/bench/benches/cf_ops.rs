//! Microbenchmarks of the CF algebra — the inner loop of Phase 1 (§6.1's
//! CPU cost analysis: inserting a point costs O(d·B·(1+log_B(M/P))) CF
//! distance evaluations plus one CF update).

use birch_bench::scalar_distance_replica;
use birch_core::distance::{farthest_pair, CfBlock};
use birch_core::{Cf, DistanceMetric, Point};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_cf(dim: usize, n: usize, offset: f64) -> Cf {
    let mut cf = Cf::empty(dim);
    for i in 0..n {
        let coords: Vec<f64> = (0..dim)
            .map(|j| offset + ((i * 7 + j * 3) % 13) as f64 * 0.1)
            .collect();
        cf.add_point(&Point::new(coords));
    }
    cf
}

fn bench_add_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_add_point");
    for dim in [2usize, 16, 64] {
        let p = Point::new((0..dim).map(|i| i as f64).collect());
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut cf = Cf::empty(dim);
            b.iter(|| cf.add_point(black_box(&p)));
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_merge");
    for dim in [2usize, 16, 64] {
        let a = make_cf(dim, 100, 0.0);
        let b_cf = make_cf(dim, 100, 5.0);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut acc = a.clone();
            b.iter(|| acc.merge(black_box(&b_cf)));
        });
    }
    group.finish();
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_distance_d2");
    let a = make_cf(2, 100, 0.0);
    let b_cf = make_cf(2, 100, 10.0);
    for metric in DistanceMetric::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(metric),
            &metric,
            |bencher, &m| {
                bencher.iter(|| m.distance(black_box(&a), black_box(&b_cf)));
            },
        );
    }
    group.finish();
}

/// The split seeding scan (§4.3: farthest pair among L+1 entries) as a
/// pairwise matrix, kernel vs scalar, per metric at dim 16.
fn bench_split_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_split_matrix");
    let dim = 16;
    let entries: Vec<Cf> = (0..32).map(|i| make_cf(dim, 4, f64::from(i))).collect();
    let block = CfBlock::from_cfs(&entries);
    for metric in [DistanceMetric::D2, DistanceMetric::D4] {
        group.bench_with_input(
            BenchmarkId::new("scalar", metric),
            &metric,
            |bencher, &m| {
                bencher.iter(|| {
                    let mut far: Option<(usize, usize, f64)> = None;
                    for i in 0..entries.len() {
                        for j in (i + 1)..entries.len() {
                            let d = scalar_distance_replica(m, &entries[i], &entries[j]);
                            if far.is_none_or(|(_, _, fd)| d > fd) {
                                far = Some((i, j, d));
                            }
                        }
                    }
                    black_box(far)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernel", metric),
            &metric,
            |bencher, &m| {
                bencher.iter(|| black_box(farthest_pair(m, black_box(&block))));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_add_point,
    bench_merge,
    bench_distances,
    bench_split_matrix
);
criterion_main!(benches);
