//! End-to-end pipeline benchmarks: BIRCH vs k-means vs CLARANS on a small
//! DS1-shaped workload — the headline §6.7 comparison, as a Criterion
//! bench for regression tracking (the table5 binary reports the full-size
//! numbers).

use birch_baselines::{Clarans, KMeans};
use birch_bench::paper_config;
use birch_core::Birch;
use birch_datagen::{presets, Dataset, DatasetSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn small_ds1() -> Dataset {
    Dataset::generate(&DatasetSpec {
        k: 25,
        n_low: 80,
        n_high: 80,
        ..presets::ds1(7)
    })
}

fn bench_birch(c: &mut Criterion) {
    let ds = small_ds1();
    c.bench_function("pipeline_birch_2k", |b| {
        b.iter(|| {
            let model = Birch::new(paper_config(25, ds.len()))
                .fit(black_box(&ds.points))
                .expect("fit");
            black_box(model.clusters().len())
        });
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = small_ds1();
    c.bench_function("pipeline_kmeans_2k", |b| {
        b.iter(|| {
            let model = KMeans::new(25, 7).fit(black_box(&ds.points));
            black_box(model.inertia)
        });
    });
}

fn bench_clarans(c: &mut Criterion) {
    let ds = small_ds1();
    // Bounded maxneighbor keeps the bench stable-length; the relative
    // magnitude vs BIRCH is the point.
    let clarans = Clarans {
        maxneighbor: Some(200),
        ..Clarans::new(25, 7)
    };
    let mut group = c.benchmark_group("pipeline_clarans_2k");
    group.sample_size(10);
    group.bench_function("clarans", |b| {
        b.iter(|| {
            let model = clarans.fit(black_box(&ds.points));
            black_box(model.cost)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_birch, bench_kmeans, bench_clarans);
criterion_main!(benches);
