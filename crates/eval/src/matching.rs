//! Matching found clusters to the generator's actual clusters.
//!
//! §6.4 of the paper compares BIRCH/CLARANS clusters against the actual
//! clusters by location (centroid displacement), size (number of points)
//! and tightness (radius). This module performs a greedy one-to-one
//! matching — repeatedly pairing the globally closest (found, actual)
//! centroids — and reports the aggregate statistics the paper discusses
//! ("centroids of BIRCH clusters are displaced from the actual by …",
//! "number of points differ by < 4%" etc.).

use birch_core::{Cf, Point};
use birch_datagen::ActualCluster;

/// Per-pair match record.
#[derive(Debug, Clone)]
pub struct MatchedPair {
    /// Index into the found clusters.
    pub found_idx: usize,
    /// Index into the actual clusters.
    pub actual_idx: usize,
    /// Distance between the two centroids.
    pub centroid_distance: f64,
    /// `|n_found − n_actual| / n_actual`.
    pub size_rel_error: f64,
    /// Found cluster radius − actual cluster radius.
    pub radius_diff: f64,
}

/// Aggregate of a matching.
#[derive(Debug, Clone)]
pub struct MatchReport {
    /// One record per matched pair (min(#found, #actual) pairs).
    pub pairs: Vec<MatchedPair>,
    /// Found clusters with no actual partner.
    pub unmatched_found: usize,
    /// Actual clusters with no found partner.
    pub unmatched_actual: usize,
    /// Mean centroid displacement over the pairs.
    pub mean_centroid_distance: f64,
    /// Mean relative size error over the pairs.
    pub mean_size_rel_error: f64,
    /// Fraction of pairs whose centroid displacement is below a quarter of
    /// the actual radius ("located" clusters).
    pub well_located_fraction: f64,
}

/// Greedily matches `found` clusters to `actual` ones by centroid
/// proximity.
///
/// # Panics
///
/// Panics if either side is empty.
#[must_use]
pub fn match_clusters(found: &[Cf], actual: &[ActualCluster]) -> MatchReport {
    assert!(!found.is_empty(), "no found clusters to match");
    assert!(!actual.is_empty(), "no actual clusters to match");

    let found_centroids: Vec<Point> = found.iter().map(Cf::centroid).collect();
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (fi, fc) in found_centroids.iter().enumerate() {
        for (ai, ac) in actual.iter().enumerate() {
            candidates.push((fc.dist(&ac.cf.centroid()), fi, ai));
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut used_f = vec![false; found.len()];
    let mut used_a = vec![false; actual.len()];
    let mut pairs = Vec::new();
    for (d, fi, ai) in candidates {
        if used_f[fi] || used_a[ai] {
            continue;
        }
        used_f[fi] = true;
        used_a[ai] = true;
        let n_actual = actual[ai].cf.n().max(1.0);
        pairs.push(MatchedPair {
            found_idx: fi,
            actual_idx: ai,
            centroid_distance: d,
            size_rel_error: (found[fi].n() - n_actual).abs() / n_actual,
            radius_diff: found[fi].radius() - actual[ai].cf.radius(),
        });
        if pairs.len() == found.len().min(actual.len()) {
            break;
        }
    }

    let n = pairs.len() as f64;
    let mean_centroid_distance = pairs.iter().map(|p| p.centroid_distance).sum::<f64>() / n;
    let mean_size_rel_error = pairs.iter().map(|p| p.size_rel_error).sum::<f64>() / n;
    let well_located = pairs
        .iter()
        .filter(|p| {
            let r = actual[p.actual_idx].cf.radius().max(f64::MIN_POSITIVE);
            p.centroid_distance < 0.25 * r
        })
        .count();

    MatchReport {
        unmatched_found: found.len() - pairs.len(),
        unmatched_actual: actual.len() - pairs.len(),
        mean_centroid_distance,
        mean_size_rel_error,
        well_located_fraction: well_located as f64 / n,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birch_datagen::{Dataset, DatasetSpec, Ordering, Pattern};

    fn toy_dataset() -> Dataset {
        Dataset::generate(&DatasetSpec {
            pattern: Pattern::Grid { kg: 10.0 },
            k: 4,
            n_low: 100,
            n_high: 100,
            r_low: 1.0,
            r_high: 1.0,
            noise_fraction: 0.0,
            ordering: Ordering::Ordered,
            seed: 5,
        })
    }

    #[test]
    fn perfect_match_when_found_equals_actual() {
        let ds = toy_dataset();
        let found: Vec<Cf> = ds.clusters.iter().map(|c| c.cf.clone()).collect();
        let report = match_clusters(&found, &ds.clusters);
        assert_eq!(report.pairs.len(), 4);
        assert_eq!(report.unmatched_found, 0);
        assert_eq!(report.unmatched_actual, 0);
        assert!(report.mean_centroid_distance < 1e-12);
        assert!(report.mean_size_rel_error < 1e-12);
        assert!((report.well_located_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_found_cluster_reported_unmatched() {
        let ds = toy_dataset();
        let mut found: Vec<Cf> = ds.clusters.iter().map(|c| c.cf.clone()).collect();
        found.push(Cf::from_point(&birch_core::Point::xy(999.0, 999.0)));
        let report = match_clusters(&found, &ds.clusters);
        assert_eq!(report.unmatched_found, 1);
        assert_eq!(report.unmatched_actual, 0);
        // The bogus far cluster should not appear among the pairs.
        assert!(report.pairs.iter().all(|p| p.found_idx != 4));
    }

    #[test]
    fn missing_found_cluster_reported() {
        let ds = toy_dataset();
        let found: Vec<Cf> = ds.clusters.iter().take(3).map(|c| c.cf.clone()).collect();
        let report = match_clusters(&found, &ds.clusters);
        assert_eq!(report.unmatched_actual, 1);
        assert_eq!(report.pairs.len(), 3);
    }

    #[test]
    fn displaced_centroids_measured() {
        let ds = toy_dataset();
        // Shift every found cluster by (0.5, 0) by adding a phantom offset:
        // construct from actual points shifted.
        let found: Vec<Cf> = ds
            .clusters
            .iter()
            .map(|c| {
                let centroid = c.cf.centroid();
                let shifted = birch_core::Point::xy(centroid[0] + 0.5, centroid[1]);
                let mut cf = Cf::empty(2);
                for _ in 0..c.n {
                    cf.add_point(&shifted);
                }
                cf
            })
            .collect();
        let report = match_clusters(&found, &ds.clusters);
        assert!((report.mean_centroid_distance - 0.5).abs() < 0.05);
        // 0.5 > 0.25 * radius(≈1): not "well located".
        assert!(report.well_located_fraction < 0.5);
    }

    #[test]
    #[should_panic(expected = "no found clusters")]
    fn empty_found_panics() {
        let ds = toy_dataset();
        let _ = match_clusters(&[], &ds.clusters);
    }
}
