//! Evaluation machinery for the BIRCH reproduction: quality metrics,
//! actual-vs-found cluster matching, and visualization.
//!
//! * [`quality`] — the paper's §6.4 quality measurement: *"the weighted
//!   average diameter of the clusters (denoted as D); the smaller the
//!   better the quality"*, plus its radius sibling and label-based scores
//!   (Adjusted Rand Index, purity).
//! * [`matching`] — greedy assignment of found clusters to the generator's
//!   actual clusters, giving the centroid-displacement and size-error
//!   columns the paper's §6.4 discussion reports.
//! * [`visualize`] — ASCII/CSV renditions of cluster layouts, the analogue
//!   of the paper's Figs. 6–8 circle plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matching;
pub mod quality;
pub mod visualize;
