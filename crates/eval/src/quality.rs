//! Clustering quality metrics.
//!
//! The paper's headline quality number (§6.4) is the **weighted average
//! diameter** `D` of the found clusters — each cluster's diameter squared,
//! weighted by its point count: smaller is tighter is better. Because CFs
//! are exact, BIRCH's reported `D` is exact too. We add the radius
//! analogue, and two ground-truth label scores (Adjusted Rand Index and
//! purity) for experiments where the generator's labels are available.

use birch_core::Cf;

/// Weighted average diameter:
/// `D̄ = sqrt( Σ nᵢ·Dᵢ² / Σ nᵢ )` over clusters with `nᵢ > 1`.
///
/// Returns 0.0 when no cluster has at least two points.
#[must_use]
pub fn weighted_average_diameter(clusters: &[Cf]) -> f64 {
    weighted_average(clusters, Cf::diameter)
}

/// Weighted average radius: like [`weighted_average_diameter`] with `R`.
#[must_use]
pub fn weighted_average_radius(clusters: &[Cf]) -> f64 {
    weighted_average(clusters, Cf::radius)
}

fn weighted_average(clusters: &[Cf], stat: impl Fn(&Cf) -> f64) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in clusters {
        if c.n() > 1.0 {
            let s = stat(c);
            num += c.n() * s * s;
            den += c.n();
        }
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

/// Adjusted Rand Index between two labelings over the same points.
/// `None` labels (noise / discarded outliers) are skipped pairwise — only
/// points labeled in *both* clusterings contribute.
///
/// Ranges in `[-1, 1]`; 1 is perfect agreement, ~0 is chance level.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
#[must_use]
pub fn adjusted_rand_index(a: &[Option<usize>], b: &[Option<usize>]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must cover the same points");
    // Contingency table over jointly labeled points.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (x, y) in a.iter().zip(b) {
        if let (Some(x), Some(y)) = (x, y) {
            pairs.push((*x, *y));
        }
    }
    if pairs.len() < 2 {
        return 1.0; // trivially consistent
    }
    let max_a = pairs.iter().map(|p| p.0).max().unwrap_or(0) + 1;
    let max_b = pairs.iter().map(|p| p.1).max().unwrap_or(0) + 1;
    let mut table = vec![0u64; max_a * max_b];
    let mut row = vec![0u64; max_a];
    let mut col = vec![0u64; max_b];
    for &(x, y) in &pairs {
        table[x * max_b + y] += 1;
        row[x] += 1;
        col[y] += 1;
    }
    let choose2 = |x: u64| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_table: f64 = table.iter().map(|&v| choose2(v)).sum();
    let sum_row: f64 = row.iter().map(|&v| choose2(v)).sum();
    let sum_col: f64 = col.iter().map(|&v| choose2(v)).sum();
    let total = choose2(pairs.len() as u64);
    let expected = sum_row * sum_col / total;
    let max_index = 0.5 * (sum_row + sum_col);
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0;
    }
    (sum_table - expected) / (max_index - expected)
}

/// Purity of clustering `found` against ground truth `truth`: the fraction
/// of jointly labeled points whose found-cluster's majority truth class
/// matches their own. In `[0, 1]`; 1 means every found cluster is pure.
///
/// # Panics
///
/// Panics if the labelings have different lengths.
#[must_use]
pub fn purity(found: &[Option<usize>], truth: &[Option<usize>]) -> f64 {
    assert_eq!(
        found.len(),
        truth.len(),
        "labelings must cover the same points"
    );
    use std::collections::HashMap;
    let mut per_cluster: HashMap<usize, HashMap<usize, u64>> = HashMap::new();
    let mut total = 0u64;
    for (f, t) in found.iter().zip(truth) {
        if let (Some(f), Some(t)) = (f, t) {
            *per_cluster.entry(*f).or_default().entry(*t).or_default() += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 1.0;
    }
    let majority_sum: u64 = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use birch_core::Point;

    fn cf_of(raw: &[[f64; 2]]) -> Cf {
        let pts: Vec<Point> = raw.iter().map(|&[x, y]| Point::xy(x, y)).collect();
        Cf::from_points(&pts)
    }

    #[test]
    fn weighted_diameter_single_cluster() {
        let c = cf_of(&[[0.0, 0.0], [6.0, 0.0]]);
        assert!((weighted_average_diameter(std::slice::from_ref(&c)) - 6.0).abs() < 1e-12);
        assert!((weighted_average_radius(&[c]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighting_by_cluster_size() {
        // Big tight cluster + small loose cluster: the weighted average
        // leans towards the big one.
        let mut big_pts = Vec::new();
        for i in 0..100 {
            big_pts.push([f64::from(i % 2) * 0.1, 0.0]);
        }
        let big = cf_of(&big_pts);
        let small = cf_of(&[[50.0, 0.0], [60.0, 0.0]]);
        let d = weighted_average_diameter(&[big.clone(), small.clone()]);
        assert!(d < 2.0, "weighted {d}");
        // Unweighted mean of diameters would be ~5.03.
        let plain = (big.diameter() + small.diameter()) / 2.0;
        assert!(plain > 5.0);
    }

    #[test]
    fn singleton_clusters_ignored() {
        let s = cf_of(&[[1.0, 1.0]]);
        assert_eq!(weighted_average_diameter(&[s]), 0.0);
    }

    #[test]
    fn ari_perfect_agreement() {
        let a: Vec<Option<usize>> = vec![Some(0), Some(0), Some(1), Some(1), Some(2)];
        // Same partition, different label names.
        let b: Vec<Option<usize>> = vec![Some(5), Some(5), Some(3), Some(3), Some(7)];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_total_disagreement_near_zero_or_negative() {
        // One big cluster vs all-singletons.
        let a: Vec<Option<usize>> = vec![Some(0); 8];
        let b: Vec<Option<usize>> = (0..8).map(Some).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn ari_random_labels_near_zero() {
        let a: Vec<Option<usize>> = (0..1000).map(|i| Some(i % 4)).collect();
        let b: Vec<Option<usize>> = (0..1000).map(|i| Some((i * 7 + 3) % 5)).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "ari {ari}");
    }

    #[test]
    fn ari_skips_none_pairs() {
        let a = vec![Some(0), Some(0), None, Some(1)];
        let b = vec![Some(1), Some(1), Some(0), Some(0)];
        // Jointly labeled: indices 0,1,3 -> partitions {0,1}{3} vs {0,1}{3}.
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn purity_pure_and_mixed() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let pure = vec![Some(9), Some(9), Some(4), Some(4)];
        assert!((purity(&pure, &truth) - 1.0).abs() < 1e-12);
        let mixed = vec![Some(0), Some(0), Some(0), Some(0)];
        assert!((purity(&mixed, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn length_mismatch_panics() {
        let _ = adjusted_rand_index(&[Some(0)], &[Some(0), Some(1)]);
    }
}
