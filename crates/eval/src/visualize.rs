//! Cluster visualization — the analogue of the paper's Figs. 6–8.
//!
//! The paper presents clusters *"as circles whose center is the centroid,
//! whose radius is the cluster radius, and whose label is the number of
//! points in the cluster"*. [`ascii_cluster_plot`] renders exactly that on
//! a character grid for terminal inspection; [`clusters_to_csv`] dumps the
//! same data for external plotting.

use birch_core::Cf;
use std::fmt::Write as _;

/// Renders clusters as circles on a `cols × rows` ASCII canvas.
///
/// Each cluster is drawn as an `o` ring of its radius around a `*` center
/// (the densest cluster's center gets `#`). Overlapping glyphs keep the
/// earliest-drawn cluster — good enough for eyeballing layout, which is
/// all the paper's figures do.
///
/// # Panics
///
/// Panics if `clusters` is empty or the canvas is degenerate.
#[must_use]
pub fn ascii_cluster_plot(clusters: &[Cf], cols: usize, rows: usize) -> String {
    assert!(!clusters.is_empty(), "nothing to plot");
    assert!(cols >= 8 && rows >= 4, "canvas too small");

    // World bounds: centroids padded by the largest radius.
    let centroids: Vec<(f64, f64)> = clusters
        .iter()
        .map(|c| {
            let p = c.centroid();
            (p[0], p[1])
        })
        .collect();
    let max_r = clusters.iter().map(Cf::radius).fold(0.0f64, f64::max);
    let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &centroids {
        lo_x = lo_x.min(x - max_r);
        hi_x = hi_x.max(x + max_r);
        lo_y = lo_y.min(y - max_r);
        hi_y = hi_y.max(y + max_r);
    }
    let w = (hi_x - lo_x).max(1e-9);
    let h = (hi_y - lo_y).max(1e-9);

    let mut canvas = vec![vec![b' '; cols]; rows];
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - lo_x) / w * (cols - 1) as f64).round() as usize;
        // Rows top-down: bigger y = nearer the top.
        let cy = ((hi_y - y) / h * (rows - 1) as f64).round() as usize;
        (cx.min(cols - 1), cy.min(rows - 1))
    };

    let densest = clusters
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.n().total_cmp(&b.1.n()))
        .map(|(i, _)| i)
        .unwrap_or(0);

    for (i, c) in clusters.iter().enumerate() {
        let (x, y) = centroids[i];
        let r = c.radius();
        // Ring: 32 samples around the circle.
        for s in 0..32 {
            let a = std::f64::consts::TAU * f64::from(s) / 32.0;
            let (cx, cy) = to_cell(x + r * a.cos(), y + r * a.sin());
            if canvas[cy][cx] == b' ' {
                canvas[cy][cx] = b'o';
            }
        }
        let (cx, cy) = to_cell(x, y);
        canvas[cy][cx] = if i == densest { b'#' } else { b'*' };
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in canvas {
        out.push_str(std::str::from_utf8(&row).expect("ascii only"));
        out.push('\n');
    }
    out
}

/// Serializes clusters as CSV: `index,n,centroid...,radius,diameter`.
#[must_use]
pub fn clusters_to_csv(clusters: &[Cf]) -> String {
    let mut out = String::new();
    let dim = clusters.first().map_or(0, Cf::dim);
    out.push_str("index,n");
    for d in 0..dim {
        let _ = write!(out, ",c{d}");
    }
    out.push_str(",radius,diameter\n");
    for (i, c) in clusters.iter().enumerate() {
        let _ = write!(out, "{i},{}", c.n());
        let centroid = c.centroid();
        for v in centroid.iter() {
            let _ = write!(out, ",{v:.6}");
        }
        let _ = writeln!(out, ",{:.6},{:.6}", c.radius(), c.diameter());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use birch_core::Point;

    fn blob(cx: f64, cy: f64, spread: f64, n: usize) -> Cf {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let a = i as f64 * 2.399_963;
                Point::xy(cx + spread * a.cos(), cy + spread * a.sin())
            })
            .collect();
        Cf::from_points(&pts)
    }

    #[test]
    fn plot_contains_markers() {
        let clusters = vec![blob(0.0, 0.0, 1.0, 10), blob(20.0, 20.0, 1.0, 50)];
        let plot = ascii_cluster_plot(&clusters, 40, 20);
        assert!(plot.contains('#'), "densest marker missing:\n{plot}");
        assert!(plot.contains('*'), "center marker missing:\n{plot}");
        assert!(plot.contains('o'), "ring missing:\n{plot}");
        assert_eq!(plot.lines().count(), 20);
        assert!(plot.lines().all(|l| l.len() == 40));
    }

    #[test]
    fn separated_clusters_land_in_different_corners() {
        let clusters = vec![blob(0.0, 0.0, 0.5, 10), blob(100.0, 100.0, 0.5, 10)];
        let plot = ascii_cluster_plot(&clusters, 40, 20);
        let lines: Vec<&str> = plot.lines().collect();
        // High-y cluster near the top, low-y near the bottom.
        let top_has_center = lines[..10]
            .iter()
            .any(|l| l.contains('*') || l.contains('#'));
        let bottom_has_center = lines[10..]
            .iter()
            .any(|l| l.contains('*') || l.contains('#'));
        assert!(top_has_center && bottom_has_center, "{plot}");
    }

    #[test]
    fn csv_shape() {
        let clusters = vec![blob(0.0, 0.0, 1.0, 10)];
        let csv = clusters_to_csv(&clusters);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "index,n,c0,c1,radius,diameter");
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,10,"));
        assert_eq!(row.split(',').count(), 6);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_plot_panics() {
        let _ = ascii_cluster_plot(&[], 40, 20);
    }
}
