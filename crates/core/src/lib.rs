//! BIRCH — Balanced Iterative Reducing and Clustering using Hierarchies.
//!
//! A faithful implementation of the clustering method of Zhang,
//! Ramakrishnan & Livny (SIGMOD 1996): cluster very large metric datasets
//! in a single scan under a fixed memory budget, by incrementally
//! maintaining a height-balanced tree of Clustering Features (CFs) and then
//! clustering the leaf summaries globally.
//!
//! The pipeline has four phases (paper Fig. 1):
//!
//! 1. **Phase 1** ([`phase1`]) — scan the data once, building a CF-tree
//!    within the memory budget, rebuilding with a larger threshold whenever
//!    memory runs out, optionally spilling outliers to disk.
//! 2. **Phase 2** ([`phase2`], optional) — condense the tree so the number
//!    of leaf entries suits the global algorithm.
//! 3. **Phase 3** ([`phase3`]) — cluster the leaf entries with an
//!    agglomerative hierarchical algorithm adapted to weighted CFs.
//! 4. **Phase 4** ([`phase4`], optional) — refine: reassign the original
//!    points to the Phase-3 centroids, label them, and discard outliers.
//!
//! Phase 1 can also run sharded across worker threads ([`parallel`]) —
//! exact in the totals by the CF Additivity Theorem — via
//! [`BirchConfig::threads`].
//!
//! The one-stop entry point is [`Birch`]:
//!
//! ```
//! use birch_core::{Birch, BirchConfig, Point};
//!
//! let pts: Vec<Point> = (0..200)
//!     .map(|i| {
//!         let c = f64::from(i % 2) * 20.0;
//!         Point::xy(c + f64::from(i % 7) * 0.05, c - f64::from(i % 5) * 0.05)
//!     })
//!     .collect();
//! let model = Birch::new(BirchConfig::with_clusters(2)).fit(&pts).unwrap();
//! assert_eq!(model.clusters().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod birch;
pub mod cf;
pub mod config;
pub mod distance;
pub mod hierarchical;
pub mod node;
pub mod obs;
pub mod outlier;
pub mod parallel;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod phase4;
pub mod point;
pub mod quad;
pub mod rebuild;
#[cfg(all(feature = "simd", not(feature = "classic-cf")))]
mod simd;
pub mod stream;
pub mod threshold;
pub mod tree;

pub use audit::{audit, audit_with, AuditOptions, AuditReport, AuditViolation, ViolationKind};
pub use birch::{Birch, BirchModel, ClusterSummary, RunStats, METRICS_SCHEMA_VERSION};
pub use cf::Cf;
pub use config::BirchConfig;
pub use distance::{DistanceMetric, ThresholdKind};
pub use obs::mem::MemoryGauge;
pub use obs::prom::prometheus_exposition;
pub use obs::span::{SpanNode, SpanReport};
pub use obs::{
    Event, EventSink, MetricsRecorder, MetricsReport, NoopSink, ShardReport, TraceLog, TraceStats,
};
pub use parallel::ParallelPhase1Output;
pub use point::Point;
pub use stream::StreamingBirch;
pub use tree::TreeHealth;
pub use tree::{CfTree, InsertOutcome, TreeParams};
