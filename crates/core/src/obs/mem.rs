//! Memory-budget accounting against the paper's M.
//!
//! BIRCH's contract is "the best clustering within a fixed amount of
//! memory M" (§1, §5): Phase 1 *reacts* to the page budget — rebuilds
//! when `node_count × P > M` — but until now nothing measured how close
//! the process actually sits to M in bytes, nor what the real (Rust-side)
//! footprint of a "page" is. [`MemoryGauge`] tracks live and high-water
//! bytes for four components:
//!
//! * `pager_pages` — `node_count × page_bytes`, the paper's own cost
//!   model. This is the component compared against `budget_bytes`
//!   (= `BirchConfig::memory_bytes`); its peak is `mem_highwater_bytes`
//!   in the JSON.
//! * `node_arena` — what the tree's nodes *really* occupy on the heap:
//!   arena `Vec` capacity plus per-node entry storage.
//! * `cf_blocks` — the SoA mirror slabs, i.e. the cache-residency
//!   overhead the insert kernels cost in space.
//! * `outlier_disk` — bytes parked on the simulated outlier/delay disks
//!   (budgeted separately by `disk_bytes`, reported here for the full
//!   picture).
//! * `page_spill` — bytes of evicted CF-tree nodes in the out-of-core
//!   spill file (zero unless `out_of_core` is on). Spilled pages are
//!   exactly what does *not* count against M: in paged runs the budgeted
//!   `pager_pages` component follows the resident count instead.
//!
//! *Headroom* (`budget − peak(pager_pages)`) is a first-class measurable,
//! and so is its violation: `overrun_bytes() > 0` names exactly how far a
//! run exceeded M. A transient overrun of about one page per tree level
//! is legitimate — the rebuild trigger fires *after* the split that
//! crossed the budget — and the gauge makes that transient visible
//! instead of hiding it.

use crate::tree::CfTree;

/// Live/high-water byte pair for one accounted component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemComponent {
    /// Bytes held at the last sample.
    pub live_bytes: u64,
    /// Largest sampled value over the run.
    pub peak_bytes: u64,
}

impl MemComponent {
    /// Records a new live value, ratcheting the peak.
    pub fn record(&mut self, live: u64) {
        self.live_bytes = live;
        self.peak_bytes = self.peak_bytes.max(live);
    }

    /// Serializes as a `{"live_bytes":…,"peak_bytes":…}` JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"live_bytes\":{},\"peak_bytes\":{}}}",
            self.live_bytes, self.peak_bytes
        )
    }
}

/// Byte accounting of one run against budget M (see the module docs for
/// the component inventory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryGauge {
    /// Budget M in bytes (`BirchConfig::memory_bytes`).
    pub budget_bytes: u64,
    /// Simulated page bytes (`node_count × page_bytes`) — the component
    /// held against `budget_bytes`.
    pub pager_pages: MemComponent,
    /// Real heap bytes of the node arena and entry storage.
    pub node_arena: MemComponent,
    /// Real heap bytes of the SoA [`CfBlock`] mirrors.
    ///
    /// [`CfBlock`]: crate::distance::CfBlock
    pub cf_blocks: MemComponent,
    /// Bytes parked on the simulated outlier/delay disks.
    pub outlier_disk: MemComponent,
    /// Bytes of evicted tree nodes in the out-of-core page spill file
    /// (zero for in-core runs).
    pub page_spill: MemComponent,
}

impl MemoryGauge {
    /// A gauge with budget M set and nothing sampled yet.
    #[must_use]
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            ..Self::default()
        }
    }

    /// Samples the tree (and the current outlier-disk occupancy) into the
    /// gauge. O(nodes) — callers sample on page-count changes, rebuilds
    /// and phase boundaries, not per point.
    pub fn sample_tree(&mut self, tree: &CfTree, page_bytes: usize, outlier_bytes: u64) {
        let fp = tree.memory_footprint();
        self.node_arena.record(fp.arena_bytes);
        self.cf_blocks.record(fp.block_bytes);
        self.pager_pages
            .record((tree.node_count() * page_bytes) as u64);
        self.outlier_disk.record(outlier_bytes);
        // In-core: nothing is spilled, but keep the live value honest.
        self.page_spill.record(0);
    }

    /// Paged (out-of-core) variant of [`MemoryGauge::sample_tree`]: the
    /// budgeted `pager_pages` component follows the *resident* page
    /// count — what actually occupies budget M — and the evicted
    /// remainder is accounted as `page_spill`.
    pub fn sample_paged_tree(
        &mut self,
        tree: &CfTree,
        page_bytes: usize,
        outlier_bytes: u64,
        resident_nodes: usize,
        spill_file_bytes: u64,
    ) {
        let fp = tree.memory_footprint();
        self.node_arena.record(fp.arena_bytes);
        self.cf_blocks.record(fp.block_bytes);
        self.pager_pages
            .record((resident_nodes * page_bytes) as u64);
        self.outlier_disk.record(outlier_bytes);
        self.page_spill.record(spill_file_bytes);
    }

    /// The page high-water mark in bytes — schema v4's
    /// `mem_highwater_bytes`, the number held against budget M.
    #[must_use]
    pub fn highwater_bytes(&self) -> u64 {
        self.pager_pages.peak_bytes
    }

    /// Budget minus the page high-water mark (0 when over budget).
    #[must_use]
    pub fn headroom_bytes(&self) -> u64 {
        self.budget_bytes.saturating_sub(self.highwater_bytes())
    }

    /// How far the page high-water mark exceeded budget M (0 when the
    /// budget held). Non-zero values are *reported, not panicked on*: the
    /// rebuild trigger fires after the allocation that crossed M, so a
    /// transient of ~one page per tree level is the expected shape.
    #[must_use]
    pub fn overrun_bytes(&self) -> u64 {
        self.highwater_bytes().saturating_sub(self.budget_bytes)
    }

    /// Folds in a gauge from a *concurrent* stage (a parallel shard):
    /// peaks and lives sum — the shards held their memory at the same
    /// time. The budget keeps `self`'s value (the run-level M).
    pub fn absorb_concurrent(&mut self, other: &MemoryGauge) {
        for (mine, theirs) in self.components_mut().into_iter().zip(other.components()) {
            mine.live_bytes += theirs.live_bytes;
            mine.peak_bytes += theirs.peak_bytes;
        }
    }

    /// Folds in a gauge from a *sequential* stage (e.g. the merge tree
    /// built after the shards are done): peaks max, live follows the
    /// later stage. The budget keeps `self`'s value.
    pub fn absorb_sequential(&mut self, other: &MemoryGauge) {
        for (mine, theirs) in self.components_mut().into_iter().zip(other.components()) {
            mine.live_bytes = theirs.live_bytes;
            mine.peak_bytes = mine.peak_bytes.max(theirs.peak_bytes);
        }
    }

    fn components(&self) -> [&MemComponent; 5] {
        [
            &self.pager_pages,
            &self.node_arena,
            &self.cf_blocks,
            &self.outlier_disk,
            &self.page_spill,
        ]
    }

    fn components_mut(&mut self) -> [&mut MemComponent; 5] {
        [
            &mut self.pager_pages,
            &mut self.node_arena,
            &mut self.cf_blocks,
            &mut self.outlier_disk,
            &mut self.page_spill,
        ]
    }

    /// Component names paired with their values, in stable export order
    /// (used by the Prometheus exposition).
    #[must_use]
    pub fn named_components(&self) -> [(&'static str, MemComponent); 5] {
        [
            ("pager_pages", self.pager_pages),
            ("node_arena", self.node_arena),
            ("cf_blocks", self.cf_blocks),
            ("outlier_disk", self.outlier_disk),
            ("page_spill", self.page_spill),
        ]
    }

    /// Serializes as the schema-v6 `"memory"` JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"budget_bytes\":{},\"mem_highwater_bytes\":{},\"headroom_bytes\":{},\
             \"overrun_bytes\":{},\"budget_held\":{},\"pager_pages\":{},\"node_arena\":{},\
             \"cf_blocks\":{},\"outlier_disk\":{},\"page_spill\":{}}}",
            self.budget_bytes,
            self.highwater_bytes(),
            self.headroom_bytes(),
            self.overrun_bytes(),
            self.overrun_bytes() == 0,
            self.pager_pages.to_json(),
            self.node_arena.to_json(),
            self.cf_blocks.to_json(),
            self.outlier_disk.to_json(),
            self.page_spill.to_json(),
        )
    }

    /// Human-readable multi-line table for `birch-report`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "budget M             {:>12} bytes\n\
             page high-water      {:>12} bytes ({} of budget)\n\
             headroom             {:>12} bytes\n",
            self.budget_bytes,
            self.highwater_bytes(),
            if self.budget_bytes == 0 {
                "n/a".to_string()
            } else {
                format!(
                    "{:.1}%",
                    100.0 * self.highwater_bytes() as f64 / self.budget_bytes as f64
                )
            },
            self.headroom_bytes(),
        ));
        if self.overrun_bytes() > 0 {
            out.push_str(&format!(
                "OVERRUN              {:>12} bytes past budget M\n",
                self.overrun_bytes()
            ));
        }
        for (name, c) in self.named_components() {
            out.push_str(&format!(
                "{name:<20} {:>12} live / {:>12} peak\n",
                c.live_bytes, c.peak_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn tiny_tree(points: usize) -> CfTree {
        let mut t = CfTree::new(TreeParams {
            leaf_capacity: 3,
            branching: 3,
            ..TreeParams::for_dim(2)
        });
        for i in 0..points {
            let x = i as f64;
            t.insert_point(&Point::xy(x * 10.0, x * 10.0));
        }
        t
    }

    #[test]
    fn record_ratchets_peak() {
        let mut c = MemComponent::default();
        c.record(100);
        c.record(40);
        assert_eq!(c.live_bytes, 40);
        assert_eq!(c.peak_bytes, 100);
        c.record(250);
        assert_eq!(c.peak_bytes, 250);
    }

    #[test]
    fn sample_tree_fills_all_components() {
        let tree = tiny_tree(20);
        let mut g = MemoryGauge::with_budget(1 << 20);
        g.sample_tree(&tree, 1024, 512);
        assert_eq!(
            g.pager_pages.live_bytes,
            (tree.node_count() * 1024) as u64,
            "pages follow the paper's cost model"
        );
        assert!(g.node_arena.live_bytes > 0);
        assert!(g.cf_blocks.live_bytes > 0);
        assert_eq!(g.outlier_disk.live_bytes, 512);
        assert_eq!(g.highwater_bytes(), g.pager_pages.peak_bytes);
        assert_eq!(g.headroom_bytes(), (1 << 20) - g.highwater_bytes());
        assert_eq!(g.overrun_bytes(), 0);
    }

    #[test]
    fn paged_sample_budgets_residency_not_tree_size() {
        let tree = tiny_tree(50);
        let mut g = MemoryGauge::with_budget(4 * 1024);
        // 3 resident pages of a much larger tree, the rest spilled.
        g.sample_paged_tree(&tree, 1024, 0, 3, 9000);
        assert_eq!(g.pager_pages.live_bytes, 3 * 1024);
        assert_eq!(g.page_spill.live_bytes, 9000);
        assert_eq!(g.overrun_bytes(), 0, "resident fits the budget");
        let json = g.to_json();
        assert!(
            json.contains("\"page_spill\":{\"live_bytes\":9000"),
            "{json}"
        );
        // Back in core: the spill component's live value drops to zero.
        g.sample_tree(&tree, 1024, 0);
        assert_eq!(g.page_spill.live_bytes, 0);
        assert_eq!(g.page_spill.peak_bytes, 9000);
    }

    #[test]
    fn footprint_grows_with_the_tree() {
        let small = tiny_tree(4).memory_footprint();
        let large = tiny_tree(200).memory_footprint();
        assert!(large.arena_bytes > small.arena_bytes);
        assert!(large.block_bytes > small.block_bytes);
    }

    #[test]
    fn overrun_is_reported_not_clamped_away() {
        let mut g = MemoryGauge::with_budget(1000);
        g.pager_pages.record(1500);
        assert_eq!(g.overrun_bytes(), 500);
        assert_eq!(g.headroom_bytes(), 0);
        let json = g.to_json();
        assert!(json.contains("\"overrun_bytes\":500"), "{json}");
        assert!(json.contains("\"budget_held\":false"), "{json}");
        assert!(g.render().contains("OVERRUN"), "{}", g.render());
    }

    #[test]
    fn concurrent_absorb_sums_sequential_maxes() {
        let mut a = MemoryGauge::with_budget(4096);
        a.pager_pages.record(1000);
        let mut b = MemoryGauge::default();
        b.pager_pages.record(700);
        a.absorb_concurrent(&b);
        assert_eq!(a.pager_pages.peak_bytes, 1700, "shards coexist: peaks add");
        assert_eq!(a.budget_bytes, 4096, "budget is the run's, not summed");

        let mut late = MemoryGauge::default();
        late.pager_pages.record(1200);
        a.absorb_sequential(&late);
        assert_eq!(a.pager_pages.peak_bytes, 1700, "sequential stage maxes");
        assert_eq!(a.pager_pages.live_bytes, 1200, "live follows later stage");
    }

    #[test]
    fn health_reports_levels_and_utilization() {
        let tree = tiny_tree(30);
        let h = tree.health();
        assert_eq!(h.height, tree.height());
        assert_eq!(h.levels.len(), h.height);
        assert_eq!(h.nodes, tree.node_count());
        assert_eq!(h.leaf_entries, tree.leaf_entry_count());
        assert_eq!(
            h.levels.iter().map(|l| l.nodes).sum::<usize>(),
            h.nodes,
            "every node appears on exactly one level"
        );
        assert!(h.leaf_utilization > 0.0 && h.leaf_utilization <= 1.0);
        for l in &h.levels {
            assert!(l.min_entries <= l.max_entries);
            assert!(l.max_entries <= l.capacity_per_node);
        }
        let json = h.to_json();
        assert!(json.contains("\"leaf_utilization\":"), "{json}");
        assert!(json.contains("\"levels\":[{\"level\":0,"), "{json}");
    }

    #[test]
    fn empty_tree_health_is_sane() {
        let tree = CfTree::new(TreeParams::for_dim(2));
        let h = tree.health();
        assert_eq!(h.height, 1);
        assert_eq!(h.leaf_nodes, 1);
        assert_eq!(h.leaf_entries, 0);
        assert_eq!(h.leaf_utilization, 0.0);
        assert_eq!(h.levels[0].min_entries, 0);
    }
}
