//! Prometheus-style text exposition of a run's statistics.
//!
//! One run, one scrape: [`prometheus_exposition`] renders a
//! [`RunStats`] in the text format Prometheus (and everything that
//! speaks it) ingests — `# TYPE` headers, `snake_case` metric names
//! under a `birch_` prefix, labels for enumerable dimensions (phase,
//! I/O op, memory component, tree level, span path). The CLI writes it
//! via `--metrics-prom <path>`; the same numbers appear in the schema-v4
//! JSON, so the two exports never disagree.
//!
//! This is a *snapshot* exposition (counters since the start of the
//! run), not a long-lived registry: BIRCH runs are batch jobs, and the
//! natural scrape is "read the file the run left behind".

use crate::birch::RunStats;
use crate::obs::span::SpanNode;
use std::fmt::Write as _;

/// Formats an `f64` the way the Prometheus text format expects
/// (`NaN`/`+Inf`/`-Inf` for non-finite values).
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn span_lines(
    out: &mut String,
    metric: &str,
    node: &SpanNode,
    path: &mut String,
    f: &dyn Fn(&SpanNode) -> String,
) {
    let rollback = path.len();
    if !path.is_empty() {
        path.push('/');
    }
    path.push_str(node.name);
    let _ = writeln!(out, "{metric}{{path=\"{path}\"}} {}", f(node));
    for child in &node.children {
        span_lines(out, metric, child, path, f);
    }
    path.truncate(rollback);
}

/// Renders `stats` as a Prometheus text exposition (one metric family
/// per logical quantity; labels carry the enumerable dimensions).
#[must_use]
pub fn prometheus_exposition(stats: &RunStats) -> String {
    let mut out = String::with_capacity(4096);
    let m = &stats.metrics;

    header(
        &mut out,
        "birch_points_scanned",
        "counter",
        "Input records scanned by Phase 1.",
    );
    let _ = writeln!(out, "birch_points_scanned {}", stats.points_scanned);

    header(
        &mut out,
        "birch_threads",
        "gauge",
        "Phase-1 worker threads (1 = serial scan).",
    );
    let _ = writeln!(out, "birch_threads {}", stats.threads.max(1));

    header(
        &mut out,
        "birch_phase_seconds",
        "gauge",
        "Wall time per pipeline phase.",
    );
    for (phase, t) in [
        ("phase1", stats.phase1_time),
        ("merge", stats.merge_time),
        ("phase2", stats.phase2_time),
        ("phase3", stats.phase3_time),
        ("phase4", stats.phase4_time),
    ] {
        let _ = writeln!(
            out,
            "birch_phase_seconds{{phase=\"{phase}\"}} {}",
            num(t.as_secs_f64())
        );
    }

    header(
        &mut out,
        "birch_tree_ops_total",
        "counter",
        "Tree mutations over the run (inserts, splits, refinements, rebuilds).",
    );
    for (op, v) in [
        ("inserts", m.inserts),
        ("splits", m.splits),
        ("merge_refinements", m.merge_refinements),
        ("rebuilds", m.rebuilds),
        ("thresholds_raised", m.thresholds_raised),
    ] {
        let _ = writeln!(out, "birch_tree_ops_total{{op=\"{op}\"}} {v}");
    }

    header(
        &mut out,
        "birch_distance_calls_total",
        "counter",
        "Distance evaluations in the insert hot path (pruned = skipped by the D0 bound).",
    );
    let _ = writeln!(
        out,
        "birch_distance_calls_total{{kind=\"performed\"}} {}",
        m.distance_calls
    );
    let _ = writeln!(
        out,
        "birch_distance_calls_total{{kind=\"pruned\"}} {}",
        m.distance_calls_pruned
    );

    header(
        &mut out,
        "birch_phase3_pairs_total",
        "counter",
        "Phase 3 agglomerator candidate pairs (pruned = skipped by the CF-statistic bound).",
    );
    let _ = writeln!(
        out,
        "birch_phase3_pairs_total{{kind=\"evaluated\"}} {}",
        m.phase3_pairs_evaluated
    );
    let _ = writeln!(
        out,
        "birch_phase3_pairs_total{{kind=\"pruned\"}} {}",
        m.phase3_pairs_pruned
    );

    header(
        &mut out,
        "birch_outliers_total",
        "counter",
        "Outlier-entry dispositions (spilled, reabsorbed, reinserted, folded back, discarded).",
    );
    for (op, v) in [
        ("spilled", m.outliers_spilled),
        ("reabsorbed", m.outliers_reabsorbed),
        ("reinserted", m.outliers_reinserted),
        ("folded_back", m.outliers_folded_back),
        ("discarded", m.outliers_discarded),
    ] {
        let _ = writeln!(out, "birch_outliers_total{{disposition=\"{op}\"}} {v}");
    }

    header(
        &mut out,
        "birch_io_total",
        "counter",
        "Simulated-disk traffic; attempts - writes = rejections, faults_injected of those were injected.",
    );
    for (op, v) in [
        ("disk_writes", stats.io.disk_writes),
        ("disk_reads", stats.io.disk_reads),
        ("disk_bytes_written", stats.io.disk_bytes_written),
        ("disk_bytes_read", stats.io.disk_bytes_read),
        ("disk_write_attempts", stats.io.disk_write_attempts),
        ("disk_faults_injected", stats.io.disk_faults_injected),
    ] {
        let _ = writeln!(out, "birch_io_total{{op=\"{op}\"}} {v}");
    }

    header(
        &mut out,
        "birch_peak_pages",
        "gauge",
        "Page high-water mark (concurrent peak for sharded runs).",
    );
    let _ = writeln!(out, "birch_peak_pages {}", stats.io.peak_pages);

    header(
        &mut out,
        "birch_mem_budget_bytes",
        "gauge",
        "The memory budget M.",
    );
    let _ = writeln!(out, "birch_mem_budget_bytes {}", stats.memory.budget_bytes);
    header(
        &mut out,
        "birch_mem_highwater_bytes",
        "gauge",
        "Page high-water mark in bytes (held against M).",
    );
    let _ = writeln!(
        out,
        "birch_mem_highwater_bytes {}",
        stats.memory.highwater_bytes()
    );
    header(
        &mut out,
        "birch_mem_headroom_bytes",
        "gauge",
        "Budget minus high-water (0 when over).",
    );
    let _ = writeln!(
        out,
        "birch_mem_headroom_bytes {}",
        stats.memory.headroom_bytes()
    );
    header(
        &mut out,
        "birch_mem_overrun_bytes",
        "gauge",
        "High-water past M (reported, not clamped; ~1 page/level transient is expected).",
    );
    let _ = writeln!(
        out,
        "birch_mem_overrun_bytes {}",
        stats.memory.overrun_bytes()
    );
    header(
        &mut out,
        "birch_mem_component_bytes",
        "gauge",
        "Per-component live/peak bytes (pager pages, node arena, SoA blocks, outlier disk).",
    );
    for (name, c) in stats.memory.named_components() {
        let _ = writeln!(
            out,
            "birch_mem_component_bytes{{component=\"{name}\",kind=\"live\"}} {}",
            c.live_bytes
        );
        let _ = writeln!(
            out,
            "birch_mem_component_bytes{{component=\"{name}\",kind=\"peak\"}} {}",
            c.peak_bytes
        );
    }

    let h = &stats.tree_health;
    header(
        &mut out,
        "birch_tree_height",
        "gauge",
        "CF-tree height entering Phase 3 (1 = root is a leaf).",
    );
    let _ = writeln!(out, "birch_tree_height {}", h.height);
    header(&mut out, "birch_tree_nodes", "gauge", "Live tree nodes.");
    let _ = writeln!(out, "birch_tree_nodes {}", h.nodes);
    header(
        &mut out,
        "birch_tree_leaf_entries",
        "gauge",
        "CF entries across all leaves.",
    );
    let _ = writeln!(out, "birch_tree_leaf_entries {}", h.leaf_entries);
    header(
        &mut out,
        "birch_tree_utilization",
        "gauge",
        "Node fill against capacity, in [0,1].",
    );
    let _ = writeln!(
        out,
        "birch_tree_utilization{{kind=\"leaf\"}} {}",
        num(h.leaf_utilization)
    );
    let _ = writeln!(
        out,
        "birch_tree_utilization{{kind=\"interior\"}} {}",
        num(h.interior_utilization)
    );
    header(
        &mut out,
        "birch_tree_rate",
        "gauge",
        "Mutation rates: splits and refinements per 1k inserts, rebuilds per 100k points.",
    );
    for (kind, v) in [
        ("splits_per_1k_inserts", h.split_rate_per_1k_inserts),
        ("merges_per_1k_inserts", h.merge_rate_per_1k_inserts),
        ("rebuilds_per_100k_points", h.rebuild_rate_per_100k_points),
    ] {
        let _ = writeln!(out, "birch_tree_rate{{kind=\"{kind}\"}} {}", num(v));
    }
    header(
        &mut out,
        "birch_tree_level_nodes",
        "gauge",
        "Nodes per tree level (root = level 0).",
    );
    for l in &h.levels {
        let _ = writeln!(
            out,
            "birch_tree_level_nodes{{level=\"{}\"}} {}",
            l.level, l.nodes
        );
    }
    header(
        &mut out,
        "birch_tree_level_utilization",
        "gauge",
        "Per-level entry fill against capacity, in [0,1].",
    );
    for l in &h.levels {
        let _ = writeln!(
            out,
            "birch_tree_level_utilization{{level=\"{}\"}} {}",
            l.level,
            num(l.utilization())
        );
    }

    if let Some(trace) = &stats.trace {
        header(
            &mut out,
            "birch_trace_capacity",
            "gauge",
            "Capacity of the attached trace ring.",
        );
        let _ = writeln!(out, "birch_trace_capacity {}", trace.capacity);
        header(
            &mut out,
            "birch_trace_dropped_total",
            "counter",
            "Events the trace ring evicted.",
        );
        let _ = writeln!(out, "birch_trace_dropped_total {}", trace.dropped);
    }

    if let Some(spans) = &stats.spans {
        header(
            &mut out,
            "birch_span_seconds",
            "gauge",
            "Total wall time per span path (inclusive of children).",
        );
        for root in &spans.roots {
            span_lines(
                &mut out,
                "birch_span_seconds",
                root,
                &mut String::new(),
                &|n| num(n.total.as_secs_f64()),
            );
        }
        header(
            &mut out,
            "birch_span_calls_total",
            "counter",
            "Invocations per span path.",
        );
        for root in &spans.roots {
            span_lines(
                &mut out,
                "birch_span_calls_total",
                root,
                &mut String::new(),
                &|n| n.calls.to_string(),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::span::{SpanNode, SpanReport};
    use std::time::Duration;

    fn sample_stats() -> RunStats {
        let mut s = RunStats {
            threads: 2,
            phase1_time: Duration::from_millis(1500),
            points_scanned: 1000,
            ..RunStats::default()
        };
        s.io.disk_writes = 7;
        s.io.disk_write_attempts = 9;
        s.io.disk_faults_injected = 2;
        s.memory.budget_bytes = 4096;
        s.memory.pager_pages.record(2048);
        s.metrics.inserts = 900;
        s.metrics.splits = 12;
        s.metrics.phase3_pairs_evaluated = 77;
        s.metrics.phase3_pairs_pruned = 33;
        s
    }

    #[test]
    fn exposition_has_type_headers_and_core_metrics() {
        let text = prometheus_exposition(&sample_stats());
        assert!(
            text.contains("# TYPE birch_points_scanned counter"),
            "{text}"
        );
        assert!(text.contains("birch_points_scanned 1000"), "{text}");
        assert!(
            text.contains("birch_phase_seconds{phase=\"phase1\"} 1.5"),
            "{text}"
        );
        assert!(
            text.contains("birch_tree_ops_total{op=\"splits\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("birch_io_total{op=\"disk_write_attempts\"} 9"),
            "{text}"
        );
        assert!(
            text.contains("birch_io_total{op=\"disk_faults_injected\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("birch_phase3_pairs_total{kind=\"evaluated\"} 77"),
            "{text}"
        );
        assert!(
            text.contains("birch_phase3_pairs_total{kind=\"pruned\"} 33"),
            "{text}"
        );
        assert!(text.contains("birch_mem_budget_bytes 4096"), "{text}");
        assert!(text.contains("birch_mem_highwater_bytes 2048"), "{text}");
        assert!(text.contains("birch_mem_headroom_bytes 2048"), "{text}");
        assert!(
            text.contains(
                "birch_mem_component_bytes{component=\"pager_pages\",kind=\"peak\"} 2048"
            ),
            "{text}"
        );
    }

    #[test]
    fn every_sample_line_has_a_type_header() {
        // Grammar check: each non-comment line is `name{labels?} value`,
        // and its family appeared in a preceding # TYPE line.
        let text = prometheus_exposition(&sample_stats());
        let mut typed = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
            } else if !line.starts_with('#') && !line.is_empty() {
                let name = line.split(['{', ' ']).next().unwrap();
                assert!(typed.contains(name), "sample before TYPE header: {line}");
                let value = line.rsplit(' ').next().unwrap();
                assert!(
                    value.parse::<f64>().is_ok() || value == "NaN" || value.ends_with("Inf"),
                    "unparseable value in: {line}"
                );
            }
        }
    }

    #[test]
    fn spans_export_with_slash_paths() {
        let mut s = sample_stats();
        s.spans = Some(SpanReport {
            roots: vec![SpanNode {
                name: "phase1",
                calls: 1,
                total: Duration::from_secs(2),
                max: Duration::from_secs(2),
                children: vec![SpanNode {
                    name: "insert",
                    calls: 40,
                    total: Duration::from_secs(1),
                    max: Duration::from_millis(100),
                    children: vec![],
                }],
            }],
        });
        let text = prometheus_exposition(&s);
        assert!(
            text.contains("birch_span_seconds{path=\"phase1\"} 2.0"),
            "{text}"
        );
        assert!(
            text.contains("birch_span_seconds{path=\"phase1/insert\"} 1.0"),
            "{text}"
        );
        assert!(
            text.contains("birch_span_calls_total{path=\"phase1/insert\"} 40"),
            "{text}"
        );
    }
}
