//! Hierarchical span profiler — zero-cost when disabled.
//!
//! A *span* is a named region of work delimited by an RAII guard over the
//! monotonic clock ([`std::time::Instant`]). Nested spans form a call tree;
//! spans with the same name under the same parent aggregate into one node
//! carrying `{calls, total, max}`, from which per-node *self time*
//! (total minus the children's totals) falls out. This is the instrument
//! the paper's time claims (§6) hang off: per-phase wall clocks say *that*
//! Phase 1 dominates, the span tree says *why* (descend vs. split vs.
//! outlier spill vs. rebuild).
//!
//! # Cost model
//!
//! Profiling is off by default. Each thread carries one flag
//! (a `thread_local!` [`Cell`]); a disabled [`enter`] is a single
//! thread-local load and branch — no clock read, no allocation, no guard
//! state beyond a `None`. Hot paths (per-point insert/descend) stay at
//! memory speed, which is what the `insert_kernel` bench pins down.
//!
//! # Threading
//!
//! State is per-thread by construction: workers enable profiling locally,
//! [`take_report`] their tree when done, and the coordinator grafts it
//! under its own open span with [`merge_report`]. Because shards run
//! concurrently, a parent's self time can go negative after grafting; it
//! is clamped to zero and the per-child totals remain exact.
//!
//! ```
//! use birch_core::obs::span;
//!
//! span::set_enabled(true);
//! {
//!     let _outer = span::enter("phase1");
//!     for _ in 0..3 {
//!         let _inner = span::enter("insert");
//!     }
//! }
//! let report = span::take_report();
//! span::set_enabled(false);
//! let phase1 = &report.roots[0];
//! assert_eq!(phase1.name, "phase1");
//! assert_eq!(phase1.children[0].calls, 3);
//! ```

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

use super::json_f64;

thread_local! {
    /// Fast-path flag, split from the arena so a disabled [`enter`] costs
    /// one load + branch and never touches the `RefCell`.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static PROFILER: RefCell<Profiler> = const { RefCell::new(Profiler::new()) };
}

/// One aggregated span in the thread-local arena. `children` are indices
/// into the same arena; aggregation key is (parent, name).
#[derive(Debug)]
struct Slot {
    name: &'static str,
    calls: u64,
    total: Duration,
    max: Duration,
    children: Vec<usize>,
}

#[derive(Debug)]
struct Profiler {
    /// Arena of aggregated spans; `usize::MAX` in stacks means "root".
    slots: Vec<Slot>,
    /// Top-level spans (no parent open when entered).
    roots: Vec<usize>,
    /// Indices of the currently open spans, outermost first.
    stack: Vec<usize>,
}

impl Profiler {
    const fn new() -> Self {
        Self {
            slots: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Finds or creates the child named `name` under the innermost open
    /// span (or among the roots) and pushes it on the stack.
    fn open(&mut self, name: &'static str) {
        let siblings_of = |slots: &[Slot], stack: &[usize]| match stack.last() {
            Some(&parent) => slots[parent].children.clone(),
            None => Vec::new(),
        };
        let existing = if self.stack.is_empty() {
            self.roots
                .iter()
                .copied()
                .find(|&i| self.slots[i].name == name)
        } else {
            siblings_of(&self.slots, &self.stack)
                .into_iter()
                .find(|&i| self.slots[i].name == name)
        };
        let idx = existing.unwrap_or_else(|| {
            let idx = self.slots.len();
            self.slots.push(Slot {
                name,
                calls: 0,
                total: Duration::ZERO,
                max: Duration::ZERO,
                children: Vec::new(),
            });
            match self.stack.last() {
                Some(&parent) => self.slots[parent].children.push(idx),
                None => self.roots.push(idx),
            }
            idx
        });
        self.stack.push(idx);
    }

    /// Pops the innermost open span, folding `elapsed` into its counters.
    fn close(&mut self, elapsed: Duration) {
        let Some(idx) = self.stack.pop() else {
            // Guard outlived a `take_report`/`reset` that cleared the
            // stack; nothing sensible to record.
            return;
        };
        let slot = &mut self.slots[idx];
        slot.calls += 1;
        slot.total += elapsed;
        slot.max = slot.max.max(elapsed);
    }

    fn freeze(&self, idx: usize) -> SpanNode {
        let slot = &self.slots[idx];
        SpanNode {
            name: slot.name,
            calls: slot.calls,
            total: slot.total,
            max: slot.max,
            children: slot.children.iter().map(|&c| self.freeze(c)).collect(),
        }
    }

    fn graft(&mut self, node: &SpanNode) {
        self.open(node.name);
        let idx = *self.stack.last().expect("open pushed");
        {
            let slot = &mut self.slots[idx];
            slot.calls += node.calls;
            slot.total += node.total;
            slot.max = slot.max.max(node.max);
        }
        for child in &node.children {
            self.graft(child);
        }
        self.stack.pop();
    }
}

/// Enables or disables span collection on the *current thread*. Spans
/// already open keep their guards valid either way; disabling only stops
/// new guards from sampling the clock.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether span collection is enabled on the current thread.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Opens a span named `name`, nested under the innermost open span on this
/// thread. Hold the returned guard for the duration of the region:
///
/// ```
/// # use birch_core::obs::span;
/// let _sp = span::enter("rebuild");
/// // … work …
/// // span closes when `_sp` drops
/// ```
///
/// With profiling disabled this is one thread-local load and a branch.
/// `name` must be a `'static` literal: aggregation compares and stores the
/// `&'static str` directly, never allocating per call.
#[must_use]
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { start: None };
    }
    PROFILER.with(|p| p.borrow_mut().open(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

/// RAII guard returned by [`enter`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when profiling was disabled at entry — drop is then a no-op.
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            PROFILER.with(|p| p.borrow_mut().close(elapsed));
        }
    }
}

/// Takes the current thread's span tree, resetting the arena. Spans still
/// open (guards alive) are snapshotted with the counts they have so far
/// and the arena is rebuilt empty — their guards then close into the void,
/// which only matters if a caller takes a report mid-span on purpose
/// (the pipeline takes its report after every phase guard has dropped).
#[must_use]
pub fn take_report() -> SpanReport {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        let roots = p.roots.clone();
        let report = SpanReport {
            roots: roots.iter().map(|&r| p.freeze(r)).collect(),
        };
        p.slots.clear();
        p.roots.clear();
        p.stack.clear();
        report
    })
}

/// Grafts `report`'s roots under the innermost span currently open on this
/// thread (or as new roots when none is open), summing counters for paths
/// that already exist. The coordinator uses this to fold worker-thread
/// reports into its own tree. No-op while profiling is disabled.
pub fn merge_report(report: &SpanReport) {
    if !enabled() {
        return;
    }
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        for root in &report.roots {
            p.graft(root);
        }
    });
}

/// Clears the current thread's span state without producing a report.
pub fn reset() {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        p.slots.clear();
        p.roots.clear();
        p.stack.clear();
    });
}

/// One aggregated node of a frozen span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name, as passed to [`enter`].
    pub name: &'static str,
    /// Number of times the span closed.
    pub calls: u64,
    /// Total time across all calls (children included).
    pub total: Duration,
    /// Longest single call.
    pub max: Duration,
    /// Nested spans, in first-entered order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span but not in any child span. Clamped at zero:
    /// grafted concurrent children (parallel shards) can legitimately sum
    /// past the parent's wall time.
    #[must_use]
    pub fn self_time(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.total).sum();
        self.total.saturating_sub(children)
    }

    fn folded_into(&self, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            self.name.to_string()
        } else {
            format!("{prefix};{}", self.name)
        };
        let self_us = self.self_time().as_micros();
        out.push_str(&path);
        out.push(' ');
        out.push_str(&self_us.to_string());
        out.push('\n');
        for child in &self.children {
            child.folded_into(&path, out);
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"calls\":{},\"total_s\":{},\"self_s\":{},\"max_s\":{},\"children\":[",
            self.name,
            self.calls,
            json_f64(self.total.as_secs_f64()),
            json_f64(self.self_time().as_secs_f64()),
            json_f64(self.max.as_secs_f64()),
        ));
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{:<32} calls={:<8} total={:>10.3?} self={:>10.3?} max={:>10.3?}\n",
            format!("{indent}{}", self.name),
            self.calls,
            self.total,
            self.self_time(),
            self.max,
        ));
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    fn visit(&self, f: &mut impl FnMut(&SpanNode)) {
        f(self);
        for child in &self.children {
            child.visit(f);
        }
    }
}

/// A frozen span tree taken from one thread (plus any grafted reports).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanReport {
    /// Top-level spans in first-entered order.
    pub roots: Vec<SpanNode>,
}

impl SpanReport {
    /// Whether no spans were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Looks a node up by `/`-separated path, e.g. `"phase1/insert"`.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&SpanNode> {
        let mut parts = path.split('/');
        let first = parts.next()?;
        let mut node = self.roots.iter().find(|n| n.name == first)?;
        for part in parts {
            node = node.children.iter().find(|n| n.name == part)?;
        }
        Some(node)
    }

    /// Inferno-compatible folded stacks: one line per node,
    /// `root;child;leaf <self-time-µs>`, ready for
    /// `inferno-flamegraph` / `flamegraph.pl`.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.folded_into("", &mut out);
        }
        out
    }

    /// JSON array of span trees (schema v4's `"spans"` value).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            root.json_into(&mut out);
        }
        out.push(']');
        out
    }

    /// Human-readable indented tree with per-node counters.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.render_into(0, &mut out);
        }
        out
    }

    /// Calls `f` on every node, depth-first.
    pub fn visit(&self, mut f: impl FnMut(&SpanNode)) {
        for root in &self.roots {
            root.visit(&mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each test runs on its own thread so the thread-local profiler
    /// state never leaks between `cargo test` threads reusing a worker.
    fn isolated<R: Send>(f: impl FnOnce() -> R + Send) -> R {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread"))
    }

    #[test]
    fn disabled_enter_records_nothing() {
        isolated(|| {
            set_enabled(false);
            {
                let _a = enter("a");
                let _b = enter("b");
            }
            assert!(take_report().is_empty());
        });
    }

    #[test]
    fn nesting_builds_a_tree_and_aggregates_by_path() {
        isolated(|| {
            set_enabled(true);
            {
                let _outer = enter("outer");
                for _ in 0..3 {
                    let _inner = enter("inner");
                    let _leaf = enter("leaf");
                }
                {
                    let _other = enter("other");
                }
            }
            // Same name under a different parent is a different node.
            {
                let _top = enter("inner");
            }
            let report = take_report();
            set_enabled(false);

            assert_eq!(report.roots.len(), 2);
            let outer = report.get("outer").expect("outer");
            assert_eq!(outer.calls, 1);
            let inner = report.get("outer/inner").expect("outer/inner");
            assert_eq!(inner.calls, 3);
            assert_eq!(report.get("outer/inner/leaf").expect("leaf").calls, 3);
            assert_eq!(report.get("outer/other").expect("other").calls, 1);
            // The top-level "inner" did not merge into outer's child.
            assert_eq!(report.get("inner").expect("top inner").calls, 1);
            assert!(report.get("outer/leaf").is_none());
        });
    }

    #[test]
    fn totals_nest_and_self_time_subtracts_children() {
        isolated(|| {
            set_enabled(true);
            {
                let _outer = enter("outer");
                {
                    let _inner = enter("inner");
                    std::thread::sleep(Duration::from_millis(5));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let report = take_report();
            set_enabled(false);

            let outer = report.get("outer").expect("outer");
            let inner = report.get("outer/inner").expect("inner");
            assert!(outer.total >= inner.total, "parent covers child");
            assert!(inner.total >= Duration::from_millis(5));
            assert!(outer.self_time() >= Duration::from_millis(2));
            assert_eq!(
                outer.self_time(),
                outer.total - inner.total,
                "self = total - children"
            );
            assert!(outer.max >= outer.total, "single call: max == total");
        });
    }

    #[test]
    fn take_report_resets_state() {
        isolated(|| {
            set_enabled(true);
            {
                let _a = enter("a");
            }
            assert_eq!(take_report().roots.len(), 1);
            assert!(take_report().is_empty(), "second take starts fresh");
            set_enabled(false);
        });
    }

    #[test]
    fn merge_report_grafts_under_open_span_and_sums() {
        isolated(|| {
            set_enabled(true);
            // Build a donor report: shard { insert×2 }.
            {
                let _shard = enter("shard");
                let _i = enter("insert");
            }
            {
                let _shard = enter("shard");
                let _i = enter("insert");
            }
            let donor = take_report();
            assert_eq!(donor.get("shard").expect("shard").calls, 2);

            // Graft it twice under an open "phase1" span.
            {
                let _p = enter("phase1");
                merge_report(&donor);
                merge_report(&donor);
            }
            let report = take_report();
            set_enabled(false);

            let shard = report.get("phase1/shard").expect("grafted shard");
            assert_eq!(shard.calls, 4);
            assert_eq!(report.get("phase1/shard/insert").expect("insert").calls, 4);
            assert!(shard.total >= donor.get("shard").expect("shard").total);
        });
    }

    #[test]
    fn merge_report_is_noop_when_disabled() {
        isolated(|| {
            set_enabled(true);
            {
                let _a = enter("a");
            }
            let donor = take_report();
            set_enabled(false);
            merge_report(&donor);
            set_enabled(true);
            assert!(take_report().is_empty());
            set_enabled(false);
        });
    }

    #[test]
    fn folded_output_matches_inferno_grammar() {
        isolated(|| {
            set_enabled(true);
            {
                let _outer = enter("phase1");
                let _inner = enter("insert");
                let _leaf = enter("descend");
            }
            let report = take_report();
            set_enabled(false);

            let folded = report.folded();
            let lines: Vec<&str> = folded.lines().collect();
            assert_eq!(lines.len(), 3);
            assert!(lines[0].starts_with("phase1 "));
            assert!(lines[1].starts_with("phase1;insert "));
            assert!(lines[2].starts_with("phase1;insert;descend "));
            // Grammar: `frames <integer-weight>` with `;`-separated frames.
            for line in lines {
                let (stack, weight) = line.rsplit_once(' ').expect("space-separated");
                assert!(!stack.is_empty());
                assert!(weight.parse::<u64>().is_ok(), "weight {weight:?}");
                assert!(!stack.contains(' '), "no spaces inside frames: {stack:?}");
            }
        });
    }

    #[test]
    fn json_shape_is_well_formed() {
        isolated(|| {
            set_enabled(true);
            {
                let _a = enter("a");
                let _b = enter("b");
            }
            let report = take_report();
            set_enabled(false);

            let json = report.to_json();
            assert!(json.starts_with('['));
            assert!(json.contains("\"name\":\"a\""));
            assert!(json.contains("\"children\":[{\"name\":\"b\""));
            assert!(json.contains("\"calls\":1"));
            assert!(json.contains("\"total_s\":"));
            assert!(json.contains("\"self_s\":"));
            assert_eq!(
                json.matches('[').count(),
                json.matches(']').count(),
                "balanced brackets: {json}"
            );
        });
    }
}
