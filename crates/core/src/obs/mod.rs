//! Run telemetry: typed pipeline events, sinks, and aggregated metrics.
//!
//! BIRCH's claims are *resource-trajectory* claims — single scan, bounded
//! memory, strictly growing threshold, bounded rebuild transient — so this
//! module gives every phase a structured way to report what it is doing
//! while it is doing it. The pieces:
//!
//! * [`Event`] — a typed record of one pipeline occurrence (a rebuild, a
//!   split, a threshold raise, an outlier spill, …).
//! * [`EventSink`] — the receiver trait. The pipeline is generic over the
//!   sink, and the default [`NoopSink`] compiles to nothing, so an
//!   uninstrumented run pays zero cost.
//! * [`MetricsRecorder`] — a built-in sink that aggregates counters,
//!   per-phase wall time, the insertion-depth histogram, and the full
//!   threshold-vs-points trajectory; [`Phase1Builder`] always carries one,
//!   and `IoStats`' event-derived counters are populated from it.
//! * [`TraceLog`] — a built-in ring-buffer sink keeping the last `N`
//!   events verbatim for post-mortem inspection (`birch-cli --trace`).
//! * [`MetricsReport`] — the recorder's frozen output, exportable as
//!   stable, hand-rolled JSON (no serde in this workspace).
//!
//! [`Phase1Builder`]: crate::phase1::Phase1Builder
//!
//! Three sibling submodules complete the observability substrate:
//! [`span`] (hierarchical wall-time profiler), [`mem`] (memory-budget
//! gauge against the paper's M), and [`prom`] (Prometheus text
//! exposition of a run's stats).

pub mod mem;
pub mod prom;
pub mod span;

use std::collections::VecDeque;
use std::time::Duration;

/// The four pipeline phases, as telemetry labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1 — the single data scan building the CF-tree.
    Load,
    /// Phase 2 — optional tree condensation.
    Condense,
    /// Phase 3 — global clustering of the leaf entries.
    Global,
    /// Phase 4 — optional refinement/labeling passes.
    Refine,
}

impl Phase {
    /// Zero-based index (`Load == 0` … `Refine == 3`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::Load => 0,
            Phase::Condense => 1,
            Phase::Global => 2,
            Phase::Refine => 3,
        }
    }

    /// Stable lowercase name used in traces and JSON keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Condense => "condense",
            Phase::Global => "global",
            Phase::Refine => "refine",
        }
    }
}

/// One typed telemetry record emitted by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A pipeline phase began.
    PhaseStarted {
        /// Which phase.
        phase: Phase,
    },
    /// A pipeline phase completed.
    PhaseFinished {
        /// Which phase.
        phase: Phase,
        /// Wall-clock duration of the phase.
        wall: Duration,
    },
    /// One entry was inserted into the CF-tree (full root-to-leaf
    /// insertion, not a split-free absorption probe).
    InsertDescend {
        /// Interior levels descended (`height - 1` at insertion time).
        depth: usize,
    },
    /// Node splits performed by one tree operation (leaf and interior
    /// splits combined; one insert can cascade several).
    SplitPerformed {
        /// Number of splits.
        count: u64,
    },
    /// Merging refinements (§4.3) performed by one tree operation.
    MergeRefinement {
        /// Number of refinements.
        count: u64,
    },
    /// The threshold was raised ahead of a rebuild (§5.1.2).
    ThresholdRaised {
        /// Threshold before the raise.
        old: f64,
        /// Threshold after the raise.
        new: f64,
        /// Input records scanned when the raise happened.
        points_seen: u64,
    },
    /// A tree rebuild is starting (§5.1): the tree outgrew its page
    /// budget and is reloaded under the raised threshold.
    RebuildTriggered {
        /// Threshold of the tree being rebuilt.
        old_threshold: f64,
        /// Threshold of the replacement tree.
        new_threshold: f64,
        /// Leaf entries in the tree being rebuilt.
        leaf_entries: usize,
        /// Pages (nodes) of the tree being rebuilt.
        pages: usize,
    },
    /// Leaf entries diverted to the outlier disk during a rebuild (§5.1.3).
    OutlierSpilled {
        /// Entries spilled.
        count: u64,
    },
    /// Parked outlier entries returned to the tree by a re-absorption
    /// scan, split by how they got there. Only `absorbed` is a true
    /// §5.1.3 re-absorption (merged into an existing entry without
    /// growing the tree); the other two are regular insertions.
    OutlierReabsorbed {
        /// Entries merged into an existing leaf entry without growing
        /// the tree.
        absorbed: u64,
        /// Entries re-inserted as regular data after outgrowing
        /// outlierhood (the mean points-per-entry moved under them).
        reinserted: u64,
        /// Entries folded into the tree because the disk refused the
        /// write-back (injected fault or force-full degradation).
        folded_back: u64,
    },
    /// Outlier entries discarded for good at the end of a scan.
    OutlierDiscarded {
        /// Entries dropped.
        count: u64,
    },
    /// The in-memory page high-water mark rose.
    PagesHighWater {
        /// The new peak page count.
        pages: usize,
    },
}

impl Event {
    /// Renders the event as one stable human-readable trace line.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Event::PhaseStarted { phase } => format!("phase {} started", phase.name()),
            Event::PhaseFinished { phase, wall } => {
                format!(
                    "phase {} finished in {:.3}s",
                    phase.name(),
                    wall.as_secs_f64()
                )
            }
            Event::InsertDescend { depth } => format!("insert descended {depth} levels"),
            Event::SplitPerformed { count } => format!("{count} node split(s)"),
            Event::MergeRefinement { count } => format!("{count} merge refinement(s)"),
            Event::ThresholdRaised {
                old,
                new,
                points_seen,
            } => format!("threshold raised {old:.4} -> {new:.4} at {points_seen} points"),
            Event::RebuildTriggered {
                old_threshold,
                new_threshold,
                leaf_entries,
                pages,
            } => format!(
                "rebuild: T {old_threshold:.4} -> {new_threshold:.4}, \
                 {leaf_entries} leaf entries in {pages} pages"
            ),
            Event::OutlierSpilled { count } => format!("{count} entrie(s) spilled to outlier disk"),
            Event::OutlierReabsorbed {
                absorbed,
                reinserted,
                folded_back,
            } => format!(
                "outlier scan: {absorbed} re-absorbed, {reinserted} re-inserted, \
                 {folded_back} folded back"
            ),
            Event::OutlierDiscarded { count } => format!("{count} outlier entrie(s) discarded"),
            Event::PagesHighWater { pages } => format!("page high-water mark now {pages}"),
        }
    }
}

/// Receiver of pipeline [`Event`]s.
///
/// The pipeline entry points are generic over the sink and default to
/// [`NoopSink`], which monomorphizes every `record` call to nothing — an
/// uninstrumented run is byte-for-byte the uninstrumented code.
pub trait EventSink {
    /// Receives one event. Called synchronously from the pipeline's hot
    /// paths, so implementations should be cheap.
    fn record(&mut self, event: &Event);

    /// Whether this sink does anything. Emitters may skip constructing
    /// expensive events when `false`; [`NoopSink`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink: the default everywhere a sink is optional.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn record(&mut self, _event: &Event) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// Fans one event stream out to two sinks (e.g. an internal
/// [`MetricsRecorder`] plus a caller-supplied trace).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tee<A, B>(
    /// First receiver.
    pub A,
    /// Second receiver.
    pub B,
);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    #[inline]
    fn record(&mut self, event: &Event) {
        self.0.record(event);
        self.1.record(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
}

/// One `(points scanned, threshold)` sample of the threshold trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Input records scanned when the threshold was raised.
    pub points_seen: u64,
    /// The threshold after the raise.
    pub threshold: f64,
}

/// Telemetry of one Phase-1 shard of a parallel build (see
/// [`crate::parallel`]): wall time, per-shard rebuild/threshold activity,
/// and what the shard handed to the merge stage. A vector of these in
/// [`RunStats`] is how `--metrics-json` exposes shard skew — the slowest
/// shard bounds Phase-1 wall time, so uneven `wall`s are the first thing
/// to look at when parallel speedup disappoints.
///
/// [`RunStats`]: crate::birch::RunStats
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardReport {
    /// Shard index (chunk order, which is input order).
    pub shard: usize,
    /// Input records the shard scanned.
    pub points: u64,
    /// Wall-clock time of the shard's scan (inside its worker thread).
    pub wall: Duration,
    /// Rebuilds the shard performed under its `M/n` memory share.
    pub rebuilds: u64,
    /// The shard tree's final threshold.
    pub final_threshold: f64,
    /// Leaf entries the shard handed to the merge stage.
    pub leaf_entries: usize,
    /// The shard's page high-water mark.
    pub peak_pages: usize,
    /// Node splits in the shard's tree.
    pub splits: u64,
    /// Unresolved potential outliers carried into the merge stage.
    pub outliers_carried: u64,
    /// The shard's threshold raises as `(points scanned, new threshold)`.
    pub threshold_trajectory: Vec<ThresholdPoint>,
}

impl ShardReport {
    /// Serializes the shard report as one stable JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\":{},\"points\":{},\"wall_s\":{},\"rebuilds\":{},\
             \"final_threshold\":{},\"leaf_entries\":{},\"peak_pages\":{},\
             \"splits\":{},\"outliers_carried\":{},\"threshold_trajectory\":{}}}",
            self.shard,
            self.points,
            json_f64(self.wall.as_secs_f64()),
            self.rebuilds,
            json_f64(self.final_threshold),
            self.leaf_entries,
            self.peak_pages,
            self.splits,
            self.outliers_carried,
            trajectory_json(&self.threshold_trajectory),
        )
    }
}

/// Serializes shard reports as a JSON array (used by `RunStats::to_json`).
#[must_use]
pub fn shards_json(shards: &[ShardReport]) -> String {
    let mut out = String::from("[");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

/// Serializes a threshold trajectory as a JSON array of
/// `{"points":…,"threshold":…}` objects.
#[must_use]
pub fn trajectory_json(points: &[ThresholdPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"points\":{},\"threshold\":{}}}",
            p.points_seen,
            json_f64(p.threshold)
        ));
    }
    out.push(']');
    out
}

/// A sink that aggregates the run into counters, per-phase wall time, the
/// insertion-depth histogram, and the threshold trajectory.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    report: MetricsReport,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A frozen copy of everything aggregated so far.
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        self.report.clone()
    }

    /// Read-only view of the live aggregates (no clone).
    #[must_use]
    pub fn snapshot(&self) -> &MetricsReport {
        &self.report
    }

    /// Merges a frozen report into this recorder — used to fold the
    /// per-worker Phase-1 reports of a parallel fit into one run total.
    pub fn absorb_report(&mut self, other: &MetricsReport) {
        self.report.absorb(other);
    }

    /// Copies a [`TraceLog`]'s ring statistics (capacity, drop count)
    /// into the report so [`MetricsRecorder::one_line`] and the metrics
    /// JSON can say how lossy the trace was.
    pub fn note_trace(&mut self, trace: &TraceLog) {
        let stats = trace.stats();
        self.report.trace_capacity = self.report.trace_capacity.max(stats.capacity);
        self.report.trace_dropped += stats.dropped;
    }

    /// Records the Phase 3 agglomerator's candidate-pair work (performed
    /// and prune-skipped distance evaluations) into the report. Called by
    /// the pipeline after the global clustering step; pair counts are
    /// deliberately kept separate from Phase 1's `distance_calls` so the
    /// two prunes stay independently measurable.
    pub fn note_phase3_pairs(&mut self, evaluated: u64, pruned: u64) {
        self.report.phase3_pairs_evaluated += evaluated;
        self.report.phase3_pairs_pruned += pruned;
    }

    /// One-line summary for periodic progress printing, e.g.
    /// `inserts=1200 rebuilds=3 splits=57 peak_pages=9 T=0.81`. When a
    /// trace ring was attached (via [`MetricsRecorder::note_trace`]) the
    /// line also reports its loss, e.g. `trace_dropped=241/cap512`.
    #[must_use]
    pub fn one_line(&self) -> String {
        let r = &self.report;
        let t = r
            .threshold_trajectory
            .last()
            .map_or_else(|| "T0".to_string(), |p| format!("{:.3}", p.threshold));
        let mut line = format!(
            "inserts={} rebuilds={} splits={} refinements={} spilled={} peak_pages={} T={t}",
            r.inserts, r.rebuilds, r.splits, r.merge_refinements, r.outliers_spilled, r.peak_pages
        );
        if r.trace_capacity > 0 {
            line.push_str(&format!(
                " trace_dropped={}/cap{}",
                r.trace_dropped, r.trace_capacity
            ));
        }
        line
    }
}

impl EventSink for MetricsRecorder {
    fn record(&mut self, event: &Event) {
        let r = &mut self.report;
        r.events += 1;
        match *event {
            Event::PhaseStarted { .. } => {}
            Event::PhaseFinished { phase, wall } => r.phase_wall[phase.index()] += wall,
            Event::InsertDescend { depth } => {
                r.inserts += 1;
                if r.insert_depth_histogram.len() <= depth {
                    r.insert_depth_histogram.resize(depth + 1, 0);
                }
                r.insert_depth_histogram[depth] += 1;
            }
            Event::SplitPerformed { count } => r.splits += count,
            Event::MergeRefinement { count } => r.merge_refinements += count,
            Event::ThresholdRaised {
                new, points_seen, ..
            } => {
                r.thresholds_raised += 1;
                r.threshold_trajectory.push(ThresholdPoint {
                    points_seen,
                    threshold: new,
                });
            }
            Event::RebuildTriggered { pages, .. } => {
                r.rebuilds += 1;
                r.peak_pages = r.peak_pages.max(pages);
            }
            Event::OutlierSpilled { count } => r.outliers_spilled += count,
            Event::OutlierReabsorbed {
                absorbed,
                reinserted,
                folded_back,
            } => {
                r.outliers_reabsorbed += absorbed;
                r.outliers_reinserted += reinserted;
                r.outliers_folded_back += folded_back;
            }
            Event::OutlierDiscarded { count } => r.outliers_discarded += count,
            Event::PagesHighWater { pages } => r.peak_pages = r.peak_pages.max(pages),
        }
    }
}

/// Frozen aggregates of one run (the [`MetricsRecorder`]'s output).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Full tree insertions (each one `InsertDescend` event).
    pub inserts: u64,
    /// Node splits (leaf + interior).
    pub splits: u64,
    /// Merging refinements (§4.3).
    pub merge_refinements: u64,
    /// Tree rebuilds.
    pub rebuilds: u64,
    /// Threshold raises (usually equals `rebuilds`).
    pub thresholds_raised: u64,
    /// Entries spilled to the outlier disk.
    pub outliers_spilled: u64,
    /// Outlier entries truly re-absorbed: merged into an existing leaf
    /// entry without growing the tree (§5.1.3). Entries that came back
    /// another way are counted separately below.
    pub outliers_reabsorbed: u64,
    /// Outlier entries re-inserted as regular data after outgrowing
    /// outlierhood.
    pub outliers_reinserted: u64,
    /// Outlier entries folded into the tree on a refused disk
    /// write-back (fault paths).
    pub outliers_folded_back: u64,
    /// Outlier entries discarded at end of scan.
    pub outliers_discarded: u64,
    /// Page high-water mark observed via events.
    pub peak_pages: usize,
    /// Distance evaluations performed by the insert hot path (descent
    /// closest-child scans plus closest-leaf-entry scans) — populated from
    /// [`TreeStats`] by the Phase-1 driver rather than from events, since
    /// one counter bump per distance would drown the event stream.
    ///
    /// [`TreeStats`]: crate::tree::TreeStats
    pub distance_calls: u64,
    /// Descent-scan candidates skipped by the D0 lower-bound prune
    /// (always 0 with `descend_prune` off). Same provenance as
    /// [`MetricsReport::distance_calls`].
    pub distance_calls_pruned: u64,
    /// Phase 3 candidate-pair distances actually evaluated by the
    /// agglomerator (schema v5). Set via
    /// [`MetricsRecorder::note_phase3_pairs`], not from events.
    pub phase3_pairs_evaluated: u64,
    /// Phase 3 candidate pairs skipped by the cached-statistic lower
    /// bound (`pair_lower_bound`); 0 on the heap path or with the prune
    /// off. Same provenance as [`MetricsReport::phase3_pairs_evaluated`].
    pub phase3_pairs_pruned: u64,
    /// Capacity of the trace ring attached to the run (0 = no trace).
    /// Set via [`MetricsRecorder::note_trace`], not from events.
    pub trace_capacity: usize,
    /// Events the attached trace ring evicted (see [`TraceLog::dropped`]).
    pub trace_dropped: u64,
    /// `insert_depth_histogram[d]` = insertions that descended `d`
    /// interior levels.
    pub insert_depth_histogram: Vec<u64>,
    /// Every threshold raise as `(points scanned, new threshold)`, in
    /// emission order — non-decreasing in both components for a
    /// sequential run.
    pub threshold_trajectory: Vec<ThresholdPoint>,
    /// Wall time per phase, indexed by [`Phase::index`].
    pub phase_wall: [Duration; 4],
    /// Total events received.
    pub events: u64,
}

impl MetricsReport {
    /// Component-wise merge (sum counters, max peaks, concatenate the
    /// trajectory, sum phase times).
    pub fn absorb(&mut self, other: &MetricsReport) {
        self.inserts += other.inserts;
        self.splits += other.splits;
        self.merge_refinements += other.merge_refinements;
        self.rebuilds += other.rebuilds;
        self.thresholds_raised += other.thresholds_raised;
        self.outliers_spilled += other.outliers_spilled;
        self.outliers_reabsorbed += other.outliers_reabsorbed;
        self.outliers_reinserted += other.outliers_reinserted;
        self.outliers_folded_back += other.outliers_folded_back;
        self.outliers_discarded += other.outliers_discarded;
        self.peak_pages = self.peak_pages.max(other.peak_pages);
        self.distance_calls += other.distance_calls;
        self.distance_calls_pruned += other.distance_calls_pruned;
        self.phase3_pairs_evaluated += other.phase3_pairs_evaluated;
        self.phase3_pairs_pruned += other.phase3_pairs_pruned;
        self.trace_capacity = self.trace_capacity.max(other.trace_capacity);
        self.trace_dropped += other.trace_dropped;
        if self.insert_depth_histogram.len() < other.insert_depth_histogram.len() {
            self.insert_depth_histogram
                .resize(other.insert_depth_histogram.len(), 0);
        }
        for (i, v) in other.insert_depth_histogram.iter().enumerate() {
            self.insert_depth_histogram[i] += v;
        }
        self.threshold_trajectory
            .extend_from_slice(&other.threshold_trajectory);
        for (mine, theirs) in self.phase_wall.iter_mut().zip(&other.phase_wall) {
            *mine += *theirs;
        }
        self.events += other.events;
    }

    /// The event-derived counters as a JSON object fragment (used by
    /// [`RunStats::to_json`]).
    ///
    /// [`RunStats::to_json`]: crate::birch::RunStats::to_json
    #[must_use]
    pub fn counters_json(&self) -> String {
        format!(
            "{{\"inserts\":{},\"splits\":{},\"merge_refinements\":{},\"rebuilds\":{},\
             \"thresholds_raised\":{},\"outliers_spilled\":{},\"outliers_reabsorbed\":{},\
             \"outliers_reinserted\":{},\"outliers_folded_back\":{},\
             \"outliers_discarded\":{},\"distance_calls\":{},\"distance_calls_pruned\":{},\
             \"phase3_pairs_evaluated\":{},\"phase3_pairs_pruned\":{},\
             \"events\":{}}}",
            self.inserts,
            self.splits,
            self.merge_refinements,
            self.rebuilds,
            self.thresholds_raised,
            self.outliers_spilled,
            self.outliers_reabsorbed,
            self.outliers_reinserted,
            self.outliers_folded_back,
            self.outliers_discarded,
            self.distance_calls,
            self.distance_calls_pruned,
            self.phase3_pairs_evaluated,
            self.phase3_pairs_pruned,
            self.events
        )
    }

    /// The threshold trajectory as a JSON array of
    /// `{"points":…,"threshold":…}` objects.
    #[must_use]
    pub fn trajectory_json(&self) -> String {
        trajectory_json(&self.threshold_trajectory)
    }

    /// The insertion-depth histogram as a JSON array (`[n_depth0, …]`).
    #[must_use]
    pub fn histogram_json(&self) -> String {
        let mut out = String::from("[");
        for (i, v) in self.insert_depth_histogram.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
        out
    }
}

/// Formats an `f64` as a JSON number (`null` when non-finite).
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting, which is
        // also valid JSON for finite values.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A fixed-capacity ring buffer of the most recent events, for
/// post-mortem inspection (`birch-cli --trace`).
#[derive(Debug, Clone)]
pub struct TraceLog {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates a trace keeping at most `capacity` events (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's loss statistics in one copyable struct — what schema
    /// v4's `"trace"` object serializes.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            capacity: self.capacity,
            retained: self.buf.len(),
            dropped: self.dropped,
        }
    }
}

/// Loss statistics of a [`TraceLog`] ring: how big it was, how much it
/// kept, and how much it evicted. A `dropped > 0` trace is a *suffix* of
/// the run, not the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Events currently retained.
    pub retained: usize,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

impl TraceStats {
    /// Serializes as the schema-v4 `"trace"` JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"capacity\":{},\"retained\":{},\"dropped\":{}}}",
            self.capacity, self.retained, self.dropped
        )
    }
}

impl EventSink for TraceLog {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_counters_sum() {
        let mut rec = MetricsRecorder::new();
        rec.record(&Event::SplitPerformed { count: 3 });
        rec.record(&Event::SplitPerformed { count: 2 });
        rec.record(&Event::MergeRefinement { count: 1 });
        rec.record(&Event::OutlierSpilled { count: 7 });
        rec.record(&Event::OutlierReabsorbed {
            absorbed: 4,
            reinserted: 3,
            folded_back: 1,
        });
        rec.record(&Event::OutlierDiscarded { count: 2 });
        rec.record(&Event::RebuildTriggered {
            old_threshold: 0.0,
            new_threshold: 1.0,
            leaf_entries: 10,
            pages: 5,
        });
        let r = rec.report();
        assert_eq!(r.splits, 5);
        assert_eq!(r.merge_refinements, 1);
        assert_eq!(r.outliers_spilled, 7);
        assert_eq!(r.outliers_reabsorbed, 4);
        assert_eq!(r.outliers_reinserted, 3);
        assert_eq!(r.outliers_folded_back, 1);
        assert_eq!(r.outliers_discarded, 2);
        assert_eq!(r.rebuilds, 1);
        assert_eq!(r.events, 7);
    }

    #[test]
    fn recorder_histogram_buckets() {
        let mut rec = MetricsRecorder::new();
        for depth in [0, 0, 1, 2, 2, 2] {
            rec.record(&Event::InsertDescend { depth });
        }
        let r = rec.report();
        assert_eq!(r.inserts, 6);
        assert_eq!(r.insert_depth_histogram, vec![2, 1, 3]);
        assert_eq!(r.histogram_json(), "[2,1,3]");
    }

    #[test]
    fn recorder_trajectory_monotone() {
        let mut rec = MetricsRecorder::new();
        let mut t = 0.1;
        for i in 0..6u64 {
            let old = t;
            t *= 1.7;
            rec.record(&Event::ThresholdRaised {
                old,
                new: t,
                points_seen: 100 * (i + 1),
            });
        }
        let r = rec.report();
        assert_eq!(r.thresholds_raised, 6);
        for w in r.threshold_trajectory.windows(2) {
            assert!(w[1].threshold >= w[0].threshold, "trajectory decreased");
            assert!(
                w[1].points_seen >= w[0].points_seen,
                "points went backwards"
            );
        }
    }

    #[test]
    fn recorder_peak_pages_maxes() {
        let mut rec = MetricsRecorder::new();
        rec.record(&Event::PagesHighWater { pages: 4 });
        rec.record(&Event::RebuildTriggered {
            old_threshold: 0.0,
            new_threshold: 0.5,
            leaf_entries: 3,
            pages: 9,
        });
        rec.record(&Event::PagesHighWater { pages: 7 });
        assert_eq!(rec.report().peak_pages, 9);
    }

    #[test]
    fn recorder_phase_wall_accumulates() {
        let mut rec = MetricsRecorder::new();
        rec.record(&Event::PhaseStarted { phase: Phase::Load });
        rec.record(&Event::PhaseFinished {
            phase: Phase::Load,
            wall: Duration::from_millis(30),
        });
        rec.record(&Event::PhaseFinished {
            phase: Phase::Load,
            wall: Duration::from_millis(20),
        });
        rec.record(&Event::PhaseFinished {
            phase: Phase::Global,
            wall: Duration::from_millis(5),
        });
        let r = rec.report();
        assert_eq!(r.phase_wall[Phase::Load.index()], Duration::from_millis(50));
        assert_eq!(
            r.phase_wall[Phase::Global.index()],
            Duration::from_millis(5)
        );
        assert_eq!(r.phase_wall[Phase::Condense.index()], Duration::ZERO);
    }

    #[test]
    fn report_absorb_merges() {
        let mut a = MetricsRecorder::new();
        a.record(&Event::InsertDescend { depth: 1 });
        a.record(&Event::PagesHighWater { pages: 3 });
        let mut b = MetricsRecorder::new();
        b.record(&Event::InsertDescend { depth: 2 });
        b.record(&Event::InsertDescend { depth: 1 });
        b.record(&Event::PagesHighWater { pages: 8 });
        let mut total = a.report();
        total.absorb(&b.report());
        assert_eq!(total.inserts, 3);
        assert_eq!(total.peak_pages, 8);
        assert_eq!(total.insert_depth_histogram, vec![0, 2, 1]);
        assert_eq!(total.events, 5);
    }

    #[test]
    fn tee_fans_out_and_reference_sinks_forward() {
        let mut rec = MetricsRecorder::new();
        let mut trace = TraceLog::new(8);
        {
            let mut tee = Tee(&mut rec, &mut trace);
            assert!(tee.enabled());
            tee.record(&Event::SplitPerformed { count: 2 });
        }
        assert_eq!(rec.report().splits, 2);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn noop_sink_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(&Event::SplitPerformed { count: 1 });
    }

    #[test]
    fn trace_ring_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for d in 0..5 {
            log.record(&Event::InsertDescend { depth: d });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let depths: Vec<usize> = log
            .events()
            .map(|e| match e {
                Event::InsertDescend { depth } => *depth,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(depths, vec![2, 3, 4]);
    }

    #[test]
    fn trace_stats_surface_in_one_line() {
        let mut log = TraceLog::new(2);
        for d in 0..5 {
            log.record(&Event::InsertDescend { depth: d });
        }
        let stats = log.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.retained, 2);
        assert_eq!(stats.dropped, 3);
        assert_eq!(
            stats.to_json(),
            "{\"capacity\":2,\"retained\":2,\"dropped\":3}"
        );

        let mut rec = MetricsRecorder::new();
        assert!(
            !rec.one_line().contains("trace_dropped"),
            "no trace attached: {}",
            rec.one_line()
        );
        rec.note_trace(&log);
        assert!(
            rec.one_line().contains("trace_dropped=3/cap2"),
            "{}",
            rec.one_line()
        );
    }

    #[test]
    fn json_f64_formats() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn render_is_stable() {
        let line = Event::RebuildTriggered {
            old_threshold: 0.5,
            new_threshold: 1.25,
            leaf_entries: 42,
            pages: 7,
        }
        .render();
        assert!(line.contains("0.5000 -> 1.2500"), "{line}");
        assert!(line.contains("42 leaf entries in 7 pages"), "{line}");
    }
}
