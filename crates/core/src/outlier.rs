//! Outlier handling (§5.1.3) and the delay-split buffer (§5.1.4).
//!
//! BIRCH treats low-density leaf entries as *potential outliers*: during a
//! rebuild, a leaf entry holding "far fewer data points than the average"
//! is written to the outlier disk instead of the new tree. Periodically —
//! when the disk fills up, and once the full dataset has been scanned —
//! the entries on disk are re-scanned to see whether the (now larger)
//! threshold lets them be **re-absorbed** into the tree *without growing
//! it*. Entries that survive to the end of the scan are genuine outliers.
//!
//! The delay-split option uses leftover disk space differently: when memory
//! runs out, points that would force a node split are parked on disk so the
//! current threshold can squeeze in the points that still fit, postponing
//! the (expensive) rebuild.

use crate::cf::Cf;
use crate::obs::{Event, EventSink, NoopSink};
use crate::tree::CfTree;
use birch_pager::{crc32, SimDisk};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Configuration of the outlier-handling option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierConfig {
    /// Master switch (paper Table 2: outlier-handling on by default).
    pub enabled: bool,
    /// A leaf entry is a potential outlier when it holds fewer than
    /// `factor ×` the average number of points per leaf entry. The paper
    /// uses a quarter ("contains < 25% of the average").
    pub factor: f64,
    /// Whether entries still unabsorbed at the end of the run are removed
    /// from the result (`true`, the paper's behaviour) or folded back into
    /// the tree (`false`).
    pub discard_at_end: bool,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            factor: 0.25,
            discard_at_end: true,
        }
    }
}

impl OutlierConfig {
    /// Disabled outlier handling (every entry goes back into the tree).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Whether an entry of weight `entry_n` is a potential outlier given
    /// the current mean points-per-leaf-entry.
    #[must_use]
    pub fn is_potential_outlier(&self, entry_n: f64, mean_entry_n: f64) -> bool {
        self.enabled && entry_n < self.factor * mean_entry_n
    }
}

/// Outcome of a re-absorption scan over the outlier disk.
///
/// Every drained entry lands in exactly one bucket, so the counts sum to
/// the number of entries scanned. Only `absorbed` is a true §5.1.3
/// re-absorption; `reinserted` and `folded_back` grow the tree like any
/// other insert and are reported separately so telemetry doesn't
/// overstate how much the raised threshold actually recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReabsorbReport {
    /// Entries merged into an existing leaf entry without growing the
    /// tree (the absorption test of §5.1.3 passed).
    pub absorbed: u64,
    /// Entries that no longer look like outliers under the current mean
    /// points-per-entry and were re-inserted as regular data.
    pub reinserted: u64,
    /// Entries folded into the tree because the disk refused the
    /// write-back (injected fault or force-full degradation).
    pub folded_back: u64,
    /// Entries written back to disk (still potential outliers).
    pub retained: u64,
}

/// Append-only journal of spilled CF entries in a real file: each record
/// is `u32 word-count | u32 crc32(payload) | payload` (little-endian u64
/// words, the CF's [`Cf::to_words`] layout). Draining reads every record
/// back, verifies its checksum, and bit-compares it against the in-memory
/// copy — so the "disk R" of §5.1.3 genuinely round-trips through the
/// filesystem instead of only being *accounted* as if it did.
#[derive(Debug)]
struct CfJournal {
    file: File,
    path: PathBuf,
    records: usize,
    bytes_written: u64,
    bytes_read: u64,
}

impl CfJournal {
    fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: 0,
            bytes_written: 0,
            bytes_read: 0,
        })
    }

    fn append(&mut self, cf: &Cf) -> io::Result<()> {
        let mut words = Vec::new();
        cf.to_words(&mut words);
        let mut payload = Vec::with_capacity(words.len() * 8);
        for w in &words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(
            &u32::try_from(words.len())
                .expect("CF word range")
                .to_le_bytes(),
        );
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&rec)?;
        self.records += 1;
        self.bytes_written += rec.len() as u64;
        Ok(())
    }

    /// Reads every record back (verifying checksums), truncates the file,
    /// and returns the decoded CFs in append order.
    fn drain(&mut self, dim: usize) -> io::Result<Vec<Cf>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::with_capacity(self.records);
        for i in 0..self.records {
            let mut head = [0u8; 8];
            self.file.read_exact(&mut head)?;
            let n_words = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
            let stored = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
            let mut payload = vec![0u8; n_words * 8];
            self.file.read_exact(&mut payload)?;
            self.bytes_read += (8 + payload.len()) as u64;
            assert_eq!(
                crc32(&payload),
                stored,
                "outlier journal record {i} failed its checksum"
            );
            let words: Vec<u64> = payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            out.push(Cf::from_words(&words, dim));
        }
        self.file.set_len(0)?;
        self.records = 0;
        Ok(out)
    }
}

impl Drop for CfJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Disk-backed store of potential-outlier CF entries.
#[derive(Debug)]
pub struct OutlierStore {
    disk: SimDisk<Cf>,
    config: OutlierConfig,
    /// Real-file journal mirroring the parked entries (`None` = memory
    /// only). [`SimDisk`] stays the capacity/fault/accounting model the
    /// paper's evaluation needs; the journal is the bytes.
    journal: Option<CfJournal>,
}

impl Clone for OutlierStore {
    /// Clones the in-memory state; the clone is *not* file-backed (the
    /// parallel Phase-1 shards that clone stores run memory-only).
    fn clone(&self) -> Self {
        Self {
            disk: self.disk.clone(),
            config: self.config,
            journal: None,
        }
    }
}

impl OutlierStore {
    /// Creates a store over `disk_bytes` of simulated disk, where each CF
    /// entry accounts for `entry_bytes` (see
    /// [`birch_pager::PageLayout::cf_entry_bytes`]).
    #[must_use]
    pub fn new(disk_bytes: usize, entry_bytes: usize, config: OutlierConfig) -> Self {
        Self {
            disk: SimDisk::new(disk_bytes, entry_bytes),
            config,
            journal: None,
        }
    }

    /// Backs the store with a real append-only journal at `path`: every
    /// parked entry's statistics are written (checksummed) to the file,
    /// and every drain reads them back and verifies them bit-for-bit
    /// against the in-memory copies. The file is deleted when the store
    /// is dropped. Capacity, fault injection, and the I/O *cost model*
    /// stay with the simulated disk.
    ///
    /// # Errors
    ///
    /// Propagates journal-file creation errors.
    ///
    /// # Panics
    ///
    /// Panics when entries are already parked (the journal must see every
    /// record from the start to stay in sync).
    pub fn back_with_file(&mut self, path: &Path) -> io::Result<()> {
        assert!(
            self.disk.is_empty(),
            "cannot attach a journal to a non-empty outlier store"
        );
        self.journal = Some(CfJournal::create(path)?);
        Ok(())
    }

    /// The store's configuration.
    #[must_use]
    pub fn config(&self) -> &OutlierConfig {
        &self.config
    }

    /// Number of potential outliers currently parked on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the disk holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Whether the disk can take one more entry.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.disk.has_space()
    }

    /// Entries successfully written to the (simulated) disk.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.disk.writes()
    }

    /// Entries read back from the (simulated) disk.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.disk.reads()
    }

    /// Bytes written, under the paper's per-entry cost model.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.disk.bytes_written()
    }

    /// Bytes read, under the paper's per-entry cost model.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.disk.bytes_read()
    }

    /// Write attempts, landed or refused.
    #[must_use]
    pub fn write_attempts(&self) -> u64 {
        self.disk.write_attempts()
    }

    /// Writes refused by an injected fault (as opposed to a genuinely
    /// full disk).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.disk.faults_injected()
    }

    /// Bytes currently occupied on the (simulated) disk.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.disk.used_bytes()
    }

    /// Lifetime bytes `(written, read)` through the real-file journal —
    /// both 0 when the store is memory-only.
    #[must_use]
    pub fn journal_bytes(&self) -> (u64, u64) {
        self.journal
            .as_ref()
            .map_or((0, 0), |j| (j.bytes_written, j.bytes_read))
    }

    /// Installs a fault-injection plan on the underlying disk (tests and
    /// soak runs): spills then fail deterministically, exercising the
    /// fold-back and reabsorb-after-full degradation paths.
    pub fn set_fault_plan(&mut self, plan: birch_pager::FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Total number of data points parked on disk (sum of the parked
    /// entries' weights), read without touching the I/O counters — the
    /// auditor's N-conservation term.
    #[must_use]
    pub fn parked_n(&self) -> f64 {
        self.disk.peek().iter().map(Cf::n).sum()
    }

    /// Parks a potential outlier on disk. On a full disk the entry is
    /// handed back so the caller can fold it into the tree instead.
    ///
    /// # Panics
    ///
    /// Panics if the store is file-backed and the journal write fails —
    /// a local I/O failure, not a recoverable input condition.
    pub fn spill(&mut self, entry: Cf) -> Result<(), Cf> {
        let _sp = crate::obs::span::enter("disk_write");
        match self.disk.write(entry) {
            Ok(()) => {
                if let Some(j) = self.journal.as_mut() {
                    let cf = self.disk.peek().last().expect("entry just written");
                    j.append(cf).expect("outlier journal write failed");
                }
                Ok(())
            }
            Err((cf, _)) => Err(cf),
        }
    }

    /// Drains the simulated disk and, when file-backed, reads the journal
    /// back and verifies every record bit-for-bit against the in-memory
    /// copies — the real-I/O half of the §5.1.3 outlier disk.
    fn drain_verified(&mut self) -> Vec<Cf> {
        let _sp = crate::obs::span::enter("disk_read");
        let pending = self.disk.drain_all();
        if let Some(j) = self.journal.as_mut() {
            assert_eq!(
                j.records,
                pending.len(),
                "outlier journal out of sync with the store"
            );
            let dim = pending.first().map_or(1, Cf::dim);
            let from_file = j.drain(dim).expect("outlier journal read failed");
            for (i, (disk_cf, mem_cf)) in from_file.iter().zip(&pending).enumerate() {
                let mut wa = Vec::new();
                let mut wb = Vec::new();
                disk_cf.to_words(&mut wa);
                mem_cf.to_words(&mut wb);
                assert_eq!(wa, wb, "outlier journal record {i} diverges from memory");
            }
        }
        pending
    }

    /// Scans every entry on disk and tries to re-absorb it into `tree`
    /// without growing it (paper §5.1.3). Entries that fail the absorption
    /// test but no longer look like outliers under `mean_entry_n` are
    /// inserted normally; the rest go back to disk.
    pub fn reabsorb(&mut self, tree: &mut CfTree, mean_entry_n: f64) -> ReabsorbReport {
        self.reabsorb_observed(tree, mean_entry_n, &mut NoopSink)
    }

    /// Like [`OutlierStore::reabsorb`], but reporting telemetry to `sink`:
    /// an [`Event::OutlierReabsorbed`] with the per-bucket counts
    /// (absorbed / reinserted / folded back), plus
    /// [`Event::SplitPerformed`] / [`Event::MergeRefinement`] for splits
    /// caused by re-inserting entries that outgrew outlierhood. With
    /// [`NoopSink`] this monomorphizes to exactly
    /// [`OutlierStore::reabsorb`].
    pub fn reabsorb_observed(
        &mut self,
        tree: &mut CfTree,
        mean_entry_n: f64,
        sink: &mut impl EventSink,
    ) -> ReabsorbReport {
        let _sp = crate::obs::span::enter("reabsorb");
        let before = tree.stats();
        let report = self.reabsorb_inner(tree, mean_entry_n);
        if sink.enabled() {
            if report.absorbed + report.reinserted + report.folded_back > 0 {
                sink.record(&Event::OutlierReabsorbed {
                    absorbed: report.absorbed,
                    reinserted: report.reinserted,
                    folded_back: report.folded_back,
                });
            }
            let after = tree.stats();
            if after.splits > before.splits {
                sink.record(&Event::SplitPerformed {
                    count: after.splits - before.splits,
                });
            }
            if after.merge_refinements > before.merge_refinements {
                sink.record(&Event::MergeRefinement {
                    count: after.merge_refinements - before.merge_refinements,
                });
            }
        }
        report
    }

    fn reabsorb_inner(&mut self, tree: &mut CfTree, mean_entry_n: f64) -> ReabsorbReport {
        let mut report = ReabsorbReport::default();
        let pending = self.drain_verified();
        for cf in pending {
            if tree.try_absorb(&cf) {
                report.absorbed += 1;
            } else if !self.config.is_potential_outlier(cf.n(), mean_entry_n) {
                // Grew out of outlier-hood (e.g. it was spilled early, the
                // average moved): treat it as regular data again.
                tree.insert_cf(cf);
                report.reinserted += 1;
            } else if let Err(cf) = self.spill(cf) {
                // Refill refused: unreachable with drain-then-refill on
                // a healthy disk, but an injected fault or force-full
                // degradation lands here — fold into the tree rather
                // than lose data.
                tree.insert_cf(cf);
                report.folded_back += 1;
            } else {
                report.retained += 1;
            }
        }
        report
    }

    /// Scans the parked entries without removing them (counts the disk
    /// reads) — used by streaming snapshots.
    pub fn scan(&mut self) -> &[Cf] {
        self.disk.scan_all()
    }

    /// Drains every parked entry *without* deciding its fate — neither
    /// discarded nor folded back. The parallel Phase-1 path uses this to
    /// carry a shard's unresolved potential outliers into the merge stage,
    /// where they get one more re-absorption chance against the full tree
    /// before the usual end-of-scan disposition.
    pub fn take_remaining(&mut self) -> Vec<Cf> {
        self.drain_verified()
    }

    /// Final disposition at the end of the scan: either discards the
    /// remaining entries (returning how many points were dropped) or folds
    /// them back into the tree, per the configuration.
    pub fn finalize(&mut self, tree: &mut CfTree) -> u64 {
        self.finalize_observed(tree, &mut NoopSink)
    }

    /// Like [`OutlierStore::finalize`], but reporting telemetry to `sink`:
    /// an [`Event::OutlierDiscarded`] with the discard count (when
    /// discarding), or split/refinement deltas for the fold-back inserts
    /// (when not). With [`NoopSink`] this monomorphizes to exactly
    /// [`OutlierStore::finalize`].
    pub fn finalize_observed(&mut self, tree: &mut CfTree, sink: &mut impl EventSink) -> u64 {
        let remaining = self.drain_verified();
        if self.config.discard_at_end {
            let count = remaining.len() as u64;
            if sink.enabled() && count > 0 {
                sink.record(&Event::OutlierDiscarded { count });
            }
            count
        } else {
            for cf in remaining {
                tree.insert_cf_observed(cf, sink);
            }
            0
        }
    }
}

/// Disk buffer for the delay-split option (§5.1.4): points that would force
/// a split while memory is exhausted wait here until the next rebuild.
#[derive(Debug, Clone)]
pub struct DelaySplitBuffer {
    disk: SimDisk<Cf>,
}

impl DelaySplitBuffer {
    /// Creates a buffer over `disk_bytes` of simulated disk.
    #[must_use]
    pub fn new(disk_bytes: usize, entry_bytes: usize) -> Self {
        Self {
            disk: SimDisk::new(disk_bytes, entry_bytes),
        }
    }

    /// Number of parked points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Whether one more point fits.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.disk.has_space()
    }

    /// Points successfully parked on the (simulated) disk.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.disk.writes()
    }

    /// Points read back from the (simulated) disk.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.disk.reads()
    }

    /// Bytes written, under the paper's per-entry cost model.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.disk.bytes_written()
    }

    /// Bytes read, under the paper's per-entry cost model.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.disk.bytes_read()
    }

    /// Write attempts, landed or refused.
    #[must_use]
    pub fn write_attempts(&self) -> u64 {
        self.disk.write_attempts()
    }

    /// Writes refused by an injected fault.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.disk.faults_injected()
    }

    /// Bytes currently occupied on the (simulated) disk.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.disk.used_bytes()
    }

    /// Installs a fault-injection plan on the underlying disk.
    pub fn set_fault_plan(&mut self, plan: birch_pager::FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Total points parked (sum of parked weights), counter-free — the
    /// auditor's N-conservation term.
    #[must_use]
    pub fn parked_n(&self) -> f64 {
        self.disk.peek().iter().map(Cf::n).sum()
    }

    /// Parks a point (as a singleton CF); returns it on a full buffer.
    pub fn park(&mut self, cf: Cf) -> Result<(), Cf> {
        let _sp = crate::obs::span::enter("disk_write");
        self.disk.write(cf).map_err(|(cf, _)| cf)
    }

    /// Drains all parked points for re-insertion after a rebuild.
    pub fn drain(&mut self) -> Vec<Cf> {
        let _sp = crate::obs::span::enter("disk_read");
        self.disk.drain_all()
    }

    /// Scans the parked points without removing them (counts the disk
    /// reads) — used by streaming snapshots so parked points still show
    /// up in the anytime clustering.
    pub fn scan(&mut self) -> &[Cf] {
        self.disk.scan_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn tree(threshold: f64) -> CfTree {
        CfTree::new(TreeParams {
            threshold,
            ..TreeParams::for_dim(2)
        })
    }

    #[test]
    fn outlier_rule_quarter_of_average() {
        let cfg = OutlierConfig::default();
        assert!(cfg.is_potential_outlier(1.0, 10.0));
        assert!(!cfg.is_potential_outlier(2.5, 10.0));
        assert!(!cfg.is_potential_outlier(9.0, 10.0));
        let off = OutlierConfig::disabled();
        assert!(!off.is_potential_outlier(0.1, 100.0));
    }

    #[test]
    fn spill_and_reabsorb_into_grown_threshold() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        // Park an outlier near (5,5).
        store.spill(Cf::from_point(&Point::xy(5.0, 5.0))).unwrap();
        // Tree with generous threshold and an entry at the origin cluster.
        let mut t = tree(20.0);
        for _ in 0..10 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 10.0);
        assert_eq!(report.absorbed, 1);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 0);
        assert_eq!(report.retained, 0);
        assert!(store.is_empty());
        assert_eq!(t.total_cf().n(), 11.0);
    }

    #[test]
    fn unabsorbable_entry_retained_then_discarded() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store
            .spill(Cf::from_point(&Point::xy(1000.0, 1000.0)))
            .unwrap();
        let mut t = tree(0.5);
        for _ in 0..20 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 20.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 0);
        assert_eq!(report.retained, 1);
        assert_eq!(store.len(), 1);
        let discarded = store.finalize(&mut t);
        assert_eq!(discarded, 1);
        assert_eq!(t.total_cf().n(), 20.0);
    }

    #[test]
    fn finalize_folds_back_when_discard_disabled() {
        let cfg = OutlierConfig {
            discard_at_end: false,
            ..OutlierConfig::default()
        };
        let mut store = OutlierStore::new(4096, 32, cfg);
        store.spill(Cf::from_point(&Point::xy(9.0, 9.0))).unwrap();
        let mut t = tree(0.5);
        t.insert_point(&Point::xy(0.0, 0.0));
        let discarded = store.finalize(&mut t);
        assert_eq!(discarded, 0);
        assert_eq!(t.total_cf().n(), 2.0);
        assert_eq!(t.leaf_entry_count(), 2);
    }

    #[test]
    fn entry_that_outgrew_outlierhood_reinserted() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        // A 5-point subcluster: with mean_entry_n = 10 it *is* an outlier
        // (5 < 2.5? no — 5 >= 2.5, so it is NOT) — craft accordingly.
        let pts: Vec<Point> = (0..5).map(|_| Point::xy(50.0, 50.0)).collect();
        store.spill(Cf::from_points(&pts)).unwrap();
        let mut t = tree(0.1); // too tight to absorb at (50,50)
        t.insert_point(&Point::xy(0.0, 0.0));
        // mean 10 -> 5 >= 0.25*10: no longer an outlier, so it is inserted
        // as a fresh entry rather than retained — counted as a
        // re-insertion, not an absorption (the tree grew).
        let report = store.reabsorb(&mut t, 10.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 1);
        assert_eq!(report.folded_back, 0);
        assert_eq!(t.leaf_entry_count(), 2);
    }

    #[test]
    fn refused_write_back_counted_as_fold_back() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store
            .spill(Cf::from_point(&Point::xy(1000.0, 1000.0)))
            .unwrap();
        // The entry is unabsorbable and still an outlier, so the scan
        // tries to write it back — attempt #2 on this disk, which the
        // plan fails, forcing the fold-into-tree degradation path.
        store.set_fault_plan(birch_pager::FaultPlan::new().fail_write(2));
        let mut t = tree(0.5);
        for _ in 0..20 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 20.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 1);
        assert_eq!(report.retained, 0);
        assert!(store.is_empty());
        // No data lost: the entry lives in the tree now.
        assert_eq!(t.total_cf().n(), 21.0);
    }

    #[test]
    fn full_disk_hands_back_entry() {
        let mut store = OutlierStore::new(32, 32, OutlierConfig::default());
        store.spill(Cf::from_point(&Point::xy(0.0, 0.0))).unwrap();
        let cf = Cf::from_point(&Point::xy(1.0, 1.0));
        let back = store.spill(cf.clone()).unwrap_err();
        assert_eq!(back, cf);
    }

    #[test]
    fn file_backed_store_round_trips_bit_identically() {
        let path =
            std::env::temp_dir().join(format!("birch-outlier-journal-{}.log", std::process::id()));
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store.back_with_file(&path).unwrap();
        // Awkward bit patterns: spread-out weighted subclusters.
        for i in 0..7 {
            let pts: Vec<Point> = (0..=i)
                .map(|k| Point::xy(f64::from(i) * 1e8 + 0.1, f64::from(k) * 0.3 - 7.7))
                .collect();
            store.spill(Cf::from_points(&pts)).unwrap();
        }
        assert!(path.exists(), "journal file must exist while parked");
        let (written, read) = store.journal_bytes();
        assert!(written > 0);
        assert_eq!(read, 0);

        // drain_verified (via take_remaining) re-reads every record from
        // the file and bit-compares — a divergence would panic here.
        let drained = store.take_remaining();
        assert_eq!(drained.len(), 7);
        let (_, read) = store.journal_bytes();
        assert_eq!(read, written, "every journal byte must be read back");

        drop(store);
        assert!(!path.exists(), "journal file must be deleted on drop");
    }

    #[test]
    fn journal_detects_file_corruption() {
        let path =
            std::env::temp_dir().join(format!("birch-outlier-corrupt-{}.log", std::process::id()));
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store.back_with_file(&path).unwrap();
        store.spill(Cf::from_point(&Point::xy(3.0, 4.0))).unwrap();
        // Corrupt the payload behind the store's back.
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.take_remaining()));
        assert!(result.is_err(), "corrupted journal record must not decode");
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delay_buffer_roundtrip() {
        let mut buf = DelaySplitBuffer::new(96, 32);
        assert!(buf.is_empty());
        for i in 0..3 {
            buf.park(Cf::from_point(&Point::xy(f64::from(i), 0.0)))
                .unwrap();
        }
        assert!(!buf.has_space());
        assert!(buf.park(Cf::from_point(&Point::xy(9.0, 9.0))).is_err());
        let drained = buf.drain();
        assert_eq!(drained.len(), 3);
        assert!(buf.is_empty());
        assert_eq!(buf.writes(), 3);
        assert_eq!(buf.reads(), 3);
    }
}
