//! Outlier handling (§5.1.3) and the delay-split buffer (§5.1.4).
//!
//! BIRCH treats low-density leaf entries as *potential outliers*: during a
//! rebuild, a leaf entry holding "far fewer data points than the average"
//! is written to the outlier disk instead of the new tree. Periodically —
//! when the disk fills up, and once the full dataset has been scanned —
//! the entries on disk are re-scanned to see whether the (now larger)
//! threshold lets them be **re-absorbed** into the tree *without growing
//! it*. Entries that survive to the end of the scan are genuine outliers.
//!
//! The delay-split option uses leftover disk space differently: when memory
//! runs out, points that would force a node split are parked on disk so the
//! current threshold can squeeze in the points that still fit, postponing
//! the (expensive) rebuild.

use crate::cf::Cf;
use crate::obs::{Event, EventSink, NoopSink};
use crate::tree::CfTree;
use birch_pager::SimDisk;

/// Configuration of the outlier-handling option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierConfig {
    /// Master switch (paper Table 2: outlier-handling on by default).
    pub enabled: bool,
    /// A leaf entry is a potential outlier when it holds fewer than
    /// `factor ×` the average number of points per leaf entry. The paper
    /// uses a quarter ("contains < 25% of the average").
    pub factor: f64,
    /// Whether entries still unabsorbed at the end of the run are removed
    /// from the result (`true`, the paper's behaviour) or folded back into
    /// the tree (`false`).
    pub discard_at_end: bool,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            factor: 0.25,
            discard_at_end: true,
        }
    }
}

impl OutlierConfig {
    /// Disabled outlier handling (every entry goes back into the tree).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Whether an entry of weight `entry_n` is a potential outlier given
    /// the current mean points-per-leaf-entry.
    #[must_use]
    pub fn is_potential_outlier(&self, entry_n: f64, mean_entry_n: f64) -> bool {
        self.enabled && entry_n < self.factor * mean_entry_n
    }
}

/// Outcome of a re-absorption scan over the outlier disk.
///
/// Every drained entry lands in exactly one bucket, so the counts sum to
/// the number of entries scanned. Only `absorbed` is a true §5.1.3
/// re-absorption; `reinserted` and `folded_back` grow the tree like any
/// other insert and are reported separately so telemetry doesn't
/// overstate how much the raised threshold actually recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReabsorbReport {
    /// Entries merged into an existing leaf entry without growing the
    /// tree (the absorption test of §5.1.3 passed).
    pub absorbed: u64,
    /// Entries that no longer look like outliers under the current mean
    /// points-per-entry and were re-inserted as regular data.
    pub reinserted: u64,
    /// Entries folded into the tree because the disk refused the
    /// write-back (injected fault or force-full degradation).
    pub folded_back: u64,
    /// Entries written back to disk (still potential outliers).
    pub retained: u64,
}

/// Disk-backed store of potential-outlier CF entries.
#[derive(Debug, Clone)]
pub struct OutlierStore {
    disk: SimDisk<Cf>,
    config: OutlierConfig,
}

impl OutlierStore {
    /// Creates a store over `disk_bytes` of simulated disk, where each CF
    /// entry accounts for `entry_bytes` (see
    /// [`birch_pager::PageLayout::cf_entry_bytes`]).
    #[must_use]
    pub fn new(disk_bytes: usize, entry_bytes: usize, config: OutlierConfig) -> Self {
        Self {
            disk: SimDisk::new(disk_bytes, entry_bytes),
            config,
        }
    }

    /// The store's configuration.
    #[must_use]
    pub fn config(&self) -> &OutlierConfig {
        &self.config
    }

    /// Number of potential outliers currently parked on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the disk holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Whether the disk can take one more entry.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.disk.has_space()
    }

    /// Underlying disk counters (reads/writes/bytes) for reporting.
    #[must_use]
    pub fn disk(&self) -> &SimDisk<Cf> {
        &self.disk
    }

    /// Installs a fault-injection plan on the underlying disk (tests and
    /// soak runs): spills then fail deterministically, exercising the
    /// fold-back and reabsorb-after-full degradation paths.
    pub fn set_fault_plan(&mut self, plan: birch_pager::FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Total number of data points parked on disk (sum of the parked
    /// entries' weights), read without touching the I/O counters — the
    /// auditor's N-conservation term.
    #[must_use]
    pub fn parked_n(&self) -> f64 {
        self.disk.peek().iter().map(Cf::n).sum()
    }

    /// Parks a potential outlier on disk. On a full disk the entry is
    /// handed back so the caller can fold it into the tree instead.
    pub fn spill(&mut self, entry: Cf) -> Result<(), Cf> {
        let _sp = crate::obs::span::enter("disk_write");
        self.disk.write(entry).map_err(|(cf, _)| cf)
    }

    /// Scans every entry on disk and tries to re-absorb it into `tree`
    /// without growing it (paper §5.1.3). Entries that fail the absorption
    /// test but no longer look like outliers under `mean_entry_n` are
    /// inserted normally; the rest go back to disk.
    pub fn reabsorb(&mut self, tree: &mut CfTree, mean_entry_n: f64) -> ReabsorbReport {
        self.reabsorb_observed(tree, mean_entry_n, &mut NoopSink)
    }

    /// Like [`OutlierStore::reabsorb`], but reporting telemetry to `sink`:
    /// an [`Event::OutlierReabsorbed`] with the per-bucket counts
    /// (absorbed / reinserted / folded back), plus
    /// [`Event::SplitPerformed`] / [`Event::MergeRefinement`] for splits
    /// caused by re-inserting entries that outgrew outlierhood. With
    /// [`NoopSink`] this monomorphizes to exactly
    /// [`OutlierStore::reabsorb`].
    pub fn reabsorb_observed(
        &mut self,
        tree: &mut CfTree,
        mean_entry_n: f64,
        sink: &mut impl EventSink,
    ) -> ReabsorbReport {
        let _sp = crate::obs::span::enter("reabsorb");
        let before = tree.stats();
        let report = self.reabsorb_inner(tree, mean_entry_n);
        if sink.enabled() {
            if report.absorbed + report.reinserted + report.folded_back > 0 {
                sink.record(&Event::OutlierReabsorbed {
                    absorbed: report.absorbed,
                    reinserted: report.reinserted,
                    folded_back: report.folded_back,
                });
            }
            let after = tree.stats();
            if after.splits > before.splits {
                sink.record(&Event::SplitPerformed {
                    count: after.splits - before.splits,
                });
            }
            if after.merge_refinements > before.merge_refinements {
                sink.record(&Event::MergeRefinement {
                    count: after.merge_refinements - before.merge_refinements,
                });
            }
        }
        report
    }

    fn reabsorb_inner(&mut self, tree: &mut CfTree, mean_entry_n: f64) -> ReabsorbReport {
        let mut report = ReabsorbReport::default();
        let pending = {
            let _sp = crate::obs::span::enter("disk_read");
            self.disk.drain_all()
        };
        for cf in pending {
            if tree.try_absorb(&cf) {
                report.absorbed += 1;
            } else if !self.config.is_potential_outlier(cf.n(), mean_entry_n) {
                // Grew out of outlier-hood (e.g. it was spilled early, the
                // average moved): treat it as regular data again.
                tree.insert_cf(cf);
                report.reinserted += 1;
            } else if let Err(cf) = self.spill(cf) {
                // Refill refused: unreachable with drain-then-refill on
                // a healthy disk, but an injected fault or force-full
                // degradation lands here — fold into the tree rather
                // than lose data.
                tree.insert_cf(cf);
                report.folded_back += 1;
            } else {
                report.retained += 1;
            }
        }
        report
    }

    /// Scans the parked entries without removing them (counts the disk
    /// reads) — used by streaming snapshots.
    pub fn scan(&mut self) -> &[Cf] {
        self.disk.scan_all()
    }

    /// Drains every parked entry *without* deciding its fate — neither
    /// discarded nor folded back. The parallel Phase-1 path uses this to
    /// carry a shard's unresolved potential outliers into the merge stage,
    /// where they get one more re-absorption chance against the full tree
    /// before the usual end-of-scan disposition.
    pub fn take_remaining(&mut self) -> Vec<Cf> {
        self.disk.drain_all()
    }

    /// Final disposition at the end of the scan: either discards the
    /// remaining entries (returning how many points were dropped) or folds
    /// them back into the tree, per the configuration.
    pub fn finalize(&mut self, tree: &mut CfTree) -> u64 {
        self.finalize_observed(tree, &mut NoopSink)
    }

    /// Like [`OutlierStore::finalize`], but reporting telemetry to `sink`:
    /// an [`Event::OutlierDiscarded`] with the discard count (when
    /// discarding), or split/refinement deltas for the fold-back inserts
    /// (when not). With [`NoopSink`] this monomorphizes to exactly
    /// [`OutlierStore::finalize`].
    pub fn finalize_observed(&mut self, tree: &mut CfTree, sink: &mut impl EventSink) -> u64 {
        let remaining = {
            let _sp = crate::obs::span::enter("disk_read");
            self.disk.drain_all()
        };
        if self.config.discard_at_end {
            let count = remaining.len() as u64;
            if sink.enabled() && count > 0 {
                sink.record(&Event::OutlierDiscarded { count });
            }
            count
        } else {
            for cf in remaining {
                tree.insert_cf_observed(cf, sink);
            }
            0
        }
    }
}

/// Disk buffer for the delay-split option (§5.1.4): points that would force
/// a split while memory is exhausted wait here until the next rebuild.
#[derive(Debug, Clone)]
pub struct DelaySplitBuffer {
    disk: SimDisk<Cf>,
}

impl DelaySplitBuffer {
    /// Creates a buffer over `disk_bytes` of simulated disk.
    #[must_use]
    pub fn new(disk_bytes: usize, entry_bytes: usize) -> Self {
        Self {
            disk: SimDisk::new(disk_bytes, entry_bytes),
        }
    }

    /// Number of parked points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Whether one more point fits.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.disk.has_space()
    }

    /// Underlying disk counters.
    #[must_use]
    pub fn disk(&self) -> &SimDisk<Cf> {
        &self.disk
    }

    /// Installs a fault-injection plan on the underlying disk.
    pub fn set_fault_plan(&mut self, plan: birch_pager::FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Total points parked (sum of parked weights), counter-free — the
    /// auditor's N-conservation term.
    #[must_use]
    pub fn parked_n(&self) -> f64 {
        self.disk.peek().iter().map(Cf::n).sum()
    }

    /// Parks a point (as a singleton CF); returns it on a full buffer.
    pub fn park(&mut self, cf: Cf) -> Result<(), Cf> {
        let _sp = crate::obs::span::enter("disk_write");
        self.disk.write(cf).map_err(|(cf, _)| cf)
    }

    /// Drains all parked points for re-insertion after a rebuild.
    pub fn drain(&mut self) -> Vec<Cf> {
        let _sp = crate::obs::span::enter("disk_read");
        self.disk.drain_all()
    }

    /// Scans the parked points without removing them (counts the disk
    /// reads) — used by streaming snapshots so parked points still show
    /// up in the anytime clustering.
    pub fn scan(&mut self) -> &[Cf] {
        self.disk.scan_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn tree(threshold: f64) -> CfTree {
        CfTree::new(TreeParams {
            threshold,
            ..TreeParams::for_dim(2)
        })
    }

    #[test]
    fn outlier_rule_quarter_of_average() {
        let cfg = OutlierConfig::default();
        assert!(cfg.is_potential_outlier(1.0, 10.0));
        assert!(!cfg.is_potential_outlier(2.5, 10.0));
        assert!(!cfg.is_potential_outlier(9.0, 10.0));
        let off = OutlierConfig::disabled();
        assert!(!off.is_potential_outlier(0.1, 100.0));
    }

    #[test]
    fn spill_and_reabsorb_into_grown_threshold() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        // Park an outlier near (5,5).
        store.spill(Cf::from_point(&Point::xy(5.0, 5.0))).unwrap();
        // Tree with generous threshold and an entry at the origin cluster.
        let mut t = tree(20.0);
        for _ in 0..10 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 10.0);
        assert_eq!(report.absorbed, 1);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 0);
        assert_eq!(report.retained, 0);
        assert!(store.is_empty());
        assert_eq!(t.total_cf().n(), 11.0);
    }

    #[test]
    fn unabsorbable_entry_retained_then_discarded() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store
            .spill(Cf::from_point(&Point::xy(1000.0, 1000.0)))
            .unwrap();
        let mut t = tree(0.5);
        for _ in 0..20 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 20.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 0);
        assert_eq!(report.retained, 1);
        assert_eq!(store.len(), 1);
        let discarded = store.finalize(&mut t);
        assert_eq!(discarded, 1);
        assert_eq!(t.total_cf().n(), 20.0);
    }

    #[test]
    fn finalize_folds_back_when_discard_disabled() {
        let cfg = OutlierConfig {
            discard_at_end: false,
            ..OutlierConfig::default()
        };
        let mut store = OutlierStore::new(4096, 32, cfg);
        store.spill(Cf::from_point(&Point::xy(9.0, 9.0))).unwrap();
        let mut t = tree(0.5);
        t.insert_point(&Point::xy(0.0, 0.0));
        let discarded = store.finalize(&mut t);
        assert_eq!(discarded, 0);
        assert_eq!(t.total_cf().n(), 2.0);
        assert_eq!(t.leaf_entry_count(), 2);
    }

    #[test]
    fn entry_that_outgrew_outlierhood_reinserted() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        // A 5-point subcluster: with mean_entry_n = 10 it *is* an outlier
        // (5 < 2.5? no — 5 >= 2.5, so it is NOT) — craft accordingly.
        let pts: Vec<Point> = (0..5).map(|_| Point::xy(50.0, 50.0)).collect();
        store.spill(Cf::from_points(&pts)).unwrap();
        let mut t = tree(0.1); // too tight to absorb at (50,50)
        t.insert_point(&Point::xy(0.0, 0.0));
        // mean 10 -> 5 >= 0.25*10: no longer an outlier, so it is inserted
        // as a fresh entry rather than retained — counted as a
        // re-insertion, not an absorption (the tree grew).
        let report = store.reabsorb(&mut t, 10.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 1);
        assert_eq!(report.folded_back, 0);
        assert_eq!(t.leaf_entry_count(), 2);
    }

    #[test]
    fn refused_write_back_counted_as_fold_back() {
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        store
            .spill(Cf::from_point(&Point::xy(1000.0, 1000.0)))
            .unwrap();
        // The entry is unabsorbable and still an outlier, so the scan
        // tries to write it back — attempt #2 on this disk, which the
        // plan fails, forcing the fold-into-tree degradation path.
        store.set_fault_plan(birch_pager::FaultPlan::new().fail_write(2));
        let mut t = tree(0.5);
        for _ in 0..20 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        let report = store.reabsorb(&mut t, 20.0);
        assert_eq!(report.absorbed, 0);
        assert_eq!(report.reinserted, 0);
        assert_eq!(report.folded_back, 1);
        assert_eq!(report.retained, 0);
        assert!(store.is_empty());
        // No data lost: the entry lives in the tree now.
        assert_eq!(t.total_cf().n(), 21.0);
    }

    #[test]
    fn full_disk_hands_back_entry() {
        let mut store = OutlierStore::new(32, 32, OutlierConfig::default());
        store.spill(Cf::from_point(&Point::xy(0.0, 0.0))).unwrap();
        let cf = Cf::from_point(&Point::xy(1.0, 1.0));
        let back = store.spill(cf.clone()).unwrap_err();
        assert_eq!(back, cf);
    }

    #[test]
    fn delay_buffer_roundtrip() {
        let mut buf = DelaySplitBuffer::new(96, 32);
        assert!(buf.is_empty());
        for i in 0..3 {
            buf.park(Cf::from_point(&Point::xy(f64::from(i), 0.0)))
                .unwrap();
        }
        assert!(!buf.has_space());
        assert!(buf.park(Cf::from_point(&Point::xy(9.0, 9.0))).is_err());
        let drained = buf.drain();
        assert_eq!(drained.len(), 3);
        assert!(buf.is_empty());
        assert_eq!(buf.disk().writes(), 3);
        assert_eq!(buf.disk().reads(), 3);
    }
}
