//! Phase 4 (optional): refinement and labeling.
//!
//! Paper §5: Phase 3's clusters are built from summaries, so individual
//! points can sit in the "wrong" cluster (copies of a point split across
//! entries, misplacements from skewed input). Phase 4 fixes this with
//! "additional passes over the data": using the Phase-3 centroids as
//! seeds, each original data point is re-assigned to its closest seed —
//! one pass of the classic centroid-refinement (k-means/Lloyd) step, which
//! the paper notes "can be proved to converge to a minimum". It also
//! labels every point with its cluster and can discard as outliers points
//! too far from every seed.

use crate::cf::Cf;
use crate::distance::D0_PRUNE_SLACK_REL;
use crate::point::Point;

/// Configuration for the refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase4Config {
    /// Number of reassignment passes (≥ 1 when Phase 4 runs at all).
    pub passes: usize,
    /// Discard a point whose distance to its closest seed exceeds
    /// `factor ×` that seed cluster's radius (`None` keeps all points).
    /// Seeds with zero radius fall back to the mean non-zero seed radius.
    pub outlier_factor: Option<f64>,
}

impl Default for Phase4Config {
    fn default() -> Self {
        Self {
            passes: 1,
            outlier_factor: None,
        }
    }
}

/// Result of refinement.
#[derive(Debug, Clone)]
pub struct Phase4Result {
    /// Per-point label: the cluster index, or `None` for discarded
    /// outliers.
    pub labels: Vec<Option<usize>>,
    /// Refined cluster CFs (empty clusters retain their seed CF so indices
    /// stay stable across passes).
    pub clusters: Vec<Cf>,
    /// Points discarded as outliers over the final pass.
    pub discarded: u64,
}

/// Runs `config.passes` refinement passes of `points` (optionally
/// weighted) against the `seeds` produced by Phase 3.
///
/// # Panics
///
/// Panics if `seeds` is empty, `config.passes == 0`, or (when provided)
/// `weights.len() != points.len()`.
#[must_use]
pub fn refine(
    points: &[Point],
    weights: Option<&[f64]>,
    seeds: &[Cf],
    config: Phase4Config,
) -> Phase4Result {
    assert!(!seeds.is_empty(), "phase 4 requires at least one seed");
    assert!(config.passes >= 1, "phase 4 requires at least one pass");
    if let Some(w) = weights {
        assert_eq!(w.len(), points.len(), "weights/points length mismatch");
    }

    let mut clusters: Vec<Cf> = seeds.to_vec();
    let mut labels = vec![None; points.len()];
    let mut discarded = 0u64;

    for _ in 0..config.passes {
        let _sp = crate::obs::span::enter("refine_pass");
        let centroids: Vec<Point> = clusters.iter().map(Cf::centroid).collect();
        let norms: Vec<f64> = centroids.iter().map(norm).collect();
        let radii: Vec<f64> = clusters.iter().map(Cf::radius).collect();
        let mean_radius = {
            let nz: Vec<f64> = radii.iter().copied().filter(|&r| r > 0.0).collect();
            if nz.is_empty() {
                0.0
            } else {
                nz.iter().sum::<f64>() / nz.len() as f64
            }
        };

        let dim = centroids[0].dim();
        let mut next: Vec<Cf> = (0..clusters.len()).map(|_| Cf::empty(dim)).collect();
        discarded = 0;

        for (i, p) in points.iter().enumerate() {
            let (best, best_d) = nearest_seed(p, &centroids, &norms);
            let keep = match config.outlier_factor {
                None => true,
                Some(f) => {
                    let scale = if radii[best] > 0.0 {
                        radii[best]
                    } else {
                        mean_radius
                    };
                    scale == 0.0 || best_d <= f * scale
                }
            };
            if keep {
                let w = weights.map_or(1.0, |w| w[i]);
                next[best].add_weighted_point(p, w);
                labels[i] = Some(best);
            } else {
                labels[i] = None;
                discarded += 1;
            }
        }

        // Keep empty clusters' previous CFs so seed indices stay stable.
        for (c, n) in clusters.iter_mut().zip(next) {
            if !n.is_empty() {
                *c = n;
            }
        }
    }

    Phase4Result {
        labels,
        clusters,
        discarded,
    }
}

fn norm(p: &Point) -> f64 {
    p.coords().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Index and distance of the seed centroid nearest to `p` (Euclidean, per
/// the paper: "the Euclidian distance to the closest seed").
///
/// Seeds whose reverse-triangle lower bound `|‖p‖ − ‖c‖|` (shaved by
/// [`D0_PRUNE_SLACK_REL`] against norm round-off, as in the Phase 1
/// descend prune) already exceeds the running best are skipped without a
/// full squared-distance evaluation. Exact-equivalent to the brute scan:
/// the bound never exceeds the true distance and taking over `best`
/// requires a strict win, so a pruned seed can never be the lowest-index
/// minimizer — the property test pins byte-identical assignments.
fn nearest_seed(p: &Point, centroids: &[Point], norms: &[f64]) -> (usize, f64) {
    let pn = norm(p);
    let mut best = 0;
    let mut best_sq = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let b = ((pn - norms[i]).abs() - D0_PRUNE_SLACK_REL * (pn + norms[i])).max(0.0);
        if b * b > best_sq {
            continue;
        }
        let d = p.sq_dist(c);
        if d < best_sq {
            best_sq = d;
            best = i;
        }
    }
    (best, best_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Point>, Vec<Cf>) {
        let mut pts = Vec::new();
        for i in 0..20 {
            let off = f64::from(i % 5) * 0.1;
            pts.push(Point::xy(off, off));
            pts.push(Point::xy(50.0 + off, 50.0 + off));
        }
        // Deliberately offset seeds: refinement should still capture the
        // blobs.
        let seeds = vec![
            Cf::from_points(&[Point::xy(1.0, 1.0), Point::xy(2.0, 2.0)]),
            Cf::from_points(&[Point::xy(48.0, 48.0), Point::xy(49.0, 49.0)]),
        ];
        (pts, seeds)
    }

    #[test]
    fn one_pass_assigns_all_points() {
        let (pts, seeds) = two_blobs();
        let r = refine(&pts, None, &seeds, Phase4Config::default());
        assert_eq!(r.labels.len(), pts.len());
        assert!(r.labels.iter().all(Option::is_some));
        assert_eq!(r.discarded, 0);
        let total: f64 = r.clusters.iter().map(Cf::n).sum();
        assert_eq!(total, 40.0);
        // Each blob fully captured by one cluster.
        let n0 = r.clusters[0].n();
        let n1 = r.clusters[1].n();
        assert_eq!(n0, 20.0);
        assert_eq!(n1, 20.0);
    }

    #[test]
    fn centroids_improve_after_refinement() {
        let (pts, seeds) = two_blobs();
        let r = refine(&pts, None, &seeds, Phase4Config::default());
        // Blob 0's true centroid is (0.2, 0.2): the refined centroid must
        // be much closer to it than the seed (1.5, 1.5) was.
        let c = r.clusters[0].centroid();
        assert!(c.dist(&Point::xy(0.2, 0.2)) < 0.01, "centroid {c:?}");
    }

    #[test]
    fn multiple_passes_converge() {
        let (pts, seeds) = two_blobs();
        let one = refine(
            &pts,
            None,
            &seeds,
            Phase4Config {
                passes: 1,
                outlier_factor: None,
            },
        );
        let five = refine(
            &pts,
            None,
            &seeds,
            Phase4Config {
                passes: 5,
                outlier_factor: None,
            },
        );
        // With well-separated blobs one pass already lands the answer;
        // more passes must not change it.
        assert_eq!(one.labels, five.labels);
    }

    #[test]
    fn outlier_discard_drops_far_points() {
        let (mut pts, seeds) = two_blobs();
        pts.push(Point::xy(500.0, -500.0));
        let cfg = Phase4Config {
            passes: 2,
            outlier_factor: Some(3.0),
        };
        let r = refine(&pts, None, &seeds, cfg);
        assert_eq!(r.discarded, 1);
        assert_eq!(*r.labels.last().unwrap(), None);
        // Regular points all kept.
        assert_eq!(r.labels.iter().filter(|l| l.is_some()).count(), 40);
    }

    #[test]
    fn weighted_points_shift_centroid() {
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(10.0, 0.0)];
        let weights = vec![9.0, 1.0];
        let seeds = vec![Cf::from_points(&pts)];
        let r = refine(&pts, Some(&weights), &seeds, Phase4Config::default());
        let c = r.clusters[0].centroid();
        assert!((c[0] - 1.0).abs() < 1e-12, "weighted centroid {c:?}");
    }

    #[test]
    fn empty_cluster_keeps_seed_cf() {
        // All points near seed 0; seed 1 receives nothing and must keep its
        // original CF (stable indices).
        let pts = vec![Point::xy(0.0, 0.0), Point::xy(0.1, 0.0)];
        let lonely = Cf::from_points(&[Point::xy(99.0, 99.0)]);
        let seeds = vec![Cf::from_points(&pts), lonely.clone()];
        let r = refine(&pts, None, &seeds, Phase4Config::default());
        assert_eq!(r.clusters[1], lonely);
    }

    #[test]
    fn pruned_nearest_seed_matches_brute_scan() {
        // Oracle: the plain linear scan the prune replaced.
        fn brute(p: &Point, centroids: &[Point]) -> (usize, f64) {
            let mut best = 0;
            let mut best_sq = f64::INFINITY;
            for (i, c) in centroids.iter().enumerate() {
                let d = p.sq_dist(c);
                if d < best_sq {
                    best_sq = d;
                    best = i;
                }
            }
            (best, best_sq.sqrt())
        }
        let centroids: Vec<Point> = (0..30)
            .map(|i| {
                let j = f64::from(i);
                Point::xy((j * 0.77).sin() * 40.0, (j * 1.31).cos() * 40.0)
            })
            .collect();
        let norms: Vec<f64> = centroids.iter().map(norm).collect();
        for i in 0..500 {
            let j = f64::from(i);
            let p = Point::xy((j * 0.29).sin() * 60.0, (j * 0.53).cos() * 60.0);
            let (bi, bd) = brute(&p, &centroids);
            let (pi, pd) = nearest_seed(&p, &centroids, &norms);
            assert_eq!(bi, pi, "point {i}");
            assert_eq!(bd.to_bits(), pd.to_bits(), "point {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn no_seeds_panics() {
        let _ = refine(&[Point::xy(0.0, 0.0)], None, &[], Phase4Config::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weight_length_mismatch_panics() {
        let pts = vec![Point::xy(0.0, 0.0)];
        let seeds = vec![Cf::from_point(&pts[0])];
        let _ = refine(&pts, Some(&[1.0, 2.0]), &seeds, Phase4Config::default());
    }
}
