//! Heuristics for choosing the next threshold `T_{i+1}` (§5.1.2).
//!
//! When the CF-tree outgrows memory, BIRCH rebuilds it with a larger
//! threshold. Picking `T_{i+1}` well matters: too small and the rebuild
//! buys no room (another rebuild follows immediately); too large and the
//! tree becomes needlessly coarse, hurting quality. The paper combines
//! several signals:
//!
//! 1. **Target growth** — aim to absorb `N_{i+1} = min(2·N_i, N)` points
//!    under the next threshold (double the data, capped at the dataset size
//!    when known).
//! 2. **Volume extrapolation** — model each leaf entry as a packed
//!    `d`-dimensional sphere of radius `T_i`; keeping the packing density
//!    constant while the data grows by `N_{i+1}/N_i` implies an expansion
//!    factor `f_vol = (N_{i+1}/N_i)^{1/d}` on the threshold.
//! 3. **r–N regression** — record how the root cluster's radius `r` has
//!    grown with `N` across rebuilds and extrapolate `r_{i+1}` by least
//!    squares on the log–log history ("assuming r grows with N following a
//!    power law"); the ratio `r_{i+1}/r_i` is a second expansion factor.
//! 4. **Dmin** — the smallest merged-entry statistic over pairs in the most
//!    crowded leaf: the least threshold guaranteed to merge *something*
//!    where it is densest, so the rebuild makes progress.
//!
//! Final choice: `T_{i+1} = max(T_i · max(f_vol, f_reg), Dmin)`, bumped to
//! strictly exceed `T_i` (the paper multiplies by 1.01 when the estimate
//! fails to grow).

use crate::tree::CfTree;

/// Stateful estimator for the rebuild threshold sequence `T_0 < T_1 < …`.
#[derive(Debug, Clone, Default)]
pub struct ThresholdEstimator {
    /// Log–log history of (ln N_i, ln r_i) observations across rebuilds.
    history: Vec<(f64, f64)>,
    /// Total dataset size `N` when known in advance (lets the growth target
    /// saturate at the true size, per the paper).
    total_hint: Option<u64>,
}

impl ThresholdEstimator {
    /// Creates an estimator; pass the dataset size if known in advance.
    #[must_use]
    pub fn new(total_hint: Option<u64>) -> Self {
        Self {
            history: Vec::new(),
            total_hint,
        }
    }

    /// Number of (N, r) observations recorded so far.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Records the state at a rebuild point and returns the next threshold.
    ///
    /// `points_seen` is the number of data points scanned so far (`N_i`).
    ///
    /// # Panics
    ///
    /// Panics if `points_seen == 0` — a rebuild cannot trigger before any
    /// data arrived.
    pub fn next_threshold(&mut self, tree: &CfTree, points_seen: u64) -> f64 {
        assert!(points_seen > 0, "rebuild before any data was scanned");
        let t_i = tree.threshold();
        let d = tree.dim() as f64;
        let n_i = points_seen as f64;
        let n_next = match self.total_hint {
            Some(total) => (2.0 * n_i).min(total as f64).max(n_i),
            None => 2.0 * n_i,
        };

        // Signal 2: packed-volume expansion.
        let f_vol = (n_next / n_i).powf(1.0 / d);

        // Signal 3: r–N least-squares regression on the log-log history.
        let r_i = tree.total_cf().radius();
        if r_i > 0.0 {
            self.history.push((n_i.ln(), r_i.ln()));
        }
        let f_reg = self.regression_expansion(n_next);

        // Signal 4: Dmin in the most crowded leaf.
        let dmin = tree.dmin_most_crowded_leaf().unwrap_or(0.0);

        let grown = t_i * f_vol.max(f_reg);
        let mut t_next = grown.max(dmin);

        // Dmin can sit only ε above T_i (the densest pair barely misses
        // the current threshold), which would stall the rebuild sequence;
        // enforce the paper's 1% minimum growth.
        if t_i > 0.0 {
            t_next = t_next.max(t_i * 1.01);
        }

        // The estimate must strictly exceed T_i or the rebuild is futile.
        if t_next <= t_i {
            t_next = if t_i > 0.0 {
                t_i * 1.01
            } else {
                // T_0 = 0 and no Dmin signal (e.g. every leaf holds a single
                // entry): derive a conservative scale from the data spread.
                let fallback = r_i / (tree.leaf_entry_count().max(1) as f64).powf(1.0 / d);
                if fallback > 0.0 {
                    fallback
                } else {
                    f64::EPSILON.sqrt() // degenerate: all points identical
                }
            };
        }
        t_next
    }

    /// Threshold for condensing the tree to at most `target_entries` leaf
    /// entries (Phase 2). By the packed-volume model, shrinking the entry
    /// count by a factor `E/target` requires expanding each entry's
    /// footprint by the same data volume, i.e. the threshold by
    /// `(E/target)^{1/d}` — with the usual `Dmin` floor and 1% minimum
    /// growth so every rebuild makes progress.
    ///
    /// # Panics
    ///
    /// Panics if `target_entries == 0`.
    pub fn next_threshold_for_target(&mut self, tree: &CfTree, target_entries: usize) -> f64 {
        assert!(target_entries > 0, "target must be positive");
        let t_i = tree.threshold();
        let d = tree.dim() as f64;
        let e = tree.leaf_entry_count().max(1) as f64;
        let f = (e / target_entries as f64).powf(1.0 / d).max(1.0);
        let dmin = tree.dmin_most_crowded_leaf().unwrap_or(0.0);
        let mut t_next = (t_i * f).max(dmin);
        if t_i > 0.0 {
            t_next = t_next.max(t_i * 1.01);
        }
        if t_next <= t_i || t_next == 0.0 {
            let r = tree.total_cf().radius();
            let fallback = r / (tree.leaf_entry_count().max(1) as f64).powf(1.0 / d);
            t_next = if t_i > 0.0 {
                t_i * 1.01
            } else if fallback > 0.0 {
                fallback
            } else {
                f64::EPSILON.sqrt()
            };
        }
        t_next
    }

    /// Expansion factor predicted by the log–log regression, or 1.0 when
    /// fewer than two observations exist or the fit is degenerate.
    fn regression_expansion(&self, n_next: f64) -> f64 {
        if self.history.len() < 2 {
            return 1.0;
        }
        let m = self.history.len() as f64;
        let (sx, sy): (f64, f64) = self
            .history
            .iter()
            .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
        let (mx, my) = (sx / m, sy / m);
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(x, y) in &self.history {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
        }
        if sxx <= f64::EPSILON {
            return 1.0;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let &(last_ln_n, last_ln_r) = self.history.last().expect("non-empty history");
        let _ = last_ln_n;
        let pred_ln_r = intercept + slope * n_next.ln();
        let ratio = (pred_ln_r - last_ln_r).exp();
        if ratio.is_finite() && ratio > 0.0 {
            // Growth only: a shrinking radius prediction would stall rebuilds.
            ratio.max(1.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn tree_with_points(threshold: f64, pts: &[(f64, f64)]) -> CfTree {
        let mut t = CfTree::new(TreeParams {
            threshold,
            ..TreeParams::for_dim(2)
        });
        for &(x, y) in pts {
            t.insert_point(&Point::xy(x, y));
        }
        t
    }

    fn spread_points(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let i = i as f64;
                (
                    (i * 0.61803).rem_euclid(40.0),
                    (i * 0.41421).rem_euclid(40.0),
                )
            })
            .collect()
    }

    #[test]
    fn threshold_strictly_increases() {
        let mut est = ThresholdEstimator::new(None);
        let tree = tree_with_points(0.0, &spread_points(100));
        let t1 = est.next_threshold(&tree, 100);
        assert!(t1 > 0.0, "t1={t1}");
        let tree2 = tree_with_points(t1, &spread_points(200));
        let t2 = est.next_threshold(&tree2, 200);
        assert!(t2 > t1, "t2={t2} !> t1={t1}");
    }

    #[test]
    fn zero_threshold_bootstrap_gets_positive_value() {
        let mut est = ThresholdEstimator::new(Some(1000));
        // Two far points: most crowded leaf has both; Dmin = their merged
        // diameter.
        let tree = tree_with_points(0.0, &[(0.0, 0.0), (10.0, 0.0)]);
        let t = est.next_threshold(&tree, 2);
        assert!(t > 0.0);
        // Dmin of the only pair (merged diameter = 10) should dominate.
        assert!((t - 10.0).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn identical_points_degenerate_case() {
        let mut est = ThresholdEstimator::new(None);
        let tree = tree_with_points(0.0, &[(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]);
        // All points merged into one entry; radius 0, no Dmin. Must still
        // return something positive so Phase 1 terminates.
        let t = est.next_threshold(&tree, 3);
        assert!(t > 0.0);
    }

    #[test]
    fn total_hint_caps_growth_target() {
        // When all points have been seen, N_{i+1} = N_i, so the volume
        // factor is 1 and the result rests on Dmin / the 1.01 bump.
        let mut est = ThresholdEstimator::new(Some(100));
        let tree = tree_with_points(1.0, &spread_points(100));
        let t = est.next_threshold(&tree, 100);
        assert!(t > 1.0);
    }

    #[test]
    fn regression_kicks_in_after_two_observations() {
        let mut est = ThresholdEstimator::new(None);
        let t0 = tree_with_points(0.0, &spread_points(50));
        let t1v = est.next_threshold(&t0, 50);
        let t1 = tree_with_points(t1v, &spread_points(100));
        let _ = est.next_threshold(&t1, 100);
        assert!(est.observations() >= 2);
        // Third call exercises the regression path without panicking.
        let t2 = tree_with_points(t1v * 1.5, &spread_points(200));
        let t3v = est.next_threshold(&t2, 200);
        assert!(t3v.is_finite() && t3v > 0.0);
    }

    #[test]
    #[should_panic(expected = "rebuild before any data")]
    fn zero_points_panics() {
        let mut est = ThresholdEstimator::new(None);
        let tree = tree_with_points(0.0, &[(0.0, 0.0)]);
        let _ = est.next_threshold(&tree, 0);
    }

    #[test]
    fn volume_factor_shrinks_with_dimension() {
        // With d=16 the per-axis expansion for doubling data volume is
        // 2^(1/16) ≈ 1.044 — check via a high-dimensional tree.
        let mut est = ThresholdEstimator::new(None);
        let mut t = CfTree::new(TreeParams {
            threshold: 1.0,
            ..TreeParams::for_dim(16)
        });
        for i in 0..64 {
            let coords: Vec<f64> = (0..16).map(|j| f64::from((i * 7 + j) % 13)).collect();
            t.insert_point(&Point::new(coords));
        }
        let next = est.next_threshold(&t, 64);
        assert!(next.is_finite() && next > 1.0);
    }
}
