//! The end-to-end BIRCH pipeline (paper Fig. 1).
//!
//! [`Birch::fit`] runs:
//!
//! 1. **Phase 1** — single scan, build the memory-bounded CF-tree;
//! 2. **Phase 2** — (optional) condense the tree for the global algorithm;
//! 3. **Phase 3** — agglomerative clustering of the leaf entries;
//! 4. **Phase 4** — (optional) refinement passes that relabel the original
//!    points against the Phase-3 centroids.
//!
//! The result is a [`BirchModel`]: cluster summaries (exact CFs, hence
//! exact centroids/radii/diameters), optional per-point labels, and the
//! run's resource statistics.

use crate::cf::Cf;
use crate::config::BirchConfig;
use crate::obs::mem::MemoryGauge;
use crate::obs::span::{self, SpanReport};
use crate::obs::{
    json_f64, shards_json, Event, EventSink, MetricsRecorder, MetricsReport, NoopSink, Phase,
    ShardReport, Tee, TraceStats,
};
use crate::parallel;
use crate::phase1::{self, Phase1Output};
use crate::phase2;
use crate::phase3;
use crate::phase4::{self, Phase4Config};
use crate::point::Point;
use crate::tree::TreeHealth;
use birch_pager::IoStats;
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

/// Version stamp of the metrics JSON emitted by [`RunStats::to_json`].
/// Bump here (and only here) when the schema changes; tests pin this
/// constant, not a literal. See DESIGN.md §10 for the v3 → v4,
/// v4 → v5 and v5 → v6 migration tables. v6 adds the page-cache
/// counters to `io` (`page_refs`/`page_faults`/`page_evictions`) and
/// the `page_spill` component to `memory`.
pub const METRICS_SCHEMA_VERSION: u32 = 6;

/// Errors surfaced by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BirchError {
    /// `fit` was called with no points.
    EmptyInput,
    /// A point's dimensionality disagrees with the first point's.
    DimensionMismatch {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
        /// Index of the offending point.
        index: usize,
    },
    /// Writing or reading a CF-tree snapshot failed.
    Snapshot {
        /// The snapshot file path.
        path: String,
        /// Rendered underlying error (I/O, checksum, format, …).
        detail: String,
    },
}

impl fmt::Display for BirchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BirchError::EmptyInput => write!(f, "cannot cluster an empty dataset"),
            BirchError::DimensionMismatch {
                expected,
                got,
                index,
            } => write!(f, "point {index} has dimension {got}, expected {expected}"),
            BirchError::Snapshot { path, detail } => {
                write!(f, "snapshot {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for BirchError {}

/// One cluster of the final model.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Exact sufficient statistics of the cluster.
    pub cf: Cf,
    /// Cluster centroid.
    pub centroid: Point,
    /// Cluster radius `R` (eq. 2).
    pub radius: f64,
    /// Cluster diameter `D` (eq. 3).
    pub diameter: f64,
}

impl ClusterSummary {
    pub(crate) fn from_cf(cf: Cf) -> Self {
        let centroid = cf.centroid();
        let radius = cf.radius();
        let diameter = cf.diameter();
        Self {
            cf,
            centroid,
            radius,
            diameter,
        }
    }

    /// Weighted point count of the cluster.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.cf.n()
    }
}

/// Wall-clock and resource statistics of one `fit`.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Phase-1 worker threads used (1 = the serial scan).
    pub threads: usize,
    /// Phase-1 duration.
    pub phase1_time: Duration,
    /// Merge-stage duration within Phase 1 (zero for the serial scan):
    /// the time spent folding shard leaf entries into the final tree.
    pub merge_time: Duration,
    /// Phase-2 duration (zero when disabled or not needed).
    pub phase2_time: Duration,
    /// Phase-3 duration.
    pub phase3_time: Duration,
    /// Phase-4 duration (zero when disabled).
    pub phase4_time: Duration,
    /// Aggregate I/O & memory counters.
    pub io: IoStats,
    /// Threshold after each rebuild.
    pub threshold_history: Vec<f64>,
    /// Final tree threshold entering Phase 3.
    pub final_threshold: f64,
    /// Leaf entries after Phase 1.
    pub leaf_entries_phase1: usize,
    /// Leaf entries handed to Phase 3 (after Phase 2, if enabled).
    pub leaf_entries_phase3: usize,
    /// Input records scanned.
    pub points_scanned: u64,
    /// Aggregated run telemetry (event counters, insertion-depth histogram,
    /// threshold-vs-points trajectory) collected across all phases.
    pub metrics: MetricsReport,
    /// Per-shard Phase-1 telemetry (empty for the serial scan). The spread
    /// of `wall` across shards is the skew that bounds parallel speedup.
    pub shards: Vec<ShardReport>,
    /// Byte accounting against budget M (live/high-water per component,
    /// headroom, overrun). See [`crate::obs::mem`].
    pub memory: MemoryGauge,
    /// Structural health of the tree entering Phase 3 (per-level
    /// occupancy, utilization, split/merge/rebuild rates).
    pub tree_health: TreeHealth,
    /// Ring statistics of the trace attached to the run (`None` when no
    /// trace sink was attached — the CLI fills this for `--trace`).
    pub trace: Option<TraceStats>,
    /// Hierarchical span profile of the run (`None` unless span profiling
    /// was enabled on the calling thread — see [`crate::obs::span`]).
    pub spans: Option<SpanReport>,
}

impl RunStats {
    /// Total time across all phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time + self.phase3_time + self.phase4_time
    }

    /// Time for phases 1–3 only (the paper's headline configuration).
    #[must_use]
    pub fn time_phases_1to3(&self) -> Duration {
        self.phase1_time + self.phase2_time + self.phase3_time
    }

    /// Serializes the run statistics as one line of stable JSON (no serde —
    /// hand-rolled; see the README's "Observability" section for the
    /// schema). Resource counters (`rebuilds`, `peak_pages`, `splits`, …)
    /// come from the same [`IoStats`] the CLI prints, so the file and the
    /// stdout summary always agree.
    #[must_use]
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        format!(
            "{{\"schema_version\":{},\
             \"points_scanned\":{},\
             \"threads\":{},\
             \"phase_times\":{{\"phase1_s\":{},\"merge_s\":{},\"phase2_s\":{},\
             \"phase3_s\":{},\"phase4_s\":{},\"total_s\":{}}},\
             \"rebuilds\":{},\
             \"peak_pages\":{},\
             \"splits\":{},\
             \"merge_refinements\":{},\
             \"threshold_trajectory\":{},\
             \"final_threshold\":{},\
             \"leaf_entries_phase1\":{},\
             \"leaf_entries_phase3\":{},\
             \"io\":{{\"disk_writes\":{},\"disk_reads\":{},\"disk_bytes_written\":{},\
             \"disk_bytes_read\":{},\"disk_write_attempts\":{},\"disk_faults_injected\":{},\
             \"outliers_discarded\":{},\"page_refs\":{},\"page_faults\":{},\
             \"page_evictions\":{}}},\
             \"memory\":{},\
             \"tree_health\":{},\
             \"trace\":{},\
             \"spans\":{},\
             \"shards\":{},\
             \"insert_depth_histogram\":{},\
             \"counters\":{}}}",
            METRICS_SCHEMA_VERSION,
            self.points_scanned,
            self.threads.max(1),
            json_f64(self.phase1_time.as_secs_f64()),
            json_f64(self.merge_time.as_secs_f64()),
            json_f64(self.phase2_time.as_secs_f64()),
            json_f64(self.phase3_time.as_secs_f64()),
            json_f64(self.phase4_time.as_secs_f64()),
            json_f64(self.total_time().as_secs_f64()),
            self.io.rebuilds,
            self.io.peak_pages,
            self.io.splits,
            self.io.merge_refinements,
            m.trajectory_json(),
            json_f64(self.final_threshold),
            self.leaf_entries_phase1,
            self.leaf_entries_phase3,
            self.io.disk_writes,
            self.io.disk_reads,
            self.io.disk_bytes_written,
            self.io.disk_bytes_read,
            self.io.disk_write_attempts,
            self.io.disk_faults_injected,
            self.io.outliers_discarded,
            self.io.page_refs,
            self.io.page_faults,
            self.io.page_evictions,
            self.memory.to_json(),
            self.tree_health.to_json(),
            self.trace
                .as_ref()
                .map_or_else(|| "null".to_string(), TraceStats::to_json),
            self.spans
                .as_ref()
                .map_or_else(|| "null".to_string(), SpanReport::to_json),
            shards_json(&self.shards),
            m.histogram_json(),
            m.counters_json(),
        )
    }
}

/// A fitted BIRCH clustering.
#[derive(Debug, Clone)]
pub struct BirchModel {
    clusters: Vec<ClusterSummary>,
    labels: Option<Vec<Option<usize>>>,
    stats: RunStats,
}

impl BirchModel {
    /// The final clusters.
    #[must_use]
    pub fn clusters(&self) -> &[ClusterSummary] {
        &self.clusters
    }

    /// Per-point labels from Phase 4 (`None` for the whole thing when
    /// Phase 4 was disabled; inner `None` = point discarded as an outlier).
    #[must_use]
    pub fn labels(&self) -> Option<&[Option<usize>]> {
        self.labels.as_deref()
    }

    /// Run statistics.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable run statistics, for callers (like the CLI) that attach
    /// observability extras — trace-ring stats, say — after `fit`.
    pub fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// Assigns an arbitrary point to its nearest cluster centroid
    /// (Euclidean), like Phase 4 does.
    ///
    /// # Panics
    ///
    /// Panics if `p`'s dimension disagrees with the model's.
    #[must_use]
    pub fn predict(&self, p: &Point) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = p.sq_dist(&c.centroid);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

/// Validates a point slice: non-empty, uniform dimensionality. Returns `d`.
fn validate_points(points: &[Point]) -> Result<usize, BirchError> {
    if points.is_empty() {
        return Err(BirchError::EmptyInput);
    }
    let dim = points[0].dim();
    for (index, p) in points.iter().enumerate() {
        if p.dim() != dim {
            return Err(BirchError::DimensionMismatch {
                expected: dim,
                got: p.dim(),
                index,
            });
        }
    }
    Ok(dim)
}

/// The BIRCH clusterer: configuration plus `fit` entry points.
#[derive(Debug, Clone)]
pub struct Birch {
    config: BirchConfig,
}

impl Birch {
    /// Creates a clusterer with the given configuration.
    #[must_use]
    pub fn new(config: BirchConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &BirchConfig {
        &self.config
    }

    /// Clusters `points`. Runs Phase 1 serially when
    /// [`BirchConfig::threads`] is 1 (the default), or as a sharded
    /// parallel build (see [`crate::parallel`]) when it is larger.
    ///
    /// # Errors
    ///
    /// [`BirchError::EmptyInput`] for an empty slice;
    /// [`BirchError::DimensionMismatch`] if points disagree on `d`.
    pub fn fit(&self, points: &[Point]) -> Result<BirchModel, BirchError> {
        self.fit_impl(points, None, self.config.threads, &mut NoopSink, None)
    }

    /// Like [`Birch::fit`], but additionally writes a versioned,
    /// checksummed snapshot of the CF-tree to `snapshot` at the Phase-3
    /// boundary (after Phase 2's condensation, before the tree is
    /// consumed). A later [`Birch::fit_from_snapshot`] with the same
    /// configuration resumes from that file and produces identical
    /// Phase-3/4 output.
    ///
    /// # Errors
    ///
    /// Same as [`Birch::fit`], plus [`BirchError::Snapshot`] if the
    /// checkpoint cannot be written.
    pub fn fit_with_checkpoint(
        &self,
        points: &[Point],
        snapshot: &Path,
    ) -> Result<BirchModel, BirchError> {
        self.fit_impl(
            points,
            None,
            self.config.threads,
            &mut NoopSink,
            Some(snapshot),
        )
    }

    /// Resumes a run from a CF-tree snapshot written by
    /// [`Birch::fit_with_checkpoint`] (or [`CfTree::checkpoint`]): Phase 1
    /// is skipped entirely and the global phases run on the restored tree.
    /// Pass the original points for Phase 4's labeling scan; with an empty
    /// slice, refinement is skipped and the model carries no labels.
    ///
    /// [`CfTree::checkpoint`]: crate::tree::CfTree::checkpoint
    ///
    /// # Errors
    ///
    /// [`BirchError::Snapshot`] if the file is missing, corrupt, or from
    /// an incompatible build; [`BirchError::DimensionMismatch`] if
    /// `points` disagree with the tree's dimensionality.
    pub fn fit_from_snapshot(
        &self,
        snapshot: &Path,
        points: &[Point],
    ) -> Result<BirchModel, BirchError> {
        let tree = crate::tree::CfTree::reopen(snapshot).map_err(|e| BirchError::Snapshot {
            path: snapshot.display().to_string(),
            detail: e.to_string(),
        })?;
        self.fit_from_tree(tree, points)
    }

    /// Runs Phases 2–4 on an already-built CF-tree (restored from a
    /// snapshot, or handed over from an external Phase-1 scheme). See
    /// [`Birch::fit_from_snapshot`] for the points/labeling contract.
    ///
    /// # Errors
    ///
    /// [`BirchError::DimensionMismatch`] if `points` disagree with the
    /// tree's dimensionality; [`BirchError::EmptyInput`] if the tree has
    /// no leaf entries.
    pub fn fit_from_tree(
        &self,
        tree: crate::tree::CfTree,
        points: &[Point],
    ) -> Result<BirchModel, BirchError> {
        if let Some(p) = points.iter().position(|p| p.dim() != tree.dim()) {
            return Err(BirchError::DimensionMismatch {
                expected: tree.dim(),
                got: points[p].dim(),
                index: p,
            });
        }
        let mut config = self.effective_config(points.len().max(1));
        if points.is_empty() {
            // No raw data to rescan: Phase 4 cannot run.
            config.phase4_passes = 0;
        }
        let stats = RunStats {
            points_scanned: points.len() as u64,
            threads: 1,
            leaf_entries_phase1: tree.leaf_entry_count(),
            ..RunStats::default()
        };
        let mut estimator = crate::threshold::ThresholdEstimator::new(config.total_points_hint);
        self.finish_pipeline(
            points,
            None,
            tree,
            &mut estimator,
            config,
            stats,
            MetricsRecorder::new(),
            &mut NoopSink,
            None,
        )
    }

    /// Like [`Birch::fit`], but streaming every telemetry [`Event`] into
    /// `sink` as the run proceeds (phase boundaries, rebuilds, threshold
    /// raises, splits, outlier traffic, …). The aggregated
    /// [`RunStats::metrics`] report is populated either way; a sink is only
    /// needed for *live* or *verbatim* event access (e.g. a [`TraceLog`]).
    ///
    /// [`TraceLog`]: crate::obs::TraceLog
    ///
    /// # Errors
    ///
    /// Same as [`Birch::fit`].
    pub fn fit_with_sink<S: EventSink>(
        &self,
        points: &[Point],
        sink: &mut S,
    ) -> Result<BirchModel, BirchError> {
        self.fit_impl(points, None, self.config.threads, sink, None)
    }

    /// Clusters weighted points: `(point, weight)` with `weight > 0`.
    /// Weights flow through every phase (tree building, global clustering,
    /// refinement) — this is how the paper's image application (§6.8)
    /// weights its bands.
    ///
    /// # Errors
    ///
    /// Same as [`Birch::fit`].
    pub fn fit_weighted(&self, points: &[(Point, f64)]) -> Result<BirchModel, BirchError> {
        // Split into parallel arrays once; phases borrow both.
        let pts: Vec<Point> = points.iter().map(|(p, _)| p.clone()).collect();
        let weights: Vec<f64> = points.iter().map(|&(_, w)| w).collect();
        self.fit_impl(
            &pts,
            Some(&weights),
            self.config.threads,
            &mut NoopSink,
            None,
        )
    }

    /// Like [`Birch::fit`] but with an explicit Phase-1 thread count,
    /// overriding [`BirchConfig::threads`] — the paper's §7 "opportunities
    /// for parallelism". The data is split into contiguous chunks, each
    /// thread builds a CF-tree under `M/threads` memory, and the per-thread
    /// leaf entries are merged into one final tree (exact in the totals, by
    /// the CF Additivity Theorem) before the global phases run as usual.
    /// See [`crate::parallel`] for the architecture.
    ///
    /// With `threads == 1` this is exactly the serial single-scan Phase 1.
    ///
    /// # Errors
    ///
    /// Same as [`Birch::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn fit_parallel(&self, points: &[Point], threads: usize) -> Result<BirchModel, BirchError> {
        assert!(threads >= 1, "need at least one thread");
        self.fit_impl(points, None, threads, &mut NoopSink, None)
    }

    fn fit_impl<S: EventSink>(
        &self,
        points: &[Point],
        weights: Option<&[f64]>,
        threads: usize,
        sink: &mut S,
        checkpoint: Option<&Path>,
    ) -> Result<BirchModel, BirchError> {
        let dim = validate_points(points)?;
        let threads = threads.min(points.len()).max(1);

        let mut stats = RunStats {
            points_scanned: points.len() as u64,
            threads,
            ..RunStats::default()
        };
        let config = self.effective_config(points.len());

        // ---- Phase 1: build the CF-tree (serial scan or sharded). ----
        let t0 = Instant::now();
        let _sp = span::enter("phase1");
        let (tree, mut estimator, recorder) = if threads > 1 {
            let out = parallel::run_with_sink(&config, dim, points, weights, threads, sink);
            stats.io = out.io;
            stats.threshold_history = out.threshold_history;
            stats.merge_time = out.merge_wall;
            stats.shards = out.shards;
            stats.memory = out.memory;
            let mut recorder = MetricsRecorder::new();
            recorder.absorb_report(&out.metrics);
            (out.tree, out.estimator, recorder)
        } else {
            let Phase1Output {
                tree,
                io,
                threshold_history,
                points_scanned: _,
                outliers,
                estimator,
                metrics,
                memory,
            } = phase1::run_points_with_sink(&config, dim, points, weights, &mut *sink);
            stats.io = io;
            stats.threshold_history = threshold_history;
            stats.memory = memory;
            drop(outliers); // counters already folded into io by phase 1
                            // Run-level aggregation: absorb Phase 1's report, then keep
                            // recording phases 2–4 directly (the sink saw Phase 1 live).
            let mut recorder = MetricsRecorder::new();
            recorder.absorb_report(&metrics);
            (tree, estimator, recorder)
        };
        drop(_sp);
        stats.phase1_time = t0.elapsed();
        stats.leaf_entries_phase1 = tree.leaf_entry_count();

        self.finish_pipeline(
            points,
            weights,
            tree,
            &mut estimator,
            config,
            stats,
            recorder,
            sink,
            checkpoint,
        )
    }

    /// The configuration with the dataset-size hint filled in.
    fn effective_config(&self, n: usize) -> BirchConfig {
        let mut c = self.config.clone();
        if c.total_points_hint.is_none() {
            c = c.total_points(n as u64);
        }
        c
    }

    /// Phases 2–4 (shared by the sequential and parallel fits).
    /// `recorder` arrives pre-loaded with Phase 1's report; phases 2–4
    /// record into it (and `sink`) directly, and its final report becomes
    /// [`RunStats::metrics`].
    #[allow(clippy::too_many_arguments)]
    fn finish_pipeline<S: EventSink>(
        &self,
        points: &[Point],
        weights: Option<&[f64]>,
        tree: crate::tree::CfTree,
        estimator: &mut crate::threshold::ThresholdEstimator,
        config: BirchConfig,
        mut stats: RunStats,
        mut recorder: MetricsRecorder,
        sink: &mut S,
        checkpoint: Option<&Path>,
    ) -> Result<BirchModel, BirchError> {
        // ---- Phase 2: condense (optional). ----
        let t0 = Instant::now();
        let tree = if config.phase2 && tree.leaf_entry_count() > config.phase2_max_entries {
            let _sp = span::enter("phase2");
            let mut tee = Tee(&mut recorder, &mut *sink);
            tee.record(&Event::PhaseStarted {
                phase: Phase::Condense,
            });
            let tree = phase2::condense_with_sink(
                tree,
                config.phase2_max_entries,
                estimator,
                None,
                &mut stats.io,
                &mut tee,
            );
            tee.record(&Event::PhaseFinished {
                phase: Phase::Condense,
                wall: t0.elapsed(),
            });
            tree
        } else {
            tree
        };
        stats.phase2_time = t0.elapsed();
        stats.final_threshold = tree.threshold();
        stats.leaf_entries_phase3 = tree.leaf_entry_count();

        // Checkpoint at the Phase-3 boundary: the tree is in its final
        // (post-condense) shape here, so a restore needs no estimator
        // state to reproduce Phases 3–4 exactly.
        if let Some(path) = checkpoint {
            let mut tree = tree;
            tree.checkpoint(path).map_err(|e| BirchError::Snapshot {
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
            return self.global_phases(points, weights, tree, config, stats, recorder, sink);
        }
        self.global_phases(points, weights, tree, config, stats, recorder, sink)
    }

    /// Phases 3–4: consume the tree's leaf entries, cluster globally,
    /// refine/label, and assemble the model.
    #[allow(clippy::too_many_arguments)]
    fn global_phases<S: EventSink>(
        &self,
        points: &[Point],
        weights: Option<&[f64]>,
        tree: crate::tree::CfTree,
        config: BirchConfig,
        mut stats: RunStats,
        mut recorder: MetricsRecorder,
        sink: &mut S,
    ) -> Result<BirchModel, BirchError> {
        // Snapshot the tree entering Phase 3: structural health plus a
        // final memory sample (Phase 2 may have condensed it).
        stats.memory.sample_tree(
            &tree,
            config.page_bytes,
            stats.memory.outlier_disk.live_bytes,
        );
        stats.tree_health = tree.health();
        {
            let m = recorder.snapshot();
            let per = |num: u64, den: u64, scale: f64| {
                if den == 0 {
                    0.0
                } else {
                    scale * num as f64 / den as f64
                }
            };
            stats.tree_health.split_rate_per_1k_inserts = per(m.splits, m.inserts, 1000.0);
            stats.tree_health.merge_rate_per_1k_inserts =
                per(m.merge_refinements, m.inserts, 1000.0);
            stats.tree_health.rebuild_rate_per_100k_points =
                per(m.rebuilds, stats.points_scanned, 100_000.0);
        }

        // ---- Phase 3: global clustering of the leaf entries. ----
        let t0 = Instant::now();
        let sp3 = span::enter("phase3");
        Tee(&mut recorder, &mut *sink).record(&Event::PhaseStarted {
            phase: Phase::Global,
        });
        let entries = tree.into_leaf_entries();
        // Outlier handling may have discarded *every* point in a pathological
        // configuration; guard so Phase 3's contract holds.
        if entries.is_empty() {
            return Err(BirchError::EmptyInput);
        }
        let p3 = phase3::global_cluster_with(
            entries,
            config.metric,
            config.clusters,
            config.global_method,
        );
        if let Some(hac) = p3.hac {
            recorder.note_phase3_pairs(hac.pairs_evaluated, hac.pairs_pruned);
        }
        stats.phase3_time = t0.elapsed();
        drop(sp3);
        Tee(&mut recorder, &mut *sink).record(&Event::PhaseFinished {
            phase: Phase::Global,
            wall: stats.phase3_time,
        });

        // ---- Phase 4: refinement + labeling (optional). ----
        let t0 = Instant::now();
        let (clusters, labels) = if config.phase4_passes > 0 {
            let _sp = span::enter("phase4");
            let mut tee = Tee(&mut recorder, &mut *sink);
            tee.record(&Event::PhaseStarted {
                phase: Phase::Refine,
            });
            let p4 = phase4::refine(
                points,
                weights,
                &p3.clusters,
                Phase4Config {
                    passes: config.phase4_passes,
                    outlier_factor: config.phase4_outlier_factor,
                },
            );
            stats.io.outliers_discarded += p4.discarded;
            if p4.discarded > 0 {
                tee.record(&Event::OutlierDiscarded {
                    count: p4.discarded,
                });
            }
            tee.record(&Event::PhaseFinished {
                phase: Phase::Refine,
                wall: t0.elapsed(),
            });
            (p4.clusters, Some(p4.labels))
        } else {
            (p3.clusters, None)
        };
        stats.phase4_time = t0.elapsed();

        let clusters = clusters
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(ClusterSummary::from_cf)
            .collect();

        stats.metrics = recorder.report();
        if span::enabled() {
            stats.spans = Some(span::take_report());
        }
        Ok(BirchModel {
            clusters,
            labels,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMetric;

    /// `k` well-separated grid blobs with `per` points each.
    fn grid_blobs(k: usize, per: usize) -> Vec<Point> {
        let side = (k as f64).sqrt().ceil() as usize;
        let mut out = Vec::with_capacity(k * per);
        for c in 0..k {
            let cx = (c % side) as f64 * 50.0;
            let cy = (c / side) as f64 * 50.0;
            for i in 0..per {
                let a = i as f64 * 2.399_963; // golden angle
                let r = (i as f64 / per as f64).sqrt() * 2.0;
                out.push(Point::xy(cx + r * a.cos(), cy + r * a.sin()));
            }
        }
        out
    }

    /// Deterministic shuffle so blobs are interleaved.
    fn shuffle(mut pts: Vec<Point>) -> Vec<Point> {
        let n = pts.len();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            pts.swap(i, j);
        }
        pts
    }

    #[test]
    fn recovers_four_blobs() {
        let pts = shuffle(grid_blobs(4, 500));
        let model = Birch::new(BirchConfig::with_clusters(4)).fit(&pts).unwrap();
        assert_eq!(model.clusters().len(), 4);
        // Every cluster should hold ~500 points.
        for c in model.clusters() {
            assert!(
                (c.weight() - 500.0).abs() < 50.0,
                "cluster weight {}",
                c.weight()
            );
            assert!(c.radius < 3.0, "radius {}", c.radius);
        }
        // Labels cover all points.
        let labels = model.labels().unwrap();
        assert_eq!(labels.len(), pts.len());
        assert!(labels.iter().all(Option::is_some));
    }

    #[test]
    fn predict_matches_blob_membership() {
        let pts = shuffle(grid_blobs(2, 300));
        let model = Birch::new(BirchConfig::with_clusters(2)).fit(&pts).unwrap();
        let a = model.predict(&Point::xy(0.0, 0.0));
        let b = model.predict(&Point::xy(50.0, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn phases_1to3_only_no_labels() {
        let pts = shuffle(grid_blobs(3, 200));
        let model = Birch::new(BirchConfig::with_clusters(3).refinement_passes(0))
            .fit(&pts)
            .unwrap();
        assert!(model.labels().is_none());
        assert_eq!(model.clusters().len(), 3);
    }

    #[test]
    fn tight_memory_still_finds_clusters() {
        let pts = shuffle(grid_blobs(4, 2000));
        let model = Birch::new(
            BirchConfig::with_clusters(4)
                .memory(8 * 1024)
                .page_size(1024),
        )
        .fit(&pts)
        .unwrap();
        assert_eq!(model.clusters().len(), 4);
        assert!(model.stats().io.rebuilds > 0);
        // Weighted average radius stays close to the generated spread.
        for c in model.clusters() {
            assert!(c.radius < 5.0, "radius {}", c.radius);
        }
    }

    #[test]
    fn weighted_fit_equivalent_to_duplication() {
        // Points with weight 3 vs the same points repeated 3x must give the
        // same cluster CFs (Phase 1 order differs, but with ample memory
        // the end CFs should agree).
        let base = grid_blobs(2, 100);
        let weighted: Vec<(Point, f64)> = base.iter().map(|p| (p.clone(), 3.0)).collect();
        let tripled: Vec<Point> = base
            .iter()
            .flat_map(|p| std::iter::repeat_n(p.clone(), 3))
            .collect();
        let cfg = BirchConfig::with_clusters(2);
        let mw = Birch::new(cfg.clone()).fit_weighted(&weighted).unwrap();
        let md = Birch::new(cfg).fit(&tripled).unwrap();
        let mut wa: Vec<f64> = mw.clusters().iter().map(ClusterSummary::weight).collect();
        let mut da: Vec<f64> = md.clusters().iter().map(ClusterSummary::weight).collect();
        wa.sort_by(f64::total_cmp);
        da.sort_by(f64::total_cmp);
        for (x, y) in wa.iter().zip(&da) {
            assert!((x - y).abs() < 1e-6, "{wa:?} vs {da:?}");
        }
    }

    #[test]
    fn by_distance_discovers_cluster_count() {
        let pts = shuffle(grid_blobs(4, 300));
        // Blob spread ~2, separation 50: a 10.0 cut finds exactly the blobs.
        let model = Birch::new(BirchConfig::by_distance(10.0).metric(DistanceMetric::D0))
            .fit(&pts)
            .unwrap();
        assert_eq!(model.clusters().len(), 4);
    }

    #[test]
    fn empty_input_rejected() {
        let err = Birch::new(BirchConfig::with_clusters(1))
            .fit(&[])
            .unwrap_err();
        assert_eq!(err, BirchError::EmptyInput);
        assert!(err.to_string().contains("empty dataset"));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let pts = vec![Point::xy(0.0, 0.0), Point::new(vec![1.0, 2.0, 3.0])];
        let err = Birch::new(BirchConfig::with_clusters(1))
            .fit(&pts)
            .unwrap_err();
        assert_eq!(
            err,
            BirchError::DimensionMismatch {
                expected: 2,
                got: 3,
                index: 1
            }
        );
    }

    #[test]
    fn stats_populated() {
        let pts = shuffle(grid_blobs(2, 500));
        let model = Birch::new(BirchConfig::with_clusters(2)).fit(&pts).unwrap();
        let s = model.stats();
        assert_eq!(s.points_scanned, 1000);
        assert!(s.leaf_entries_phase1 > 0);
        assert!(s.leaf_entries_phase3 > 0);
        assert!(s.total_time() >= s.time_phases_1to3());
    }

    #[test]
    fn parallel_fit_recovers_blobs() {
        let pts = shuffle(grid_blobs(4, 800));
        let model = Birch::new(BirchConfig::with_clusters(4))
            .fit_parallel(&pts, 4)
            .unwrap();
        assert_eq!(model.clusters().len(), 4);
        for c in model.clusters() {
            assert!((c.weight() - 800.0).abs() < 80.0, "weight {}", c.weight());
            assert!(c.radius < 3.0);
        }
        // Every point labeled.
        assert!(model.labels().unwrap().iter().all(Option::is_some));
    }

    #[test]
    fn parallel_one_thread_equals_sequential() {
        let pts = shuffle(grid_blobs(3, 300));
        // Pin threads=1 so the comparison holds even when BIRCH_THREADS
        // forces parallelism suite-wide (the CI matrix does).
        let cfg = BirchConfig::with_clusters(3).threads(1);
        let seq = Birch::new(cfg.clone()).fit(&pts).unwrap();
        let par = Birch::new(cfg).fit_parallel(&pts, 1).unwrap();
        let sizes = |m: &BirchModel| {
            let mut v: Vec<f64> = m.clusters().iter().map(ClusterSummary::weight).collect();
            v.sort_by(f64::total_cmp);
            v
        };
        assert_eq!(sizes(&seq), sizes(&par));
    }

    #[test]
    fn parallel_quality_close_to_sequential() {
        let pts = shuffle(grid_blobs(9, 400));
        let cfg = BirchConfig::with_clusters(9).memory(16 * 1024);
        let seq = Birch::new(cfg.clone()).fit(&pts).unwrap();
        let par = Birch::new(cfg).fit_parallel(&pts, 3).unwrap();
        assert_eq!(par.clusters().len(), seq.clusters().len());
        let rad = |m: &BirchModel| {
            m.clusters().iter().map(|c| c.radius).sum::<f64>() / m.clusters().len() as f64
        };
        assert!(
            (rad(&par) - rad(&seq)).abs() < 0.5,
            "parallel {} vs sequential {}",
            rad(&par),
            rad(&seq)
        );
    }

    #[test]
    fn config_threads_dispatches_to_parallel() {
        let pts = shuffle(grid_blobs(4, 500));
        let model = Birch::new(BirchConfig::with_clusters(4).threads(4))
            .fit(&pts)
            .unwrap();
        assert_eq!(model.clusters().len(), 4);
        let s = model.stats();
        assert_eq!(s.threads, 4);
        assert_eq!(s.shards.len(), 4);
        let shard_points: u64 = s.shards.iter().map(|sh| sh.points).sum();
        assert_eq!(shard_points, pts.len() as u64);
    }

    #[test]
    fn stats_json_reports_threads_and_shards() {
        let pts = shuffle(grid_blobs(2, 400));
        let par = Birch::new(BirchConfig::with_clusters(2).threads(2))
            .fit(&pts)
            .unwrap();
        let json = par.stats().to_json();
        assert!(
            json.contains(&format!("\"schema_version\":{METRICS_SCHEMA_VERSION}")),
            "{json}"
        );
        assert!(json.contains("\"memory\":{"), "{json}");
        assert!(json.contains("\"tree_health\":{"), "{json}");
        assert!(json.contains("\"trace\":null"), "{json}");
        assert!(json.contains("\"threads\":2"), "{json}");
        assert!(json.contains("\"shards\":[{\"shard\":0,"), "{json}");
        assert!(json.contains("\"merge_s\":"), "{json}");

        let ser = Birch::new(BirchConfig::with_clusters(2).threads(1))
            .fit(&pts)
            .unwrap();
        let json = ser.stats().to_json();
        assert!(json.contains("\"threads\":1"), "{json}");
        assert!(json.contains("\"shards\":[]"), "{json}");
    }

    #[test]
    fn parallel_more_threads_than_points() {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::xy(f64::from(i) * 20.0, 0.0))
            .collect();
        let model = Birch::new(BirchConfig::with_clusters(2))
            .fit_parallel(&pts, 64)
            .unwrap();
        assert_eq!(model.clusters().len(), 2);
        let total: f64 = model.clusters().iter().map(ClusterSummary::weight).sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn parallel_zero_threads_panics() {
        let pts = vec![Point::xy(0.0, 0.0)];
        let _ = Birch::new(BirchConfig::with_clusters(1)).fit_parallel(&pts, 0);
    }

    #[test]
    fn checkpoint_then_restore_reproduces_phases_3_and_4() {
        let pts = shuffle(grid_blobs(4, 600));
        let snap =
            std::env::temp_dir().join(format!("birch-pipeline-ckpt-{}.snap", std::process::id()));
        // Tight memory so the checkpointed tree went through real
        // rebuild/condense traffic first.
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024)
            .threads(1);
        let full = Birch::new(cfg.clone())
            .fit_with_checkpoint(&pts, &snap)
            .unwrap();
        let resumed = Birch::new(cfg).fit_from_snapshot(&snap, &pts).unwrap();
        std::fs::remove_file(&snap).ok();

        assert_eq!(full.clusters().len(), resumed.clusters().len());
        for (a, b) in full.clusters().iter().zip(resumed.clusters()) {
            let (mut wa, mut wb) = (Vec::new(), Vec::new());
            a.cf.to_words(&mut wa);
            b.cf.to_words(&mut wb);
            assert_eq!(wa, wb, "cluster CFs must be bit-identical");
        }
        assert_eq!(
            full.labels(),
            resumed.labels(),
            "Phase-4 labeling must be identical after restore"
        );
    }

    #[test]
    fn restore_from_corrupt_snapshot_is_an_error() {
        let snap =
            std::env::temp_dir().join(format!("birch-pipeline-bad-{}.snap", std::process::id()));
        std::fs::write(&snap, b"not a snapshot at all").unwrap();
        let err = Birch::new(BirchConfig::with_clusters(2))
            .fit_from_snapshot(&snap, &[])
            .unwrap_err();
        std::fs::remove_file(&snap).ok();
        assert!(
            matches!(err, BirchError::Snapshot { .. }),
            "expected a typed snapshot error, got {err:?}"
        );
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn restore_without_points_skips_refinement() {
        let pts = shuffle(grid_blobs(3, 300));
        let snap =
            std::env::temp_dir().join(format!("birch-pipeline-nopts-{}.snap", std::process::id()));
        let cfg = BirchConfig::with_clusters(3).threads(1);
        let _ = Birch::new(cfg.clone())
            .fit_with_checkpoint(&pts, &snap)
            .unwrap();
        let resumed = Birch::new(cfg).fit_from_snapshot(&snap, &[]).unwrap();
        std::fs::remove_file(&snap).ok();
        assert_eq!(resumed.clusters().len(), 3);
        assert!(resumed.labels().is_none(), "no points, no Phase 4 labels");
    }

    #[test]
    fn out_of_core_fit_end_to_end() {
        let pts = shuffle(grid_blobs(4, 1500));
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024)
            .threads(1)
            .out_of_core(true);
        let model = Birch::new(cfg).fit(&pts).unwrap();
        assert_eq!(model.clusters().len(), 4);
        let s = model.stats();
        // Phase 1 pages instead of rebuilding (Phase 2 may still rebuild
        // to condense for the global phase — that is its job).
        assert!(
            s.threshold_history.is_empty(),
            "Phase 1 raised the threshold: {:?}",
            s.threshold_history
        );
        // The Phase-1 residency bound itself is asserted at the phase
        // boundary in phase1's unit tests; `io.peak_pages` here is a
        // whole-run counter and Phases 2–4 run fully resident by design.
        assert!(s.io.page_evictions > 0, "tree never spilled");
        assert!(s.io.page_faults > 0, "nothing faulted back");
        let json = s.to_json();
        assert!(json.contains("\"page_refs\":"), "{json}");
        assert!(json.contains("\"page_spill\":{"), "{json}");
        for c in model.clusters() {
            assert!(c.radius < 5.0, "radius {}", c.radius);
        }
    }

    #[test]
    fn phase4_outlier_discard_end_to_end() {
        let mut pts = shuffle(grid_blobs(2, 400));
        // An outlier closer to blob 0 than the blobs are to each other, so
        // Phase 3 folds it into blob 0's cluster (a *very* far point would
        // instead become its own Phase-3 cluster and never be discarded).
        pts.push(Point::xy(0.0, 30.0));
        let model = Birch::new(
            BirchConfig::with_clusters(2)
                .discard_refinement_outliers(4.0)
                .refinement_passes(2),
        )
        .fit(&pts)
        .unwrap();
        let labels = model.labels().unwrap();
        assert_eq!(
            labels[labels.len() - 1],
            None,
            "far point should be dropped"
        );
    }
}
