//! Dense `d`-dimensional data points.
//!
//! The paper treats the dataset as `N` `d`-dimensional points in a Euclidean
//! vector space (§3). [`Point`] is a thin owning wrapper over `Box<[f64]>`
//! — two words on the stack, one allocation — with the handful of vector
//! operations the algorithm needs. Points can carry an optional weight
//! (§1: *"optionally … a weighted function"*; §6.8 weights image bands).

use std::fmt;
use std::ops::{Deref, Index};

/// An immutable `d`-dimensional data point.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite value — BIRCH's
    /// distance algebra is meaningless for NaN/∞ inputs, and catching them at
    /// the boundary keeps every downstream invariant simple.
    #[must_use]
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point must have at least 1 dimension");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite, got {coords:?}"
        );
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Convenience constructor for 2-d points (the paper's workloads).
    #[must_use]
    pub fn xy(x: f64, y: f64) -> Self {
        Self::new(vec![x, y])
    }

    /// Dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    #[must_use]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Squared Euclidean distance to another point.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn sq_dist(&self, other: &Point) -> f64 {
        sq_dist(&self.coords, &other.coords)
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn dist(&self, other: &Point) -> f64 {
        self.sq_dist(other).sqrt()
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Manhattan (L1) distance between two coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn manhattan_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Dot product of two coordinate slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Deref for Point {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.coords
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Self::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Self::new(coords.to_vec())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p[1], 2.0);
        let q = Point::xy(3.0, 4.0);
        assert_eq!(q.dim(), 2);
    }

    #[test]
    fn euclidean_distance_345() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        assert_eq!(a.sq_dist(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn manhattan_and_dot() {
        assert_eq!(manhattan_dist(&[1.0, -2.0], &[4.0, 2.0]), 7.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(vec![0.5, -1.5, 2.5]);
        assert_eq!(p.dist(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Point::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = Point::new(vec![1.0]);
        let b = Point::xy(1.0, 2.0);
        let _ = a.dist(&b);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let p = Point::new(vec![2.0, 8.0]);
        assert_eq!(p.iter().sum::<f64>(), 10.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn from_conversions() {
        let p: Point = vec![1.0, 2.0].into();
        assert_eq!(p.dim(), 2);
        let q: Point = [3.0, 4.0].as_slice().into();
        assert_eq!(q.coords(), &[3.0, 4.0]);
    }

    #[test]
    fn debug_format_compact() {
        let p = Point::xy(1.0, 2.5);
        assert_eq!(format!("{p:?}"), "Point(1.0000, 2.5000)");
    }
}
