//! Agglomerative hierarchical clustering over Clustering Features.
//!
//! Phase 3 of BIRCH applies "an agglomerative hierarchical clustering
//! algorithm … used directly to the subclusters represented by their CF
//! vectors" (§5). Because CFs merge exactly (the Additivity Theorem), the
//! distance between any two intermediate clusters under D0–D4 can be
//! recomputed from their merged CFs — no Lance–Williams update formula or
//! approximation is needed, which is precisely the "accuracy and
//! flexibility" advantage the paper claims.
//!
//! The implementation keeps a binary heap of candidate pairs with lazy
//! invalidation (each cluster carries a version stamp; stale pairs are
//! skipped on pop), giving `O(m² log m)` time and `O(m²)` heap space for
//! `m` input entries — fine for the condensed trees Phase 2 produces.

use crate::cf::Cf;
use crate::distance::{pair_in_block, CfBlock, DistanceMetric};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

/// When to stop merging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop when exactly `k` clusters remain (the usual BIRCH input `K`).
    ClusterCount(usize),
    /// Stop when the closest remaining pair is farther apart than this
    /// distance (lets the data pick its own cluster count).
    DistanceThreshold(f64),
}

/// Result of a hierarchical run: per-input labels and the cluster CFs.
#[derive(Debug, Clone)]
pub struct HierarchicalResult {
    /// `labels[i]` is the cluster index (into `clusters`) of input entry `i`.
    pub labels: Vec<usize>,
    /// Final cluster summaries, in arbitrary but stable order.
    pub clusters: Vec<Cf>,
    /// Merge distances in the order merges happened (the dendrogram's
    /// height sequence) — useful for picking a cut and for tests.
    pub merge_distances: Vec<f64>,
}

#[derive(Debug)]
struct Candidate {
    dist: f64,
    a: usize,
    b: usize,
    ver_a: u32,
    ver_b: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap on distance via reversed comparison; NaNs are rejected
        // at construction so total_cmp is safe and total.
        other.dist.total_cmp(&self.dist)
    }
}

/// Runs agglomerative clustering over `entries` with the given metric.
///
/// # Panics
///
/// Panics if `entries` is empty, if any entry is empty, or if the stop rule
/// asks for more clusters than there are entries (`k > m` is a caller bug;
/// `k == 0` likewise).
#[must_use]
pub fn agglomerate(entries: &[Cf], metric: DistanceMetric, stop: StopRule) -> HierarchicalResult {
    assert!(!entries.is_empty(), "cannot cluster zero entries");
    assert!(
        entries.iter().all(|e| !e.is_empty()),
        "entries must be non-empty CFs"
    );
    if let StopRule::ClusterCount(k) = stop {
        assert!(k >= 1, "cluster count must be >= 1");
        assert!(
            k <= entries.len(),
            "asked for {k} clusters from {} entries",
            entries.len()
        );
    }

    let m = entries.len();
    // Active clusters; None = merged away. Versions invalidate stale pairs.
    let mut clusters: Vec<Option<Cf>> = entries.iter().cloned().map(Some).collect();
    let mut version = vec![0u32; m];
    // Union-find to map original entries to final clusters.
    let mut parent: Vec<usize> = (0..m).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // A pair farther apart than the distance threshold can never merge —
    // the pop loop stops at the first such pair — so under that rule it
    // need not enter the heap at all, shrinking the O(m²) heap to the
    // pairs that can actually participate.
    let push_cutoff = match stop {
        StopRule::ClusterCount(_) => f64::INFINITY,
        StopRule::DistanceThreshold(t) => t,
    };
    let mut heap = match stop {
        // Exact-k keeps every pair; pre-size the full matrix.
        StopRule::ClusterCount(_) => BinaryHeap::with_capacity(m * (m.saturating_sub(1)) / 2),
        // The cutoff makes the population data-dependent; let it grow.
        StopRule::DistanceThreshold(_) => BinaryHeap::new(),
    };
    // The initial O(m²) matrix sweeps one contiguous SoA block, reusing
    // each entry's cached ‖LS‖² instead of re-deriving it per pair.
    {
        let _sp = crate::obs::span::enter("hac_init");
        let block = CfBlock::from_cfs(entries);
        for i in 0..m {
            for j in (i + 1)..m {
                let d = pair_in_block(metric, &block, i, j);
                if d > push_cutoff {
                    continue;
                }
                heap.push(Candidate {
                    dist: d,
                    a: i,
                    b: j,
                    ver_a: 0,
                    ver_b: 0,
                });
            }
        }
    }

    let mut active = m;
    let mut merge_distances = Vec::new();
    let target = match stop {
        StopRule::ClusterCount(k) => k,
        StopRule::DistanceThreshold(_) => 1,
    };

    let _sp = crate::obs::span::enter("hac_merge");
    while active > target {
        let Some(c) = heap.pop() else { break };
        if version[c.a] != c.ver_a || version[c.b] != c.ver_b {
            continue; // stale pair
        }
        if let StopRule::DistanceThreshold(t) = stop {
            if c.dist > t {
                break;
            }
        }
        // Merge b into a.
        let cf_b = clusters[c.b].take().expect("versioned cluster alive");
        let cf_a = clusters[c.a].as_mut().expect("versioned cluster alive");
        cf_a.merge(&cf_b);
        version[c.a] += 1;
        version[c.b] = u32::MAX; // never valid again
        let root_b = find(&mut parent, c.b);
        let root_a = find(&mut parent, c.a);
        parent[root_b] = root_a;
        active -= 1;
        merge_distances.push(c.dist);

        // New candidate pairs from the merged cluster.
        let merged_cf = clusters[c.a].clone().expect("just merged");
        for (i, slot) in clusters.iter().enumerate() {
            if i == c.a {
                continue;
            }
            if let Some(other) = slot {
                let d = metric.distance(&merged_cf, other);
                if d > push_cutoff {
                    continue;
                }
                heap.push(Candidate {
                    dist: d,
                    a: c.a,
                    b: i,
                    ver_a: version[c.a],
                    ver_b: version[i],
                });
            }
        }
    }

    // Compact the surviving clusters and relabel.
    let mut cluster_index = vec![usize::MAX; m];
    let mut out_clusters = Vec::with_capacity(active);
    for (i, slot) in clusters.iter().enumerate() {
        if let Some(cf) = slot {
            cluster_index[i] = out_clusters.len();
            out_clusters.push(cf.clone());
        }
    }
    let mut labels = Vec::with_capacity(m);
    for i in 0..m {
        let root = find(&mut parent, i);
        labels.push(cluster_index[root]);
    }

    HierarchicalResult {
        labels,
        clusters: out_clusters,
        merge_distances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn singletons(raw: &[[f64; 2]]) -> Vec<Cf> {
        raw.iter()
            .map(|&[x, y]| Cf::from_point(&Point::xy(x, y)))
            .collect()
    }

    #[test]
    fn two_obvious_blobs() {
        let entries = singletons(&[
            [0.0, 0.0],
            [0.5, 0.0],
            [0.0, 0.5],
            [50.0, 50.0],
            [50.5, 50.0],
            [50.0, 50.5],
        ]);
        let r = agglomerate(&entries, DistanceMetric::D2, StopRule::ClusterCount(2));
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_eq!(r.labels[4], r.labels[5]);
        assert_ne!(r.labels[0], r.labels[3]);
        // Cluster CFs carry the right weights.
        let mut ns: Vec<f64> = r.clusters.iter().map(Cf::n).collect();
        ns.sort_by(f64::total_cmp);
        assert_eq!(ns, vec![3.0, 3.0]);
    }

    #[test]
    fn k_equals_m_is_identity() {
        let entries = singletons(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(3));
        assert_eq!(r.clusters.len(), 3);
        let mut seen = r.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
        assert!(r.merge_distances.is_empty());
    }

    #[test]
    fn k_equals_one_merges_everything() {
        let entries = singletons(&[[0.0, 0.0], [10.0, 0.0], [5.0, 8.0], [2.0, 2.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(1));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].n(), 4.0);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert_eq!(r.merge_distances.len(), 3);
    }

    #[test]
    fn merge_distances_reflect_structure() {
        // Tight pair + far singleton: the first merge is the tight pair at
        // a small distance, the second at a large one.
        let entries = singletons(&[[0.0, 0.0], [0.1, 0.0], [100.0, 0.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(1));
        assert_eq!(r.merge_distances.len(), 2);
        assert!(r.merge_distances[0] < 1.0);
        assert!(r.merge_distances[1] > 50.0);
    }

    #[test]
    fn distance_threshold_stop() {
        let entries = singletons(&[[0.0, 0.0], [0.1, 0.0], [100.0, 0.0], [100.1, 0.0]]);
        let r = agglomerate(
            &entries,
            DistanceMetric::D0,
            StopRule::DistanceThreshold(1.0),
        );
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn distance_threshold_zero_merges_nothing_distinct() {
        let entries = singletons(&[[0.0, 0.0], [1.0, 0.0]]);
        let r = agglomerate(
            &entries,
            DistanceMetric::D0,
            StopRule::DistanceThreshold(0.5),
        );
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn weighted_entries_pull_merges() {
        // A heavy subcluster and two singles; with D2 the singles near the
        // heavy blob should join it rather than each other when k=2.
        let blob: Vec<Point> = (0..50).map(|_| Point::xy(0.0, 0.0)).collect();
        let entries = vec![
            Cf::from_points(&blob),
            Cf::from_point(&Point::xy(1.0, 0.0)),
            Cf::from_point(&Point::xy(30.0, 0.0)),
        ];
        let r = agglomerate(&entries, DistanceMetric::D2, StopRule::ClusterCount(2));
        assert_eq!(r.labels[0], r.labels[1]);
        assert_ne!(r.labels[0], r.labels[2]);
    }

    #[test]
    fn all_metrics_terminate_on_random_input() {
        let raw: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let i = i as f64;
                [(i * 0.61).rem_euclid(10.0), (i * 0.41).rem_euclid(10.0)]
            })
            .collect();
        let entries = singletons(&raw);
        for m in DistanceMetric::ALL {
            let r = agglomerate(&entries, m, StopRule::ClusterCount(5));
            assert_eq!(r.clusters.len(), 5, "metric {m}");
            let total: f64 = r.clusters.iter().map(Cf::n).sum();
            assert_eq!(total, 40.0, "metric {m}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot cluster zero entries")]
    fn empty_input_panics() {
        let _ = agglomerate(&[], DistanceMetric::D0, StopRule::ClusterCount(1));
    }

    #[test]
    #[should_panic(expected = "asked for")]
    fn too_many_clusters_panics() {
        let entries = singletons(&[[0.0, 0.0]]);
        let _ = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(2));
    }
}
