//! Agglomerative hierarchical clustering over Clustering Features.
//!
//! Phase 3 of BIRCH applies "an agglomerative hierarchical clustering
//! algorithm … used directly to the subclusters represented by their CF
//! vectors" (§5). Because CFs merge exactly (the Additivity Theorem), the
//! distance between any two intermediate clusters under D0–D4 can be
//! recomputed from their merged CFs — no Lance–Williams update formula or
//! approximation is needed, which is precisely the "accuracy and
//! flexibility" advantage the paper claims.
//!
//! Two agglomerators share one contract (DESIGN.md §12):
//!
//! - **Nearest-neighbor chain** ([`agglomerate`]'s default for reducible
//!   metrics — see [`DistanceMetric::is_reducible`]): follows
//!   nearest-neighbor links until a mutual pair appears, merges it, and
//!   continues from the surviving chain. O(m) candidate memory and
//!   O(m²) worst-case distance evaluations, further cut by the
//!   cached-statistic lower-bound prune ([`pair_lower_bound`]). For
//!   reducible linkages the merge *set* equals the greedy closest-pair
//!   order's, so sorting the discovered merges by distance recovers the
//!   exact greedy dendrogram — including the `DistanceThreshold` cut,
//!   which must be evaluated against that monotone sequence rather than
//!   the chain's out-of-order discovery sequence.
//! - **Heap** ([`HacAlgorithm::Heap`], the differential oracle and the
//!   fallback for non-reducible metrics): a binary heap of candidate
//!   pairs with lazy invalidation — `O(m² log m)` time and `O(m²)` heap
//!   space, fine for small m and the only correct greedy executor when
//!   the linkage admits inversions (D0/D1/D3).
//!
//! Both paths evaluate every distance through the same
//! [`pair_in_block`] kernel over the same SoA block, merge cluster CFs
//! in the same canonical orientation (the cluster containing the
//! smaller original entry index absorbs the other), and emit labels in
//! first-encounter order — so on tie-free inputs their dendrograms,
//! labels, and cluster CFs agree *bit for bit*, which the property
//! suite pins.

use crate::cf::Cf;
use crate::distance::{pair_in_block, pair_lower_bound, CfBlock, DistanceMetric};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

/// When to stop merging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop when exactly `k` clusters remain (the usual BIRCH input `K`).
    ClusterCount(usize),
    /// Stop when the closest remaining pair is farther apart than this
    /// distance (lets the data pick its own cluster count).
    DistanceThreshold(f64),
}

/// Which agglomerator executed (or should execute) the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HacAlgorithm {
    /// Nearest-neighbor-chain over the SoA block: O(m) candidate
    /// memory. Exact only for reducible metrics.
    NnChain,
    /// All-pairs candidate heap with lazy invalidation: O(m²) heap
    /// space. Exact greedy order for every metric — the oracle.
    Heap,
}

impl HacAlgorithm {
    /// Stable lowercase name for JSON/bench output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HacAlgorithm::NnChain => "nn_chain",
            HacAlgorithm::Heap => "heap",
        }
    }
}

/// Work and memory counters of one agglomeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HacStats {
    /// Which agglomerator ran.
    pub algorithm: HacAlgorithm,
    /// Full distance-kernel evaluations performed.
    pub pairs_evaluated: u64,
    /// Candidate pairs skipped by the cached-statistic lower bound
    /// ([`pair_lower_bound`]) — always 0 on the heap path.
    pub pairs_pruned: u64,
    /// High-water mark of candidate-state heap bytes: the SoA block plus
    /// the candidate heap (heap path) or the chain/merge-log vectors
    /// (NN-chain path). The headline contrast: O(m²) vs O(m).
    pub peak_candidate_bytes: usize,
}

/// Result of a hierarchical run: per-input labels and the cluster CFs.
#[derive(Debug, Clone)]
pub struct HierarchicalResult {
    /// `labels[i]` is the cluster index (into `clusters`) of input entry
    /// `i`. Cluster indices are assigned in first-encounter order over
    /// the input entries, so the labeling depends only on the final
    /// partition — not on merge bookkeeping — and is directly comparable
    /// across agglomerators.
    pub labels: Vec<usize>,
    /// Final cluster summaries, indexed by label. Each cluster CF is
    /// rebuilt by folding its member entries in input order (exact by
    /// Additivity), so it is bit-identical across agglomerators too.
    pub clusters: Vec<Cf>,
    /// Merge distances of the applied merges in monotone (greedy) order —
    /// the dendrogram's height sequence below the cut.
    pub merge_distances: Vec<f64>,
    /// Work and memory counters.
    pub stats: HacStats,
}

#[derive(Debug)]
struct Candidate {
    dist: f64,
    a: usize,
    b: usize,
    ver_a: u32,
    ver_b: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Min-heap on distance via reversed comparison; NaNs are rejected
        // at construction so total_cmp is safe and total.
        other.dist.total_cmp(&self.dist)
    }
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn validate(entries: &[Cf], stop: StopRule) {
    assert!(!entries.is_empty(), "cannot cluster zero entries");
    assert!(
        entries.iter().all(|e| !e.is_empty()),
        "entries must be non-empty CFs"
    );
    if let StopRule::ClusterCount(k) = stop {
        assert!(k >= 1, "cluster count must be >= 1");
        assert!(
            k <= entries.len(),
            "asked for {k} clusters from {} entries",
            entries.len()
        );
    }
}

/// Canonical labeling shared by both agglomerators: walk the entries in
/// input order, assign each union-find root a cluster index the first
/// time it is seen, and rebuild each cluster CF by folding its members
/// in that same order. The output depends only on the partition.
fn canonical_result(
    entries: &[Cf],
    parent: &mut [usize],
    merge_distances: Vec<f64>,
    stats: HacStats,
) -> HierarchicalResult {
    let m = entries.len();
    let mut root_cluster = vec![usize::MAX; m];
    let mut labels = Vec::with_capacity(m);
    let mut clusters: Vec<Cf> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let r = find(parent, i);
        let c = if root_cluster[r] == usize::MAX {
            root_cluster[r] = clusters.len();
            clusters.push(e.clone());
            clusters.len() - 1
        } else {
            let c = root_cluster[r];
            clusters[c].merge(e);
            c
        };
        labels.push(c);
    }
    HierarchicalResult {
        labels,
        clusters,
        merge_distances,
        stats,
    }
}

/// Runs agglomerative clustering over `entries` with the given metric:
/// the NN-chain agglomerator (with the candidate prune) when the metric
/// is reducible, the exhaustive heap otherwise.
///
/// # Panics
///
/// Panics if `entries` is empty, if any entry is empty, or if the stop rule
/// asks for more clusters than there are entries (`k > m` is a caller bug;
/// `k == 0` likewise).
#[must_use]
pub fn agglomerate(entries: &[Cf], metric: DistanceMetric, stop: StopRule) -> HierarchicalResult {
    if metric.is_reducible() {
        agglomerate_with(entries, metric, stop, HacAlgorithm::NnChain, true)
    } else {
        agglomerate_with(entries, metric, stop, HacAlgorithm::Heap, true)
    }
}

/// Like [`agglomerate`] with an explicit algorithm and prune switch —
/// the differential-test entry point.
///
/// # Panics
///
/// As [`agglomerate`]; additionally panics if [`HacAlgorithm::NnChain`]
/// is forced for a non-reducible metric (its dendrogram would be wrong —
/// see [`DistanceMetric::is_reducible`]).
#[must_use]
pub fn agglomerate_with(
    entries: &[Cf],
    metric: DistanceMetric,
    stop: StopRule,
    algorithm: HacAlgorithm,
    prune: bool,
) -> HierarchicalResult {
    validate(entries, stop);
    match algorithm {
        HacAlgorithm::NnChain => nn_chain(entries, metric, stop, prune),
        HacAlgorithm::Heap => heap_greedy(entries, metric, stop),
    }
}

/// The nearest-neighbor-chain agglomerator (Schubert & Lang's aggregated
/// HAC, run directly over CF summaries).
///
/// The chain invariant: consecutive chain distances strictly decrease
/// (ties prefer the chain predecessor), so the chain never cycles and a
/// mutual nearest-neighbor pair is always reached. Reducibility
/// guarantees merging that pair never invalidates the remaining chain
/// prefix, and that the discovered merge set equals the greedy one — the
/// greedy order is recovered afterwards by sorting the merges by
/// distance (stable in discovery order, which for reducible linkages
/// keeps every cluster's creating merge ahead of its uses).
fn nn_chain(
    entries: &[Cf],
    metric: DistanceMetric,
    stop: StopRule,
    prune: bool,
) -> HierarchicalResult {
    assert!(
        metric.is_reducible(),
        "NN-chain requires a reducible metric; {metric} admits inversions \
         (use HacAlgorithm::Heap)"
    );
    let m = entries.len();
    let mut block = CfBlock::from_cfs(entries);
    // Slot model: the cluster containing original entry `i` as its
    // smallest member lives at slot `i` (so a slot index is also a
    // canonical representative). Merges keep the smaller slot.
    let mut cfs: Vec<Cf> = entries.to_vec();
    let mut alive = vec![true; m];
    // (lo, hi, dist) per merge, in chain discovery order.
    let mut merges: Vec<(usize, usize, f64)> = Vec::with_capacity(m.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::new();
    let mut evaluated = 0u64;
    let mut pruned = 0u64;

    {
        let _sp = crate::obs::span::enter("hac_chain");
        while merges.len() + 1 < m {
            if chain.is_empty() {
                // Slot 0 survives every merge it joins (it is always the
                // smaller index), so it is a valid permanent seed.
                chain.push(0);
            }
            let a = *chain.last().expect("chain non-empty");
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            // Nearest alive neighbor of `a`, ties preferring `prev` (the
            // termination guarantee): seed the running best with `prev`
            // and require a strict win from everyone else.
            let (mut best, mut best_d) = match prev {
                Some(p) => {
                    evaluated += 1;
                    (p, pair_in_block(metric, &block, a, p))
                }
                None => (usize::MAX, f64::INFINITY),
            };
            for (j, &j_alive) in alive.iter().enumerate() {
                if !j_alive || j == a || Some(j) == prev {
                    continue;
                }
                if prune && pair_lower_bound(metric, &block, a, j) > best_d {
                    pruned += 1;
                    continue;
                }
                evaluated += 1;
                let d = pair_in_block(metric, &block, a, j);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if prev == Some(best) {
                // Mutual pair: merge, canonical orientation lo ← hi.
                chain.pop();
                chain.pop();
                let (lo, hi) = (a.min(best), a.max(best));
                let (head, tail) = cfs.split_at_mut(hi);
                head[lo].merge(&tail[0]);
                block.set(lo, &head[lo]);
                alive[hi] = false;
                merges.push((lo, hi, best_d));
            } else {
                chain.push(best);
            }
        }
    }

    let _sp = crate::obs::span::enter("hac_cut");
    // Recover the greedy (monotone) merge order: sort by distance,
    // stable in discovery order. For a reducible linkage the discovery
    // order already places each cluster's creating merge before any
    // merge that consumes it at equal height, so every sorted prefix is
    // ancestry-closed and unioning it reproduces the greedy partition.
    let mut order: Vec<usize> = (0..merges.len()).collect();
    order.sort_by(|&x, &y| merges[x].2.total_cmp(&merges[y].2).then(x.cmp(&y)));
    let n_apply = match stop {
        StopRule::ClusterCount(k) => m - k,
        // The chain discovers merges out of global distance order, so
        // the threshold cut must consult the *sorted* sequence: apply
        // exactly the merges at height ≤ t, which is what the greedy
        // executor's "stop at the first pop above t" also applies.
        StopRule::DistanceThreshold(t) => order.iter().take_while(|&&x| merges[x].2 <= t).count(),
    };
    let mut parent: Vec<usize> = (0..m).collect();
    let mut merge_distances = Vec::with_capacity(n_apply);
    for &x in order.iter().take(n_apply) {
        let (lo, hi, d) = merges[x];
        let rl = find(&mut parent, lo);
        let rh = find(&mut parent, hi);
        parent[rh] = rl;
        merge_distances.push(d);
    }

    let peak_candidate_bytes = block.heap_bytes()
        + cfs.iter().map(Cf::heap_bytes).sum::<usize>()
        + merges.capacity() * std::mem::size_of::<(usize, usize, f64)>()
        + order.capacity() * std::mem::size_of::<usize>()
        + chain.capacity() * std::mem::size_of::<usize>()
        + alive.capacity();
    let stats = HacStats {
        algorithm: HacAlgorithm::NnChain,
        pairs_evaluated: evaluated,
        pairs_pruned: pruned,
        peak_candidate_bytes,
    };
    canonical_result(entries, &mut parent, merge_distances, stats)
}

/// The all-pairs heap agglomerator: the exact greedy closest-pair order
/// for every metric (reducible or not), kept as the differential oracle
/// and the non-reducible fallback.
fn heap_greedy(entries: &[Cf], metric: DistanceMetric, stop: StopRule) -> HierarchicalResult {
    let m = entries.len();
    let mut cfs: Vec<Cf> = entries.to_vec();
    let mut alive = vec![true; m];
    let mut version = vec![0u32; m];
    let mut parent: Vec<usize> = (0..m).collect();
    let mut evaluated = 0u64;

    // A pair farther apart than the distance threshold can never merge —
    // the pop loop stops at the first such pair — so under that rule it
    // need not enter the heap at all, shrinking the O(m²) heap to the
    // pairs that can actually participate.
    let push_cutoff = match stop {
        StopRule::ClusterCount(_) => f64::INFINITY,
        StopRule::DistanceThreshold(t) => t,
    };
    let mut heap = match stop {
        // Exact-k keeps every pair; pre-size the full matrix.
        StopRule::ClusterCount(_) => BinaryHeap::with_capacity(m * (m.saturating_sub(1)) / 2),
        // The cutoff makes the population data-dependent; let it grow.
        StopRule::DistanceThreshold(_) => BinaryHeap::new(),
    };
    // The initial O(m²) matrix sweeps one contiguous SoA block, reusing
    // each entry's cached ‖vec‖² instead of re-deriving it per pair.
    let mut block = CfBlock::from_cfs(entries);
    {
        let _sp = crate::obs::span::enter("hac_init");
        for i in 0..m {
            for j in (i + 1)..m {
                evaluated += 1;
                let d = pair_in_block(metric, &block, i, j);
                if d > push_cutoff {
                    continue;
                }
                heap.push(Candidate {
                    dist: d,
                    a: i,
                    b: j,
                    ver_a: 0,
                    ver_b: 0,
                });
            }
        }
    }
    let mut peak_heap_cap = heap.capacity();

    let mut active = m;
    let mut merge_distances = Vec::new();
    let target = match stop {
        StopRule::ClusterCount(k) => k,
        StopRule::DistanceThreshold(_) => 1,
    };

    {
        let _sp = crate::obs::span::enter("hac_merge");
        while active > target {
            let Some(c) = heap.pop() else { break };
            if version[c.a] != c.ver_a || version[c.b] != c.ver_b {
                continue; // stale pair
            }
            if let StopRule::DistanceThreshold(t) = stop {
                if c.dist > t {
                    break;
                }
            }
            // Canonical orientation: the smaller slot absorbs the larger
            // (slot index = smallest member index, by induction), so the
            // merged CF is bit-identical to the NN-chain path's.
            let (lo, hi) = (c.a.min(c.b), c.a.max(c.b));
            let (head, tail) = cfs.split_at_mut(hi);
            head[lo].merge(&tail[0]);
            block.set(lo, &head[lo]);
            alive[hi] = false;
            version[lo] += 1;
            version[hi] = u32::MAX; // never valid again
            let rh = find(&mut parent, hi);
            let rl = find(&mut parent, lo);
            parent[rh] = rl;
            active -= 1;
            merge_distances.push(c.dist);

            // New candidate pairs from the merged cluster.
            for (i, &i_alive) in alive.iter().enumerate() {
                if i == lo || !i_alive {
                    continue;
                }
                evaluated += 1;
                let d = pair_in_block(metric, &block, lo, i);
                if d > push_cutoff {
                    continue;
                }
                let (a, b) = (lo.min(i), lo.max(i));
                heap.push(Candidate {
                    dist: d,
                    a,
                    b,
                    ver_a: version[a],
                    ver_b: version[b],
                });
            }
            peak_heap_cap = peak_heap_cap.max(heap.capacity());
        }
    }

    let peak_candidate_bytes = block.heap_bytes()
        + cfs.iter().map(Cf::heap_bytes).sum::<usize>()
        + peak_heap_cap * std::mem::size_of::<Candidate>();
    let stats = HacStats {
        algorithm: HacAlgorithm::Heap,
        pairs_evaluated: evaluated,
        pairs_pruned: 0,
        peak_candidate_bytes,
    };
    canonical_result(entries, &mut parent, merge_distances, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn singletons(raw: &[[f64; 2]]) -> Vec<Cf> {
        raw.iter()
            .map(|&[x, y]| Cf::from_point(&Point::xy(x, y)))
            .collect()
    }

    #[test]
    fn two_obvious_blobs() {
        let entries = singletons(&[
            [0.0, 0.0],
            [0.5, 0.0],
            [0.0, 0.5],
            [50.0, 50.0],
            [50.5, 50.0],
            [50.0, 50.5],
        ]);
        let r = agglomerate(&entries, DistanceMetric::D2, StopRule::ClusterCount(2));
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[1], r.labels[2]);
        assert_eq!(r.labels[3], r.labels[4]);
        assert_eq!(r.labels[4], r.labels[5]);
        assert_ne!(r.labels[0], r.labels[3]);
        // Cluster CFs carry the right weights.
        let mut ns: Vec<f64> = r.clusters.iter().map(Cf::n).collect();
        ns.sort_by(f64::total_cmp);
        assert_eq!(ns, vec![3.0, 3.0]);
        // D2 is reducible, so the default dispatch took the chain.
        assert_eq!(r.stats.algorithm, HacAlgorithm::NnChain);
    }

    #[test]
    fn k_equals_m_is_identity() {
        let entries = singletons(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(3));
        assert_eq!(r.clusters.len(), 3);
        let mut seen = r.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 3);
        assert!(r.merge_distances.is_empty());
    }

    #[test]
    fn k_equals_one_merges_everything() {
        let entries = singletons(&[[0.0, 0.0], [10.0, 0.0], [5.0, 8.0], [2.0, 2.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(1));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].n(), 4.0);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert_eq!(r.merge_distances.len(), 3);
    }

    #[test]
    fn merge_distances_reflect_structure() {
        // Tight pair + far singleton: the first merge is the tight pair at
        // a small distance, the second at a large one.
        let entries = singletons(&[[0.0, 0.0], [0.1, 0.0], [100.0, 0.0]]);
        let r = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(1));
        assert_eq!(r.merge_distances.len(), 2);
        assert!(r.merge_distances[0] < 1.0);
        assert!(r.merge_distances[1] > 50.0);
    }

    #[test]
    fn distance_threshold_stop() {
        let entries = singletons(&[[0.0, 0.0], [0.1, 0.0], [100.0, 0.0], [100.1, 0.0]]);
        let r = agglomerate(
            &entries,
            DistanceMetric::D0,
            StopRule::DistanceThreshold(1.0),
        );
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn distance_threshold_zero_merges_nothing_distinct() {
        let entries = singletons(&[[0.0, 0.0], [1.0, 0.0]]);
        let r = agglomerate(
            &entries,
            DistanceMetric::D0,
            StopRule::DistanceThreshold(0.5),
        );
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn weighted_entries_pull_merges() {
        // A heavy subcluster and two singles; with D2 the singles near the
        // heavy blob should join it rather than each other when k=2.
        let blob: Vec<Point> = (0..50).map(|_| Point::xy(0.0, 0.0)).collect();
        let entries = vec![
            Cf::from_points(&blob),
            Cf::from_point(&Point::xy(1.0, 0.0)),
            Cf::from_point(&Point::xy(30.0, 0.0)),
        ];
        let r = agglomerate(&entries, DistanceMetric::D2, StopRule::ClusterCount(2));
        assert_eq!(r.labels[0], r.labels[1]);
        assert_ne!(r.labels[0], r.labels[2]);
    }

    #[test]
    fn all_metrics_terminate_on_random_input() {
        let raw: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let i = i as f64;
                [(i * 0.61).rem_euclid(10.0), (i * 0.41).rem_euclid(10.0)]
            })
            .collect();
        let entries = singletons(&raw);
        for m in DistanceMetric::ALL {
            let r = agglomerate(&entries, m, StopRule::ClusterCount(5));
            assert_eq!(r.clusters.len(), 5, "metric {m}");
            let total: f64 = r.clusters.iter().map(Cf::n).sum();
            assert_eq!(total, 40.0, "metric {m}");
            // Auto-dispatch: chain for reducible metrics, heap otherwise.
            let want = if m.is_reducible() {
                HacAlgorithm::NnChain
            } else {
                HacAlgorithm::Heap
            };
            assert_eq!(r.stats.algorithm, want, "metric {m}");
        }
    }

    #[test]
    fn labels_are_first_encounter_order() {
        // Entry 0's cluster must be label 0, the next new cluster in
        // input order label 1, etc. — on both agglomerators.
        let entries = singletons(&[[50.0, 50.0], [0.0, 0.0], [50.2, 50.0], [0.2, 0.0]]);
        for algo in [HacAlgorithm::NnChain, HacAlgorithm::Heap] {
            let r = agglomerate_with(
                &entries,
                DistanceMetric::D2,
                StopRule::ClusterCount(2),
                algo,
                true,
            );
            assert_eq!(r.labels, vec![0, 1, 0, 1], "{algo:?}");
        }
    }

    #[test]
    fn nn_chain_matches_heap_on_blobs() {
        // Deliberately tie-free: every pairwise distance is distinct, so
        // the greedy dendrogram is unique and both paths must match it.
        let entries = singletons(&[
            [0.0, 0.0],
            [0.5, 0.0],
            [0.0, 0.7],
            [50.0, 50.0],
            [50.6, 50.0],
            [50.0, 50.9],
            [100.0, 0.0],
            [100.3, 0.1],
        ]);
        for metric in [DistanceMetric::D2, DistanceMetric::D4] {
            for k in 1..=entries.len() {
                let chain = agglomerate_with(
                    &entries,
                    metric,
                    StopRule::ClusterCount(k),
                    HacAlgorithm::NnChain,
                    true,
                );
                let heap = agglomerate_with(
                    &entries,
                    metric,
                    StopRule::ClusterCount(k),
                    HacAlgorithm::Heap,
                    true,
                );
                assert_eq!(chain.labels, heap.labels, "{metric} k={k}");
                assert_eq!(
                    chain.merge_distances, heap.merge_distances,
                    "{metric} k={k}"
                );
                assert_eq!(chain.clusters.len(), heap.clusters.len());
                for (a, b) in chain.clusters.iter().zip(&heap.clusters) {
                    assert_eq!(a, b, "{metric} k={k}");
                }
            }
        }
    }

    #[test]
    fn nn_chain_prunes_and_stays_linear() {
        let raw: Vec<[f64; 2]> = (0..200)
            .map(|i| {
                let c = (i % 4) as f64 * 1000.0;
                let j = i as f64;
                [c + (j * 0.7).sin(), c + (j * 1.3).cos()]
            })
            .collect();
        let entries = singletons(&raw);
        let r = agglomerate(&entries, DistanceMetric::D2, StopRule::ClusterCount(4));
        assert_eq!(r.stats.algorithm, HacAlgorithm::NnChain);
        // The classic backend has no trustworthy cached-stat D2 bound
        // (cancellation), so it deliberately never prunes there.
        #[cfg(not(feature = "classic-cf"))]
        assert!(r.stats.pairs_pruned > 0, "well-separated blobs must prune");
        #[cfg(feature = "classic-cf")]
        assert_eq!(r.stats.pairs_pruned, 0);
        // O(m) candidate state: nowhere near the m²/2 pair matrix.
        let m = entries.len();
        let pair_matrix = m * (m - 1) / 2 * std::mem::size_of::<Candidate>();
        assert!(
            r.stats.peak_candidate_bytes < pair_matrix / 4,
            "chain state {} vs pair matrix {pair_matrix}",
            r.stats.peak_candidate_bytes
        );
    }

    #[test]
    #[should_panic(expected = "reducible")]
    fn nn_chain_rejects_non_reducible_metric() {
        let entries = singletons(&[[0.0, 0.0], [1.0, 0.0]]);
        let _ = agglomerate_with(
            &entries,
            DistanceMetric::D3,
            StopRule::ClusterCount(1),
            HacAlgorithm::NnChain,
            true,
        );
    }

    #[test]
    #[should_panic(expected = "cannot cluster zero entries")]
    fn empty_input_panics() {
        let _ = agglomerate(&[], DistanceMetric::D0, StopRule::ClusterCount(1));
    }

    #[test]
    #[should_panic(expected = "asked for")]
    fn too_many_clusters_panics() {
        let entries = singletons(&[[0.0, 0.0]]);
        let _ = agglomerate(&entries, DistanceMetric::D0, StopRule::ClusterCount(2));
    }
}
