//! The Clustering Feature (CF) — the paper's central data structure, in
//! two interchangeable numeric representations.
//!
//! **Definition 4.1**: for a cluster of `N` `d`-dimensional points `{Xᵢ}`,
//! `CF = (N, LS, SS)` where `LS = Σ Xᵢ` is the linear sum and `SS = Σ Xᵢ·Xᵢ`
//! is the (scalar) square sum. The **CF Additivity Theorem (4.1)** — merging
//! disjoint clusters adds their CFs component-wise — is what lets BIRCH
//! cluster incrementally: centroid `X0` (eq. 1), radius `R` (eq. 2),
//! diameter `D` (eq. 3) and the inter-cluster distances `D0…D4` (eqs. 4–8)
//! are all computable from CFs alone, without storing the points.
//!
//! The paper's triple is algebraically exact but *numerically* treacherous:
//! every quality-bearing statistic evaluates a difference of large, nearly
//! equal terms (`SS − ‖LS‖²/N` and friends). For a tight cluster at a large
//! coordinate offset the true deviation falls below the f64 rounding of the
//! operands and the clamped difference silently collapses to 0 —
//! catastrophic cancellation. BETULA (Lang & Schubert, see PAPERS.md) fixes
//! this by storing the translation-invariant form `(N, μ, SSE)` instead.
//!
//! Two backends implement the same surface:
//!
//! * [`classic`] — the paper's `(N, LS, SS)` with a memoized `‖LS‖²`.
//!   Bit-compatible with every historical pin in this repository; subject
//!   to the cancellation failure mode above.
//! * [`stable`] — BETULA's `(N, μ, SSE)` with Neumaier-compensated mean
//!   and SSE accumulation. Translation-invariant statistics at any offset.
//!
//! Both are always compiled (so diagnostics and benches can compare them
//! in one binary); [`stable`] is re-exported as [`Cf`] by default and the
//! `classic-cf` cargo feature selects [`classic`] instead (the `stable-cf`
//! feature is a deprecated no-op from before the default flipped). The
//! re-export is what drives the tree. Generic code uses
//! the backend-agnostic accessor surface — `vec_stat` (LS or μ),
//! `scalar_stat` (SS or SSE), `vec_stat_sq` (the memoized `‖·‖²`) — plus
//! the shared constructors and algebra (`merge`/`merged`/`subtract`/
//! `add_point`/…), which have identical signatures on both types.

pub mod classic;
pub mod stable;

#[cfg(all(feature = "classic-cf", feature = "stable-cf"))]
compile_error!(
    "features `classic-cf` and `stable-cf` select opposite CF backends; \
     enable at most one (`stable-cf` is a deprecated no-op — the stable \
     backend is the default)"
);

#[cfg(feature = "classic-cf")]
pub use classic::Cf;
#[cfg(not(feature = "classic-cf"))]
pub use stable::Cf;

/// Relative dust threshold for [`Cf::subtract`]: a residual weight at or
/// below `N_DUST_REL` times the pre-subtraction weight is floating-point
/// dust, not a real cluster, and snaps to the empty CF. The same constant
/// makes the "cannot subtract more than is present" guard relative.
pub(crate) const N_DUST_REL: f64 = 1e-9;
