//! The numerically stable CF backend: BETULA's `(N, μ, SSE)` form.
//!
//! The paper's `(N, LS, SS)` triple loses every quality-bearing statistic
//! to catastrophic cancellation when clusters are tight relative to their
//! coordinate magnitude: `SS − ‖LS‖²/N` subtracts two numbers agreeing in
//! all their leading digits. BETULA (Lang & Schubert, PAPERS.md) replaces
//! the raw sums with the *translation-invariant* statistics
//!
//! * `N` — weighted point count (unchanged),
//! * `μ = LS / N` — the mean, and
//! * `SSE = Σ wᵢ‖Xᵢ − μ‖²` — the sum of squared deviations,
//!
//! updated incrementally (Welford-style). Radius, diameter and the
//! deviation-form distances then read `SSE` *directly* — no cancelling
//! subtraction ever happens, so shifting the data by 1e8 does not change
//! a single statistic beyond input rounding.
//!
//! On top of BETULA's algebra this backend compensates both accumulators
//! (Neumaier/Kahan via error-free [`two_sum`]): the mean is kept as a
//! `mean + mean_c` pair (per-dimension carry) and `SSE` as `sse + sse_c`.
//! Plain Welford at offset 1e8 still rounds each mean update at
//! `ulp(1e8) ≈ 1.5e-8`, which leaks into the deviations; the compensated
//! pair keeps the mean accurate to ~1 ulp *of the deviations*, driving the
//! relative error of radius/D4 to ~1e-15 where the bench demands ≤ 1e-9
//! (`BENCH_cf_stability.json`).
//!
//! Merge/subtract rules (the update is the `nb = w` singleton case, routed
//! through the same code so `add ≡ merge` bit-for-bit):
//!
//! ```text
//! merge:    n' = na + nb;   Δ = μb − μa
//!           μ' = μa + (nb/n')·Δ
//!           SSE' = SSEa + SSEb + (na·nb/n')·‖Δ‖²
//! subtract: na' = n − nb    (inverse: recover cluster a from merged m)
//!           μa' = μ + (nb/na')·(μ − μb)
//!           SSEa' = SSE − SSEb − (na'·nb/n)·‖μa' − μb‖²,  clamped ≥ 0
//! ```
//!
//! The API mirrors [`classic`](crate::cf::classic) exactly — same
//! constructors, algebra, statistics and backend-agnostic accessors
//! (`vec_stat` = μ, `scalar_stat` = SSE, `vec_stat_sq` = memoized `‖μ‖²`,
//! refreshed by exact recomputation under the same zero-drift contract as
//! the classic `‖LS‖²` memo).

use crate::cf::N_DUST_REL;
use crate::point::{dot, Point};
use crate::quad::{quick_two_sum, two_sum};
use std::fmt;

/// A Clustering Feature in the stable `(N, μ, SSE)` representation, with
/// Neumaier-compensated mean and deviation-sum accumulators.
#[derive(Clone, PartialEq)]
pub struct Cf {
    /// Total (weighted) number of points, `N`.
    n: f64,
    /// Mean `μ = LS / N` (leading component).
    mean: Box<[f64]>,
    /// Per-dimension compensation carry: the true mean is `mean + mean_c`,
    /// with `|mean_c[i]| ≲ ulp(mean[i])`.
    mean_c: Box<[f64]>,
    /// Sum of squared deviations `SSE = Σ wᵢ‖Xᵢ − μ‖²` (leading component).
    sse: f64,
    /// Compensation carry for `sse`.
    sse_c: f64,
    /// Memoized `‖μ‖² = dot(mean, mean)`, refreshed on every mutation of
    /// `mean` by exact recomputation (same contract as classic `ls_sq`).
    mean_sq: f64,
}

impl Cf {
    /// An empty CF of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            n: 0.0,
            mean: vec![0.0; dim].into_boxed_slice(),
            mean_c: vec![0.0; dim].into_boxed_slice(),
            sse: 0.0,
            sse_c: 0.0,
            mean_sq: 0.0,
        }
    }

    /// The CF of a single unweighted point.
    #[must_use]
    pub fn from_point(p: &Point) -> Self {
        Self::from_weighted_point(p, 1.0)
    }

    /// Heap bytes owned by this CF (the boxed `μ` and carry slabs); the
    /// struct itself is counted by whoever stores it. Feeds the memory
    /// gauge's accounting against budget M ([`crate::obs::mem`]).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (self.mean.len() + self.mean_c.len()) * std::mem::size_of::<f64>()
    }

    /// The CF of a single point with weight `w > 0`: `(w, p, 0)` — a
    /// singleton has zero deviation regardless of weight.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not finite and positive.
    #[must_use]
    pub fn from_weighted_point(p: &Point, w: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        let mean: Box<[f64]> = p.coords().into();
        let mean_sq = dot(&mean, &mean);
        Self {
            n: w,
            mean_c: vec![0.0; p.dim()].into_boxed_slice(),
            mean,
            sse: 0.0,
            sse_c: 0.0,
            mean_sq,
        }
    }

    /// The CF of a batch of unweighted points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions disagree.
    #[must_use]
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut it = points.into_iter();
        let first = it.next().expect("from_points needs at least one point");
        let mut cf = Self::from_point(first);
        for p in it {
            cf.add_point(p);
        }
        cf
    }

    /// Dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Weighted point count `N`.
    #[must_use]
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Whether the CF summarizes no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0.0
    }

    /// The mean `μ` (leading component; see [`Cf::mean_carry`] for the
    /// compensation term).
    #[must_use]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The per-dimension compensation carry: the backend's best estimate
    /// of the true mean is `mean()[i] + mean_carry()[i]`. The deviation-form
    /// distance kernels consume it so differences of means keep full
    /// precision at large coordinate offsets.
    #[must_use]
    pub fn mean_carry(&self) -> &[f64] {
        &self.mean_c
    }

    /// Sum of squared deviations `SSE`, compensation folded in.
    #[must_use]
    pub fn sse(&self) -> f64 {
        self.sse + self.sse_c
    }

    /// Backend-agnostic vector statistic: the mean `μ` for this backend
    /// (the linear sum `LS` for [`classic`](crate::cf::classic)).
    #[must_use]
    pub fn vec_stat(&self) -> &[f64] {
        &self.mean
    }

    /// Backend-agnostic scalar statistic: the deviation sum `SSE` for this
    /// backend (the square sum `SS` for [`classic`](crate::cf::classic)).
    #[must_use]
    pub fn scalar_stat(&self) -> f64 {
        self.sse()
    }

    /// Backend-agnostic memoized `‖vec_stat‖²`: `‖μ‖²` here. Bit-identical
    /// to `dot(vec_stat, vec_stat)` by the exact-recomputation contract.
    #[must_use]
    pub fn vec_stat_sq(&self) -> f64 {
        self.mean_sq
    }

    /// Test-only corruption of the memoized norm, giving the auditor's
    /// norm-cache check a deterministic failure to detect. Only the
    /// feature-selected backend's helper is reachable from the audit
    /// tests, so the other one is intentionally dead per build.
    #[cfg(test)]
    #[allow(dead_code)]
    pub(crate) fn corrupt_norm_memo_for_test(&mut self, delta: f64) {
        self.mean_sq += delta;
    }

    /// Reassigns this CF to a single unweighted point, reusing the
    /// buffers. Bitwise-equal to `*self = Cf::from_point(p)` without the
    /// per-point heap allocations — the insert hot path's scratch entry.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn assign_point(&mut self, p: &Point) {
        self.assign_weighted_point(p, 1.0);
    }

    /// Reassigns this CF to a single point with weight `w > 0`, reusing
    /// the buffers (see [`Cf::assign_point`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive weight.
    pub fn assign_weighted_point(&mut self, p: &Point, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        assert_eq!(
            p.dim(),
            self.dim(),
            "dimension mismatch: point {} vs CF {}",
            p.dim(),
            self.dim()
        );
        self.n = w;
        self.mean.copy_from_slice(p.coords());
        self.mean_c.fill(0.0);
        self.sse = 0.0;
        self.sse_c = 0.0;
        self.mean_sq = dot(&self.mean, &self.mean);
    }

    /// Adds one unweighted point (the `nb = 1` singleton merge).
    pub fn add_point(&mut self, p: &Point) {
        self.add_weighted_point(p, 1.0);
    }

    /// Adds one point with weight `w > 0` — routed through the same inner
    /// merge as [`Cf::merge`] (a weighted point *is* the singleton CF
    /// `(w, p, 0)`), so add and merge stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive weight.
    pub fn add_weighted_point(&mut self, p: &Point, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        assert_eq!(
            p.dim(),
            self.dim(),
            "dimension mismatch: point {} vs CF {}",
            p.dim(),
            self.dim()
        );
        self.merge_parts(w, p.coords(), None, 0.0, 0.0);
    }

    /// Merges another CF into this one (BETULA's merge rule — the
    /// Additivity Theorem in `(N, μ, SSE)` form).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &Cf) {
        assert_eq!(
            other.dim(),
            self.dim(),
            "dimension mismatch: {} vs {}",
            other.dim(),
            self.dim()
        );
        self.merge_parts(
            other.n,
            &other.mean,
            Some(&other.mean_c),
            other.sse,
            other.sse_c,
        );
    }

    /// Returns the merge of two CFs without mutating either.
    #[must_use]
    pub fn merged(&self, other: &Cf) -> Cf {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The shared merge core: folds the cluster `(nb, mb + cb, sse_b +
    /// sse_c_b)` into `self`. `cb = None` means a zero carry (the
    /// weighted-point case), keeping one code path for both entrances.
    fn merge_parts(&mut self, nb: f64, mb: &[f64], cb: Option<&[f64]>, sse_b: f64, sse_c_b: f64) {
        if nb == 0.0 {
            return;
        }
        if self.n == 0.0 {
            self.n = nb;
            self.mean.copy_from_slice(mb);
            match cb {
                Some(c) => self.mean_c.copy_from_slice(c),
                None => self.mean_c.fill(0.0),
            }
            self.sse = sse_b;
            self.sse_c = sse_c_b;
            self.mean_sq = dot(&self.mean, &self.mean);
            return;
        }
        let n_new = self.n + nb;
        let f = nb / n_new;
        let mut d_sq = 0.0;
        for i in 0..self.mean.len() {
            let cbi = cb.map_or(0.0, |c| c[i]);
            // Compensated Δᵢ = μb − μa: the leading difference is exact by
            // Sterbenz when the means are close (the case that matters at
            // large offsets); the carry difference restores the rest.
            let d = (mb[i] - self.mean[i]) + (cbi - self.mean_c[i]);
            d_sq += d * d;
            // μ' = μa + f·Δ, error-free into the carry, renormalized so
            // `mean` stays the correctly rounded leading component.
            let (s, e) = two_sum(self.mean[i], f * d);
            let (hi, lo) = quick_two_sum(s, self.mean_c[i] + e);
            self.mean[i] = hi;
            self.mean_c[i] = lo;
        }
        // Scatter term (na·nb/n')·‖Δ‖², with na read *before* the count
        // update. All three SSE contributions are non-negative; compensation
        // keeps long accumulation chains from drifting.
        let term = (self.n * f) * d_sq;
        self.acc_sse(sse_b);
        self.acc_sse(sse_c_b);
        self.acc_sse(term);
        self.n = n_new;
        self.mean_sq = dot(&self.mean, &self.mean);
    }

    /// Compensated accumulation into the SSE pair.
    fn acc_sse(&mut self, x: f64) {
        let (s, e) = two_sum(self.sse, x);
        let (hi, lo) = quick_two_sum(s, self.sse_c + e);
        self.sse = hi;
        self.sse_c = lo;
    }

    /// Removes a previously merged CF (inverse of [`Cf::merge`]) —
    /// BETULA's subtract rule, mean updated first so the scatter term uses
    /// the recovered mean. Same relative weight guard and dust snapping as
    /// the classic backend (see `classic::Cf::subtract`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `other` holds more weight than
    /// `self` (the subtraction would not describe a real cluster).
    pub fn subtract(&mut self, other: &Cf) {
        assert_eq!(
            other.dim(),
            self.dim(),
            "dimension mismatch: {} vs {}",
            other.dim(),
            self.dim()
        );
        assert!(
            other.n <= self.n * (1.0 + N_DUST_REL),
            "cannot subtract CF with larger N ({} > {})",
            other.n,
            self.n
        );
        let n_before = self.n;
        let n_new = self.n - other.n;
        if n_new <= N_DUST_REL * n_before {
            // Residual dust (including the tiny negatives the relative
            // guard admits): snap to the true empty CF.
            self.n = 0.0;
            self.mean.fill(0.0);
            self.mean_c.fill(0.0);
            self.sse = 0.0;
            self.sse_c = 0.0;
            self.mean_sq = 0.0;
            return;
        }
        if other.n == 0.0 {
            return;
        }
        let g = other.n / n_new;
        let mut d_sq = 0.0;
        for i in 0..self.mean.len() {
            let d = (self.mean[i] - other.mean[i]) + (self.mean_c[i] - other.mean_c[i]);
            // μa' − μb = (1 + g)·(μ − μb): the recovered mean's deviation
            // from the removed cluster, needed by the scatter term below.
            let dd = (1.0 + g) * d;
            d_sq += dd * dd;
            let (s, e) = two_sum(self.mean[i], g * d);
            let (hi, lo) = quick_two_sum(s, self.mean_c[i] + e);
            self.mean[i] = hi;
            self.mean_c[i] = lo;
        }
        let term = (n_new * other.n / n_before) * d_sq;
        let folded = (self.sse + self.sse_c) - (other.sse + other.sse_c) - term;
        // SSE is a sum of squares: a negative residual is pure round-off.
        self.sse = folded.max(0.0);
        self.sse_c = 0.0;
        self.n = n_new;
        self.mean_sq = dot(&self.mean, &self.mean);
    }

    /// Number of 8-byte words [`Cf::to_words`] emits for dimensionality
    /// `dim`: `N`, `μ`, the mean carry, `SSE`, and the SSE carry. The
    /// `‖μ‖²` memo is *not* serialized — it is recomputed exactly on
    /// decode, the same zero-drift contract every mutation obeys.
    #[must_use]
    pub fn words_per_entry(dim: usize) -> usize {
        2 * dim + 3
    }

    /// Serializes the CF into little-endian-friendly `u64` words (f64 bit
    /// patterns), appending to `out`. Layout: `n, mean[0..d], mean_c[0..d],
    /// sse, sse_c`.
    pub fn to_words(&self, out: &mut Vec<u64>) {
        out.push(self.n.to_bits());
        out.extend(self.mean.iter().map(|m| m.to_bits()));
        out.extend(self.mean_c.iter().map(|c| c.to_bits()));
        out.push(self.sse.to_bits());
        out.push(self.sse_c.to_bits());
    }

    /// Rebuilds a CF from [`Cf::to_words`] output. Bit-identical to the
    /// original: every stored field round-trips through `f64::to_bits`,
    /// and the `‖μ‖²` memo is recomputed by the same exact `dot` every
    /// mutation uses.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != Cf::words_per_entry(dim)` or `dim == 0`.
    #[must_use]
    pub fn from_words(words: &[u64], dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert_eq!(
            words.len(),
            Self::words_per_entry(dim),
            "CF word count mismatch for dim {dim}"
        );
        let n = f64::from_bits(words[0]);
        let mean: Box<[f64]> = words[1..1 + dim]
            .iter()
            .map(|&w| f64::from_bits(w))
            .collect();
        let mean_c: Box<[f64]> = words[1 + dim..1 + 2 * dim]
            .iter()
            .map(|&w| f64::from_bits(w))
            .collect();
        let sse = f64::from_bits(words[1 + 2 * dim]);
        let sse_c = f64::from_bits(words[2 + 2 * dim]);
        let mean_sq = dot(&mean, &mean);
        Self {
            n,
            mean,
            mean_c,
            sse,
            sse_c,
            mean_sq,
        }
    }

    /// Centroid `X0 = μ` (paper eq. 1), compensation folded in.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    #[must_use]
    pub fn centroid(&self) -> Point {
        assert!(!self.is_empty(), "centroid of an empty CF is undefined");
        Point::new(
            self.mean
                .iter()
                .zip(self.mean_c.iter())
                .map(|(m, c)| m + c)
                .collect(),
        )
    }

    /// Sum of squared deviations from the centroid: the stored `SSE`
    /// itself — no cancelling subtraction, which is the whole point of
    /// this backend. Clamped at 0 against compensation round-off.
    #[must_use]
    pub fn sq_deviation(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sse().max(0.0)
    }

    /// Radius `R = sqrt(SSE / N)` (paper eq. 2). Zero for empty/singleton
    /// CFs.
    #[must_use]
    pub fn radius(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.sq_deviation() / self.n).sqrt()
    }

    /// Diameter `D = sqrt(2·SSE / (N−1))` (paper eq. 3 in deviation form:
    /// the ordered-pair double sum `2N·SS − 2‖LS‖²` equals `2N·SSE`).
    /// Zero when `N ≤ 1`.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        if self.n <= 1.0 {
            return 0.0;
        }
        (2.0 * self.sq_deviation() / (self.n - 1.0)).sqrt()
    }
}

impl fmt::Debug for Cf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CF(N={:.1}, mean=[", self.n)?;
        for (i, m) in self.mean.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m:.3}")?;
        }
        write!(f, "], SSE={:.3})", self.sse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[[f64; 2]]) -> Vec<Point> {
        raw.iter().map(|&[x, y]| Point::xy(x, y)).collect()
    }

    #[test]
    fn single_point_cf() {
        let cf = Cf::from_point(&Point::xy(3.0, 4.0));
        assert_eq!(cf.n(), 1.0);
        assert_eq!(cf.mean(), &[3.0, 4.0]);
        assert_eq!(cf.sse(), 0.0);
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.centroid().coords(), &[3.0, 4.0]);
    }

    #[test]
    fn batch_matches_incremental() {
        let points = pts(&[[0.0, 0.0], [2.0, 0.0], [1.0, 3.0], [-1.0, 1.0]]);
        let batch = Cf::from_points(&points);
        let mut inc = Cf::empty(2);
        for p in &points {
            inc.add_point(p);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn additivity_theorem_within_round_off() {
        // Merge vs direct construction walk different op orders, so the
        // comparison is to round-off tolerance, not bitwise (the classic
        // backend's raw sums are order-independent; means are not).
        let a = pts(&[[0.0, 0.0], [1.0, 1.0]]);
        let b = pts(&[[4.0, 0.0], [5.0, 5.0], [6.0, 2.0]]);
        let cf_a = Cf::from_points(&a);
        let cf_b = Cf::from_points(&b);
        let merged = cf_a.merged(&cf_b);
        let all: Vec<Point> = a.iter().chain(&b).cloned().collect();
        let direct = Cf::from_points(&all);
        assert_eq!(merged.n(), direct.n());
        for (x, y) in merged.centroid().iter().zip(direct.centroid().iter()) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()));
        }
        assert!((merged.sse() - direct.sse()).abs() <= 1e-12 * (1.0 + direct.sse()));
    }

    #[test]
    fn subtract_inverts_merge() {
        let a = Cf::from_points(&pts(&[[1.0, 2.0], [3.0, 4.0]]));
        let b = Cf::from_points(&pts(&[[10.0, 10.0]]));
        let mut m = a.merged(&b);
        m.subtract(&b);
        assert!((m.n() - a.n()).abs() < 1e-12);
        assert!((m.sse() - a.sse()).abs() < 1e-9);
        for (x, y) in m.centroid().iter().zip(a.centroid().iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn centroid_of_square() {
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]]));
        for (c, want) in cf.centroid().iter().zip(&[1.0, 1.0]) {
            assert!((c - want).abs() < 1e-15);
        }
    }

    #[test]
    fn radius_of_unit_square_corners() {
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]]));
        assert!((cf.radius() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_point_pair() {
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [6.0, 0.0]]));
        assert!((cf.diameter() - 6.0).abs() < 1e-12);
        assert!((cf.radius() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_hand_computed_triangle() {
        // Points (0,0), (2,0), (0,2): pairwise sq dists 4, 4, 8 -> mean over
        // N(N-1)=6 *ordered* pairs = (2*(4+4+8))/6 = 16/3.
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]]));
        assert!((cf.diameter() - (16.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_point_equals_repeated_point() {
        let p = Point::xy(2.0, -1.0);
        let mut w = Cf::empty(2);
        w.add_weighted_point(&p, 3.0);
        let mut r = Cf::empty(2);
        for _ in 0..3 {
            r.add_point(&p);
        }
        // Coincident points leave the mean untouched and add zero
        // deviation: bitwise equal even through the incremental path.
        assert_eq!(w, r);
    }

    #[test]
    fn statistics_survive_large_offset() {
        // The motivating failure: a tight cluster (spread ~1e-3) at offset
        // 1e8. The classic backend's radius collapses to 0 here; the
        // stable backend must agree with the same cloud at the origin to
        // ~1e-9 relative. Dyadic spreads (multiples of 2⁻¹¹ ≈ 4.9e-4) are
        // exact multiples of ulp(1e8) = 2⁻²⁶, so the shifted cloud is an
        // *exact* translate — any drift is the backend's own error, not
        // input rounding.
        const S: f64 = 9.765_625e-4; // 2⁻¹⁰
        const H: f64 = 4.882_812_5e-4; // 2⁻¹¹
        let spread = [[0.0, 0.0], [S, 0.0], [0.0, S], [S, S], [H, H]];
        let at = |off: f64| {
            Cf::from_points(
                &spread
                    .iter()
                    .map(|&[x, y]| Point::xy(off + x, off + y))
                    .collect::<Vec<_>>(),
            )
        };
        let origin = at(0.0);
        let shifted = at(1e8);
        assert!(origin.radius() > 0.0);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
        assert!(
            rel(shifted.radius(), origin.radius()) < 1e-9,
            "radius drifted: {} vs {}",
            shifted.radius(),
            origin.radius()
        );
        assert!(
            rel(shifted.diameter(), origin.diameter()) < 1e-9,
            "diameter drifted: {} vs {}",
            shifted.diameter(),
            origin.diameter()
        );
    }

    #[test]
    fn sq_deviation_never_negative_under_cancellation() {
        let p = Point::xy(1e8, 1e8);
        let mut cf = Cf::empty(2);
        for _ in 0..1000 {
            cf.add_point(&p);
        }
        assert!(cf.sq_deviation() >= 0.0);
        assert!(cf.radius() >= 0.0);
        assert!(cf.diameter() >= 0.0);
        // Identical points: the deviation is *exactly* zero here, not
        // merely clamped — the d = x − μ differences all vanish.
        assert_eq!(cf.sq_deviation(), 0.0);
    }

    #[test]
    fn empty_cf_behaviour() {
        let cf = Cf::empty(3);
        assert!(cf.is_empty());
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.sq_deviation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "centroid of an empty CF")]
    fn empty_centroid_panics() {
        let _ = Cf::empty(2).centroid();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_dimension_mismatch_panics() {
        let mut a = Cf::empty(2);
        let b = Cf::empty(3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "cannot subtract")]
    fn oversubtraction_panics() {
        let mut a = Cf::from_point(&Point::xy(0.0, 0.0));
        let b = Cf::from_points(&pts(&[[0.0, 0.0], [1.0, 1.0]]));
        a.subtract(&b);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut cf = Cf::empty(2);
        cf.add_weighted_point(&Point::xy(0.0, 0.0), 0.0);
    }

    #[test]
    fn debug_format() {
        let cf = Cf::from_point(&Point::xy(1.0, 2.0));
        let s = format!("{cf:?}");
        assert!(s.starts_with("CF(N=1.0"));
        assert!(s.contains("SSE="));
    }

    #[test]
    fn mean_sq_cache_is_bit_exact_across_mutations() {
        let mut cf = Cf::empty(2);
        assert_eq!(cf.vec_stat_sq(), 0.0);
        cf.add_point(&Point::xy(1.5, -2.25));
        assert_eq!(
            cf.vec_stat_sq().to_bits(),
            dot(cf.mean(), cf.mean()).to_bits()
        );
        cf.add_weighted_point(&Point::xy(0.3, 0.7), 2.5);
        assert_eq!(
            cf.vec_stat_sq().to_bits(),
            dot(cf.mean(), cf.mean()).to_bits()
        );
        let other = Cf::from_points(&pts(&[[4.0, 1.0], [-2.0, 3.0]]));
        cf.merge(&other);
        assert_eq!(
            cf.vec_stat_sq().to_bits(),
            dot(cf.mean(), cf.mean()).to_bits()
        );
        cf.subtract(&other);
        assert_eq!(
            cf.vec_stat_sq().to_bits(),
            dot(cf.mean(), cf.mean()).to_bits()
        );
    }

    #[test]
    fn assign_point_matches_from_point_bitwise() {
        let p = Point::xy(3.25, -7.5);
        let mut scratch = Cf::from_point(&Point::xy(99.0, 99.0));
        scratch.assign_point(&p);
        let fresh = Cf::from_point(&p);
        assert!(scratch == fresh);
        assert_eq!(
            scratch.vec_stat_sq().to_bits(),
            fresh.vec_stat_sq().to_bits()
        );

        scratch.assign_weighted_point(&p, 2.0);
        let fresh_w = Cf::from_weighted_point(&p, 2.0);
        assert!(scratch == fresh_w);
        assert_eq!(
            scratch.vec_stat_sq().to_bits(),
            fresh_w.vec_stat_sq().to_bits()
        );
    }

    #[test]
    fn add_point_is_singleton_merge_bitwise() {
        // The contract that keeps tree-insert and oracle paths identical:
        // adding a weighted point must be *exactly* merging its singleton
        // CF (same inner routine, same carries).
        let base = Cf::from_points(&pts(&[[1.0, 2.0], [3.5, -1.0], [0.25, 0.75]]));
        let p = Point::xy(-2.5, 4.0);
        let mut via_add = base.clone();
        via_add.add_weighted_point(&p, 2.5);
        let mut via_merge = base.clone();
        via_merge.merge(&Cf::from_weighted_point(&p, 2.5));
        assert_eq!(via_add, via_merge);
    }

    #[test]
    fn subtract_to_empty_resets_everything() {
        let a = Cf::from_point(&Point::xy(5.0, 5.0));
        let mut m = a.clone();
        m.subtract(&a);
        assert!(m.is_empty());
        assert_eq!(m.vec_stat_sq(), 0.0);
        assert_eq!(m.mean(), &[0.0, 0.0]);
        assert_eq!(m.sse(), 0.0);
    }

    #[test]
    fn subtract_snaps_near_zero_residual() {
        let p = Point::xy(1.0, 2.0);
        let mut a = Cf::from_weighted_point(&p, 1.0);
        let b = Cf::from_weighted_point(&p, 1.0 - 1e-12);
        a.subtract(&b);
        assert!(a.is_empty());
        assert_eq!(a.mean(), &[0.0, 0.0]);
        assert_eq!(a.sse(), 0.0);
    }

    #[test]
    fn subtract_guard_tolerance_is_relative() {
        let p = Point::xy(1.0, 1.0);
        let mut a = Cf::from_weighted_point(&p, 1e12);
        let b = Cf::from_weighted_point(&p, 1e12 + 1.0);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot subtract")]
    fn subtract_guard_still_rejects_real_oversubtraction_at_scale() {
        let p = Point::xy(1.0, 1.0);
        let mut a = Cf::from_weighted_point(&p, 1e12);
        let b = Cf::from_weighted_point(&p, 1.01e12);
        a.subtract(&b);
    }

    #[test]
    fn words_round_trip_bit_identically() {
        let mut cf = Cf::from_points(&pts(&[[1e8, 1e8 + 1e-3], [1e8 + 2e-3, 1e8]]));
        cf.add_weighted_point(&Point::xy(1e8 + 5e-4, 1e8), 2.5);
        let mut words = Vec::new();
        cf.to_words(&mut words);
        assert_eq!(words.len(), Cf::words_per_entry(2));
        let back = Cf::from_words(&words, 2);
        // PartialEq compares every field including carries and the memo.
        assert!(back == cf);
        assert_eq!(back.vec_stat_sq().to_bits(), cf.vec_stat_sq().to_bits());
        assert_eq!(back.sse().to_bits(), cf.sse().to_bits());
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_length() {
        let _ = Cf::from_words(&[0; 5], 2);
    }

    #[test]
    fn agrees_with_classic_backend_when_well_conditioned() {
        // On well-conditioned data the two backends must tell the same
        // story to near round-off: same N, same centroid, and radius/
        // diameter within 1e-12 relative.
        use crate::cf::classic;
        let raw = [
            [0.5, 1.5],
            [2.0, -3.0],
            [4.25, 0.125],
            [-1.0, 2.5],
            [3.0, 3.0],
        ];
        let points = pts(&raw);
        let s = Cf::from_points(&points);
        let c = classic::Cf::from_points(&points);
        assert_eq!(s.n(), c.n());
        for (x, y) in s.centroid().iter().zip(c.centroid().iter()) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()));
        }
        assert!((s.radius() - c.radius()).abs() <= 1e-12 * (1.0 + c.radius()));
        assert!((s.diameter() - c.diameter()).abs() <= 1e-12 * (1.0 + c.diameter()));
        assert!((s.sq_deviation() - c.sq_deviation()).abs() <= 1e-12 * (1.0 + c.sq_deviation()));
    }
}
