//! The classic CF backend: the paper's `(N, LS, SS)` triple.
//!
//! **Definition 4.1**: for a cluster of `N` `d`-dimensional points `{Xᵢ}`,
//! `CF = (N, LS, SS)` where `LS = Σ Xᵢ` is the linear sum and `SS = Σ Xᵢ·Xᵢ`
//! is the (scalar) square sum.
//!
//! **CF Additivity Theorem (4.1)**: merging two disjoint clusters adds their
//! CFs component-wise: `CF₁ + CF₂ = (N₁+N₂, LS₁+LS₂, SS₁+SS₂)`. This is what
//! lets BIRCH cluster incrementally: all the statistics in §3 — centroid
//! `X0` (eq. 1), radius `R` (eq. 2), diameter `D` (eq. 3) — and all the
//! inter-cluster distances `D0…D4` (eqs. 4–8) are computable from CFs alone,
//! *exactly* in real arithmetic, without storing the points. In f64 the
//! derived statistics suffer catastrophic cancellation at large coordinate
//! offsets — see the [module docs](crate::cf) and the [`stable`](crate::cf::stable)
//! backend for the failure mode and the fix.
//!
//! Weights: the paper allows a weighted clustering function (§1) and the
//! image application (§6.8) duplicates/weights pixels. We support a real
//! weight per point: a point `x` with weight `w` contributes `(w, w·x,
//! w·x·x)`. With all weights 1 this is exactly the paper's CF.

use crate::cf::N_DUST_REL;
use crate::point::{dot, Point};
use std::fmt;

/// A Clustering Feature: the exact sufficient statistics of a subcluster.
///
/// Alongside the paper's `(N, LS, SS)` triple, a derived statistic
/// `‖LS‖² = LS·LS` is memoized (BETULA-style cached derived statistics):
/// radius, diameter and the closed-form distances D3/D4 all need it, and
/// without the cache every tree-descent distance call re-derives it with a
/// full O(d) dot product. The cache is refreshed by *exact recomputation*
/// after every mutation of `LS` — the refresh costs the same O(d) as an
/// algebraic incremental update would, but keeps the cached value
/// bit-identical to a from-scratch `dot(ls, ls)` forever (zero drift by
/// construction; the auditor still measures it as a regression guard).
#[derive(Clone, PartialEq)]
pub struct Cf {
    /// Total (weighted) number of points, `N`.
    n: f64,
    /// Linear sum `LS = Σ wᵢ·Xᵢ`.
    ls: Box<[f64]>,
    /// Scalar square sum `SS = Σ wᵢ·Xᵢ·Xᵢ`.
    ss: f64,
    /// Memoized `‖LS‖² = dot(LS, LS)`, refreshed on every mutation of `ls`.
    ls_sq: f64,
}

impl Cf {
    /// An empty CF of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            n: 0.0,
            ls: vec![0.0; dim].into_boxed_slice(),
            ss: 0.0,
            ls_sq: 0.0,
        }
    }

    /// The CF of a single unweighted point.
    #[must_use]
    pub fn from_point(p: &Point) -> Self {
        Self::from_weighted_point(p, 1.0)
    }

    /// Heap bytes owned by this CF (the boxed `LS` slab); the struct
    /// itself is counted by whoever stores it. Feeds the memory gauge's
    /// accounting against budget M ([`crate::obs::mem`]).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.ls.len() * std::mem::size_of::<f64>()
    }

    /// The CF of a single point with weight `w > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not finite and positive.
    #[must_use]
    pub fn from_weighted_point(p: &Point, w: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        let ls: Vec<f64> = p.iter().map(|c| c * w).collect();
        let ls = ls.into_boxed_slice();
        let ls_sq = dot(&ls, &ls);
        Self {
            n: w,
            ls,
            ss: w * dot(p, p),
            ls_sq,
        }
    }

    /// The CF of a batch of unweighted points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions disagree.
    #[must_use]
    pub fn from_points<'a, I: IntoIterator<Item = &'a Point>>(points: I) -> Self {
        let mut it = points.into_iter();
        let first = it.next().expect("from_points needs at least one point");
        let mut cf = Self::from_point(first);
        for p in it {
            cf.add_point(p);
        }
        cf
    }

    /// Dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.ls.len()
    }

    /// Weighted point count `N`.
    #[must_use]
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Whether the CF summarizes no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0.0
    }

    /// Linear sum `LS`.
    #[must_use]
    pub fn ls(&self) -> &[f64] {
        &self.ls
    }

    /// Scalar square sum `SS`.
    #[must_use]
    pub fn ss(&self) -> f64 {
        self.ss
    }

    /// Memoized `‖LS‖² = dot(LS, LS)`.
    ///
    /// Bit-identical to recomputing `dot(self.ls(), self.ls())` from
    /// scratch: every mutation of `LS` refreshes the cache by exact
    /// recomputation, so callers may substitute this value anywhere the
    /// dot product appears without changing a single result bit.
    #[must_use]
    pub fn ls_sq(&self) -> f64 {
        self.ls_sq
    }

    /// Backend-agnostic vector statistic: the linear sum `LS` for this
    /// backend (the mean `μ` for [`stable`](crate::cf::stable)). Generic
    /// code (blocks, audits, canonical orderings) uses this instead of the
    /// representation-specific accessor.
    #[must_use]
    pub fn vec_stat(&self) -> &[f64] {
        &self.ls
    }

    /// Backend-agnostic scalar statistic: the square sum `SS` for this
    /// backend (the deviation sum `SSE` for [`stable`](crate::cf::stable)).
    #[must_use]
    pub fn scalar_stat(&self) -> f64 {
        self.ss
    }

    /// Backend-agnostic memoized `‖vec_stat‖²`: `‖LS‖²` here, `‖μ‖²` for
    /// the stable backend. Bit-identical to `dot(vec_stat, vec_stat)` by
    /// the exact-recomputation contract (see [`Cf::ls_sq`]).
    #[must_use]
    pub fn vec_stat_sq(&self) -> f64 {
        self.ls_sq
    }

    /// Test-only corruption of the memoized norm, giving the auditor's
    /// norm-cache check a deterministic failure to detect. Only the
    /// feature-selected backend's helper is reachable from the audit
    /// tests, so the other one is intentionally dead per build.
    #[cfg(test)]
    #[allow(dead_code)]
    pub(crate) fn corrupt_norm_memo_for_test(&mut self, delta: f64) {
        self.ls_sq += delta;
    }

    /// Reassigns this CF to a single unweighted point, reusing the `LS`
    /// buffer. Bitwise-equal to `*self = Cf::from_point(p)` without the
    /// per-point heap allocation — the insert hot path's scratch entry.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn assign_point(&mut self, p: &Point) {
        self.assign_weighted_point(p, 1.0);
    }

    /// Reassigns this CF to a single point with weight `w > 0`, reusing
    /// the `LS` buffer (see [`Cf::assign_point`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive weight.
    pub fn assign_weighted_point(&mut self, p: &Point, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        assert_eq!(
            p.dim(),
            self.dim(),
            "dimension mismatch: point {} vs CF {}",
            p.dim(),
            self.dim()
        );
        self.n = w;
        for (l, c) in self.ls.iter_mut().zip(p.iter()) {
            *l = c * w;
        }
        self.ss = w * dot(p, p);
        self.ls_sq = dot(&self.ls, &self.ls);
    }

    /// Adds one unweighted point (Additivity Theorem with a singleton).
    pub fn add_point(&mut self, p: &Point) {
        self.add_weighted_point(p, 1.0);
    }

    /// Adds one point with weight `w > 0`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive weight.
    pub fn add_weighted_point(&mut self, p: &Point, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weight must be positive, got {w}");
        assert_eq!(
            p.dim(),
            self.dim(),
            "dimension mismatch: point {} vs CF {}",
            p.dim(),
            self.dim()
        );
        self.n += w;
        for (l, c) in self.ls.iter_mut().zip(p.iter()) {
            *l += w * c;
        }
        self.ss += w * dot(p, p);
        self.ls_sq = dot(&self.ls, &self.ls);
    }

    /// Merges another CF into this one (the Additivity Theorem).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &Cf) {
        assert_eq!(
            other.dim(),
            self.dim(),
            "dimension mismatch: {} vs {}",
            other.dim(),
            self.dim()
        );
        self.n += other.n;
        for (l, o) in self.ls.iter_mut().zip(other.ls.iter()) {
            *l += o;
        }
        self.ss += other.ss;
        self.ls_sq = dot(&self.ls, &self.ls);
    }

    /// Returns the merge of two CFs without mutating either.
    #[must_use]
    pub fn merged(&self, other: &Cf) -> Cf {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Removes a previously merged CF (inverse of [`Cf::merge`]). Used when
    /// a tentative absorption is rolled back and by Phase-4 reassignment.
    ///
    /// The weight guard is *relative*: `other` may exceed `self` by up to
    /// `N_DUST_REL · self.n` of round-off (a fixed absolute slack would
    /// spuriously reject float dust at large `N` and wave through real
    /// oversubtraction at tiny `N`). Any residual weight at or below
    /// `N_DUST_REL` of the original is likewise dust — not only `n == 0`
    /// exactly — and snaps to the true empty CF, so no near-zero `N` with
    /// leftover `LS`/`SS` survives to feed divide-by-near-zero centroids.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `other` holds more weight than
    /// `self` (the subtraction would not describe a real cluster).
    pub fn subtract(&mut self, other: &Cf) {
        assert_eq!(
            other.dim(),
            self.dim(),
            "dimension mismatch: {} vs {}",
            other.dim(),
            self.dim()
        );
        assert!(
            other.n <= self.n * (1.0 + N_DUST_REL),
            "cannot subtract CF with larger N ({} > {})",
            other.n,
            self.n
        );
        let n_before = self.n;
        self.n -= other.n;
        for (l, o) in self.ls.iter_mut().zip(other.ls.iter()) {
            *l -= o;
        }
        self.ss = (self.ss - other.ss).max(0.0);
        if self.n <= N_DUST_REL * n_before {
            // Snap residual floating-point dust (including the tiny
            // negatives the relative guard admits) to the true empty CF.
            self.n = 0.0;
            self.ls.iter_mut().for_each(|l| *l = 0.0);
            self.ss = 0.0;
        }
        self.ls_sq = dot(&self.ls, &self.ls);
    }

    /// Number of 8-byte words [`Cf::to_words`] emits for dimensionality
    /// `dim`: `N`, `LS`, and `SS`. The `‖LS‖²` memo is recomputed exactly
    /// on decode, the same zero-drift contract every mutation obeys.
    #[must_use]
    pub fn words_per_entry(dim: usize) -> usize {
        dim + 2
    }

    /// Serializes the CF into `u64` words (f64 bit patterns), appending to
    /// `out`. Layout: `n, ls[0..d], ss`.
    pub fn to_words(&self, out: &mut Vec<u64>) {
        out.push(self.n.to_bits());
        out.extend(self.ls.iter().map(|l| l.to_bits()));
        out.push(self.ss.to_bits());
    }

    /// Rebuilds a CF from [`Cf::to_words`] output, bit-identical to the
    /// original (the memo is recomputed by the same exact `dot`).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != Cf::words_per_entry(dim)` or `dim == 0`.
    #[must_use]
    pub fn from_words(words: &[u64], dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert_eq!(
            words.len(),
            Self::words_per_entry(dim),
            "CF word count mismatch for dim {dim}"
        );
        let n = f64::from_bits(words[0]);
        let ls: Box<[f64]> = words[1..1 + dim]
            .iter()
            .map(|&w| f64::from_bits(w))
            .collect();
        let ss = f64::from_bits(words[1 + dim]);
        let ls_sq = dot(&ls, &ls);
        Self { n, ls, ss, ls_sq }
    }

    /// Centroid `X0 = LS / N` (paper eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    #[must_use]
    pub fn centroid(&self) -> Point {
        assert!(!self.is_empty(), "centroid of an empty CF is undefined");
        Point::new(self.ls.iter().map(|l| l / self.n).collect())
    }

    /// Sum of squared deviations from the centroid:
    /// `Σ wᵢ‖Xᵢ − X0‖² = SS − ‖LS‖²/N`. Clamped at 0 against floating-point
    /// cancellation. This is the quantity whose increase defines D4.
    #[must_use]
    pub fn sq_deviation(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.ss - self.ls_sq / self.n).max(0.0)
    }

    /// Radius `R = sqrt(Σ‖Xᵢ − X0‖² / N)` (paper eq. 2): average distance
    /// from member points to the centroid. Zero for empty/singleton CFs.
    #[must_use]
    pub fn radius(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.sq_deviation() / self.n).sqrt()
    }

    /// Diameter `D = sqrt(Σᵢⱼ‖Xᵢ−Xⱼ‖² / (N(N−1)))` (paper eq. 3): average
    /// pairwise distance within the cluster. In CF terms the double sum over
    /// ordered pairs is `2N·SS − 2‖LS‖²`. Zero when `N ≤ 1`.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        if self.n <= 1.0 {
            return 0.0;
        }
        let num = 2.0 * self.n * self.ss - 2.0 * self.ls_sq;
        (num.max(0.0) / (self.n * (self.n - 1.0))).sqrt()
    }
}

impl fmt::Debug for Cf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CF(N={:.1}, LS=[", self.n)?;
        for (i, l) in self.ls.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:.3}")?;
        }
        write!(f, "], SS={:.3})", self.ss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[[f64; 2]]) -> Vec<Point> {
        raw.iter().map(|&[x, y]| Point::xy(x, y)).collect()
    }

    #[test]
    fn single_point_cf() {
        let cf = Cf::from_point(&Point::xy(3.0, 4.0));
        assert_eq!(cf.n(), 1.0);
        assert_eq!(cf.ls(), &[3.0, 4.0]);
        assert_eq!(cf.ss(), 25.0);
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.centroid().coords(), &[3.0, 4.0]);
    }

    #[test]
    fn batch_matches_incremental() {
        let points = pts(&[[0.0, 0.0], [2.0, 0.0], [1.0, 3.0], [-1.0, 1.0]]);
        let batch = Cf::from_points(&points);
        let mut inc = Cf::empty(2);
        for p in &points {
            inc.add_point(p);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn additivity_theorem() {
        let a = pts(&[[0.0, 0.0], [1.0, 1.0]]);
        let b = pts(&[[4.0, 0.0], [5.0, 5.0], [6.0, 2.0]]);
        let cf_a = Cf::from_points(&a);
        let cf_b = Cf::from_points(&b);
        let merged = cf_a.merged(&cf_b);
        let all: Vec<Point> = a.iter().chain(&b).cloned().collect();
        let direct = Cf::from_points(&all);
        assert_eq!(merged, direct);
    }

    #[test]
    fn subtract_inverts_merge() {
        let a = Cf::from_points(&pts(&[[1.0, 2.0], [3.0, 4.0]]));
        let b = Cf::from_points(&pts(&[[10.0, 10.0]]));
        let mut m = a.merged(&b);
        m.subtract(&b);
        assert!((m.n() - a.n()).abs() < 1e-12);
        assert!((m.ss() - a.ss()).abs() < 1e-9);
        for (x, y) in m.ls().iter().zip(a.ls()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn centroid_of_square() {
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]]));
        assert_eq!(cf.centroid().coords(), &[1.0, 1.0]);
    }

    #[test]
    fn radius_of_unit_square_corners() {
        // Four corners of a 2x2 square centred at (1,1): every point is at
        // distance sqrt(2) from the centroid, so R = sqrt(2).
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]]));
        assert!((cf.radius() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_point_pair() {
        // Two points at distance 6: average pairwise distance = 6.
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [6.0, 0.0]]));
        assert!((cf.diameter() - 6.0).abs() < 1e-12);
        // And radius is half of it.
        assert!((cf.radius() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_hand_computed_triangle() {
        // Points (0,0), (2,0), (0,2): pairwise sq dists 4, 4, 8 -> mean over
        // N(N-1)=6 *ordered* pairs = (2*(4+4+8))/6 = 16/3.
        let cf = Cf::from_points(&pts(&[[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]]));
        assert!((cf.diameter() - (16.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_point_equals_repeated_point() {
        let p = Point::xy(2.0, -1.0);
        let mut w = Cf::empty(2);
        w.add_weighted_point(&p, 3.0);
        let mut r = Cf::empty(2);
        for _ in 0..3 {
            r.add_point(&p);
        }
        assert_eq!(w, r);
    }

    #[test]
    fn sq_deviation_never_negative_under_cancellation() {
        // Identical far-away points: SS - |LS|^2/N cancels to ~0 and may go
        // slightly negative in floating point; it must clamp.
        let p = Point::xy(1e8, 1e8);
        let mut cf = Cf::empty(2);
        for _ in 0..1000 {
            cf.add_point(&p);
        }
        assert!(cf.sq_deviation() >= 0.0);
        assert!(cf.radius() >= 0.0);
        assert!(cf.diameter() >= 0.0);
    }

    #[test]
    fn empty_cf_behaviour() {
        let cf = Cf::empty(3);
        assert!(cf.is_empty());
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.sq_deviation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "centroid of an empty CF")]
    fn empty_centroid_panics() {
        let _ = Cf::empty(2).centroid();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_dimension_mismatch_panics() {
        let mut a = Cf::empty(2);
        let b = Cf::empty(3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "cannot subtract")]
    fn oversubtraction_panics() {
        let mut a = Cf::from_point(&Point::xy(0.0, 0.0));
        let b = Cf::from_points(&pts(&[[0.0, 0.0], [1.0, 1.0]]));
        a.subtract(&b);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut cf = Cf::empty(2);
        cf.add_weighted_point(&Point::xy(0.0, 0.0), 0.0);
    }

    #[test]
    fn debug_format() {
        let cf = Cf::from_point(&Point::xy(1.0, 2.0));
        let s = format!("{cf:?}");
        assert!(s.starts_with("CF(N=1.0"));
    }

    #[test]
    fn words_round_trip_bit_identically() {
        let mut cf = Cf::from_points(&pts(&[[1.25, -3.5], [0.1, 0.2], [7.0, 9.0]]));
        cf.add_weighted_point(&Point::xy(-0.75, 2.5), 3.0);
        let mut words = Vec::new();
        cf.to_words(&mut words);
        assert_eq!(words.len(), Cf::words_per_entry(2));
        let back = Cf::from_words(&words, 2);
        assert!(back == cf);
        assert_eq!(back.ls_sq().to_bits(), cf.ls_sq().to_bits());
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_length() {
        let _ = Cf::from_words(&[0; 3], 2);
    }

    #[test]
    fn ls_sq_cache_is_bit_exact_across_mutations() {
        let mut cf = Cf::empty(2);
        assert_eq!(cf.ls_sq(), 0.0);
        cf.add_point(&Point::xy(1.5, -2.25));
        assert_eq!(cf.ls_sq().to_bits(), dot(cf.ls(), cf.ls()).to_bits());
        cf.add_weighted_point(&Point::xy(0.3, 0.7), 2.5);
        assert_eq!(cf.ls_sq().to_bits(), dot(cf.ls(), cf.ls()).to_bits());
        let other = Cf::from_points(&pts(&[[4.0, 1.0], [-2.0, 3.0]]));
        cf.merge(&other);
        assert_eq!(cf.ls_sq().to_bits(), dot(cf.ls(), cf.ls()).to_bits());
        cf.subtract(&other);
        assert_eq!(cf.ls_sq().to_bits(), dot(cf.ls(), cf.ls()).to_bits());
    }

    #[test]
    fn assign_point_matches_from_point_bitwise() {
        let p = Point::xy(3.25, -7.5);
        let mut scratch = Cf::from_point(&Point::xy(99.0, 99.0));
        scratch.assign_point(&p);
        let fresh = Cf::from_point(&p);
        assert!(scratch == fresh);
        assert_eq!(scratch.ls_sq().to_bits(), fresh.ls_sq().to_bits());

        scratch.assign_weighted_point(&p, 2.0);
        let fresh_w = Cf::from_weighted_point(&p, 2.0);
        assert!(scratch == fresh_w);
        assert_eq!(scratch.ls_sq().to_bits(), fresh_w.ls_sq().to_bits());
    }

    #[test]
    fn subtract_to_empty_resets_ls_sq() {
        let a = Cf::from_point(&Point::xy(5.0, 5.0));
        let mut m = a.clone();
        m.subtract(&a);
        assert!(m.is_empty());
        assert_eq!(m.ls_sq(), 0.0);
    }

    #[test]
    fn subtract_snaps_near_zero_residual() {
        // A residual weight of 1e-12 out of an original 1.0 is numerical
        // dust, not a real cluster: it must snap to the true empty CF
        // instead of surviving with leftover LS/SS and feeding
        // divide-by-near-zero centroids downstream.
        let p = Point::xy(1.0, 2.0);
        let mut a = Cf::from_weighted_point(&p, 1.0);
        let b = Cf::from_weighted_point(&p, 1.0 - 1e-12);
        a.subtract(&b);
        assert!(a.is_empty());
        assert_eq!(a.n(), 0.0);
        assert_eq!(a.ls(), &[0.0, 0.0]);
        assert_eq!(a.ss(), 0.0);
        assert_eq!(a.ls_sq(), 0.0);
    }

    #[test]
    fn subtract_guard_tolerance_is_relative() {
        // At N ~ 1e12, an excess of 1.0 is a relative error of 1e-12 —
        // ordinary float dust from a merge/subtract chain. The old absolute
        // `+ 1e-9` guard rejected it; the relative guard must subtract and
        // snap the (tiny negative) residual to empty.
        let p = Point::xy(1.0, 1.0);
        let mut a = Cf::from_weighted_point(&p, 1e12);
        let b = Cf::from_weighted_point(&p, 1e12 + 1.0);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot subtract")]
    fn subtract_guard_still_rejects_real_oversubtraction_at_scale() {
        // A 1% excess at N ~ 1e12 is far beyond round-off and must still
        // be rejected by the relative guard.
        let p = Point::xy(1.0, 1.0);
        let mut a = Cf::from_weighted_point(&p, 1e12);
        let b = Cf::from_weighted_point(&p, 1.01e12);
        a.subtract(&b);
    }
}
