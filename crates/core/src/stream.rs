//! Anytime/streaming clustering on top of Phase 1.
//!
//! BIRCH is "incremental … the clustering decisions are made without
//! scanning all data points" (§1), which makes it a natural stream
//! clusterer: keep feeding points, and at any moment run the global phase
//! over the current CF-tree's leaf entries to get a clustering of
//! everything seen so far — without storing a single raw point.
//!
//! [`StreamingBirch`] packages that: [`push`](StreamingBirch::push) points
//! forever, [`snapshot`](StreamingBirch::snapshot) whenever a clustering
//! is wanted, [`finish`](StreamingBirch::finish) to run the end-of-scan
//! outlier disposition and take the final model. (Phase 4 needs the raw
//! points, so streaming models carry no per-point labels — use
//! [`crate::BirchModel::predict`]-style nearest-centroid assignment on the
//! snapshot instead.)

use crate::birch::ClusterSummary;
use crate::cf::Cf;
use crate::config::BirchConfig;
use crate::obs::{EventSink, MetricsRecorder, NoopSink};
use crate::phase1::{Phase1Builder, Phase1Output};
use crate::phase3;
use crate::point::Point;

/// An incrementally fed BIRCH clusterer.
#[derive(Debug)]
pub struct StreamingBirch<S: EventSink = NoopSink> {
    builder: Phase1Builder<S>,
    config: BirchConfig,
    dim: usize,
}

impl StreamingBirch {
    /// Creates a streaming clusterer for `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `dim == 0`.
    #[must_use]
    pub fn new(config: BirchConfig, dim: usize) -> Self {
        Self::with_sink(config, dim, NoopSink)
    }
}

impl<S: EventSink> StreamingBirch<S> {
    /// Creates a streaming clusterer whose telemetry [`Event`]s stream
    /// into `sink` as points arrive — rebuilds, threshold raises, outlier
    /// traffic, all live. The internal [`MetricsRecorder`] aggregates
    /// either way; see [`StreamingBirch::metrics`].
    ///
    /// [`Event`]: crate::obs::Event
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `dim == 0`.
    #[must_use]
    pub fn with_sink(config: BirchConfig, dim: usize, sink: S) -> Self {
        let builder = Phase1Builder::with_sink(&config, dim, sink);
        Self {
            builder,
            config,
            dim,
        }
    }

    /// Live aggregated telemetry of the stream so far (counters, depth
    /// histogram, threshold trajectory) — handy for periodic one-line
    /// status reports via [`MetricsRecorder::one_line`].
    #[must_use]
    pub fn metrics(&self) -> &MetricsRecorder {
        self.builder.metrics()
    }

    /// Dimensionality of the stream.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Points pushed so far.
    #[must_use]
    pub fn points_seen(&self) -> u64 {
        self.builder.points_scanned()
    }

    /// Current number of leaf entries (the summary's resolution).
    #[must_use]
    pub fn summary_size(&self) -> usize {
        self.builder.tree().leaf_entry_count()
    }

    /// Pushes one point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push(&mut self, p: &Point) {
        self.builder.feed_point(p);
    }

    /// Pushes one weighted point (`w > 0`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive weight.
    pub fn push_weighted(&mut self, p: &Point, w: f64) {
        self.builder.feed_weighted_point(p, w);
    }

    /// Pushes a pre-aggregated subcluster (e.g. another tree's leaf
    /// entries — the CF Additivity Theorem makes this exact).
    ///
    /// # Panics
    ///
    /// Panics if `cf` is empty or of the wrong dimension.
    pub fn push_cf(&mut self, cf: Cf) {
        self.builder.feed(cf);
    }

    /// Merges another stream into this one — the streaming face of the
    /// sharded parallel build (see [`crate::parallel`]): feed `n` disjoint
    /// sub-streams on `n` threads, then fold them into one. Exact in the
    /// totals by the CF Additivity Theorem: the other stream's leaf
    /// entries are inserted as subclusters, and its still-parked potential
    /// outliers get re-judged against the combined tree instead of being
    /// discarded unilaterally.
    ///
    /// The receiving tree's threshold is raised to the donor's first (one
    /// rebuild) so donor entries cannot violate the leaf threshold
    /// invariant. Like [`push_cf`](StreamingBirch::push_cf),
    /// [`points_seen`](StreamingBirch::points_seen) counts each absorbed
    /// subcluster as one feed, not one per original point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn absorb<S2: EventSink>(&mut self, other: StreamingBirch<S2>) {
        assert_eq!(
            self.dim, other.dim,
            "cannot absorb a {}-d stream into a {}-d stream",
            other.dim, self.dim
        );
        let (out, carried) = other.builder.finish_keeping_outliers();
        self.builder.ensure_threshold(out.tree.threshold());
        for cf in out.tree.into_leaf_entries() {
            self.builder.feed(cf);
        }
        for cf in carried {
            self.builder.feed_outlier_candidate(cf);
        }
    }

    /// Clusters everything seen so far (Phase 3 over the live tree's leaf
    /// entries plus any delay-split-parked points) without disturbing the
    /// stream. Returns an empty vector before the first point. Takes
    /// `&mut self` because scanning the parked points counts disk reads.
    #[must_use]
    pub fn snapshot(&mut self) -> Vec<ClusterSummary> {
        let mut entries: Vec<Cf> = self.builder.tree().leaf_entries().cloned().collect();
        entries.extend(self.builder.parked_cfs());
        if entries.is_empty() {
            return Vec::new();
        }
        let p3 = phase3::global_cluster_with(
            entries,
            self.config.metric,
            self.config.clusters,
            self.config.global_method,
        );
        p3.clusters
            .into_iter()
            .map(ClusterSummary::from_cf)
            .collect()
    }

    /// Ends the stream: runs the end-of-scan outlier disposition and
    /// returns the final clusters plus the raw Phase-1 output (tree,
    /// counters, threshold history).
    #[must_use]
    pub fn finish(self) -> (Vec<ClusterSummary>, Phase1Output) {
        let out = self.builder.finish();
        let entries: Vec<Cf> = out.tree.leaf_entries().cloned().collect();
        let clusters = if entries.is_empty() {
            Vec::new()
        } else {
            phase3::global_cluster_with(
                entries,
                self.config.metric,
                self.config.clusters,
                self.config.global_method,
            )
            .clusters
            .into_iter()
            .map(ClusterSummary::from_cf)
            .collect()
        };
        (clusters, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_source_point(t: usize) -> Point {
        let s = (t % 3) as f64 * 30.0;
        Point::xy(s + (t as f64 * 0.61).sin(), s + (t as f64 * 0.37).cos())
    }

    #[test]
    fn snapshots_track_the_stream() {
        let mut s = StreamingBirch::new(BirchConfig::with_clusters(3).memory(8 * 1024), 2);
        assert!(s.snapshot().is_empty());
        for t in 0..600 {
            s.push(&three_source_point(t));
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 3);
        let total: f64 = snap.iter().map(ClusterSummary::weight).sum();
        assert_eq!(total, 600.0);
        // Stream continues after a snapshot.
        for t in 600..1200 {
            s.push(&three_source_point(t));
        }
        assert_eq!(s.points_seen(), 1200);
        let snap = s.snapshot();
        let total: f64 = snap.iter().map(ClusterSummary::weight).sum();
        assert_eq!(total, 1200.0);
    }

    #[test]
    fn memory_budget_enforced_across_stream() {
        let mut s = StreamingBirch::new(BirchConfig::with_clusters(3).memory(8 * 1024), 2);
        for t in 0..20_000 {
            s.push(&three_source_point(t * 7));
        }
        assert!(s.summary_size() > 0);
        let (clusters, out) = s.finish();
        assert_eq!(clusters.len(), 3);
        assert!(out.tree.node_count() <= 8);
        out.tree.check_invariants().unwrap();
    }

    #[test]
    fn weighted_and_cf_pushes() {
        let mut s = StreamingBirch::new(BirchConfig::with_clusters(1), 2);
        s.push_weighted(&Point::xy(1.0, 1.0), 5.0);
        s.push_cf(Cf::from_points(&[Point::xy(2.0, 2.0), Point::xy(3.0, 3.0)]));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].weight(), 7.0);
    }

    #[test]
    fn absorb_merges_substreams_exactly() {
        // Two disjoint sub-streams absorbed into one must summarize the
        // same 1200 points as a single stream (CF additivity).
        let cfg = BirchConfig::with_clusters(3).outliers(false);
        let mut a = StreamingBirch::new(cfg.clone(), 2);
        let mut b = StreamingBirch::new(cfg.clone(), 2);
        for t in 0..600 {
            a.push(&three_source_point(t));
        }
        for t in 600..1200 {
            b.push(&three_source_point(t));
        }
        a.absorb(b);
        let snap = a.snapshot();
        assert_eq!(snap.len(), 3);
        let total: f64 = snap.iter().map(ClusterSummary::weight).sum();
        assert!((total - 1200.0).abs() < 1e-9);
        let (_, out) = a.finish();
        out.tree.check_invariants().unwrap();
    }

    #[test]
    fn absorb_raises_threshold_to_donor() {
        // Donor under memory pressure ends with a high threshold; the
        // receiver must adopt at least that before taking its entries.
        let mut a = StreamingBirch::new(BirchConfig::with_clusters(3), 2);
        let mut b = StreamingBirch::new(BirchConfig::with_clusters(3).memory(8 * 1024), 2);
        a.push(&three_source_point(0));
        for t in 0..20_000 {
            b.push(&three_source_point(t * 7));
        }
        let donor_t = b.builder.tree().threshold();
        assert!(donor_t > 0.0, "donor never rebuilt; test is vacuous");
        a.absorb(b);
        let (_, out) = a.finish();
        assert!(
            out.tree.threshold() >= donor_t,
            "receiver T {} < donor T {donor_t}",
            out.tree.threshold()
        );
        out.tree.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot absorb")]
    fn absorb_dimension_mismatch_panics() {
        let mut a = StreamingBirch::new(BirchConfig::with_clusters(1), 2);
        let b = StreamingBirch::new(BirchConfig::with_clusters(1), 3);
        a.absorb(b);
    }

    #[test]
    fn finish_on_empty_stream() {
        let s = StreamingBirch::new(BirchConfig::with_clusters(2), 2);
        let (clusters, out) = s.finish();
        assert!(clusters.is_empty());
        assert_eq!(out.points_scanned, 0);
    }
}
