//! Phase 2 (optional): condense the CF-tree into a desirable range.
//!
//! Paper §5: *"we observed that the existing global or semi-global
//! clustering methods applied in Phase 3 have different input size ranges
//! within which they perform well … Phase 2 serves as a cushion … it scans
//! the leaf entries in the initial CF tree to rebuild a smaller CF tree,
//! while removing more outliers and grouping crowded subclusters into
//! larger ones."*
//!
//! Implementation: keep growing the threshold (continuing Phase 1's
//! estimator sequence, so the r–N regression history carries over) and
//! rebuilding until the leaf-entry count drops to the configured target.

use crate::obs::{Event, EventSink, NoopSink};
use crate::outlier::OutlierStore;
use crate::phase1::mean_entry_n;
use crate::rebuild::rebuild_observed;
use crate::threshold::ThresholdEstimator;
use crate::tree::CfTree;
use birch_pager::IoStats;

/// Hard cap mirroring Phase 1's: condensation must converge because the
/// threshold grows strictly each round.
const MAX_ROUNDS: u64 = 10_000;

/// Condenses `tree` until it has at most `max_entries` leaf entries.
///
/// Threshold growth uses the entry-count-targeted estimator (see
/// [`ThresholdEstimator::next_threshold_for_target`]); `outliers`
/// optionally continues spilling low-density entries; counters accumulate
/// into `io`.
///
/// # Panics
///
/// Panics if `max_entries < 2` or if condensation fails to converge (a
/// logic error, since the threshold grows strictly every round).
pub fn condense(
    tree: CfTree,
    max_entries: usize,
    estimator: &mut ThresholdEstimator,
    outliers: Option<&mut OutlierStore>,
    io: &mut IoStats,
) -> CfTree {
    condense_with_sink(tree, max_entries, estimator, outliers, io, &mut NoopSink)
}

/// Like [`condense`], but streaming every telemetry [`Event`] (threshold
/// raises, rebuilds, spills, page high-water marks) into `sink`. With
/// [`NoopSink`] this is exactly [`condense`].
///
/// # Panics
///
/// Same as [`condense`].
pub fn condense_with_sink<S: EventSink>(
    mut tree: CfTree,
    max_entries: usize,
    estimator: &mut ThresholdEstimator,
    mut outliers: Option<&mut OutlierStore>,
    io: &mut IoStats,
    sink: &mut S,
) -> CfTree {
    assert!(max_entries >= 2, "phase 2 target must be >= 2 entries");
    let mut rounds = 0u64;
    while tree.leaf_entry_count() > max_entries {
        assert!(
            rounds < MAX_ROUNDS,
            "phase 2 did not converge after {MAX_ROUNDS} rounds"
        );
        rounds += 1;
        let t_next = estimator.next_threshold_for_target(&tree, max_entries);
        sink.record(&Event::ThresholdRaised {
            old: tree.threshold(),
            new: t_next,
            points_seen: tree.total_cf().n() as u64,
        });
        sink.record(&Event::RebuildTriggered {
            old_threshold: tree.threshold(),
            new_threshold: t_next,
            leaf_entries: tree.leaf_entry_count(),
            pages: tree.node_count(),
        });
        let (new_tree, report) = rebuild_observed(&tree, t_next, outliers.as_deref_mut(), sink);
        io.rebuilds += 1;
        if report.peak_pages > io.peak_pages {
            io.peak_pages = report.peak_pages;
            sink.record(&Event::PagesHighWater {
                pages: report.peak_pages,
            });
        }
        io.splits += new_tree.stats().splits;
        io.merge_refinements += new_tree.stats().merge_refinements;
        tree = new_tree;

        if let Some(store) = outliers.as_deref_mut() {
            if !store.has_space() && !store.is_empty() {
                let mean = mean_entry_n(&tree);
                store.reabsorb_observed(&mut tree, mean, sink);
            }
        }
    }

    // Final absorption attempt for anything still parked: entries may fit
    // under the (much larger) condensed threshold now.
    if let Some(store) = outliers {
        if !store.is_empty() {
            let mean = mean_entry_n(&tree);
            store.reabsorb_observed(&mut tree, mean, sink);
        }
        io.outliers_discarded += store.finalize_observed(&mut tree, sink);
    }
    tree.strict_audit("condense");
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::Cf;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn scatter_tree(n: usize) -> CfTree {
        let mut t = CfTree::new(TreeParams::for_dim(2));
        for i in 0..n {
            let i = i as f64;
            t.insert_point(&Point::xy(
                (i * 0.618).rem_euclid(100.0),
                (i * 0.414).rem_euclid(100.0),
            ));
        }
        t
    }

    #[test]
    fn condense_hits_target() {
        let tree = scatter_tree(3000);
        assert!(tree.leaf_entry_count() > 200);
        let mut est = ThresholdEstimator::new(Some(3000));
        let mut io = IoStats::default();
        let condensed = condense(tree, 200, &mut est, None, &mut io);
        assert!(condensed.leaf_entry_count() <= 200);
        assert!(io.rebuilds >= 1);
        condensed.check_invariants().unwrap();
        assert!((condensed.total_cf().n() - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn already_small_tree_untouched() {
        let mut t = CfTree::new(TreeParams::for_dim(2));
        for i in 0..5 {
            t.insert_point(&Point::xy(f64::from(i) * 10.0, 0.0));
        }
        let mut est = ThresholdEstimator::new(None);
        let mut io = IoStats::default();
        let out = condense(t, 100, &mut est, None, &mut io);
        assert_eq!(out.leaf_entry_count(), 5);
        assert_eq!(io.rebuilds, 0);
    }

    #[test]
    fn condense_with_outlier_store_discards_thin_entries() {
        use crate::outlier::OutlierConfig;
        let mut t = CfTree::new(TreeParams {
            threshold: 0.5,
            ..TreeParams::for_dim(2)
        });
        // Dense blob of identical points + scattered singles.
        for _ in 0..500 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        for i in 0..100 {
            let i = f64::from(i);
            t.insert_point(&Point::xy(
                200.0 + (i * 37.0).rem_euclid(500.0),
                300.0 + (i * 53.0).rem_euclid(500.0),
            ));
        }
        let mut est = ThresholdEstimator::new(Some(600));
        let mut io = IoStats::default();
        let mut store = OutlierStore::new(64 * 1024, 32, OutlierConfig::default());
        let out = condense(t, 20, &mut est, Some(&mut store), &mut io);
        assert!(out.leaf_entry_count() <= 20);
        assert!(io.outliers_discarded > 0, "io={io:?}");
    }

    #[test]
    fn condense_tiny_target() {
        let tree = scatter_tree(500);
        let mut est = ThresholdEstimator::new(Some(500));
        let mut io = IoStats::default();
        let out = condense(tree, 2, &mut est, None, &mut io);
        assert!(out.leaf_entry_count() <= 2);
        let total: f64 = out.leaf_entries().map(Cf::n).sum();
        assert!((total - 500.0).abs() < 1e-6);
    }

    #[test]
    fn condensed_tree_respects_smaller_page_budget() {
        // Condensing to fewer entries must also shrink the page count:
        // rebuilds never add nodes (Reducibility), so the output's node
        // count is bounded by the input's and consistent with its own
        // entry count.
        let tree = scatter_tree(2000);
        let pages_before = tree.node_count();
        let entries_before = tree.leaf_entry_count();
        let mut est = ThresholdEstimator::new(Some(2000));
        let mut io = IoStats::default();
        let out = condense(tree, 64, &mut est, None, &mut io);
        assert!(out.leaf_entry_count() <= 64);
        assert!(
            out.node_count() <= pages_before,
            "condense grew the tree: {} -> {} pages",
            pages_before,
            out.node_count()
        );
        assert!(out.leaf_entry_count() < entries_before);
        out.check_invariants().unwrap();
    }

    #[test]
    fn condense_conserves_total_cf_exactly_in_n() {
        // Without an outlier store nothing may be dropped: N is conserved
        // to within float tolerance, and LS/SS within relative tolerance.
        let tree = scatter_tree(1500);
        let before = tree.total_cf().clone();
        let mut est = ThresholdEstimator::new(Some(1500));
        let mut io = IoStats::default();
        let out = condense(tree, 50, &mut est, None, &mut io);
        let after = out.total_cf();
        assert!((before.n() - after.n()).abs() < 1e-9);
        for (x, y) in before.vec_stat().iter().zip(after.vec_stat()) {
            assert!((x - y).abs() <= 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
        }
        assert!(
            (before.scalar_stat() - after.scalar_stat()).abs()
                <= 1e-6 * (1.0 + before.scalar_stat().abs())
        );
    }

    #[test]
    fn condense_output_passes_full_audit() {
        let tree = scatter_tree(1200);
        let mut est = ThresholdEstimator::new(Some(1200));
        let mut io = IoStats::default();
        let out = condense(tree, 100, &mut est, None, &mut io);
        let report = crate::audit::audit(&out).unwrap();
        assert_eq!(report.leaf_entries, out.leaf_entry_count());
        assert!(report.root_drift.max() <= 1e-6);
    }

    #[test]
    fn condense_with_store_conserves_n_across_tree_plus_disk() {
        use crate::outlier::{OutlierConfig, OutlierStore};
        let mut t = CfTree::new(TreeParams {
            threshold: 0.5,
            ..TreeParams::for_dim(2)
        });
        for _ in 0..400 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        for i in 0..50 {
            let i = f64::from(i);
            t.insert_point(&Point::xy(
                200.0 + (i * 37.0).rem_euclid(500.0),
                300.0 + (i * 53.0).rem_euclid(500.0),
            ));
        }
        let mut est = ThresholdEstimator::new(Some(450));
        let mut io = IoStats::default();
        // Fold-back-at-end configuration: condense finalizes the store by
        // re-inserting every still-parked entry, so the output tree must
        // hold every point — conservation is exact, not approximate.
        let cfg = OutlierConfig {
            discard_at_end: false,
            ..OutlierConfig::default()
        };
        let mut store = OutlierStore::new(64 * 1024, 32, cfg);
        let out = condense(t, 10, &mut est, Some(&mut store), &mut io);
        assert_eq!(io.outliers_discarded, 0);
        assert!(store.is_empty());
        assert!(
            (out.total_cf().n() - 450.0).abs() < 1e-6,
            "tree holds {} of 450 points",
            out.total_cf().n()
        );
        out.check_invariants().unwrap();
    }
}
