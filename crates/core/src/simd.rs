//! Explicit-width lane kernels for the batched [`CfBlock`] distance
//! scans — the stable backend's deviation-form metrics streamed through
//! `f64x4` lanes.
//!
//! The scalar kernels in [`crate::distance`] evaluate the §3 metrics one
//! coordinate at a time in serial order. That order is a feature (it is
//! the bit-exactness contract every historical pin rests on) but it also
//! serializes the additions: at dim 32 the compiler cannot reorder
//! `s += d·d` into independent chains without `-ffast-math`-style
//! licenses it does not have. This module grants that license explicitly
//! and in a controlled way:
//!
//! * **Lane type** — [`lane::F64x4`] is four `f64` lanes as a plain
//!   `[f64; 4]` with `#[inline(always)]` element-wise arithmetic. The
//!   fixed width and independent lanes give LLVM a straight-line shape
//!   it vectorizes to the target's native vectors (SSE2 is in the
//!   `x86_64` baseline; wider units are used when the build enables
//!   them). Raw `core::arch` intrinsics are deliberately *not* used:
//!   rustc requires every caller of a `#[target_feature]` intrinsic to
//!   carry the attribute itself — build-level feature enablement does
//!   not lift the obligation — which is incompatible with this crate's
//!   `#![forbid(unsafe_code)]` and with `std::ops` trait impls. The
//!   value-semantics lane type compiles to the same instructions with
//!   no `unsafe` anywhere.
//!
//! * **Deviation sweep** — every metric needs either `Σ Δμᵢ²` or
//!   `Σ |Δμᵢ|` over the compensated centroid difference
//!   `Δμᵢ = (μ_aᵢ − μ_bᵢ) + (c_aᵢ − c_bᵢ)`. [`deviation`] computes both
//!   through one const-generic accumulator. Row-vs-row sweeps run over
//!   the block's stride-padded slabs ([`CfBlock::stride`]) so the lane
//!   loop has no scalar tail (zero padding contributes exactly `0`);
//!   probe-vs-row sweeps take the probe's unpadded `dim` slices and
//!   finish the remainder serially.
//!
//! * **Small-dim specializations** — dims 1–4 dispatch to fully-unrolled
//!   serial-order loops (`dev_serial`) that live entirely in registers.
//!   They preserve the scalar accumulation order, so lane results at
//!   dim ≤ 4 are **bit-identical** to the scalar oracle — the low-dim
//!   regime can never regress into different arithmetic, and every
//!   dim-2 historical pin keeps holding through the lane path.
//!
//! * **Tolerance contract** — above dim 4 the lane reduction reorders
//!   the sums (four partial sums + one horizontal fold), so results may
//!   differ from the scalar oracle in the last ulps. The bound is
//!   [`crate::distance::SIMD_TOLERANCE_REL`]; the differential tests
//!   below and the tree auditor ([`crate::audit`]) both enforce it.
//!
//! The module is compiled only on stable+`simd` builds (`classic-cf`
//! keeps scalar kernels: its closed forms need `LS·LS` cross terms and
//! its guarantee is bit-exact seed-era arithmetic, which lane math would
//! void). The production entry points in `distance.rs` route here.

use crate::cf::Cf;
use crate::distance::{CfBlock, DistanceMetric};

/// The portable explicit-width lane type: a plain array with
/// `#[inline(always)]` lane arithmetic that LLVM vectorizes to the
/// target's native vector unit (see the module docs for why raw
/// intrinsics are not an option under `#![forbid(unsafe_code)]`).
mod lane {
    /// Four `f64` lanes as an array.
    #[derive(Clone, Copy)]
    pub struct F64x4([f64; 4]);

    impl F64x4 {
        /// All lanes zero.
        #[inline(always)]
        pub fn zero() -> Self {
            Self([0.0; 4])
        }

        /// Lanes from a 4-element chunk (as yielded by `chunks_exact(4)`;
        /// the length conversion folds away, leaving an unchecked
        /// 4-wide load).
        #[inline(always)]
        pub fn from_chunk(c: &[f64]) -> Self {
            let a: [f64; 4] = c.try_into().expect("lane chunk of width 4");
            Self(a)
        }

        /// Lane-wise `|x|`.
        #[inline(always)]
        pub fn abs(self) -> Self {
            let v = self.0;
            Self([v[0].abs(), v[1].abs(), v[2].abs(), v[3].abs()])
        }

        /// Horizontal sum `(l0 + l2) + (l1 + l3)` — the one place lane
        /// order folds back to a scalar; fixed as part of the kernel's
        /// reproducibility story (same fold on every target).
        #[inline(always)]
        pub fn hsum(self) -> f64 {
            let v = self.0;
            (v[0] + v[2]) + (v[1] + v[3])
        }
    }

    impl std::ops::Add for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            let (a, b) = (self.0, o.0);
            Self([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
        }
    }

    impl std::ops::Sub for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            let (a, b) = (self.0, o.0);
            Self([a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]])
        }
    }

    impl std::ops::Mul for F64x4 {
        type Output = Self;
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            let (a, b) = (self.0, o.0);
            Self([a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]])
        }
    }
}

use lane::F64x4;

/// Fully-unrolled serial-order deviation sum over the first `D`
/// coordinates: bit-identical to the scalar kernel's
/// `for i { s += …(Δμᵢ) }` loop because it *is* that loop, with the trip
/// count known at compile time so it lives in registers.
#[inline(always)]
fn dev_serial<const ABS: bool, const D: usize>(
    av: &[f64],
    ac: &[f64],
    bv: &[f64],
    bc: &[f64],
) -> f64 {
    // One up-front length check per operand; the indexed loads below are
    // then provably in bounds and check-free.
    let (av, ac) = (&av[..D], &ac[..D]);
    let (bv, bc) = (&bv[..D], &bc[..D]);
    let mut s = 0.0;
    for i in 0..D {
        let d = (av[i] - bv[i]) + (ac[i] - bc[i]);
        s += if ABS { d.abs() } else { d * d };
    }
    s
}

/// Lane-parallel deviation sum: full `f64x4` chunks accumulated in four
/// partial sums, horizontally folded, then any scalar remainder added in
/// serial order. Reorders the serial sum — covered by the
/// [`crate::distance::SIMD_TOLERANCE_REL`] contract.
///
/// The sweep length is the *shortest* operand (a probe passes unpadded
/// `dim` slices against a row's padded stride, and padding past `dim` is
/// all zeros, so the short interpretation loses nothing). The heads are
/// narrowed to the full-chunk prefix up front so the `k + 4 <= full`
/// guard proves every 4-wide load in bounds — LLVM drops the per-element
/// checks and emits straight vector loads, where a naive `s[i + k]` form
/// keeps checks that serialize the whole loop.
#[inline]
fn dev_lanes<const ABS: bool>(av: &[f64], ac: &[f64], bv: &[f64], bc: &[f64]) -> f64 {
    let len = av.len().min(ac.len()).min(bv.len()).min(bc.len());
    let full = len & !3;
    let (avh, ach) = (&av[..full], &ac[..full]);
    let (bvh, bch) = (&bv[..full], &bc[..full]);
    let mut acc = F64x4::zero();
    let mut k = 0;
    while k + 4 <= full {
        let d = (F64x4::from_chunk(&avh[k..k + 4]) - F64x4::from_chunk(&bvh[k..k + 4]))
            + (F64x4::from_chunk(&ach[k..k + 4]) - F64x4::from_chunk(&bch[k..k + 4]));
        acc = if ABS { acc + d.abs() } else { acc + d * d };
        k += 4;
    }
    let mut s = acc.hsum();
    while k < len {
        let d = (av[k] - bv[k]) + (ac[k] - bc[k]);
        s += if ABS { d.abs() } else { d * d };
        k += 1;
    }
    s
}

/// Deviation sum (`Σ Δμᵢ²`, or `Σ |Δμᵢ|` when `ABS`) over `dim` live
/// coordinates, dispatching dims 1–4 to the bit-identical serial
/// specializations and everything larger to the lane sweep. The slices
/// may be longer than `dim` (stride padding); only `dim` coordinates are
/// read on the serial path, while the lane path reads whatever length
/// the *shortest* interpretation allows — callers pass either exactly
/// `dim` (probe rows) or the zero-padded stride (block rows), and zero
/// padding contributes exactly `0` to either sum.
#[inline(always)]
fn deviation<const ABS: bool>(dim: usize, av: &[f64], ac: &[f64], bv: &[f64], bc: &[f64]) -> f64 {
    match dim {
        0 => 0.0,
        1 => dev_serial::<ABS, 1>(av, ac, bv, bc),
        2 => dev_serial::<ABS, 2>(av, ac, bv, bc),
        3 => dev_serial::<ABS, 3>(av, ac, bv, bc),
        4 => dev_serial::<ABS, 4>(av, ac, bv, bc),
        _ => dev_lanes::<ABS>(av, ac, bv, bc),
    }
}

/// A borrowed stable-backend operand for the lane kernels: the scalar
/// stats plus the (possibly stride-padded) mean and carry slices.
#[derive(Clone, Copy)]
struct Operand<'a> {
    n: f64,
    sse: f64,
    vec: &'a [f64],
    vec_c: &'a [f64],
}

impl<'a> Operand<'a> {
    #[inline(always)]
    fn probe(cf: &'a Cf) -> Self {
        Operand {
            n: cf.n(),
            sse: cf.scalar_stat(),
            vec: cf.mean(),
            vec_c: cf.mean_carry(),
        }
    }
}

/// A block's four slabs borrowed *once* per scan, so the row loops slice
/// off resident base pointers instead of re-deriving every accessor per
/// row (which the measured kernels showed costs more than the arithmetic
/// at low dims).
#[derive(Clone, Copy)]
struct Rows<'a> {
    stride: usize,
    n: &'a [f64],
    sse: &'a [f64],
    vec: &'a [f64],
    vec_c: &'a [f64],
}

impl<'a> Rows<'a> {
    #[inline(always)]
    fn of(block: &'a CfBlock) -> Self {
        Rows {
            stride: block.stride(),
            n: block.n_slab(),
            sse: block.scalar_slab(),
            vec: block.vec_slab(),
            vec_c: block.vec_c_slab(),
        }
    }

    /// Row `i` as full padded stride slices (tail-free lane sweep).
    #[inline(always)]
    fn row(&self, i: usize) -> Operand<'a> {
        let s = self.stride;
        Operand {
            n: self.n[i],
            sse: self.sse[i],
            vec: &self.vec[i * s..(i + 1) * s],
            vec_c: &self.vec_c[i * s..(i + 1) * s],
        }
    }
}

/// The lane twin of `stable_distance`: identical metric epilogues over
/// lane-accumulated deviation sums. Shares the empty-operand contract
/// (debug-assert, `+∞` in release).
#[inline]
fn lane_distance(metric: DistanceMetric, dim: usize, a: &Operand<'_>, b: &Operand<'_>) -> f64 {
    if a.n <= 0.0 || b.n <= 0.0 {
        debug_assert!(false, "distance with an empty CF operand");
        return f64::INFINITY;
    }
    match metric {
        DistanceMetric::D0 => deviation::<false>(dim, a.vec, a.vec_c, b.vec, b.vec_c).sqrt(),
        DistanceMetric::D1 => deviation::<true>(dim, a.vec, a.vec_c, b.vec, b.vec_c),
        DistanceMetric::D2 => {
            let dmu_sq = deviation::<false>(dim, a.vec, a.vec_c, b.vec, b.vec_c);
            (a.sse / a.n + b.sse / b.n + dmu_sq).max(0.0).sqrt()
        }
        DistanceMetric::D3 => {
            let n = a.n + b.n;
            if n <= 1.0 {
                return 0.0; // fractional weights: merged "cluster" of ≤ one point
            }
            let dmu_sq = deviation::<false>(dim, a.vec, a.vec_c, b.vec, b.vec_c);
            let sse_m = a.sse + b.sse + (a.n * b.n / n) * dmu_sq;
            (2.0 * sse_m / (n - 1.0)).max(0.0).sqrt()
        }
        DistanceMetric::D4 => {
            let n = a.n + b.n;
            let dmu_sq = deviation::<false>(dim, a.vec, a.vec_c, b.vec, b.vec_c);
            ((a.n * b.n / n) * dmu_sq).max(0.0).sqrt()
        }
    }
}

/// Lane form of [`crate::distance::distance_to_row`] (probe vs block
/// row). Bit-identical to the scalar kernel at dim ≤ 4, within the
/// tolerance contract above.
#[inline]
pub(crate) fn distance_to_row(metric: DistanceMetric, ent: &Cf, block: &CfBlock, i: usize) -> f64 {
    lane_distance(
        metric,
        block.dim(),
        &Operand::probe(ent),
        &Rows::of(block).row(i),
    )
}

/// Lane form of [`crate::distance::pair_in_block`]: both rows as padded
/// stride slices, so the sweep is tail-free.
#[inline]
pub(crate) fn pair_in_block(metric: DistanceMetric, block: &CfBlock, i: usize, j: usize) -> f64 {
    let rows = Rows::of(block);
    lane_distance(metric, block.dim(), &rows.row(i), &rows.row(j))
}

/// Lane form of the first-minimum closest-row scan. Identical tie-break
/// (strict `<`, earliest row wins) to the scalar form.
#[inline]
pub(crate) fn closest_among(
    metric: DistanceMetric,
    ent: &Cf,
    block: &CfBlock,
) -> Option<(usize, f64)> {
    let _sp = crate::obs::span::enter("simd_kernel");
    let probe = Operand::probe(ent);
    let dim = block.dim();
    let rows = Rows::of(block);
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    for i in 0..block.len() {
        let d = lane_distance(metric, dim, &probe, &rows.row(i));
        if d < best_d {
            best_d = d;
            best = Some((i, d));
        }
    }
    best
}

/// Lane form of the first-minimum closest-pair scan.
#[inline]
pub(crate) fn closest_pair(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    let _sp = crate::obs::span::enter("simd_kernel");
    let dim = block.dim();
    let rows = Rows::of(block);
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..block.len() {
        let a = rows.row(i);
        for j in (i + 1)..block.len() {
            let d = lane_distance(metric, dim, &a, &rows.row(j));
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((i, j, d));
            }
        }
    }
    best
}

/// Lane form of the first-maximum farthest-pair scan.
#[inline]
pub(crate) fn farthest_pair(
    metric: DistanceMetric,
    block: &CfBlock,
) -> Option<(usize, usize, f64)> {
    if block.len() < 2 {
        return None;
    }
    let _sp = crate::obs::span::enter("simd_kernel");
    let dim = block.dim();
    let rows = Rows::of(block);
    let (mut far, mut far_d) = ((0, 1), f64::NEG_INFINITY);
    for i in 0..block.len() {
        let a = rows.row(i);
        for j in (i + 1)..block.len() {
            let d = lane_distance(metric, dim, &a, &rows.row(j));
            if d > far_d {
                far = (i, j);
                far_d = d;
            }
        }
    }
    Some((far.0, far.1, far_d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{
        closest_among_scalar, closest_pair_scalar, distance_to_row as scalar_row,
        farthest_pair_scalar, pair_in_block_scalar, SIMD_TOLERANCE_REL,
    };
    use crate::point::Point;

    /// Deterministic xorshift point clouds at any dimension.
    fn fixture(dim: usize, rows: usize) -> Vec<Cf> {
        let mut s = 0x5EED_u64 ^ (dim as u64) << 8;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 40.0 - 20.0
        };
        (0..rows)
            .map(|r| {
                let pts: Vec<Point> = (0..(r % 4) + 1)
                    .map(|_| Point::new((0..dim).map(|_| next()).collect()))
                    .collect();
                Cf::from_points(&pts)
            })
            .collect()
    }

    fn assert_within_contract(m: DistanceMetric, lane: f64, scalar: f64, ctx: &str) {
        let tol = SIMD_TOLERANCE_REL * scalar.abs().max(1.0);
        assert!(
            (lane - scalar).abs() <= tol,
            "{m} {ctx}: lane {lane} vs scalar {scalar} exceeds tolerance"
        );
    }

    #[test]
    fn small_dims_are_bit_identical_to_scalar() {
        for dim in [1usize, 2, 3, 4] {
            let cfs = fixture(dim, 8);
            let block = CfBlock::from_cfs(&cfs);
            let probe = &cfs[0];
            for m in DistanceMetric::ALL {
                for i in 0..cfs.len() {
                    let lane = distance_to_row(m, probe, &block, i);
                    let scalar = scalar_row(m, probe, &block, i);
                    assert_eq!(lane.to_bits(), scalar.to_bits(), "{m} dim {dim} row {i}");
                    for j in (i + 1)..cfs.len() {
                        let lane = pair_in_block(m, &block, i, j);
                        let scalar = pair_in_block_scalar(m, &block, i, j);
                        assert_eq!(
                            lane.to_bits(),
                            scalar.to_bits(),
                            "{m} dim {dim} pair {i},{j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn large_dims_stay_within_tolerance_contract() {
        // Dims straddling the lane boundaries: 5 (one chunk + tail),
        // 8 (two clean chunks), 32, 33 (eight chunks + tail).
        for dim in [5usize, 8, 32, 33] {
            let cfs = fixture(dim, 6);
            let block = CfBlock::from_cfs(&cfs);
            let probe = &cfs[0];
            for m in DistanceMetric::ALL {
                for i in 0..cfs.len() {
                    assert_within_contract(
                        m,
                        distance_to_row(m, probe, &block, i),
                        scalar_row(m, probe, &block, i),
                        &format!("dim {dim} row {i}"),
                    );
                    for j in (i + 1)..cfs.len() {
                        assert_within_contract(
                            m,
                            pair_in_block(m, &block, i, j),
                            pair_in_block_scalar(m, &block, i, j),
                            &format!("dim {dim} pair {i},{j}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scans_agree_with_scalar_oracles() {
        // Winners must match the scalar scans at every dim: distances
        // agree within 1e-12 relative while the fixtures keep every
        // inter-row gap far wider, so no ordering can flip.
        for dim in [2usize, 3, 5, 8, 33] {
            let cfs = fixture(dim, 10);
            let block = CfBlock::from_cfs(&cfs);
            let probe = &cfs[3];
            for m in DistanceMetric::ALL {
                let lane = closest_among(m, probe, &block);
                let scalar = closest_among_scalar(m, probe, &block);
                assert_eq!(
                    lane.map(|(i, _)| i),
                    scalar.map(|(i, _)| i),
                    "{m} dim {dim} closest_among winner"
                );
                let (lp, sp) = (closest_pair(m, &block), closest_pair_scalar(m, &block));
                assert_eq!(
                    lp.map(|(i, j, _)| (i, j)),
                    sp.map(|(i, j, _)| (i, j)),
                    "{m} dim {dim} closest_pair"
                );
                let (lf, sf) = (farthest_pair(m, &block), farthest_pair_scalar(m, &block));
                assert_eq!(
                    lf.map(|(i, j, _)| (i, j)),
                    sf.map(|(i, j, _)| (i, j)),
                    "{m} dim {dim} farthest_pair"
                );
            }
        }
    }

    #[test]
    fn padded_rows_contribute_zero() {
        // A block at dim 5 pads each row to stride 8; mutate the block
        // through its public API (set/insert/remove) and verify the lane
        // distances still match the scalar oracle — stale padding would
        // show up as a tolerance violation here.
        let cfs = fixture(5, 6);
        let mut block = CfBlock::from_cfs(&cfs[..4]);
        block.set(1, &cfs[4]);
        block.insert(2, &cfs[5]);
        block.remove(0);
        assert_eq!(block.stride(), 8);
        for m in DistanceMetric::ALL {
            for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    assert_within_contract(
                        m,
                        pair_in_block(m, &block, i, j),
                        pair_in_block_scalar(m, &block, i, j),
                        &format!("mutated pair {i},{j}"),
                    );
                }
            }
        }
    }

    #[test]
    fn empty_block_scans_return_none() {
        let block = CfBlock::new();
        let probe = fixture(3, 1).pop().unwrap();
        assert!(closest_among(DistanceMetric::D2, &probe, &block).is_none());
        assert!(closest_pair(DistanceMetric::D2, &block).is_none());
        assert!(farthest_pair(DistanceMetric::D2, &block).is_none());
    }
}
