//! Parallel sharded Phase 1: multi-threaded CF-tree construction with an
//! additivity-based merge (paper §7, "opportunities for parallelism").
//!
//! The CF Additivity Theorem (§4.1) makes data-parallel construction
//! *exact*: for disjoint shards `A` and `B`, `CF(A ∪ B) = CF(A) + CF(B)`,
//! so a CF-tree built per shard and then merged leaf-by-leaf summarizes
//! precisely the same data as one sequential scan. The plan:
//!
//! 1. **Shard** — the point stream is split into `n` contiguous chunks,
//!    one per worker thread (`std::thread::scope`; no runtime deps).
//! 2. **Build** — each worker runs the existing [`Phase1Builder`] over
//!    its shard with the shared starting threshold `T0`, its own outlier
//!    disk, and the full page budget `M` (a shard of a randomized stream
//!    spans the same cluster structure as the whole dataset, so an `M/n`
//!    share would push shard thresholds far past the serial run's and
//!    permanently coarsen the result; the transient `n × M` aggregate is
//!    reported honestly — see `peak_pages` below). Workers raise their
//!    thresholds independently via the §5.1.2 heuristics.
//! 3. **Merge** — a pairwise *tournament reduction*: while more than two
//!    shard trees remain, adjacent trees are merged two at a time, each
//!    pair on its own scoped thread (additivity makes every bracket
//!    exact, so the tournament computes the same total CF as a serial
//!    left fold, but the reduction depth is ⌈log₂ n⌉ rounds instead of an
//!    `n`-long serial tail). Each pair merge starts at the *maximum* of
//!    its two input thresholds (so every incoming entry satisfies the
//!    leaf-threshold invariant); the final ≤2-tree merge runs on the
//!    coordinator with the live event sink and, if it overflows the page
//!    budget, the ordinary rebuild machinery raises `T` further. Shard
//!    outliers are **not** discarded by the shards — an entry that looks
//!    sparse inside one shard may be dense in the union — and are *not*
//!    re-judged mid-bracket either (a half-merged tree is no better a
//!    judge than a shard): they accumulate through the rounds and get
//!    exactly one re-absorption pass against the final full tree before
//!    the usual end-of-scan disposition.
//!
//! Exactness invariant: with outlier handling off (nothing discarded),
//! the final tree's total CF equals the dataset's total CF *exactly* in
//! `N` and to float round-off in `LS`/`SS`, for every shard count — the
//! property tests pin this down. What *can* differ from the serial scan
//! is the partition of that total into leaf entries: shards see less
//! data, so their thresholds may settle differently than one scan's, and
//! merge-time threshold raises coarsen further (see DESIGN.md).
//!
//! Telemetry: each worker carries its own [`MetricsRecorder`]; the
//! per-shard wall time, rebuild count, and threshold trajectory are
//! surfaced as [`ShardReport`]s so `--metrics-json` exposes shard skew,
//! while the aggregated counters fold into one [`MetricsReport`].

use crate::cf::Cf;
use crate::config::BirchConfig;
use crate::obs::mem::MemoryGauge;
use crate::obs::span::{self, SpanReport};
use crate::obs::{EventSink, MetricsReport, NoopSink, ShardReport};
use crate::phase1::{Phase1Builder, Phase1Output};
use crate::point::Point;
use crate::threshold::ThresholdEstimator;
use crate::tree::CfTree;
use birch_pager::IoStats;
use std::time::{Duration, Instant};

/// Everything the parallel Phase 1 produces — the serial
/// [`Phase1Output`] fields plus the per-shard telemetry.
#[derive(Debug)]
pub struct ParallelPhase1Output {
    /// The final merged CF-tree (fits the full memory budget).
    pub tree: CfTree,
    /// Aggregate resource counters. Counter fields are summed across
    /// shards and merge; `peak_pages` is the *concurrent* peak — the sum
    /// of the shard peaks (the shards run at the same time), maxed with
    /// the merge stage's peak.
    pub io: IoStats,
    /// Merge-stage threshold raises (the run-level `T` sequence; the
    /// per-shard sequences live in [`ParallelPhase1Output::shards`]).
    pub threshold_history: Vec<f64>,
    /// Input records scanned across all shards.
    pub points_scanned: u64,
    /// The merge stage's threshold estimator, carrying its r–N history
    /// forward so Phase 2 can continue the same sequence.
    pub estimator: ThresholdEstimator,
    /// Aggregated telemetry across every shard and the merge stage.
    pub metrics: MetricsReport,
    /// Per-shard telemetry, in shard (input) order.
    pub shards: Vec<ShardReport>,
    /// Wall time of the merge stage alone (every tournament round plus
    /// the final merge).
    pub merge_wall: Duration,
    /// Wall time of each parallel tournament round, outermost first
    /// (empty when ≤ 2 shards — the reduction degenerates to the final
    /// merge). Each round also appears as a `merge_round_i` span.
    pub merge_round_walls: Vec<Duration>,
    /// Combined byte accounting: shard gauges folded *concurrently*
    /// (peaks sum — the workers coexist), the merge stage folded
    /// *sequentially* (peaks max).
    pub memory: MemoryGauge,
}

/// Runs the sharded Phase 1 over `points` (optionally weighted) with
/// `threads` workers. `threads` is clamped to the number of points;
/// `threads == 1` (after clamping) still goes through the same code path
/// but with a single shard — callers wanting the byte-identical serial
/// scan should dispatch to [`crate::phase1::run`] instead (as
/// [`Birch::fit`] does).
///
/// `sink` receives the *merge stage's* events live. Shard events are
/// aggregated per worker (a `&mut` sink cannot be shared across threads)
/// and folded into [`ParallelPhase1Output::metrics`] and
/// [`ParallelPhase1Output::shards`] when the workers join.
///
/// [`Birch::fit`]: crate::Birch::fit
///
/// # Panics
///
/// Panics if `threads == 0`, if the configuration is invalid, if
/// `points` is empty, or if a weights slice of mismatched length is
/// supplied.
pub fn run_with_sink<S: EventSink>(
    config: &BirchConfig,
    dim: usize,
    points: &[Point],
    weights: Option<&[f64]>,
    threads: usize,
    sink: &mut S,
) -> ParallelPhase1Output {
    assert!(threads >= 1, "need at least one thread");
    assert!(!points.is_empty(), "cannot shard an empty dataset");
    if let Some(w) = weights {
        assert_eq!(w.len(), points.len(), "weights/points length mismatch");
    }
    config.validate();

    let threads = threads.min(points.len());
    let chunk = points.len().div_ceil(threads);

    // Each worker runs under the FULL page budget `M`, not `M/n`: a
    // shard of a randomized stream covers the same cluster structure as
    // the whole dataset, so its summary needs as many leaf entries as a
    // full scan's — splitting the budget would force every shard's
    // threshold far past the serial run's and permanently coarsen the
    // merged tree. The cost is a transient aggregate footprint of up to
    // `n × M` while the workers run (reported honestly: the combined
    // `peak_pages` is the *sum* of the shard peaks); the merged tree is
    // the one that must fit `M`. Workers only get their own shard-sized
    // growth target and outlier disk.
    let shard_config = config.clone().total_points(chunk as u64).threads(1);

    // ---- Fan out: one Phase1Builder per contiguous shard. ----
    // Span profiling is a thread-local switch: each worker inherits the
    // coordinator's setting, times its shard under a `shard` span, and
    // ships the frozen report back for grafting into the run's tree.
    let profiled = span::enabled();
    let shard_runs: Vec<ShardRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(chunk)
            .enumerate()
            .map(|(i, part)| {
                let cfg = &shard_config;
                let wpart = weights.map(|w| &w[i * chunk..(i * chunk + part.len())]);
                scope.spawn(move || {
                    span::set_enabled(profiled);
                    let started = Instant::now();
                    let sp = span::enter("shard");
                    let mut b = Phase1Builder::new(cfg, dim);
                    match wpart {
                        Some(w) => {
                            for (p, &wi) in part.iter().zip(w) {
                                b.feed_weighted_point(p, wi);
                            }
                        }
                        None => {
                            for p in part {
                                b.feed_point(p);
                            }
                        }
                    }
                    let (out, carried) = b.finish_keeping_outliers();
                    drop(sp);
                    let spans = profiled.then(span::take_report);
                    (out, carried, started.elapsed(), spans)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("phase-1 shard worker panicked"))
            .collect()
    });

    merge_shards(config, dim, points.len() as u64, shard_runs, sink)
}

/// Like [`run_with_sink`] with a [`NoopSink`].
///
/// # Panics
///
/// Same as [`run_with_sink`].
pub fn run(
    config: &BirchConfig,
    dim: usize,
    points: &[Point],
    threads: usize,
) -> ParallelPhase1Output {
    run_with_sink(config, dim, points, None, threads, &mut NoopSink)
}

/// One worker's result: Phase-1 output, carried outliers, wall time,
/// and the shard's frozen span tree (when profiling is on).
type ShardRun = (Phase1Output, Vec<Cf>, Duration, Option<SpanReport>);

/// One tournament participant: a partially merged tree plus the outlier
/// CFs accumulated (but not yet re-judged) along its bracket.
struct MergeItem {
    tree: CfTree,
    carried: Vec<Cf>,
}

/// Static span names for the tournament rounds (`span::enter` needs
/// `&'static str`); six names cover ≤ 128 shards, deeper brackets share
/// the last name.
const MERGE_ROUND_SPANS: [&str; 6] = [
    "merge_round_0",
    "merge_round_1",
    "merge_round_2",
    "merge_round_3",
    "merge_round_4",
    "merge_round_5",
];

fn round_span_name(round: usize) -> &'static str {
    MERGE_ROUND_SPANS
        .get(round)
        .copied()
        .unwrap_or(MERGE_ROUND_SPANS[MERGE_ROUND_SPANS.len() - 1])
}

/// Merges two tournament items into one: feed both trees' leaf entries
/// into a fresh full-budget builder whose threshold dominates both
/// inputs, keep (don't judge) the accumulated outliers.
fn merge_pair(
    config: &BirchConfig,
    dim: usize,
    total_points: u64,
    a: MergeItem,
    b: MergeItem,
) -> (Phase1Output, Vec<Cf>) {
    let t_start = a
        .tree
        .threshold()
        .max(b.tree.threshold())
        .max(config.initial_threshold);
    let pair_config = config
        .clone()
        .initial_threshold(t_start)
        .total_points(total_points)
        .threads(1);
    let mut builder = Phase1Builder::new(&pair_config, dim);
    for cf in a.tree.into_leaf_entries() {
        builder.feed(cf);
    }
    for cf in b.tree.into_leaf_entries() {
        builder.feed(cf);
    }
    let (out, kept) = builder.finish_keeping_outliers();
    let mut carried = a.carried;
    carried.extend(b.carried);
    carried.extend(kept);
    (out, carried)
}

/// The merge stage: a pairwise tournament reduction over the shard
/// trees (additivity makes every bracket exact), finishing with a
/// coordinator-side merge of the last ≤ 2 trees plus one re-absorption
/// pass for every bracket-carried outlier, assembling the combined
/// telemetry along the way.
fn merge_shards<S: EventSink>(
    config: &BirchConfig,
    dim: usize,
    total_points: u64,
    shard_runs: Vec<ShardRun>,
    sink: &mut S,
) -> ParallelPhase1Output {
    // Graft every shard's span tree under whatever span is open on the
    // coordinator (the pipeline's `phase1`), before any merge span opens.
    for (_, _, _, spans) in &shard_runs {
        if let Some(r) = spans {
            span::merge_report(r);
        }
    }

    let mut io = IoStats::default();
    let mut metrics = MetricsReport::default();
    let mut shards = Vec::with_capacity(shard_runs.len());
    let mut shard_peak_sum = 0usize;
    let mut memory = MemoryGauge::with_budget(config.memory_bytes as u64);

    let merge_started = Instant::now();
    let mut items: Vec<MergeItem> = Vec::with_capacity(shard_runs.len());
    for (i, (out, carried, wall, _)) in shard_runs.into_iter().enumerate() {
        shards.push(ShardReport {
            shard: i,
            points: out.points_scanned,
            wall,
            rebuilds: out.io.rebuilds,
            final_threshold: out.tree.threshold(),
            leaf_entries: out.tree.leaf_entry_count(),
            peak_pages: out.io.peak_pages,
            splits: out.io.splits,
            outliers_carried: carried.len() as u64,
            threshold_trajectory: out.metrics.threshold_trajectory.clone(),
        });
        shard_peak_sum += out.io.peak_pages;
        io.absorb(&out.io);
        metrics.absorb(&out.metrics);
        memory.absorb_concurrent(&out.memory);
        items.push(MergeItem {
            tree: out.tree,
            carried,
        });
    }

    // ---- Tournament rounds: halve the tree count per round, pairs in
    // parallel. The serial left fold this replaces re-inserted every
    // shard's entries one shard at a time on the coordinator; here round
    // `r` runs its pair merges concurrently, so the reduction's critical
    // path is ⌈log₂ n⌉ pair merges instead of n−1.
    let profiled = span::enabled();
    let mut peak_pages_floor = shard_peak_sum;
    let mut merge_round_walls = Vec::new();
    let mut round = 0usize;
    while items.len() > 2 {
        let round_started = Instant::now();
        let span_name = round_span_name(round);
        let mut next: Vec<MergeItem> = Vec::with_capacity(items.len().div_ceil(2));
        let mut pairs: Vec<(MergeItem, MergeItem)> = Vec::with_capacity(items.len() / 2);
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => pairs.push((a, b)),
                // Odd tree out: a bye straight into the next round.
                None => next.push(a),
            }
        }
        let outputs: Vec<(Phase1Output, Vec<Cf>, Option<SpanReport>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .into_iter()
                    .map(|(a, b)| {
                        scope.spawn(move || {
                            span::set_enabled(profiled);
                            let sp = span::enter(span_name);
                            let (out, carried) = merge_pair(config, dim, total_points, a, b);
                            drop(sp);
                            let spans = profiled.then(span::take_report);
                            (out, carried, spans)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge-round worker panicked"))
                    .collect()
            });
        // Pairs within a round coexist (peaks sum); rounds are sequential
        // against each other and the shard stage (peaks max).
        let mut round_mem = MemoryGauge::with_budget(config.memory_bytes as u64);
        let mut round_peak_sum = 0usize;
        for (out, carried, spans) in outputs {
            if let Some(r) = &spans {
                span::merge_report(r);
            }
            round_peak_sum += out.io.peak_pages;
            io.absorb(&out.io);
            metrics.absorb(&out.metrics);
            round_mem.absorb_concurrent(&out.memory);
            next.push(MergeItem {
                tree: out.tree,
                carried,
            });
        }
        memory.absorb_sequential(&round_mem);
        peak_pages_floor = peak_pages_floor.max(round_peak_sum);
        merge_round_walls.push(round_started.elapsed());
        items = next;
        round += 1;
    }

    // ---- Final: merge the last ≤ 2 trees on the coordinator (live
    // sink), then give every bracket-carried outlier its one chance
    // against the full tree before the usual end-of-scan disposition
    // (§5.1.3).
    let t_start = items
        .iter()
        .map(|item| item.tree.threshold())
        .fold(config.initial_threshold, f64::max);
    let merge_config = config
        .clone()
        .initial_threshold(t_start)
        .total_points(total_points)
        .threads(1);
    let sp_merge = span::enter("merge");
    let mut builder = Phase1Builder::with_sink(&merge_config, dim, &mut *sink);
    let mut carried_outliers = Vec::new();
    for item in items {
        for cf in item.tree.into_leaf_entries() {
            builder.feed(cf);
        }
        carried_outliers.extend(item.carried);
    }
    for cf in carried_outliers {
        builder.feed_outlier_candidate(cf);
    }
    let merged = builder.finish();
    merged.tree.strict_audit("merge_shards");
    drop(sp_merge);
    let merge_wall = merge_started.elapsed();

    io.absorb(&merged.io);
    metrics.absorb(&merged.metrics);
    memory.absorb_sequential(&merged.memory);
    // Honest in-memory peak: concurrent stages sum (shards; pairs within
    // a round), sequential stages max — whichever stage peaked highest.
    io.peak_pages = peak_pages_floor.max(merged.io.peak_pages);
    metrics.peak_pages = io.peak_pages;

    ParallelPhase1Output {
        tree: merged.tree,
        io,
        threshold_history: merged.threshold_history,
        points_scanned: total_points,
        estimator: merged.estimator,
        metrics,
        shards,
        merge_wall,
        merge_round_walls,
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;

    /// Deterministic scatter of `n` points over `k` well-separated blobs.
    fn blobs(n: usize, k: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let c = (i % k) as f64 * 100.0;
                let j = i as f64;
                Point::xy(c + (j * 0.7).sin() * 2.0, c + (j * 1.3).cos() * 2.0)
            })
            .collect()
    }

    fn total_cf_of(points: &[Point]) -> Cf {
        let mut cf = Cf::empty(2);
        for p in points {
            cf.add_point(p);
        }
        cf
    }

    #[test]
    fn merged_total_cf_matches_dataset() {
        let pts = blobs(5000, 4);
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024)
            .outliers(false);
        for threads in [1, 2, 3, 4] {
            let out = run(&cfg, 2, &pts, threads);
            let expect = total_cf_of(&pts);
            let got = out.tree.total_cf();
            assert_eq!(got.n(), expect.n(), "threads={threads}");
            for (a, b) in got.vec_stat().iter().zip(expect.vec_stat()) {
                assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "threads={threads}");
            }
            assert!(
                (got.scalar_stat() - expect.scalar_stat()).abs()
                    < 1e-6 * (1.0 + expect.scalar_stat()),
                "threads={threads}"
            );
            out.tree.check_invariants().unwrap();
        }
    }

    #[test]
    fn shard_reports_cover_all_points() {
        let pts = blobs(2000, 4);
        let cfg = BirchConfig::with_clusters(4).memory(8 * 1024);
        let out = run(&cfg, 2, &pts, 4);
        assert_eq!(out.shards.len(), 4);
        let total: u64 = out.shards.iter().map(|s| s.points).sum();
        assert_eq!(total, 2000);
        for (i, s) in out.shards.iter().enumerate() {
            assert_eq!(s.shard, i);
            assert!(s.leaf_entries > 0);
            assert!(s.final_threshold >= 0.0);
        }
        assert_eq!(out.points_scanned, 2000);
    }

    #[test]
    fn merge_threshold_dominates_shards() {
        let pts = blobs(10_000, 4);
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024);
        let out = run(&cfg, 2, &pts, 4);
        let max_shard_t = out
            .shards
            .iter()
            .map(|s| s.final_threshold)
            .fold(0.0, f64::max);
        assert!(
            out.tree.threshold() >= max_shard_t,
            "merged T {} < max shard T {max_shard_t}",
            out.tree.threshold()
        );
        out.tree.check_invariants().unwrap();
    }

    #[test]
    fn final_tree_fits_budget() {
        let pts = blobs(20_000, 4);
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024);
        let out = run(&cfg, 2, &pts, 4);
        assert!(
            out.tree.node_count() <= cfg.memory_bytes / cfg.page_bytes,
            "merged tree {} pages over budget",
            out.tree.node_count()
        );
    }

    #[test]
    fn concurrent_peak_is_sum_of_shard_peaks() {
        let pts = blobs(20_000, 4);
        let cfg = BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024);
        let out = run(&cfg, 2, &pts, 4);
        let sum: usize = out.shards.iter().map(|s| s.peak_pages).sum();
        assert!(out.io.peak_pages >= sum.min(out.io.peak_pages));
        assert!(out.io.peak_pages >= out.tree.node_count());
    }

    #[test]
    fn carried_outliers_rejudged_not_lost_silently() {
        // Noise points spread across shards: with outlier handling on,
        // each shard may park some; the merge must account for every
        // point as either kept in the tree or counted discarded.
        let mut pts = blobs(8_000, 2);
        for i in 0..40 {
            let j = f64::from(i);
            pts.push(Point::xy(5_000.0 + j * 211.0, -7_000.0 - j * 173.0));
        }
        let cfg = BirchConfig::with_clusters(2)
            .memory(8 * 1024)
            .page_size(1024);
        let out = run(&cfg, 2, &pts, 4);
        let kept = out.tree.total_cf().n();
        let discarded = out.io.outliers_discarded as f64;
        assert!(
            (kept + discarded - pts.len() as f64).abs() < 1e-6,
            "kept {kept} + discarded {discarded} != {}",
            pts.len()
        );
    }

    #[test]
    fn weighted_shards_preserve_total_weight() {
        let pts = blobs(1000, 2);
        let weights: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 3) as f64).collect();
        let cfg = BirchConfig::with_clusters(2).outliers(false);
        let out = run_with_sink(&cfg, 2, &pts, Some(&weights), 4, &mut NoopSink);
        let expect: f64 = weights.iter().sum();
        assert!((out.tree.total_cf().n() - expect).abs() < 1e-9);
    }

    #[test]
    fn tournament_rounds_reported_and_bounded_by_merge_wall() {
        let pts = blobs(6000, 3);
        let cfg = BirchConfig::with_clusters(3).outliers(false);
        // 6 shards → 3 → 2 → final: two parallel rounds.
        let out = run(&cfg, 2, &pts, 6);
        assert_eq!(out.merge_round_walls.len(), 2);
        let rounds: Duration = out.merge_round_walls.iter().sum();
        assert!(
            rounds <= out.merge_wall,
            "rounds {rounds:?} exceed merge wall {:?}",
            out.merge_wall
        );
        // ≤ 2 shards need no tournament at all.
        let out2 = run(&cfg, 2, &pts, 2);
        assert!(out2.merge_round_walls.is_empty());
    }

    #[test]
    fn tournament_merge_conserves_data_with_odd_bracket() {
        // 5 shards exercises the bye path in both rounds (5 → 3 → 2).
        let pts = blobs(5000, 4);
        let cfg = BirchConfig::with_clusters(4).outliers(false);
        let out = run(&cfg, 2, &pts, 5);
        assert_eq!(out.merge_round_walls.len(), 2);
        let expect = total_cf_of(&pts);
        let got = out.tree.total_cf();
        assert_eq!(got.n(), expect.n());
        for (a, b) in got.vec_stat().iter().zip(expect.vec_stat()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
        out.tree.check_invariants().unwrap();
    }

    #[test]
    fn single_shard_matches_serial_phase1_totals() {
        // threads=1 through the parallel path still conserves the data
        // and produces a within-budget tree; Birch::fit short-circuits to
        // the true serial path, but the degenerate shard count must work.
        let pts = blobs(3000, 3);
        let cfg = BirchConfig::with_clusters(3).outliers(false);
        let par = run(&cfg, 2, &pts, 1);
        let ser = phase1::run(&cfg, 2, pts.iter().map(Cf::from_point));
        assert_eq!(par.tree.total_cf().n(), ser.tree.total_cf().n());
        assert_eq!(par.shards.len(), 1);
    }
}
