//! The CF-tree (§4.2) and its insertion algorithm (§4.3).
//!
//! A CF-tree is a height-balanced tree with three parameters: branching
//! factor `B` (max entries per nonleaf node), leaf capacity `L` (max entries
//! per leaf node), and threshold `T` — every leaf entry's diameter (or
//! radius) must stay below `T`. `B` and `L` are functions of the page size
//! `P` (see `birch_pager::PageLayout`); each node occupies one page.
//!
//! Insertion of an entry `Ent` (§4.3):
//!
//! 1. **Identify the appropriate leaf** — descend from the root, at each
//!    level following the child whose CF is closest to `Ent` under the
//!    chosen distance metric D0–D4.
//! 2. **Modify the leaf** — find the closest leaf entry; if it can absorb
//!    `Ent` without violating the threshold condition, merge; otherwise add
//!    `Ent` as a new entry, splitting the leaf if it overflows. Splitting
//!    picks the *farthest pair* of entries as seeds and redistributes the
//!    rest by proximity.
//! 3. **Modify the path** — update the CF entries on the root-to-leaf path;
//!    propagate splits upward; if the root splits the tree grows by one
//!    level.
//! 4. **Merging refinement** — when a split's upward propagation stops at
//!    some nonleaf node, find that node's two closest entries; if they are
//!    not the pair produced by the split, try to merge them (and their child
//!    nodes); if the merged node overflows, split it again. This heals the
//!    space-utilization damage done by skewed input order.

use crate::cf::Cf;
use crate::distance::{
    closest_among, closest_among_pruned, closest_pair, farthest_pair, pair_in_block, CfBlock,
    DistanceMetric, ThresholdKind,
};
use crate::node::{ChildEntry, Node, NodeId, NodeKind};
use crate::obs::{Event, EventSink, NoopSink};
use birch_pager::{
    decode_page, encode_page, peek_kind, ClockCache, PageStore, SnapshotError, SnapshotReader,
    SnapshotWriter, PAGE_HEADER_BYTES,
};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

/// Static parameters of a CF-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Data dimensionality `d`.
    pub dim: usize,
    /// Branching factor `B`: max entries in a nonleaf node.
    pub branching: usize,
    /// Leaf capacity `L`: max entries in a leaf node.
    pub leaf_capacity: usize,
    /// Threshold `T` on each leaf entry's diameter/radius.
    pub threshold: f64,
    /// Whether `T` constrains diameter or radius.
    pub threshold_kind: ThresholdKind,
    /// Distance metric used to pick closest children/entries.
    pub metric: DistanceMetric,
    /// Whether to run the §4.3 merging refinement after splits.
    pub merge_refinement: bool,
    /// Whether the descent's closest-child/closest-entry scans may skip
    /// candidates using the D0 triangle-inequality lower bound (see
    /// [`crate::distance::closest_among_pruned`]). Off by default; only
    /// effective under [`DistanceMetric::D0`], and provably never changes
    /// which candidate is selected — only how many distances are evaluated
    /// (observable via [`TreeStats::distance_calls_pruned`]).
    pub descend_prune: bool,
}

impl TreeParams {
    /// Reasonable defaults for tests and examples: `B = 25`, `L = 31`
    /// (the paper's `P = 1024`, `d = 2` layout), threshold 0, D2 metric.
    #[must_use]
    pub fn for_dim(dim: usize) -> Self {
        Self {
            dim,
            branching: 25,
            leaf_capacity: 31,
            threshold: 0.0,
            threshold_kind: ThresholdKind::default(),
            metric: DistanceMetric::default(),
            merge_refinement: true,
            descend_prune: false,
        }
    }

    fn validate(&self) {
        assert!(self.dim > 0, "dimensionality must be positive");
        assert!(self.branching >= 2, "branching factor must be >= 2");
        assert!(self.leaf_capacity >= 2, "leaf capacity must be >= 2");
        assert!(
            self.threshold.is_finite() && self.threshold >= 0.0,
            "threshold must be finite and non-negative"
        );
    }
}

/// What happened to an inserted entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Merged into an existing leaf entry within the threshold.
    Absorbed,
    /// Stored as a new leaf entry; no node overflowed.
    Added,
    /// Stored as a new leaf entry after one or more node splits.
    AddedWithSplit,
}

/// Mutation counters for one tree's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Node splits (leaf and interior).
    pub splits: u64,
    /// Merging refinements performed (§4.3).
    pub merge_refinements: u64,
    /// Full distance evaluations performed by the insert hot path — the
    /// closest-child scans of the descent plus the closest-leaf-entry scan
    /// (the §6.1 CPU cost model's inner loop). Distances computed during
    /// splits, refinement, or Dmin probes are not counted: this counter
    /// exists to measure the descent workload the lower-bound prune acts
    /// on.
    pub distance_calls: u64,
    /// Descent-scan candidates skipped by the D0 triangle-inequality lower
    /// bound ([`TreeParams::descend_prune`]). Always 0 with pruning off.
    pub distance_calls_pruned: u64,
}

/// Heap occupancy of one tree, split the way the memory gauge reports it
/// (see [`crate::obs::mem`]): arena/entry storage vs. the SoA mirrors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeFootprint {
    /// The node arena (`Vec<Node>` capacity) plus every node's entry
    /// storage: `Vec` capacities and the CFs' boxed statistic slabs.
    pub arena_bytes: u64,
    /// Every node's SoA [`CfBlock`] mirror slabs — the cache-residency
    /// overhead the insert kernels buy their speed with.
    pub block_bytes: u64,
}

/// Occupancy of one tree level (root = level 0).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelOccupancy {
    /// Depth below the root.
    pub level: usize,
    /// Nodes on this level.
    pub nodes: usize,
    /// Entries across the level's nodes (child entries for interior
    /// levels, CF entries for the leaf level).
    pub entries: usize,
    /// Per-node entry capacity on this level (`B` interior, `L` leaf).
    pub capacity_per_node: usize,
    /// Smallest per-node entry count on the level.
    pub min_entries: usize,
    /// Largest per-node entry count on the level.
    pub max_entries: usize,
}

impl LevelOccupancy {
    /// Mean fill of the level against its per-node capacity, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let cap = self.nodes * self.capacity_per_node;
        if cap == 0 {
            0.0
        } else {
            self.entries as f64 / cap as f64
        }
    }

    /// Serializes as one JSON object of the `tree_health.levels` array.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"level\":{},\"nodes\":{},\"entries\":{},\"capacity_per_node\":{},\
             \"min_entries\":{},\"max_entries\":{},\"utilization\":{}}}",
            self.level,
            self.nodes,
            self.entries,
            self.capacity_per_node,
            self.min_entries,
            self.max_entries,
            crate::obs::json_f64(self.utilization()),
        )
    }
}

/// Structural health of a CF-tree: the per-level occupancy histogram and
/// the space-utilization summaries the K-tree literature reports (see
/// PAPERS.md) — low leaf utilization is the §4.3 merging refinement's
/// reason to exist, so it should be *measured*, not assumed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TreeHealth {
    /// Tree height (1 = root is a leaf).
    pub height: usize,
    /// Live nodes (== pages under the paper's cost model).
    pub nodes: usize,
    /// Leaf nodes.
    pub leaf_nodes: usize,
    /// CF entries across all leaves.
    pub leaf_entries: usize,
    /// Leaf fill against capacity `L`, in `[0, 1]`.
    pub leaf_utilization: f64,
    /// Interior fill against branching `B`, in `[0, 1]` (0 when the root
    /// is a leaf).
    pub interior_utilization: f64,
    /// Per-level occupancy, root first.
    pub levels: Vec<LevelOccupancy>,
    /// Splits per 1000 tree insertions (filled by the pipeline from the
    /// run counters; 0 for a bare [`CfTree::health`] call).
    pub split_rate_per_1k_inserts: f64,
    /// Merging refinements per 1000 tree insertions (same provenance).
    pub merge_rate_per_1k_inserts: f64,
    /// Rebuilds per 100k input points scanned (same provenance).
    pub rebuild_rate_per_100k_points: f64,
}

impl TreeHealth {
    /// Serializes as the schema-v4 `"tree_health"` JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut levels = String::from("[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                levels.push(',');
            }
            levels.push_str(&l.to_json());
        }
        levels.push(']');
        format!(
            "{{\"height\":{},\"nodes\":{},\"leaf_nodes\":{},\"leaf_entries\":{},\
             \"leaf_utilization\":{},\"interior_utilization\":{},\
             \"split_rate_per_1k_inserts\":{},\"merge_rate_per_1k_inserts\":{},\
             \"rebuild_rate_per_100k_points\":{},\"levels\":{levels}}}",
            self.height,
            self.nodes,
            self.leaf_nodes,
            self.leaf_entries,
            crate::obs::json_f64(self.leaf_utilization),
            crate::obs::json_f64(self.interior_utilization),
            crate::obs::json_f64(self.split_rate_per_1k_inserts),
            crate::obs::json_f64(self.merge_rate_per_1k_inserts),
            crate::obs::json_f64(self.rebuild_rate_per_100k_points),
        )
    }
}

/// Snapshot of the page cache's lifetime counters and current occupancy
/// (see [`CfTree::page_stats`]); `None`-free mirror of what `birch-report`
/// prints as the page-cache hit-rate rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Node accesses routed through the pager (`fault_in` calls).
    pub refs: u64,
    /// Accesses that had to read the node back from the spill file.
    pub faults: u64,
    /// Nodes written out to the spill file to honour the page budget.
    pub evictions: u64,
    /// Live nodes currently resident in memory.
    pub resident_nodes: usize,
    /// Live nodes currently spilled to disk.
    pub evicted_nodes: usize,
    /// Bytes the spill file occupies (slots × page size).
    pub spill_file_bytes: u64,
    /// Bytes ever written to the spill file.
    pub spill_bytes_written: u64,
    /// Bytes ever read back from the spill file.
    pub spill_bytes_read: u64,
}

impl PageCacheStats {
    /// Fraction of pager-routed accesses served from memory, in `[0, 1]`
    /// (1.0 when there were no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.refs == 0 {
            1.0
        } else {
            1.0 - self.faults as f64 / self.refs as f64
        }
    }
}

/// Out-of-core state of a [`CfTree`]: the spill file, the clock over
/// resident non-root nodes, and the id → slot map of evicted nodes.
///
/// The root is *pinned* — it never enters the clock, so every descent
/// starts from a resident node. Eviction happens only at insert-operation
/// boundaries ([`CfTree::insert_cf`] and friends call `evict_to_cap` after
/// the tree is back within its B/L capacities), so an evicted node is
/// always within capacity and fits the physical page slot.
#[derive(Debug)]
struct TreePager {
    store: PageStore,
    cache: ClockCache,
    /// Spill slot of each currently-evicted node id.
    slot_of: HashMap<u32, u32>,
    /// Max live nodes resident at an operation boundary.
    max_resident: usize,
    refs: u64,
    faults: u64,
    evictions: u64,
}

/// A height-balanced tree of Clustering Features.
#[derive(Debug)]
pub struct CfTree {
    pub(crate) params: TreeParams,
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) first_leaf: NodeId,
    pub(crate) height: usize,
    pub(crate) leaf_entry_count: usize,
    pub(crate) total: Cf,
    pub(crate) stats: TreeStats,
    /// Largest threshold statistic of any *atomic* input CF that landed as
    /// its own leaf entry. Point input keeps this at 0; weighted/CF input
    /// (e.g. `push_cf`) may exceed `T`, and such an entry is legitimate
    /// because an input CF cannot be split. The auditor widens its
    /// threshold check by this amount.
    pub(crate) max_input_stat: f64,
    /// Out-of-core mode: `Some` after [`CfTree::enable_paging`]. Never
    /// cloned (a clone is always fully resident with paging off).
    pager: Option<Box<TreePager>>,
}

impl Clone for CfTree {
    fn clone(&self) -> Self {
        assert!(
            !self.has_evicted_nodes(),
            "cannot clone a CF-tree with spilled nodes; fault them in first"
        );
        Self {
            params: self.params,
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            first_leaf: self.first_leaf,
            height: self.height,
            leaf_entry_count: self.leaf_entry_count,
            total: self.total.clone(),
            stats: self.stats,
            max_input_stat: self.max_input_stat,
            pager: None,
        }
    }
}

impl CfTree {
    /// Creates an empty tree.
    ///
    /// # Panics
    ///
    /// Panics if `params` are inconsistent (see [`TreeParams`] field docs).
    #[must_use]
    pub fn new(params: TreeParams) -> Self {
        params.validate();
        let mut root = Node::new_leaf();
        root.id = NodeId(0);
        Self {
            params,
            nodes: vec![root],
            free: Vec::new(),
            root: NodeId(0),
            first_leaf: NodeId(0),
            height: 1,
            leaf_entry_count: 0,
            total: Cf::empty(params.dim),
            stats: TreeStats::default(),
            max_input_stat: 0.0,
            pager: None,
        }
    }

    /// Records that `ent` landed as its own leaf entry (rather than being
    /// absorbed into an existing one, which is threshold-checked). An
    /// atomic multi-point input may carry any spread, so the auditor's
    /// threshold invariant must allow entries up to this statistic.
    pub(crate) fn note_atomic_input(&mut self, ent: &Cf) {
        if ent.n() > 1.0 {
            let s = self.params.threshold_kind.statistic(ent);
            if s > self.max_input_stat {
                self.max_input_stat = s;
            }
        }
    }

    /// The tree's static parameters.
    #[must_use]
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Current threshold `T`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.params.threshold
    }

    /// Data dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.params.dim
    }

    /// Tree height (1 = root is a leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of live nodes — under the paper's cost model, the number of
    /// memory pages the tree occupies.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Total number of CF entries across all leaves.
    #[must_use]
    pub fn leaf_entry_count(&self) -> usize {
        self.leaf_entry_count
    }

    /// The CF of everything ever inserted (and not rolled back).
    #[must_use]
    pub fn total_cf(&self) -> &Cf {
        &self.total
    }

    /// Mutation counters.
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        self.stats
    }

    /// Heap occupancy of the tree right now, split into arena/entry
    /// storage and SoA mirror slabs. O(nodes); the Phase-1 gauge samples
    /// it only when the page count changes, not per point.
    #[must_use]
    pub fn memory_footprint(&self) -> TreeFootprint {
        let mut arena = self.nodes.capacity() * std::mem::size_of::<Node>();
        let mut blocks = 0usize;
        // Free-listed nodes keep their allocations until reused, so they
        // are counted too: the bytes are genuinely held.
        for n in &self.nodes {
            arena += n.entry_heap_bytes();
            blocks += n.block_heap_bytes();
        }
        TreeFootprint {
            arena_bytes: arena as u64,
            block_bytes: blocks as u64,
        }
    }

    /// Structural health snapshot: per-level occupancy (BFS from the
    /// root) and leaf/interior utilization. The rate fields are left 0 —
    /// the pipeline fills them from its run counters.
    #[must_use]
    pub fn health(&self) -> TreeHealth {
        let mut levels = Vec::with_capacity(self.height);
        let mut leaf_nodes = 0usize;
        let mut leaf_entries = 0usize;
        let mut interior_nodes = 0usize;
        let mut interior_entries = 0usize;
        let mut frontier = vec![self.root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut occ = LevelOccupancy {
                level: levels.len(),
                min_entries: usize::MAX,
                ..LevelOccupancy::default()
            };
            for &id in &frontier {
                let node = self.node(id);
                let count = node.entry_count();
                occ.nodes += 1;
                occ.entries += count;
                occ.min_entries = occ.min_entries.min(count);
                occ.max_entries = occ.max_entries.max(count);
                if node.is_leaf() {
                    occ.capacity_per_node = self.params.leaf_capacity;
                    leaf_nodes += 1;
                    leaf_entries += count;
                } else {
                    occ.capacity_per_node = self.params.branching;
                    interior_nodes += 1;
                    interior_entries += count;
                    next.extend(node.children().iter().map(|c| c.child));
                }
            }
            if occ.min_entries == usize::MAX {
                occ.min_entries = 0;
            }
            levels.push(occ);
            frontier = next;
        }
        let util = |entries: usize, nodes: usize, cap: usize| {
            if nodes == 0 {
                0.0
            } else {
                entries as f64 / (nodes * cap) as f64
            }
        };
        TreeHealth {
            height: self.height,
            nodes: self.node_count(),
            leaf_nodes,
            leaf_entries,
            leaf_utilization: util(leaf_entries, leaf_nodes, self.params.leaf_capacity),
            interior_utilization: util(interior_entries, interior_nodes, self.params.branching),
            levels,
            ..TreeHealth::default()
        }
    }

    fn node(&self, id: NodeId) -> &Node {
        debug_assert!(
            self.pager
                .as_ref()
                .is_none_or(|p| !p.slot_of.contains_key(&id.0)),
            "access to evicted node {} without fault_in",
            id.0
        );
        &self.nodes[id.index()]
    }

    /// Crate-internal read access to a node (used by the rebuild scan).
    pub(crate) fn node_view(&self, id: NodeId) -> &Node {
        self.node(id)
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        debug_assert!(
            self.pager
                .as_ref()
                .is_none_or(|p| !p.slot_of.contains_key(&id.0)),
            "mutation of evicted node {} without fault_in",
            id.0
        );
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, mut node: Node) -> NodeId {
        let id = if let Some(id) = self.free.pop() {
            node.id = id;
            self.nodes[id.index()] = node;
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
            node.id = id;
            self.nodes.push(node);
            id
        };
        // A fresh node is resident by construction; the root stays pinned
        // outside the clock.
        if let Some(p) = self.pager.as_mut() {
            if id != self.root {
                p.cache.insert(u64::from(id.0));
            }
        }
        id
    }

    fn free_node(&mut self, id: NodeId) {
        if let Some(p) = self.pager.as_mut() {
            p.cache.remove(u64::from(id.0));
            if let Some(slot) = p.slot_of.remove(&id.0) {
                p.store.free(slot);
            }
        }
        self.free.push(id);
    }

    fn summary(&self, id: NodeId) -> Cf {
        self.node(id).summary(self.params.dim)
    }

    /// Inserts a single unweighted data point.
    pub fn insert_point(&mut self, p: &crate::point::Point) -> InsertOutcome {
        self.insert_cf(Cf::from_point(p))
    }

    /// Inserts a subcluster summary `ent` (used when re-inserting leaf
    /// entries during rebuilds, and when re-absorbing outliers).
    ///
    /// # Panics
    ///
    /// Panics if `ent` is empty or of the wrong dimension.
    pub fn insert_cf(&mut self, ent: Cf) -> InsertOutcome {
        self.insert_cf_observed(ent, &mut NoopSink)
    }

    /// Like [`CfTree::insert_cf`], but reporting what happened to `sink`:
    /// an [`Event::InsertDescend`] with the descent depth, plus
    /// [`Event::SplitPerformed`] / [`Event::MergeRefinement`] deltas when
    /// the insert caused any. This is the single insertion code path —
    /// [`CfTree::insert_cf`] delegates here with [`NoopSink`], which
    /// monomorphizes every telemetry branch away.
    ///
    /// # Panics
    ///
    /// Panics if `ent` is empty or of the wrong dimension.
    pub fn insert_cf_observed(&mut self, ent: Cf, sink: &mut impl EventSink) -> InsertOutcome {
        self.insert_entry(EntInput::Owned(ent), sink)
    }

    /// Borrowed-entry insertion for the scratch-CF feed path: identical to
    /// [`CfTree::insert_cf_observed`] but clones `ent` only when it
    /// actually becomes a new leaf entry. An absorbed input (the common
    /// case once the tree is warm) allocates nothing.
    pub(crate) fn insert_cf_ref_observed(
        &mut self,
        ent: &Cf,
        sink: &mut impl EventSink,
    ) -> InsertOutcome {
        self.insert_entry(EntInput::Ref(ent), sink)
    }

    fn insert_entry(&mut self, ent: EntInput<'_>, sink: &mut impl EventSink) -> InsertOutcome {
        let _sp = crate::obs::span::enter("insert");
        assert!(!ent.get().is_empty(), "cannot insert an empty CF");
        assert_eq!(ent.get().dim(), self.params.dim, "dimension mismatch");
        let before = self.stats;
        // Height-balanced tree: every descent visits height-1 interior
        // levels at the moment of insertion.
        let depth = self.height - 1;
        self.total.merge(ent.get());

        let (leaf_id, path) = self.descend(ent.get());
        let outcome = 'insert: {
            // Step 2: try to absorb into the closest leaf entry.
            if let Some(idx) = self.closest_leaf_entry(leaf_id, ent.get()) {
                let tentative = self.node(leaf_id).leaf_entries()[idx].merged(ent.get());
                if self
                    .params
                    .threshold_kind
                    .satisfies(&tentative, self.params.threshold)
                {
                    self.node_mut(leaf_id).set_leaf_entry(idx, tentative);
                    self.add_to_path(&path, ent.get());
                    break 'insert InsertOutcome::Absorbed;
                }
            }

            // New entry (split-free): update the path, then move `ent` in.
            self.note_atomic_input(ent.get());
            if self.node(leaf_id).entry_count() < self.params.leaf_capacity {
                self.add_to_path(&path, ent.get());
                self.node_mut(leaf_id).push_leaf_entry(ent.into_cf());
                self.leaf_entry_count += 1;
                break 'insert InsertOutcome::Added;
            }

            // Step 3: the leaf overflows — split and propagate upward.
            let _sp = crate::obs::span::enter("split");
            self.node_mut(leaf_id).push_leaf_entry(ent.into_cf());
            self.leaf_entry_count += 1;
            let new_leaf = self.split_leaf(leaf_id);
            self.propagate_split(&path, new_leaf);
            InsertOutcome::AddedWithSplit
        };

        if sink.enabled() {
            sink.record(&Event::InsertDescend { depth });
            let splits = self.stats.splits - before.splits;
            if splits > 0 {
                sink.record(&Event::SplitPerformed { count: splits });
            }
            let refinements = self.stats.merge_refinements - before.merge_refinements;
            if refinements > 0 {
                sink.record(&Event::MergeRefinement { count: refinements });
            }
        }
        self.strict_audit("insert_cf");
        self.evict_to_cap();
        outcome
    }

    /// Attempts to merge `ent` into an existing leaf entry *without* adding
    /// a new entry or splitting — the re-absorption test of §5.1.3 ("see if
    /// they can be re-absorbed into the current tree without causing the
    /// tree to grow in size"). Returns `true` on success.
    pub fn try_absorb(&mut self, ent: &Cf) -> bool {
        let absorbed = self.try_absorb_inner(ent);
        self.evict_to_cap();
        absorbed
    }

    fn try_absorb_inner(&mut self, ent: &Cf) -> bool {
        assert!(!ent.is_empty(), "cannot absorb an empty CF");
        assert_eq!(ent.dim(), self.params.dim, "dimension mismatch");
        let (leaf_id, path) = self.descend(ent);
        let Some(idx) = self.closest_leaf_entry(leaf_id, ent) else {
            return false;
        };
        let tentative = self.node(leaf_id).leaf_entries()[idx].merged(ent);
        if !self
            .params
            .threshold_kind
            .satisfies(&tentative, self.params.threshold)
        {
            return false;
        }
        self.node_mut(leaf_id).set_leaf_entry(idx, tentative);
        self.add_to_path(&path, ent);
        self.total.merge(ent);
        self.strict_audit("try_absorb");
        true
    }

    /// Like [`CfTree::try_absorb`] but additionally allowed to *add* `ent`
    /// as a new entry when the target leaf has free space — the paper's
    /// rebuild test "if it can fit in [the new tree] without splitting"
    /// (§5.1.1). Never splits a node; returns `false` if neither
    /// absorption nor a split-free add is possible.
    pub(crate) fn try_add_no_split(&mut self, ent: &Cf) -> bool {
        if self.try_absorb(ent) {
            return true;
        }
        let (leaf_id, path) = self.descend(ent);
        if self.node(leaf_id).entry_count() >= self.params.leaf_capacity {
            self.evict_to_cap();
            return false;
        }
        self.note_atomic_input(ent);
        self.node_mut(leaf_id).push_leaf_entry(ent.clone());
        self.leaf_entry_count += 1;
        self.add_to_path(&path, ent);
        self.total.merge(ent);
        self.strict_audit("try_add_no_split");
        self.evict_to_cap();
        true
    }

    /// Root-to-leaf descent following the closest child at each level,
    /// scanning each node's contiguous [`CfBlock`] with the batched
    /// [`closest_among`] kernel (or its D0 lower-bound-pruned variant when
    /// [`TreeParams::descend_prune`] is on). Returns the leaf id and the
    /// interior path as `(node, child_index)` pairs from the root downward.
    /// Takes `&mut self` only to accumulate the distance-call counters.
    fn descend(&mut self, ent: &Cf) -> (NodeId, Vec<(NodeId, usize)>) {
        let _sp = crate::obs::span::enter("descend");
        let metric = self.params.metric;
        let prune = self.params.descend_prune;
        let mut path = Vec::with_capacity(self.height.saturating_sub(1));
        let mut cur = self.root;
        let mut calls = 0u64;
        let mut skipped = 0u64;
        self.fault_in(cur);
        while !self.node(cur).is_leaf() {
            let node = self.node(cur);
            debug_assert!(node.entry_count() > 0, "interior node with no children");
            let best = if prune {
                let (best, evaluated, pruned) = closest_among_pruned(metric, ent, node.block());
                calls += evaluated;
                skipped += pruned;
                best
            } else {
                calls += node.entry_count() as u64;
                closest_among(metric, ent, node.block())
            };
            let best = best.map_or(0, |(i, _)| i);
            path.push((cur, best));
            cur = node.children()[best].child;
            self.fault_in(cur);
        }
        self.stats.distance_calls += calls;
        self.stats.distance_calls_pruned += skipped;
        (cur, path)
    }

    /// Index of the leaf entry closest to `ent`, or `None` if the leaf is
    /// empty. Same kernelized scan as [`CfTree::descend`]; takes `&mut self`
    /// only to accumulate the distance-call counters.
    fn closest_leaf_entry(&mut self, leaf_id: NodeId, ent: &Cf) -> Option<usize> {
        let metric = self.params.metric;
        let node = self.node(leaf_id);
        let (best, evaluated, pruned) = if self.params.descend_prune {
            closest_among_pruned(metric, ent, node.block())
        } else {
            let best = closest_among(metric, ent, node.block());
            (best, node.entry_count() as u64, 0)
        };
        self.stats.distance_calls += evaluated;
        self.stats.distance_calls_pruned += pruned;
        best.map(|(i, _)| i)
    }

    /// Merges `ent` into every `[CF, child]` entry along the descent path —
    /// the cheap CF update used when no split occurred.
    fn add_to_path(&mut self, path: &[(NodeId, usize)], ent: &Cf) {
        for &(nid, idx) in path {
            self.node_mut(nid).merge_into_child_cf(idx, ent);
        }
    }

    /// Splits an over-full leaf. The farthest pair of entries seeds two
    /// groups; the original node keeps the first group, a freshly allocated
    /// leaf (linked right after it in the chain) takes the second.
    fn split_leaf(&mut self, leaf_id: NodeId) -> NodeId {
        self.stats.splits += 1;
        let entries = self.node_mut(leaf_id).take_leaf_entries();
        let (g1, g2) = partition_by_farthest_pair(entries, |e| e, self.params.metric);
        self.node_mut(leaf_id).set_leaf_entries(g1);

        let new_id = self.alloc(Node::new_leaf());
        self.node_mut(new_id).set_leaf_entries(g2);
        self.link_after(leaf_id, new_id);
        new_id
    }

    /// Splits an over-full interior node; returns the new sibling.
    fn split_interior(&mut self, node_id: NodeId) -> NodeId {
        self.stats.splits += 1;
        let children = self.node_mut(node_id).take_children();
        let (g1, g2) = partition_by_farthest_pair(children, |c| &c.cf, self.params.metric);
        self.node_mut(node_id).set_children(g1);

        let new_id = self.alloc(Node::new_interior());
        self.node_mut(new_id).set_children(g2);
        new_id
    }

    /// Walks the descent path bottom-up after a leaf split: recomputes the
    /// changed child's CF entry, inserts the new sibling's entry, splits
    /// overflowing interior nodes, applies the merging refinement where the
    /// propagation stops, and grows a new root if the split reaches the top.
    fn propagate_split(&mut self, path: &[(NodeId, usize)], new_child: NodeId) {
        let mut pending = Some(new_child);
        for &(nid, idx) in path.iter().rev() {
            // The child at `idx` may have changed shape: recompute its CF.
            let child_id = self.node(nid).children()[idx].child;
            let child_cf = self.summary(child_id);
            self.node_mut(nid).set_child_cf(idx, child_cf);

            if let Some(new_id) = pending.take() {
                let cf = self.summary(new_id);
                self.node_mut(nid)
                    .insert_child(idx + 1, ChildEntry { cf, child: new_id });
                if self.node(nid).entry_count() > self.params.branching {
                    pending = Some(self.split_interior(nid));
                } else if self.params.merge_refinement {
                    self.merge_refine(nid, idx, idx + 1);
                }
            }
        }

        if let Some(new_id) = pending {
            // Root split: the tree grows one level.
            let old_root = self.root;
            let mut root = Node::new_interior();
            root.push_child(ChildEntry {
                cf: self.summary(old_root),
                child: old_root,
            });
            root.push_child(ChildEntry {
                cf: self.summary(new_id),
                child: new_id,
            });
            let new_root = self.alloc(root);
            self.root = new_root;
            self.height += 1;
            // The pin moves with the root: the new root leaves the clock,
            // the demoted one becomes evictable.
            if let Some(p) = self.pager.as_mut() {
                p.cache.remove(u64::from(new_root.0));
                p.cache.insert(u64::from(old_root.0));
            }
        }
    }

    /// §4.3 merging refinement at node `nid`, where `(split_a, split_b)` are
    /// the entry indices produced by the just-finished split. Finds the two
    /// closest entries; if they are not the split pair, merges their child
    /// nodes — resplitting if the merged node overflows its capacity.
    fn merge_refine(&mut self, nid: NodeId, split_a: usize, split_b: usize) {
        if self.node(nid).entry_count() < 3 {
            return; // The only pair is the split pair.
        }
        // One contiguous pairwise sweep over the node's SoA block.
        let best = closest_pair(self.params.metric, self.node(nid).block());
        let Some((i, j, _)) = best else { return };
        if (i, j) == (split_a.min(split_b), split_a.max(split_b)) {
            return; // Closest pair is the freshly split pair: nothing to heal.
        }

        let a_id = self.node(nid).children()[i].child;
        let b_id = self.node(nid).children()[j].child;
        // The closest pair need not lie on the descent path: fault both
        // children in before merging their contents.
        self.fault_in(a_id);
        self.fault_in(b_id);
        let a_is_leaf = self.node(a_id).is_leaf();
        debug_assert_eq!(
            a_is_leaf,
            self.node(b_id).is_leaf(),
            "sibling level mismatch"
        );
        let capacity = if a_is_leaf {
            self.params.leaf_capacity
        } else {
            self.params.branching
        };
        let combined = self.node(a_id).entry_count() + self.node(b_id).entry_count();

        self.stats.merge_refinements += 1;
        if combined <= capacity {
            // Merge b into a; drop b's entry and node.
            if a_is_leaf {
                let moved = self.node_mut(b_id).take_leaf_entries();
                self.node_mut(a_id).append_leaf_entries(moved);
                self.unlink_leaf(b_id);
            } else {
                let moved = self.node_mut(b_id).take_children();
                self.node_mut(a_id).append_children(moved);
            }
            self.free_node(b_id);
            let a_cf = self.summary(a_id);
            let parent = self.node_mut(nid);
            parent.set_child_cf(i, a_cf);
            parent.remove_child(j);
        } else {
            // Merge + resplit: pool both nodes' items and redistribute by
            // the farthest-pair rule to even out occupancy.
            if a_is_leaf {
                let mut pool = self.node_mut(a_id).take_leaf_entries();
                pool.append(&mut self.node_mut(b_id).take_leaf_entries());
                let (mut g1, mut g2) = partition_by_farthest_pair(pool, |e| e, self.params.metric);
                rebalance_to_capacity(
                    &mut g1,
                    &mut g2,
                    |e| e,
                    self.params.metric,
                    capacity,
                    self.params.dim,
                );
                self.node_mut(a_id).set_leaf_entries(g1);
                self.node_mut(b_id).set_leaf_entries(g2);
            } else {
                let mut pool = self.node_mut(a_id).take_children();
                pool.append(&mut self.node_mut(b_id).take_children());
                let (mut g1, mut g2) =
                    partition_by_farthest_pair(pool, |c| &c.cf, self.params.metric);
                rebalance_to_capacity(
                    &mut g1,
                    &mut g2,
                    |c| &c.cf,
                    self.params.metric,
                    capacity,
                    self.params.dim,
                );
                self.node_mut(a_id).set_children(g1);
                self.node_mut(b_id).set_children(g2);
            }
            let a_cf = self.summary(a_id);
            let b_cf = self.summary(b_id);
            let parent = self.node_mut(nid);
            parent.set_child_cf(i, a_cf);
            parent.set_child_cf(j, b_cf);
        }
    }

    /// Links `new_id` into the leaf chain immediately after `after`.
    fn link_after(&mut self, after: NodeId, new_id: NodeId) {
        let old_next = match &self.node(after).kind {
            NodeKind::Leaf { next, .. } => *next,
            NodeKind::Interior { .. } => unreachable!("link_after on interior"),
        };
        // The chain successor is off the descent path and may be spilled.
        if let Some(n) = old_next {
            self.fault_in(n);
        }
        if let NodeKind::Leaf { next, .. } = &mut self.node_mut(after).kind {
            *next = Some(new_id);
        }
        if let NodeKind::Leaf { prev, next, .. } = &mut self.node_mut(new_id).kind {
            *prev = Some(after);
            *next = old_next;
        }
        if let Some(n) = old_next {
            if let NodeKind::Leaf { prev, .. } = &mut self.node_mut(n).kind {
                *prev = Some(new_id);
            }
        }
    }

    /// Removes a leaf from the chain (used when merging refinement fuses two
    /// leaves into one).
    fn unlink_leaf(&mut self, id: NodeId) {
        let (p, n) = match &self.node(id).kind {
            NodeKind::Leaf { prev, next, .. } => (*prev, *next),
            NodeKind::Interior { .. } => unreachable!("unlink_leaf on interior"),
        };
        // Chain neighbours are off the descent path and may be spilled.
        if let Some(p) = p {
            self.fault_in(p);
        }
        if let Some(n) = n {
            self.fault_in(n);
        }
        match p {
            Some(p) => {
                if let NodeKind::Leaf { next, .. } = &mut self.node_mut(p).kind {
                    *next = n;
                }
            }
            None => {
                self.first_leaf = n.expect("unlinking the only leaf");
            }
        }
        if let Some(n) = n {
            if let NodeKind::Leaf { prev, .. } = &mut self.node_mut(n).kind {
                *prev = p;
            }
        }
    }

    /// Leaf node ids in chain order (leftmost first).
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        LeafIter {
            tree: self,
            cur: if self.leaf_entry_count == 0 && self.node(self.first_leaf).entry_count() == 0 {
                // Completely empty tree: still yield the root leaf so
                // callers see a consistent (empty) chain.
                Some(self.first_leaf)
            } else {
                Some(self.first_leaf)
            },
        }
    }

    /// All leaf entries in chain (path) order — the input order for tree
    /// rebuilds and for Phase 3.
    pub fn leaf_entries(&self) -> impl Iterator<Item = &Cf> + '_ {
        self.leaf_ids()
            .flat_map(move |id| self.node(id).leaf_entries().iter())
    }

    /// Consumes the tree, returning all leaf entries in chain order.
    #[must_use]
    pub fn into_leaf_entries(self) -> Vec<Cf> {
        let mut out = Vec::with_capacity(self.leaf_entry_count);
        for e in self.leaf_entries() {
            out.push(e.clone());
        }
        out
    }

    /// Average statistic (diameter or radius, per the threshold kind) over
    /// leaf entries with at least 2 points — the paper's measure of how
    /// "full" entries are, used by the threshold heuristics.
    #[must_use]
    pub fn mean_entry_statistic(&self) -> f64 {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for e in self.leaf_entries() {
            if e.n() > 1.0 {
                sum += self.params.threshold_kind.statistic(e);
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f64
        }
    }

    /// Distance between the two closest entries in the most crowded leaf —
    /// the paper's `Dmin` signal (§5.1.2): the smallest threshold that would
    /// merge at least one pair of entries in the densest region.
    #[must_use]
    pub fn dmin_most_crowded_leaf(&self) -> Option<f64> {
        let crowded = self
            .leaf_ids()
            .max_by_key(|&id| self.node(id).entry_count())?;
        let entries = self.node(crowded).leaf_entries();
        if entries.len() < 2 {
            return None;
        }
        let mut best = f64::INFINITY;
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                // The threshold constrains the *merged entry's* statistic,
                // so measure the candidate merge directly.
                let merged = entries[i].merged(&entries[j]);
                let stat = self.params.threshold_kind.statistic(&merged);
                best = best.min(stat);
            }
        }
        Some(best)
    }

    /// Verifies every structural invariant of the CF-tree; returns a
    /// description of the first violation. Intended for tests and debugging
    /// (cost is O(size of tree)).
    ///
    /// This is a thin compatibility wrapper over [`crate::audit::audit`],
    /// which additionally reports structure and floating-point-drift
    /// measurements — prefer calling the auditor directly for those.
    pub fn check_invariants(&self) -> Result<(), String> {
        crate::audit::audit(self)
            .map(|_| ())
            .map_err(|v| v.to_string())
    }

    /// Runs a full [`crate::audit::audit`] of this tree.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found.
    pub fn audit(&self) -> Result<crate::audit::AuditReport, crate::audit::AuditViolation> {
        crate::audit::audit(self)
    }

    /// With the `strict-audit` feature enabled, audits the whole tree and
    /// panics on the first violation, naming the operation that produced
    /// the state. Called after every mutating tree operation; turns a
    /// debug soak run into a per-operation correctness proof.
    #[cfg(feature = "strict-audit")]
    pub(crate) fn strict_audit(&self, op: &str) {
        // The auditor walks the whole tree; with nodes spilled out-of-core
        // it would read hollow placeholders. Out-of-core runs audit at
        // fault-all boundaries instead (see Phase 1's finish path).
        if self.has_evicted_nodes() {
            return;
        }
        if let Err(v) = crate::audit::audit(self) {
            panic!("strict-audit after {op}: {v}");
        }
    }

    /// Without the `strict-audit` feature this is a no-op the optimizer
    /// removes entirely.
    #[cfg(not(feature = "strict-audit"))]
    #[inline(always)]
    pub(crate) fn strict_audit(&self, _op: &str) {}

    // ------------------------------------------------------------------
    // Out-of-core paging (§4.2's "M bytes of memory, pages of P bytes"
    // made literal) and checkpoint/restore.
    // ------------------------------------------------------------------

    /// Switches the tree into out-of-core mode: nodes beyond a resident
    /// budget of `max_resident` pages are spilled to `spill_path` (clock
    /// eviction, root pinned) and faulted back on access. The spill file
    /// is created immediately and deleted when paging is disabled or the
    /// tree is dropped.
    ///
    /// Eviction runs at insert-operation boundaries, so the budget is a
    /// bound on the resident set *between* operations; mid-operation the
    /// descent path plus split churn is transiently resident on top.
    ///
    /// # Errors
    ///
    /// Propagates spill-file creation errors.
    ///
    /// # Panics
    ///
    /// Panics if paging is already enabled or `max_resident < 2`.
    pub fn enable_paging(&mut self, spill_path: &Path, max_resident: usize) -> io::Result<()> {
        assert!(self.pager.is_none(), "paging already enabled");
        assert!(
            max_resident >= 2,
            "page budget must keep at least the root and one other node resident"
        );
        // Physical slots leave one entry row of slack over B/L: splits
        // transiently hold capacity + 1 entries, and a checkpoint taken
        // from a foreign (pre-rebuild) tree may too.
        let cf_words = Cf::words_per_entry(self.params.dim);
        let leaf_words = (self.params.leaf_capacity + 1) * cf_words;
        let interior_words = (self.params.branching + 1) * (cf_words + 1);
        let page_bytes = PAGE_HEADER_BYTES + 8 * leaf_words.max(interior_words);
        let store = PageStore::create(spill_path, page_bytes)?;
        let mut cache = ClockCache::new();
        let free: HashSet<u32> = self.free.iter().map(|id| id.0).collect();
        for n in 0..self.nodes.len() {
            let n = u32::try_from(n).expect("arena overflow");
            if n != self.root.0 && !free.contains(&n) {
                cache.insert(u64::from(n));
            }
        }
        self.pager = Some(Box::new(TreePager {
            store,
            cache,
            slot_of: HashMap::new(),
            max_resident,
            refs: 0,
            faults: 0,
            evictions: 0,
        }));
        self.evict_to_cap();
        Ok(())
    }

    /// Leaves out-of-core mode: faults every spilled node back in and
    /// deletes the spill file. No-op when paging is off.
    pub fn disable_paging(&mut self) {
        self.fault_all();
        self.pager = None;
    }

    /// Whether out-of-core mode is on.
    #[must_use]
    pub fn is_paged(&self) -> bool {
        self.pager.is_some()
    }

    /// Whether any live node is currently spilled to disk (always `false`
    /// with paging off). Whole-tree walks — audits, health, leaf
    /// iteration — require this to be `false`; call [`CfTree::fault_all`]
    /// first.
    #[must_use]
    pub fn has_evicted_nodes(&self) -> bool {
        self.pager.as_ref().is_some_and(|p| !p.slot_of.is_empty())
    }

    /// Page-cache counters and occupancy, or `None` with paging off.
    #[must_use]
    pub fn page_stats(&self) -> Option<PageCacheStats> {
        self.pager.as_ref().map(|p| PageCacheStats {
            refs: p.refs,
            faults: p.faults,
            evictions: p.evictions,
            resident_nodes: self.node_count() - p.slot_of.len(),
            evicted_nodes: p.slot_of.len(),
            spill_file_bytes: p.store.file_bytes(),
            spill_bytes_written: p.store.stats().bytes_written,
            spill_bytes_read: p.store.stats().bytes_read,
        })
    }

    /// Faults every spilled node back into memory (paging stays on, so
    /// subsequent inserts will evict again).
    ///
    /// # Panics
    ///
    /// Panics if the spill file is unreadable or a page fails to verify —
    /// the spill file lives for exactly one process, so damage to it is a
    /// local I/O failure, not a recoverable input condition.
    pub fn fault_all(&mut self) {
        let Some(pager) = self.pager.as_ref() else {
            return;
        };
        let mut ids: Vec<u32> = pager.slot_of.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.fault_in(NodeId(id));
        }
    }

    /// Ensures `id` is resident, reading it back from the spill file if it
    /// was evicted, and marks it recently-used. No-op with paging off —
    /// the hot path pays one `Option` branch.
    fn fault_in(&mut self, id: NodeId) {
        if self.pager.is_none() {
            return;
        }
        let root = self.root;
        let dim = self.params.dim;
        let pager = self.pager.as_mut().expect("pager checked above");
        pager.refs += 1;
        if id != root {
            pager.cache.insert(u64::from(id.0));
        }
        let Some(slot) = pager.slot_of.remove(&id.0) else {
            return;
        };
        pager.faults += 1;
        let buf = pager.store.read_slot(slot).expect("spill file read failed");
        pager.store.free(slot);
        let kind = peek_kind(&buf).expect("spill page header corrupt");
        let page = decode_page(&buf, Node::words_per_entry(kind, dim)).expect("spill page corrupt");
        let mut node = Node::from_decoded_page(&page, dim);
        node.id = id;
        self.nodes[id.index()] = node;
    }

    /// Spills the clock's victim to the spill file, replacing its arena
    /// entry with a hollow placeholder. Returns `false` when nothing is
    /// evictable.
    fn evict_one(&mut self) -> bool {
        let Some(pager) = self.pager.as_mut() else {
            return false;
        };
        let Some(key) = pager.cache.evict() else {
            return false;
        };
        let id = NodeId(u32::try_from(key).expect("cache keys are node ids"));
        let (kind, count, prev, next, words) = self.nodes[id.index()].to_page_words();
        let pager = self.pager.as_mut().expect("pager checked above");
        let buf = encode_page(pager.store.page_bytes(), kind, count, prev, next, &words)
            .expect("node exceeds its physical page slot");
        let slot = pager.store.alloc();
        pager
            .store
            .write_slot(slot, &buf)
            .expect("spill file write failed");
        pager.slot_of.insert(id.0, slot);
        pager.evictions += 1;
        let mut hollow = Node::new_leaf();
        hollow.id = id;
        self.nodes[id.index()] = hollow;
        true
    }

    /// Evicts until the live resident set fits the page budget. Called at
    /// operation boundaries, when every node is within B/L capacity.
    fn evict_to_cap(&mut self) {
        loop {
            let Some(pager) = self.pager.as_ref() else {
                return;
            };
            let resident = self.node_count() - pager.slot_of.len();
            if resident <= pager.max_resident || !self.evict_one() {
                return;
            }
        }
    }

    /// 0 = stable CF backend, 1 = classic. A snapshot records which
    /// backend wrote it because their word layouts differ and cross-uses
    /// would reinterpret statistics.
    fn backend_tag() -> u32 {
        u32::from(cfg!(feature = "classic-cf"))
    }

    /// Writes a versioned, per-section-checksummed snapshot of the whole
    /// tree to `path` (atomically: temp sibling + fsync + rename). Spilled
    /// nodes are faulted in first, so the snapshot is always complete.
    /// Restore with [`CfTree::reopen`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the snapshot.
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), SnapshotError> {
        self.fault_all();
        let mut w = SnapshotWriter::new();
        w.add_section(*b"META", self.encode_meta());
        let free: HashSet<u32> = self.free.iter().map(|id| id.0).collect();
        for (i, node) in self.nodes.iter().enumerate() {
            let id = u32::try_from(i).expect("arena overflow");
            if free.contains(&id) {
                continue;
            }
            let (kind, count, prev, next, words) = node.to_page_words();
            // Snapshot pages are tight (header + payload), not padded to
            // the physical slot size: node id first, page bytes after.
            let page_bytes = PAGE_HEADER_BYTES + words.len() * 8;
            let page = encode_page(page_bytes, kind, count, prev, next, &words)
                .expect("tight page cannot overflow");
            let mut payload = Vec::with_capacity(4 + page.len());
            payload.extend_from_slice(&id.to_le_bytes());
            payload.extend_from_slice(&page);
            w.add_section(*b"NODE", payload);
        }
        w.finish(path)?;
        Ok(())
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut m = Vec::with_capacity(128 + 8 * Cf::words_per_entry(self.params.dim));
        let p = &self.params;
        m.extend_from_slice(&Self::backend_tag().to_le_bytes());
        m.extend_from_slice(&u32::try_from(p.dim).expect("dim range").to_le_bytes());
        m.extend_from_slice(&u32::try_from(p.branching).expect("B range").to_le_bytes());
        m.extend_from_slice(
            &u32::try_from(p.leaf_capacity)
                .expect("L range")
                .to_le_bytes(),
        );
        m.push(threshold_kind_to_byte(p.threshold_kind));
        m.push(metric_to_byte(p.metric));
        m.push(u8::from(p.merge_refinement));
        m.push(u8::from(p.descend_prune));
        m.extend_from_slice(&p.threshold.to_bits().to_le_bytes());
        m.extend_from_slice(&self.root.0.to_le_bytes());
        m.extend_from_slice(&self.first_leaf.0.to_le_bytes());
        m.extend_from_slice(
            &u32::try_from(self.height)
                .expect("height range")
                .to_le_bytes(),
        );
        m.extend_from_slice(
            &u32::try_from(self.nodes.len())
                .expect("arena overflow")
                .to_le_bytes(),
        );
        m.extend_from_slice(&(self.leaf_entry_count as u64).to_le_bytes());
        m.extend_from_slice(&self.max_input_stat.to_bits().to_le_bytes());
        m.extend_from_slice(&self.stats.splits.to_le_bytes());
        m.extend_from_slice(&self.stats.merge_refinements.to_le_bytes());
        m.extend_from_slice(&self.stats.distance_calls.to_le_bytes());
        m.extend_from_slice(&self.stats.distance_calls_pruned.to_le_bytes());
        m.extend_from_slice(
            &u32::try_from(self.free.len())
                .expect("free list range")
                .to_le_bytes(),
        );
        for id in &self.free {
            m.extend_from_slice(&id.0.to_le_bytes());
        }
        let mut words = Vec::with_capacity(Cf::words_per_entry(self.params.dim));
        self.total.to_words(&mut words);
        m.extend_from_slice(
            &u32::try_from(words.len())
                .expect("CF word range")
                .to_le_bytes(),
        );
        for w in words {
            m.extend_from_slice(&w.to_le_bytes());
        }
        m
    }

    /// Reconstructs a tree from a [`CfTree::checkpoint`] snapshot. The
    /// result is fully resident with paging off (re-enable it with
    /// [`CfTree::enable_paging`] if desired); leaf CF statistics are
    /// bit-identical to the checkpointed tree's.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: unreadable file, bad magic/version, a
    /// checksum mismatch anywhere, or a structurally inconsistent META
    /// section — corruption is always a typed error, never garbage stats.
    pub fn reopen(path: &Path) -> Result<Self, SnapshotError> {
        let malformed = |detail: String| SnapshotError::Malformed { detail };
        let snap = SnapshotReader::open(path)?;
        let meta = snap.require(*b"META")?;
        let mut c = MetaCursor { buf: meta, at: 0 };

        let backend = c.u32()?;
        if backend != Self::backend_tag() {
            return Err(malformed(format!(
                "snapshot written by CF backend {backend}, this build is {}",
                Self::backend_tag()
            )));
        }
        let dim = c.u32()? as usize;
        let branching = c.u32()? as usize;
        let leaf_capacity = c.u32()? as usize;
        let threshold_kind = threshold_kind_from_byte(c.u8()?)
            .ok_or_else(|| malformed("unknown threshold kind byte".into()))?;
        let metric = metric_from_byte(c.u8()?)
            .ok_or_else(|| malformed("unknown distance metric byte".into()))?;
        let merge_refinement = c.u8()? != 0;
        let descend_prune = c.u8()? != 0;
        let threshold = f64::from_bits(c.u64()?);
        if dim == 0 || branching < 2 || leaf_capacity < 2 || !threshold.is_finite() {
            return Err(malformed("inconsistent tree parameters".into()));
        }
        let params = TreeParams {
            dim,
            branching,
            leaf_capacity,
            threshold,
            threshold_kind,
            metric,
            merge_refinement,
            descend_prune,
        };
        let root = NodeId(c.u32()?);
        let first_leaf = NodeId(c.u32()?);
        let height = c.u32()? as usize;
        let arena_len = c.u32()? as usize;
        let leaf_entry_count = usize::try_from(c.u64()?)
            .map_err(|_| malformed("leaf entry count exceeds this platform".into()))?;
        let max_input_stat = f64::from_bits(c.u64()?);
        let stats = TreeStats {
            splits: c.u64()?,
            merge_refinements: c.u64()?,
            distance_calls: c.u64()?,
            distance_calls_pruned: c.u64()?,
        };
        let free_len = c.u32()? as usize;
        let mut free = Vec::with_capacity(free_len);
        let mut free_set = HashSet::with_capacity(free_len);
        for _ in 0..free_len {
            let id = c.u32()?;
            if id as usize >= arena_len || !free_set.insert(id) {
                return Err(malformed(format!("bad free-list id {id}")));
            }
            free.push(NodeId(id));
        }
        let total_words_len = c.u32()? as usize;
        if total_words_len != Cf::words_per_entry(dim) {
            return Err(malformed(format!(
                "total CF has {total_words_len} words, expected {}",
                Cf::words_per_entry(dim)
            )));
        }
        let mut total_words = Vec::with_capacity(total_words_len);
        for _ in 0..total_words_len {
            total_words.push(c.u64()?);
        }
        c.finish()?;
        let total = Cf::from_words(&total_words, dim);

        if root.index() >= arena_len || first_leaf.index() >= arena_len || height == 0 {
            return Err(malformed("root/first-leaf/height out of range".into()));
        }

        let mut slots: Vec<Option<Node>> =
            std::iter::repeat_with(|| None).take(arena_len).collect();
        for payload in snap.sections(*b"NODE") {
            if payload.len() < 4 {
                return Err(malformed("NODE section shorter than its id".into()));
            }
            let id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
            if id as usize >= arena_len {
                return Err(malformed(format!("node id {id} outside the arena")));
            }
            let page_buf = &payload[4..];
            let kind = peek_kind(page_buf).map_err(|e| malformed(format!("node {id}: {e}")))?;
            let page = decode_page(page_buf, Node::words_per_entry(kind, dim))
                .map_err(|e| malformed(format!("node {id}: {e}")))?;
            let mut node = Node::from_decoded_page(&page, dim);
            node.id = NodeId(id);
            if slots[id as usize].replace(node).is_some() {
                return Err(malformed(format!("duplicate NODE section for id {id}")));
            }
        }
        let mut nodes = Vec::with_capacity(arena_len);
        for (i, slot) in slots.into_iter().enumerate() {
            let id = u32::try_from(i).expect("arena overflow");
            match slot {
                Some(node) => {
                    if free_set.contains(&id) {
                        return Err(malformed(format!("free-listed id {id} has a NODE")));
                    }
                    nodes.push(node);
                }
                None => {
                    if !free_set.contains(&id) {
                        return Err(malformed(format!("live node {id} missing its NODE")));
                    }
                    let mut hollow = Node::new_leaf();
                    hollow.id = NodeId(id);
                    nodes.push(hollow);
                }
            }
        }

        Ok(Self {
            params,
            nodes,
            free,
            root,
            first_leaf,
            height,
            leaf_entry_count,
            total,
            stats,
            max_input_stat,
            pager: None,
        })
    }
}

/// Bounds-checked little-endian reader over the snapshot META payload:
/// every short read is a typed [`SnapshotError::Malformed`], never a
/// panic, so a truncating corruption that survives framing cannot crash
/// the restore path.
struct MetaCursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> MetaCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(SnapshotError::Malformed {
                detail: format!("META truncated at byte {}", self.at),
            });
        };
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.at != self.buf.len() {
            return Err(SnapshotError::Malformed {
                detail: format!("META has {} trailing bytes", self.buf.len() - self.at),
            });
        }
        Ok(())
    }
}

fn threshold_kind_to_byte(k: ThresholdKind) -> u8 {
    match k {
        ThresholdKind::Diameter => 0,
        ThresholdKind::Radius => 1,
    }
}

fn threshold_kind_from_byte(b: u8) -> Option<ThresholdKind> {
    match b {
        0 => Some(ThresholdKind::Diameter),
        1 => Some(ThresholdKind::Radius),
        _ => None,
    }
}

fn metric_to_byte(m: DistanceMetric) -> u8 {
    match m {
        DistanceMetric::D0 => 0,
        DistanceMetric::D1 => 1,
        DistanceMetric::D2 => 2,
        DistanceMetric::D3 => 3,
        DistanceMetric::D4 => 4,
    }
}

fn metric_from_byte(b: u8) -> Option<DistanceMetric> {
    match b {
        0 => Some(DistanceMetric::D0),
        1 => Some(DistanceMetric::D1),
        2 => Some(DistanceMetric::D2),
        3 => Some(DistanceMetric::D3),
        4 => Some(DistanceMetric::D4),
        _ => None,
    }
}

/// An entry on its way into the tree: owned (the public `insert_cf` path)
/// or borrowed (the scratch-CF feed path). A borrowed entry is cloned only
/// at the moment it must be stored as a new leaf entry, so the common
/// absorbed case allocates nothing.
enum EntInput<'a> {
    Owned(Cf),
    Ref(&'a Cf),
}

impl EntInput<'_> {
    fn get(&self) -> &Cf {
        match self {
            EntInput::Owned(cf) => cf,
            EntInput::Ref(cf) => cf,
        }
    }

    fn into_cf(self) -> Cf {
        match self {
            EntInput::Owned(cf) => cf,
            EntInput::Ref(cf) => cf.clone(),
        }
    }
}

struct LeafIter<'a> {
    tree: &'a CfTree,
    cur: Option<NodeId>,
}

impl Iterator for LeafIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = match &self.tree.node(id).kind {
            NodeKind::Leaf { next, .. } => *next,
            NodeKind::Interior { .. } => unreachable!("interior node in leaf chain"),
        };
        Some(id)
    }
}

/// Splits `items` into two non-empty groups: the farthest pair of items
/// (under `metric`, comparing the CFs produced by `cf_of`) seed the groups
/// and every other item joins the nearer seed. This is the paper's split
/// rule ("choosing the farthest pair of entries as seeds, and redistributing
/// the remaining entries based on the closest criteria").
fn partition_by_farthest_pair<T>(
    items: Vec<T>,
    cf_of: impl Fn(&T) -> &Cf,
    metric: DistanceMetric,
) -> (Vec<T>, Vec<T>) {
    assert!(items.len() >= 2, "cannot partition fewer than 2 items");
    // Gather the items' CFs into one contiguous SoA block: the O(n²)
    // farthest-pair matrix and the redistribution pass both become linear
    // sweeps over cache-resident rows.
    let block = CfBlock::from_cfs(items.iter().map(&cf_of));
    let (s1, s2, _) = farthest_pair(metric, &block).expect("at least 2 items");
    let mut g1 = Vec::with_capacity(items.len() / 2 + 1);
    let mut g2 = Vec::with_capacity(items.len() / 2 + 1);
    for (k, item) in items.into_iter().enumerate() {
        if k == s1 {
            g1.push(item);
        } else if k == s2 {
            g2.push(item);
        } else {
            let d1 = pair_in_block(metric, &block, k, s1);
            let d2 = pair_in_block(metric, &block, k, s2);
            if d1 <= d2 {
                g1.push(item);
            } else {
                g2.push(item);
            }
        }
    }
    (g1, g2)
}

/// Moves items from an over-full group to the other until both respect
/// `capacity`. Proximity partitioning ignores capacity, and a merge+resplit
/// pools up to `2×capacity` items, so a group can overflow; each move picks
/// the overflowing group's item closest to the *other* group's summary,
/// keeping the redistribution as proximity-faithful as possible.
fn rebalance_to_capacity<T>(
    g1: &mut Vec<T>,
    g2: &mut Vec<T>,
    cf_of: impl Fn(&T) -> &Cf,
    metric: DistanceMetric,
    capacity: usize,
    dim: usize,
) {
    debug_assert!(g1.len() + g2.len() <= 2 * capacity, "pool too large to fit");
    let group_cf = |g: &[T]| {
        let mut cf = Cf::empty(dim);
        for item in g {
            cf.merge(cf_of(item));
        }
        cf
    };
    loop {
        let (from, to) = if g1.len() > capacity {
            (&mut *g1, &mut *g2)
        } else if g2.len() > capacity {
            (&mut *g2, &mut *g1)
        } else {
            return;
        };
        let target = group_cf(to);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, item) in from.iter().enumerate() {
            let d = if target.is_empty() {
                0.0
            } else {
                metric.distance(cf_of(item), &target)
            };
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let item = from.swap_remove(best);
        to.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn small_params(threshold: f64) -> TreeParams {
        TreeParams {
            dim: 2,
            branching: 3,
            leaf_capacity: 3,
            threshold,
            threshold_kind: ThresholdKind::Diameter,
            metric: DistanceMetric::D2,
            merge_refinement: true,
            descend_prune: false,
        }
    }

    #[test]
    fn empty_tree_is_consistent() {
        let t = CfTree::new(TreeParams::for_dim(2));
        assert_eq!(t.leaf_entry_count(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        t.check_invariants().unwrap();
        assert_eq!(t.leaf_entries().count(), 0);
    }

    #[test]
    fn first_insert_adds_entry() {
        let mut t = CfTree::new(small_params(1.0));
        let out = t.insert_point(&Point::xy(1.0, 1.0));
        assert_eq!(out, InsertOutcome::Added);
        assert_eq!(t.leaf_entry_count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn close_point_absorbed_far_point_added() {
        let mut t = CfTree::new(small_params(1.0));
        t.insert_point(&Point::xy(0.0, 0.0));
        let out = t.insert_point(&Point::xy(0.1, 0.0));
        assert_eq!(out, InsertOutcome::Absorbed);
        assert_eq!(t.leaf_entry_count(), 1);
        let out = t.insert_point(&Point::xy(10.0, 0.0));
        assert_eq!(out, InsertOutcome::Added);
        assert_eq!(t.leaf_entry_count(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn zero_threshold_only_merges_identical_points() {
        let mut t = CfTree::new(small_params(0.0));
        t.insert_point(&Point::xy(1.0, 1.0));
        assert_eq!(
            t.insert_point(&Point::xy(1.0, 1.0)),
            InsertOutcome::Absorbed
        );
        // An offset large enough to survive the CF algebra's floating-point
        // cancellation (SS − ‖LS‖²/N operates near ‖LS‖² ≈ 16 here).
        assert_eq!(
            t.insert_point(&Point::xy(1.0, 1.0 + 1e-3)),
            InsertOutcome::Added
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn leaf_split_grows_tree() {
        let mut t = CfTree::new(small_params(0.0));
        // L = 3 distinct points fill the root leaf; the 4th splits it.
        for i in 0..3 {
            t.insert_point(&Point::xy(f64::from(i) * 10.0, 0.0));
        }
        assert_eq!(t.height(), 1);
        let out = t.insert_point(&Point::xy(35.0, 0.0));
        assert_eq!(out, InsertOutcome::AddedWithSplit);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaf_entry_count(), 4);
        assert!(t.stats().splits >= 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn many_inserts_keep_invariants_and_balance() {
        let mut t = CfTree::new(small_params(0.5));
        // A deterministic pseudo-random walk over a 2-d box.
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for i in 0..500 {
            x = (x * 1.3 + f64::from(i) * 0.7).rem_euclid(50.0);
            y = (y * 1.7 + f64::from(i) * 0.3).rem_euclid(50.0);
            t.insert_point(&Point::xy(x, y));
        }
        t.check_invariants().unwrap();
        assert!(t.height() >= 3, "expected a multi-level tree");
        assert_eq!(t.total_cf().n(), 500.0);
    }

    #[test]
    fn leaf_chain_order_matches_left_to_right() {
        let mut t = CfTree::new(small_params(0.0));
        for i in 0..40 {
            t.insert_point(&Point::xy(f64::from(i), 0.0));
        }
        t.check_invariants().unwrap();
        // Chain order must equal DFS order (checked by invariants), and the
        // entries visited in chain order should cover all 40 points.
        let total: f64 = t.leaf_entries().map(Cf::n).sum();
        assert_eq!(total, 40.0);
    }

    #[test]
    fn insert_cf_subcluster() {
        let mut t = CfTree::new(small_params(5.0));
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::xy(f64::from(i) * 0.1, 0.0))
            .collect();
        let sub = Cf::from_points(&pts);
        t.insert_cf(sub.clone());
        assert_eq!(t.leaf_entry_count(), 1);
        assert_eq!(t.total_cf().n(), 10.0);
        // A nearby subcluster within threshold should be absorbed.
        let sub2 = Cf::from_point(&Point::xy(0.45, 0.0));
        assert_eq!(t.insert_cf(sub2), InsertOutcome::Absorbed);
        t.check_invariants().unwrap();
    }

    #[test]
    fn try_absorb_success_and_failure() {
        let mut t = CfTree::new(small_params(1.0));
        t.insert_point(&Point::xy(0.0, 0.0));
        assert!(t.try_absorb(&Cf::from_point(&Point::xy(0.2, 0.0))));
        assert_eq!(t.leaf_entry_count(), 1);
        assert!(!t.try_absorb(&Cf::from_point(&Point::xy(50.0, 0.0))));
        assert_eq!(t.leaf_entry_count(), 1);
        assert_eq!(t.total_cf().n(), 2.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn try_absorb_on_empty_tree_fails() {
        let mut t = CfTree::new(small_params(1.0));
        assert!(!t.try_absorb(&Cf::from_point(&Point::xy(0.0, 0.0))));
    }

    #[test]
    fn larger_threshold_fewer_entries() {
        let mk = |thr: f64| {
            let mut t = CfTree::new(small_params(thr));
            for i in 0..200 {
                let v = f64::from(i % 20);
                t.insert_point(&Point::xy(v, v * 0.5));
            }
            t.leaf_entry_count()
        };
        let fine = mk(0.1);
        let coarse = mk(10.0);
        assert!(
            coarse < fine,
            "coarse threshold should compress more: {coarse} vs {fine}"
        );
    }

    #[test]
    fn partition_separates_two_blobs() {
        let mut items: Vec<Cf> = Vec::new();
        for i in 0..5 {
            items.push(Cf::from_point(&Point::xy(f64::from(i) * 0.1, 0.0)));
        }
        for i in 0..5 {
            items.push(Cf::from_point(&Point::xy(100.0 + f64::from(i) * 0.1, 0.0)));
        }
        let (g1, g2) = partition_by_farthest_pair(items, |e| e, DistanceMetric::D0);
        assert_eq!(g1.len(), 5);
        assert_eq!(g2.len(), 5);
        let c1 = g1[0].centroid()[0];
        assert!(g1.iter().all(|e| (e.centroid()[0] - c1).abs() < 10.0));
    }

    #[test]
    fn partition_of_two_items() {
        let items = vec![
            Cf::from_point(&Point::xy(0.0, 0.0)),
            Cf::from_point(&Point::xy(1.0, 0.0)),
        ];
        let (g1, g2) = partition_by_farthest_pair(items, |e| e, DistanceMetric::D0);
        assert_eq!(g1.len(), 1);
        assert_eq!(g2.len(), 1);
    }

    #[test]
    fn mean_entry_statistic_and_dmin() {
        let mut t = CfTree::new(small_params(2.0));
        for i in 0..30 {
            t.insert_point(&Point::xy(f64::from(i % 5) * 3.0, 0.0));
            t.insert_point(&Point::xy(f64::from(i % 5) * 3.0 + 0.5, 0.0));
        }
        let stat = t.mean_entry_statistic();
        assert!(stat > 0.0 && stat <= 2.0, "stat={stat}");
        let dmin = t.dmin_most_crowded_leaf().unwrap();
        assert!(dmin > 0.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_heavy_input_stays_small() {
        let mut t = CfTree::new(small_params(0.0));
        for _ in 0..1000 {
            t.insert_point(&Point::xy(1.0, 2.0));
        }
        assert_eq!(t.leaf_entry_count(), 1);
        assert_eq!(t.total_cf().n(), 1000.0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn merge_refinement_counter_moves_on_skewed_input() {
        // Sorted (skewed) input is exactly the case §4.3's refinement
        // targets; with small B it should fire at least once.
        let mut t = CfTree::new(TreeParams {
            merge_refinement: true,
            ..small_params(0.0)
        });
        for i in 0..300 {
            t.insert_point(&Point::xy(f64::from(i) * 0.7, f64::from(i % 7)));
        }
        t.check_invariants().unwrap();
        assert!(
            t.stats().merge_refinements > 0,
            "expected merging refinement to trigger on ordered input"
        );
    }

    #[test]
    fn refinement_off_still_consistent() {
        let mut t = CfTree::new(TreeParams {
            merge_refinement: false,
            ..small_params(0.0)
        });
        for i in 0..300 {
            t.insert_point(&Point::xy(f64::from(i) * 0.7, f64::from(i % 7)));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.stats().merge_refinements, 0);
    }

    /// The deterministic pseudo-random walk shared by the counter tests.
    fn walk_tree(params: TreeParams) -> CfTree {
        let mut t = CfTree::new(params);
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for i in 0..500 {
            x = (x * 1.3 + f64::from(i) * 0.7).rem_euclid(50.0);
            y = (y * 1.7 + f64::from(i) * 0.3).rem_euclid(50.0);
            t.insert_point(&Point::xy(x, y));
        }
        t
    }

    // Runs on both backends: the classic bound is exact, the stable one
    // is widened by `D0_PRUNE_SLACK_REL` — either way selection is
    // provably unchanged, so the trees must be identical and the
    // evaluated/pruned counters must reconcile exactly.
    #[test]
    fn d0_prune_builds_identical_tree_and_counts_pruned() {
        let mk = |prune: bool| {
            walk_tree(TreeParams {
                metric: DistanceMetric::D0,
                descend_prune: prune,
                ..small_params(0.5)
            })
        };
        let base = mk(false);
        let pruned = mk(true);
        // Selection is provably unchanged, so the trees must be identical.
        let a: Vec<Cf> = base.leaf_entries().cloned().collect();
        let b: Vec<Cf> = pruned.leaf_entries().cloned().collect();
        assert_eq!(a, b, "pruned descent must build an identical tree");
        assert_eq!(base.stats().splits, pruned.stats().splits);
        assert_eq!(
            base.stats().merge_refinements,
            pruned.stats().merge_refinements
        );
        // The prune must actually fire, and every candidate is either
        // evaluated or pruned — the totals reconcile exactly.
        assert_eq!(base.stats().distance_calls_pruned, 0);
        assert!(
            pruned.stats().distance_calls_pruned > 0,
            "prune never fired"
        );
        assert_eq!(
            pruned.stats().distance_calls + pruned.stats().distance_calls_pruned,
            base.stats().distance_calls,
        );
        base.check_invariants().unwrap();
        pruned.check_invariants().unwrap();
    }

    #[test]
    fn prune_flag_is_inert_under_non_d0_metrics() {
        let t = walk_tree(TreeParams {
            descend_prune: true,
            ..small_params(0.5)
        });
        let u = walk_tree(small_params(0.5));
        assert_eq!(t.stats(), u.stats(), "prune flag must be a no-op under D2");
        assert_eq!(t.stats().distance_calls_pruned, 0);
    }

    #[test]
    fn distance_call_counter_is_pinned_on_fixed_workload() {
        // Regression pin: the descent + closest-leaf-entry scans of the
        // fixed 500-point walk perform exactly this many distance
        // evaluations. A change here means the hot path gained or lost
        // evaluations — intentional changes must update the pin.
        let t = walk_tree(small_params(0.5));
        assert_eq!(t.stats().distance_calls, DISTANCE_CALLS_PIN);
        assert_eq!(t.stats().distance_calls_pruned, 0);
    }

    /// See `distance_call_counter_is_pinned_on_fixed_workload`.
    const DISTANCE_CALLS_PIN: u64 = 7419;

    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    #[test]
    fn simd_kernel_span_nests_under_descend_and_split() {
        // The lane scans open a "simd_kernel" span, so a profiled run
        // must show it nested under the insert paths that reach them:
        // descend (closest_among) and split (farthest-pair seeding).
        // Own thread: the profiler state is thread-local and must not
        // leak into other tests sharing a cargo test worker.
        std::thread::scope(|s| {
            s.spawn(|| {
                crate::obs::span::set_enabled(true);
                walk_tree(small_params(0.5));
                let report = crate::obs::span::take_report();
                crate::obs::span::set_enabled(false);
                let descend = report
                    .get("insert/descend/simd_kernel")
                    .expect("simd_kernel span under descend");
                assert!(descend.calls > 0);
                let split = report
                    .get("insert/split/simd_kernel")
                    .expect("simd_kernel span under split");
                assert!(split.calls > 0);
            })
            .join()
            .expect("span test thread");
        });
    }

    #[test]
    #[should_panic(expected = "cannot insert an empty CF")]
    fn inserting_empty_cf_panics() {
        let mut t = CfTree::new(small_params(1.0));
        t.insert_cf(Cf::empty(2));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut t = CfTree::new(small_params(1.0));
        t.insert_cf(Cf::from_point(&Point::new(vec![1.0, 2.0, 3.0])));
    }

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("birch-tree-test-{}-{tag}", std::process::id()))
    }

    /// Identical f64 bit patterns, entry by entry, leaf chain order.
    fn assert_bit_identical(a: &CfTree, b: &CfTree) {
        let ea: Vec<&Cf> = a.leaf_entries().collect();
        let eb: Vec<&Cf> = b.leaf_entries().collect();
        assert_eq!(ea.len(), eb.len(), "leaf entry counts differ");
        for (i, (x, y)) in ea.iter().zip(&eb).enumerate() {
            let mut wx = Vec::new();
            let mut wy = Vec::new();
            x.to_words(&mut wx);
            y.to_words(&mut wy);
            assert_eq!(wx, wy, "leaf entry {i} differs bitwise");
        }
    }

    #[test]
    fn paged_build_bounds_residency_and_matches_unpaged() {
        let spill = temp_file("paged-build.pages");
        let budget = 4;

        let mut paged = CfTree::new(small_params(0.5));
        paged.enable_paging(&spill, budget).unwrap();
        let mut resident = CfTree::new(small_params(0.5));

        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for i in 0..500 {
            x = (x * 1.3 + f64::from(i) * 0.7).rem_euclid(50.0);
            y = (y * 1.7 + f64::from(i) * 0.3).rem_euclid(50.0);
            paged.insert_point(&Point::xy(x, y));
            resident.insert_point(&Point::xy(x, y));
            let s = paged.page_stats().unwrap();
            assert!(
                s.resident_nodes <= budget,
                "resident {} exceeds page budget {budget} at op boundary",
                s.resident_nodes
            );
        }
        assert!(
            paged.node_count() > budget,
            "workload too small to exercise eviction"
        );
        let s = paged.page_stats().unwrap();
        assert!(s.evictions > 0, "no evictions despite budget pressure");
        assert!(s.faults > 0, "no faults despite evictions");
        assert!(s.spill_bytes_written > 0);

        // Descent order, splits, and CF arithmetic are untouched by
        // paging: counters and leaf stats must be exactly equal.
        assert_eq!(paged.stats(), resident.stats());
        paged.disable_paging();
        assert!(!spill.exists(), "spill file must be deleted");
        paged.audit().unwrap();
        assert_bit_identical(&paged, &resident);
    }

    #[test]
    fn checkpoint_reopen_is_bit_identical_and_continues_equally() {
        let snap = temp_file("checkpoint.snapshot");
        let mut t = walk_tree(small_params(0.5));
        t.checkpoint(&snap).unwrap();

        let mut back = CfTree::reopen(&snap).unwrap();
        std::fs::remove_file(&snap).unwrap();
        back.audit().unwrap();
        assert_eq!(back.params(), t.params());
        assert_eq!(back.height(), t.height());
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.leaf_entry_count(), t.leaf_entry_count());
        assert_eq!(back.stats(), t.stats());
        assert_bit_identical(&back, &t);
        {
            let mut wa = Vec::new();
            let mut wb = Vec::new();
            t.total_cf().to_words(&mut wa);
            back.total_cf().to_words(&mut wb);
            assert_eq!(wa, wb, "total CF differs bitwise");
        }

        // The restored tree must behave identically from here on.
        for i in 0..100 {
            let p = Point::xy(f64::from(i) * 0.37 % 50.0, f64::from(i) * 0.73 % 50.0);
            assert_eq!(t.insert_point(&p), back.insert_point(&p));
        }
        assert_eq!(back.stats(), t.stats());
        assert_bit_identical(&back, &t);
    }

    #[test]
    fn paged_checkpoint_faults_all_and_restores() {
        let spill = temp_file("paged-ckpt.pages");
        let snap = temp_file("paged-ckpt.snapshot");
        let mut t = CfTree::new(small_params(0.5));
        t.enable_paging(&spill, 3).unwrap();
        for i in 0..200 {
            let p = Point::xy(f64::from(i) * 1.37 % 40.0, f64::from(i) * 2.11 % 40.0);
            t.insert_point(&p);
        }
        assert!(t.has_evicted_nodes(), "budget 3 must force spills");
        t.checkpoint(&snap).unwrap();
        assert!(!t.has_evicted_nodes(), "checkpoint faults everything in");

        let back = CfTree::reopen(&snap).unwrap();
        std::fs::remove_file(&snap).unwrap();
        back.audit().unwrap();
        assert!(!back.is_paged(), "a reopened tree starts fully resident");
        t.disable_paging();
        assert_bit_identical(&back, &t);
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let snap = temp_file("corrupt.snapshot");
        let mut t = walk_tree(small_params(0.5));
        t.checkpoint(&snap).unwrap();
        let bytes = std::fs::read(&snap).unwrap();

        // Flip one byte at a spread of offsets: every read must fail
        // loudly, never return a tree with silently wrong statistics.
        for at in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            std::fs::write(&snap, &bad).unwrap();
            assert!(
                CfTree::reopen(&snap).is_err(),
                "flip at byte {at} went undetected"
            );
        }
        // Truncations too.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&snap, &bytes[..cut]).unwrap();
            assert!(
                CfTree::reopen(&snap).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
        std::fs::remove_file(&snap).unwrap();
    }

    #[test]
    fn reopen_rejects_wrong_backend_tag() {
        let snap = temp_file("backend.snapshot");
        let mut t = walk_tree(small_params(0.5));
        t.checkpoint(&snap).unwrap();
        // A payload edit means re-checksumming, so rebuild the snapshot
        // through the writer with the backend tag flipped.
        let reader = SnapshotReader::open(&snap).unwrap();
        let mut meta = reader.require(*b"META").unwrap().to_vec();
        meta[0] ^= 1; // flip the backend tag
        let mut w = SnapshotWriter::new();
        w.add_section(*b"META", meta);
        for node in reader.sections(*b"NODE") {
            w.add_section(*b"NODE", node.to_vec());
        }
        w.finish(&snap).unwrap();
        let err = CfTree::reopen(&snap).unwrap_err();
        std::fs::remove_file(&snap).unwrap();
        assert!(
            matches!(err, SnapshotError::Malformed { .. }),
            "wrong backend must be malformed, got {err}"
        );
    }
}
