//! Arena-allocated CF-tree nodes.
//!
//! §4.2: a CF-tree node is either a **nonleaf** holding at most `B` entries
//! of the form `[CFᵢ, childᵢ]`, or a **leaf** holding at most `L` CF entries
//! plus `prev`/`next` pointers chaining all leaves together. Each node
//! occupies one page.
//!
//! Nodes live in a `Vec` arena indexed by [`NodeId`] — cache-friendly, no
//! `Rc<RefCell<…>>`, and page accounting is just arena occupancy.

use crate::cf::Cf;

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `[CFᵢ, childᵢ]` entry of a nonleaf node.
#[derive(Debug, Clone)]
pub struct ChildEntry {
    /// Summary of the entire subtree rooted at `child`.
    pub cf: Cf,
    /// The subtree root.
    pub child: NodeId,
}

/// Payload of a node: leaf or interior.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A leaf node: CF entries (each a subcluster obeying the threshold
    /// condition) plus its position in the doubly linked leaf chain.
    Leaf {
        /// The subcluster summaries stored in this leaf.
        entries: Vec<Cf>,
        /// Previous leaf in the chain (`None` at the head).
        prev: Option<NodeId>,
        /// Next leaf in the chain (`None` at the tail).
        next: Option<NodeId>,
    },
    /// An interior (nonleaf) node: `[CF, child]` routing entries.
    Interior {
        /// The routing entries, in sibling order.
        children: Vec<ChildEntry>,
    },
}

/// Sentinel id of a node not yet placed in an arena.
const UNALLOCATED: NodeId = NodeId(u32::MAX);

/// A CF-tree node (one simulated page).
#[derive(Debug, Clone)]
pub struct Node {
    /// The node payload.
    pub kind: NodeKind,
    /// The arena slot this node occupies, stamped by the tree's allocator
    /// ([`UNALLOCATED`] until then). Lets accessors and the auditor name
    /// the node in diagnostics, and lets the auditor verify arena
    /// consistency.
    pub(crate) id: NodeId,
}

impl Node {
    /// A fresh empty leaf, not yet linked into the chain.
    #[must_use]
    pub fn new_leaf() -> Self {
        Self {
            kind: NodeKind::Leaf {
                entries: Vec::new(),
                prev: None,
                next: None,
            },
            id: UNALLOCATED,
        }
    }

    /// A fresh interior node with no children.
    #[must_use]
    pub fn new_interior() -> Self {
        Self {
            kind: NodeKind::Interior {
                children: Vec::new(),
            },
            id: UNALLOCATED,
        }
    }

    /// The arena id stamped on this node at allocation.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A short human-readable identity for diagnostics, e.g.
    /// `"n7 (leaf, 3 entries)"`.
    #[must_use]
    pub fn describe(&self) -> String {
        let id = if self.id == UNALLOCATED {
            "n?".to_string()
        } else {
            format!("n{}", self.id.0)
        };
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                format!("{id} (leaf, {} entries)", entries.len())
            }
            NodeKind::Interior { children } => {
                format!("{id} (interior, {} children)", children.len())
            }
        }
    }

    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Number of entries (CF entries for a leaf, children for an interior).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => entries.len(),
            NodeKind::Interior { children } => children.len(),
        }
    }

    /// Leaf entries, panicking if this is an interior node.
    #[must_use]
    pub fn leaf_entries(&self) -> &[Cf] {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => entries,
            NodeKind::Interior { .. } => {
                panic!("leaf_entries on interior node {}", self.describe())
            }
        }
    }

    /// Mutable leaf entries, panicking if this is an interior node.
    pub fn leaf_entries_mut(&mut self) -> &mut Vec<Cf> {
        if matches!(self.kind, NodeKind::Interior { .. }) {
            panic!("leaf_entries_mut on interior node {}", self.describe());
        }
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => entries,
            NodeKind::Interior { .. } => unreachable!(),
        }
    }

    /// Interior children, panicking if this is a leaf.
    #[must_use]
    pub fn children(&self) -> &[ChildEntry] {
        match &self.kind {
            NodeKind::Interior { children } => children,
            NodeKind::Leaf { .. } => panic!("children on leaf node {}", self.describe()),
        }
    }

    /// Mutable interior children, panicking if this is a leaf.
    pub fn children_mut(&mut self) -> &mut Vec<ChildEntry> {
        if matches!(self.kind, NodeKind::Leaf { .. }) {
            panic!("children_mut on leaf node {}", self.describe());
        }
        match &mut self.kind {
            NodeKind::Interior { children } => children,
            NodeKind::Leaf { .. } => unreachable!(),
        }
    }

    /// Exact CF summary of this node: the sum of its entries.
    ///
    /// # Panics
    ///
    /// Panics if the node has no entries (an empty node has no meaningful
    /// summary and should never be summarized).
    #[must_use]
    pub fn summary(&self, dim: usize) -> Cf {
        let mut cf = Cf::empty(dim);
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                for e in entries {
                    cf.merge(e);
                }
            }
            NodeKind::Interior { children } => {
                for c in children {
                    cf.merge(&c.cf);
                }
            }
        }
        cf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn leaf_basics() {
        let mut n = Node::new_leaf();
        assert!(n.is_leaf());
        assert_eq!(n.entry_count(), 0);
        n.leaf_entries_mut()
            .push(Cf::from_point(&Point::xy(1.0, 2.0)));
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.leaf_entries().len(), 1);
    }

    #[test]
    fn interior_basics() {
        let mut n = Node::new_interior();
        assert!(!n.is_leaf());
        n.children_mut().push(ChildEntry {
            cf: Cf::from_point(&Point::xy(0.0, 0.0)),
            child: NodeId(7),
        });
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.children()[0].child, NodeId(7));
    }

    #[test]
    fn summary_sums_entries() {
        let mut n = Node::new_leaf();
        n.leaf_entries_mut()
            .push(Cf::from_point(&Point::xy(1.0, 0.0)));
        n.leaf_entries_mut()
            .push(Cf::from_point(&Point::xy(3.0, 4.0)));
        let s = n.summary(2);
        assert_eq!(s.n(), 2.0);
        assert_eq!(s.ls(), &[4.0, 4.0]);
        assert_eq!(s.ss(), 26.0);
    }

    #[test]
    #[should_panic(expected = "children on leaf node")]
    fn children_on_leaf_panics() {
        let n = Node::new_leaf();
        let _ = n.children();
    }

    #[test]
    fn describe_names_id_kind_and_occupancy() {
        let n = Node::new_interior();
        assert_eq!(n.describe(), "n? (interior, 0 children)");
        let mut l = Node::new_leaf();
        l.id = NodeId(4);
        l.leaf_entries_mut()
            .push(Cf::from_point(&Point::xy(0.0, 0.0)));
        assert_eq!(l.describe(), "n4 (leaf, 1 entries)");
    }

    #[test]
    #[should_panic(expected = "children_mut on leaf node n9 (leaf, 0 entries)")]
    fn panic_message_names_the_node() {
        let mut n = Node::new_leaf();
        n.id = NodeId(9);
        let _ = n.children_mut();
    }

    #[test]
    #[should_panic(expected = "leaf_entries on interior node")]
    fn leaf_entries_on_interior_panics() {
        let n = Node::new_interior();
        let _ = n.leaf_entries();
    }
}
