//! Arena-allocated CF-tree nodes.
//!
//! §4.2: a CF-tree node is either a **nonleaf** holding at most `B` entries
//! of the form `[CFᵢ, childᵢ]`, or a **leaf** holding at most `L` CF entries
//! plus `prev`/`next` pointers chaining all leaves together. Each node
//! occupies one page.
//!
//! Nodes live in a `Vec` arena indexed by [`NodeId`] — cache-friendly, no
//! `Rc<RefCell<…>>`, and page accounting is just arena occupancy.
//!
//! Each node additionally owns a [`CfBlock`]: a flat SoA mirror of its
//! entries' vector statistics (`LS` classic, μ + carry stable) plus
//! parallel `(N, scalar stat, ‖vec‖²)` arrays. The descent scan and the
//! split pairwise matrix sweep the block instead of chasing one
//! `Box<[f64]>` per entry; on the stable backend each row is zero-padded
//! to a lane-width stride ([`CfBlock::stride`]) so the SIMD kernels
//! stream it tail-free. Every mutation goes through the mutator methods
//! below, which keep the mirror in sync; the auditor cross-checks
//! block-vs-entries exactly.

use crate::cf::Cf;
use crate::distance::CfBlock;
use birch_pager::{DecodedPage, PageKind, NO_NEIGHBOR};

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena slot this id refers to.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One `[CFᵢ, childᵢ]` entry of a nonleaf node.
#[derive(Debug, Clone)]
pub struct ChildEntry {
    /// Summary of the entire subtree rooted at `child`.
    pub cf: Cf,
    /// The subtree root.
    pub child: NodeId,
}

/// Payload of a node: leaf or interior.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A leaf node: CF entries (each a subcluster obeying the threshold
    /// condition) plus its position in the doubly linked leaf chain.
    Leaf {
        /// The subcluster summaries stored in this leaf.
        entries: Vec<Cf>,
        /// Previous leaf in the chain (`None` at the head).
        prev: Option<NodeId>,
        /// Next leaf in the chain (`None` at the tail).
        next: Option<NodeId>,
    },
    /// An interior (nonleaf) node: `[CF, child]` routing entries.
    Interior {
        /// The routing entries, in sibling order.
        children: Vec<ChildEntry>,
    },
}

/// Sentinel id of a node not yet placed in an arena.
const UNALLOCATED: NodeId = NodeId(u32::MAX);

/// A CF-tree node (one simulated page).
#[derive(Debug, Clone)]
pub struct Node {
    /// The node payload. Public for *reads* and for leaf-chain `prev`/
    /// `next` surgery; CF-entry mutations must go through the mutator
    /// methods so the SoA [`CfBlock`] mirror stays in sync (direct `kind`
    /// surgery that touches CFs must call [`Node::rebuild_block`]).
    pub kind: NodeKind,
    /// Flat SoA mirror of the entries' CF statistics, kept in sync by the
    /// mutator methods. For a leaf, row `i` mirrors `entries[i]`; for an
    /// interior node, row `i` mirrors `children[i].cf`.
    block: CfBlock,
    /// The arena slot this node occupies, stamped by the tree's allocator
    /// ([`UNALLOCATED`] until then). Lets accessors and the auditor name
    /// the node in diagnostics, and lets the auditor verify arena
    /// consistency.
    pub(crate) id: NodeId,
}

impl Node {
    /// A fresh empty leaf, not yet linked into the chain.
    #[must_use]
    pub fn new_leaf() -> Self {
        Self {
            kind: NodeKind::Leaf {
                entries: Vec::new(),
                prev: None,
                next: None,
            },
            block: CfBlock::new(),
            id: UNALLOCATED,
        }
    }

    /// A fresh interior node with no children.
    #[must_use]
    pub fn new_interior() -> Self {
        Self {
            kind: NodeKind::Interior {
                children: Vec::new(),
            },
            block: CfBlock::new(),
            id: UNALLOCATED,
        }
    }

    /// The arena id stamped on this node at allocation.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A short human-readable identity for diagnostics, e.g.
    /// `"n7 (leaf, 3 entries)"`.
    #[must_use]
    pub fn describe(&self) -> String {
        let id = if self.id == UNALLOCATED {
            "n?".to_string()
        } else {
            format!("n{}", self.id.0)
        };
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                format!("{id} (leaf, {} entries)", entries.len())
            }
            NodeKind::Interior { children } => {
                format!("{id} (interior, {} children)", children.len())
            }
        }
    }

    /// Whether this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Number of entries (CF entries for a leaf, children for an interior).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => entries.len(),
            NodeKind::Interior { children } => children.len(),
        }
    }

    /// Leaf entries, panicking if this is an interior node.
    #[must_use]
    pub fn leaf_entries(&self) -> &[Cf] {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => entries,
            NodeKind::Interior { .. } => {
                panic!("leaf_entries on interior node {}", self.describe())
            }
        }
    }

    /// Interior children, panicking if this is a leaf.
    #[must_use]
    pub fn children(&self) -> &[ChildEntry] {
        match &self.kind {
            NodeKind::Interior { children } => children,
            NodeKind::Leaf { .. } => panic!("children on leaf node {}", self.describe()),
        }
    }

    /// The flat SoA mirror of this node's entry CFs (leaf entries or
    /// interior child CFs, in sibling order).
    #[must_use]
    pub fn block(&self) -> &CfBlock {
        &self.block
    }

    /// Heap bytes owned by the node's entry storage: the `Vec`'s capacity
    /// plus each CF's boxed statistics. The `Node` struct itself lives in
    /// the tree's arena and is counted there; the SoA mirror is counted
    /// separately via [`Node::block_heap_bytes`] so the gauge can report
    /// the mirror's overhead as its own component.
    #[must_use]
    pub fn entry_heap_bytes(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                entries.capacity() * std::mem::size_of::<Cf>()
                    + entries.iter().map(Cf::heap_bytes).sum::<usize>()
            }
            NodeKind::Interior { children } => {
                children.capacity() * std::mem::size_of::<ChildEntry>()
                    + children.iter().map(|c| c.cf.heap_bytes()).sum::<usize>()
            }
        }
    }

    /// Heap bytes owned by the node's SoA mirror slabs.
    #[must_use]
    pub fn block_heap_bytes(&self) -> usize {
        self.block.heap_bytes()
    }

    /// Rebuilds the SoA mirror from the entries. Needed only after direct
    /// `kind` surgery that bypassed the mutators (e.g. the auditor's
    /// seeded-corruption tests); the mutators keep the mirror in sync on
    /// their own.
    pub fn rebuild_block(&mut self) {
        self.block.clear();
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                for e in entries {
                    self.block.push(e);
                }
            }
            NodeKind::Interior { children } => {
                for c in children {
                    self.block.push(&c.cf);
                }
            }
        }
    }

    // ---- Leaf mutators (each keeps the SoA mirror in sync). ----

    /// Appends a CF entry to a leaf.
    ///
    /// # Panics
    ///
    /// Panics if this is an interior node.
    pub fn push_leaf_entry(&mut self, cf: Cf) {
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => {
                self.block.push(&cf);
                entries.push(cf);
            }
            NodeKind::Interior { .. } => {
                panic!("push_leaf_entry on interior node {}", self.describe())
            }
        }
    }

    /// Overwrites leaf entry `idx` with `cf`.
    ///
    /// # Panics
    ///
    /// Panics if this is an interior node or `idx` is out of range.
    pub fn set_leaf_entry(&mut self, idx: usize, cf: Cf) {
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => {
                self.block.set(idx, &cf);
                entries[idx] = cf;
            }
            NodeKind::Interior { .. } => {
                panic!("set_leaf_entry on interior node {}", self.describe())
            }
        }
    }

    /// Takes all leaf entries out (leaving the leaf empty but keeping its
    /// chain links), clearing the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is an interior node.
    pub fn take_leaf_entries(&mut self) -> Vec<Cf> {
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => {
                self.block.clear();
                std::mem::take(entries)
            }
            NodeKind::Interior { .. } => {
                panic!("take_leaf_entries on interior node {}", self.describe())
            }
        }
    }

    /// Replaces the leaf's entries wholesale (chain links untouched),
    /// rebuilding the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is an interior node.
    pub fn set_leaf_entries(&mut self, new_entries: Vec<Cf>) {
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => {
                *entries = new_entries;
            }
            NodeKind::Interior { .. } => {
                panic!("set_leaf_entries on interior node {}", self.describe())
            }
        }
        self.rebuild_block();
    }

    /// Appends a batch of leaf entries, extending the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is an interior node.
    pub fn append_leaf_entries<I: IntoIterator<Item = Cf>>(&mut self, new_entries: I) {
        match &mut self.kind {
            NodeKind::Leaf { entries, .. } => {
                for cf in new_entries {
                    self.block.push(&cf);
                    entries.push(cf);
                }
            }
            NodeKind::Interior { .. } => {
                panic!("append_leaf_entries on interior node {}", self.describe())
            }
        }
    }

    // ---- Interior mutators (each keeps the SoA mirror in sync). ----

    /// Appends a `[CF, child]` routing entry.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf.
    pub fn push_child(&mut self, entry: ChildEntry) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                self.block.push(&entry.cf);
                children.push(entry);
            }
            NodeKind::Leaf { .. } => panic!("push_child on leaf node {}", self.describe()),
        }
    }

    /// Inserts a `[CF, child]` routing entry at `idx`, shifting later
    /// siblings right.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf or `idx > len`.
    pub fn insert_child(&mut self, idx: usize, entry: ChildEntry) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                self.block.insert(idx, &entry.cf);
                children.insert(idx, entry);
            }
            NodeKind::Leaf { .. } => panic!("insert_child on leaf node {}", self.describe()),
        }
    }

    /// Removes the routing entry at `idx`, returning it.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf or `idx` is out of range.
    pub fn remove_child(&mut self, idx: usize) -> ChildEntry {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                self.block.remove(idx);
                children.remove(idx)
            }
            NodeKind::Leaf { .. } => panic!("remove_child on leaf node {}", self.describe()),
        }
    }

    /// Overwrites the CF of the routing entry at `idx` (child id kept).
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf or `idx` is out of range.
    pub fn set_child_cf(&mut self, idx: usize, cf: Cf) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                self.block.set(idx, &cf);
                children[idx].cf = cf;
            }
            NodeKind::Leaf { .. } => panic!("set_child_cf on leaf node {}", self.describe()),
        }
    }

    /// Merges `ent` into the CF of the routing entry at `idx` — the
    /// descent path update of §4.2 ("update the CF entries on the path").
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf or `idx` is out of range.
    pub fn merge_into_child_cf(&mut self, idx: usize, ent: &Cf) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                children[idx].cf.merge(ent);
                self.block.set(idx, &children[idx].cf);
            }
            NodeKind::Leaf { .. } => {
                panic!("merge_into_child_cf on leaf node {}", self.describe())
            }
        }
    }

    /// Takes all routing entries out (leaving the interior node empty),
    /// clearing the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf.
    pub fn take_children(&mut self) -> Vec<ChildEntry> {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                self.block.clear();
                std::mem::take(children)
            }
            NodeKind::Leaf { .. } => panic!("take_children on leaf node {}", self.describe()),
        }
    }

    /// Appends a batch of routing entries, extending the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf.
    pub fn append_children<I: IntoIterator<Item = ChildEntry>>(&mut self, new_children: I) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                for entry in new_children {
                    self.block.push(&entry.cf);
                    children.push(entry);
                }
            }
            NodeKind::Leaf { .. } => panic!("append_children on leaf node {}", self.describe()),
        }
    }

    /// Replaces the routing entries wholesale, rebuilding the mirror.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf.
    pub fn set_children(&mut self, new_children: Vec<ChildEntry>) {
        match &mut self.kind {
            NodeKind::Interior { children } => {
                *children = new_children;
            }
            NodeKind::Leaf { .. } => panic!("set_children on leaf node {}", self.describe()),
        }
        self.rebuild_block();
    }

    /// Words one serialized entry of a `kind` node occupies: the CF words
    /// plus, for interior nodes, the child pointer.
    #[must_use]
    pub fn words_per_entry(kind: PageKind, dim: usize) -> usize {
        match kind {
            PageKind::Leaf => Cf::words_per_entry(dim),
            PageKind::Interior => Cf::words_per_entry(dim) + 1,
        }
    }

    /// Serializes this node into page-codec inputs: `(kind, count, prev,
    /// next, words)` for [`birch_pager::encode_page`]. Leaf chain links
    /// map `None` to [`NO_NEIGHBOR`]; interior nodes carry no neighbours.
    #[must_use]
    pub fn to_page_words(&self) -> (PageKind, u32, u64, u64, Vec<u64>) {
        let chain = |link: &Option<NodeId>| link.map_or(NO_NEIGHBOR, |id| u64::from(id.0));
        match &self.kind {
            NodeKind::Leaf {
                entries,
                prev,
                next,
            } => {
                let mut words = Vec::with_capacity(entries.len() * Cf::words_per_entry(1));
                for e in entries {
                    e.to_words(&mut words);
                }
                (
                    PageKind::Leaf,
                    entries.len() as u32,
                    chain(prev),
                    chain(next),
                    words,
                )
            }
            NodeKind::Interior { children } => {
                let mut words = Vec::new();
                for c in children {
                    c.cf.to_words(&mut words);
                    words.push(u64::from(c.child.0));
                }
                (
                    PageKind::Interior,
                    children.len() as u32,
                    NO_NEIGHBOR,
                    NO_NEIGHBOR,
                    words,
                )
            }
        }
    }

    /// Rebuilds a node from a decoded page. The arena id is *not* stored
    /// on the page — the caller (the tree) stamps it. Entries are replayed
    /// through the mutators, so the SoA mirror comes back in sync and the
    /// CF memos are recomputed under their exact contracts: the rebuilt
    /// node is bit-identical to the one serialized.
    ///
    /// # Panics
    ///
    /// Panics if the page's word count is not a multiple of the entry
    /// width for its kind (a decoding-layer bug; torn pages are caught by
    /// the page CRC before this point).
    #[must_use]
    pub fn from_decoded_page(page: &DecodedPage, dim: usize) -> Self {
        let chain = |w: u64| {
            (w != NO_NEIGHBOR)
                .then(|| NodeId(u32::try_from(w).expect("leaf chain word exceeds arena range")))
        };
        let per = Self::words_per_entry(page.kind, dim);
        assert_eq!(
            page.words.len(),
            page.count as usize * per,
            "page word count does not match {} entries of {per} words",
            page.count
        );
        match page.kind {
            PageKind::Leaf => {
                let mut node = Self::new_leaf();
                for row in page.words.chunks_exact(per) {
                    node.push_leaf_entry(Cf::from_words(row, dim));
                }
                if let NodeKind::Leaf { prev, next, .. } = &mut node.kind {
                    *prev = chain(page.prev);
                    *next = chain(page.next);
                }
                node
            }
            PageKind::Interior => {
                let mut node = Self::new_interior();
                for row in page.words.chunks_exact(per) {
                    let child = NodeId(
                        u32::try_from(row[per - 1]).expect("child pointer exceeds arena range"),
                    );
                    node.push_child(ChildEntry {
                        cf: Cf::from_words(&row[..per - 1], dim),
                        child,
                    });
                }
                node
            }
        }
    }

    /// Exact CF summary of this node: the sum of its entries.
    ///
    /// # Panics
    ///
    /// Panics if the node has no entries (an empty node has no meaningful
    /// summary and should never be summarized).
    #[must_use]
    pub fn summary(&self, dim: usize) -> Cf {
        let mut cf = Cf::empty(dim);
        match &self.kind {
            NodeKind::Leaf { entries, .. } => {
                for e in entries {
                    cf.merge(e);
                }
            }
            NodeKind::Interior { children } => {
                for c in children {
                    cf.merge(&c.cf);
                }
            }
        }
        cf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    /// The block mirror must match the entries row for row.
    fn assert_block_in_sync(n: &Node) {
        let b = n.block();
        match &n.kind {
            NodeKind::Leaf { entries, .. } => {
                assert_eq!(b.len(), entries.len());
                for (i, e) in entries.iter().enumerate() {
                    assert_eq!(b.row_n(i), e.n());
                    assert_eq!(b.row_scalar(i), e.scalar_stat());
                    assert_eq!(b.row_vec_sq(i).to_bits(), e.vec_stat_sq().to_bits());
                    assert_eq!(b.row_vec(i), e.vec_stat());
                }
            }
            NodeKind::Interior { children } => {
                assert_eq!(b.len(), children.len());
                for (i, c) in children.iter().enumerate() {
                    assert_eq!(b.row_n(i), c.cf.n());
                    assert_eq!(b.row_vec(i), c.cf.vec_stat());
                }
            }
        }
    }

    #[test]
    fn leaf_basics() {
        let mut n = Node::new_leaf();
        assert!(n.is_leaf());
        assert_eq!(n.entry_count(), 0);
        n.push_leaf_entry(Cf::from_point(&Point::xy(1.0, 2.0)));
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.leaf_entries().len(), 1);
        assert_block_in_sync(&n);
    }

    #[test]
    fn interior_basics() {
        let mut n = Node::new_interior();
        assert!(!n.is_leaf());
        n.push_child(ChildEntry {
            cf: Cf::from_point(&Point::xy(0.0, 0.0)),
            child: NodeId(7),
        });
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.children()[0].child, NodeId(7));
        assert_block_in_sync(&n);
    }

    #[test]
    fn summary_sums_entries() {
        let mut n = Node::new_leaf();
        n.push_leaf_entry(Cf::from_point(&Point::xy(1.0, 0.0)));
        n.push_leaf_entry(Cf::from_point(&Point::xy(3.0, 4.0)));
        let s = n.summary(2);
        assert_eq!(s.n(), 2.0);
        // Backend-agnostic: centroid (2, 2) and Σ‖x − μ‖² = 10 for the
        // points (1,0) and (3,4), whichever statistics the CF stores.
        assert_eq!(s.centroid().coords(), &[2.0, 2.0]);
        assert!((s.sq_deviation() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_mutators_keep_block_in_sync() {
        let mut n = Node::new_leaf();
        n.push_leaf_entry(Cf::from_point(&Point::xy(1.0, 0.0)));
        n.push_leaf_entry(Cf::from_point(&Point::xy(2.0, 0.0)));
        n.set_leaf_entry(0, Cf::from_point(&Point::xy(-5.0, 3.0)));
        assert_block_in_sync(&n);
        let taken = n.take_leaf_entries();
        assert_eq!(taken.len(), 2);
        assert_eq!(n.entry_count(), 0);
        assert_block_in_sync(&n);
        n.set_leaf_entries(taken);
        assert_eq!(n.entry_count(), 2);
        assert_block_in_sync(&n);
        n.append_leaf_entries(vec![Cf::from_point(&Point::xy(9.0, 9.0))]);
        assert_eq!(n.entry_count(), 3);
        assert_block_in_sync(&n);
    }

    #[test]
    fn interior_mutators_keep_block_in_sync() {
        let mut n = Node::new_interior();
        for i in 0..3 {
            n.push_child(ChildEntry {
                cf: Cf::from_point(&Point::xy(f64::from(i), 0.0)),
                child: NodeId(i as u32),
            });
        }
        n.insert_child(
            1,
            ChildEntry {
                cf: Cf::from_point(&Point::xy(7.0, 7.0)),
                child: NodeId(9),
            },
        );
        assert_eq!(n.children()[1].child, NodeId(9));
        assert_block_in_sync(&n);
        n.set_child_cf(2, Cf::from_point(&Point::xy(-1.0, -1.0)));
        assert_block_in_sync(&n);
        n.merge_into_child_cf(0, &Cf::from_point(&Point::xy(0.5, 0.5)));
        assert_eq!(n.children()[0].cf.n(), 2.0);
        assert_block_in_sync(&n);
        let removed = n.remove_child(1);
        assert_eq!(removed.child, NodeId(9));
        assert_block_in_sync(&n);
        let kids = n.take_children();
        assert_eq!(kids.len(), 3);
        assert_block_in_sync(&n);
        n.set_children(kids);
        assert_block_in_sync(&n);
    }

    #[test]
    fn rebuild_block_resyncs_after_direct_surgery() {
        let mut n = Node::new_leaf();
        n.push_leaf_entry(Cf::from_point(&Point::xy(1.0, 1.0)));
        // Bypass the mutators, as the auditor's corruption tests do.
        if let NodeKind::Leaf { entries, .. } = &mut n.kind {
            entries[0].merge(&Cf::from_point(&Point::xy(5.0, 5.0)));
        }
        n.rebuild_block();
        assert_block_in_sync(&n);
    }

    #[test]
    fn leaf_round_trips_through_page_words_bitwise() {
        let mut n = Node::new_leaf();
        n.push_leaf_entry(Cf::from_points(&[
            Point::xy(1e8, 1e8 + 1e-3),
            Point::xy(1e8, 1e8),
        ]));
        n.push_leaf_entry(Cf::from_point(&Point::xy(-3.5, 0.25)));
        if let NodeKind::Leaf { prev, next, .. } = &mut n.kind {
            *prev = Some(NodeId(11));
            *next = None;
        }
        let (kind, count, prev, next, words) = n.to_page_words();
        assert_eq!(kind, PageKind::Leaf);
        assert_eq!(count, 2);
        assert_eq!(prev, 11);
        assert_eq!(next, NO_NEIGHBOR);
        let buf = birch_pager::encode_page(4096, kind, count, prev, next, &words).unwrap();
        let decoded = birch_pager::decode_page(&buf, Cf::words_per_entry(2)).unwrap();
        let back = Node::from_decoded_page(&decoded, 2);
        assert_eq!(back.entry_count(), 2);
        for (a, b) in back.leaf_entries().iter().zip(n.leaf_entries()) {
            assert!(a == b, "leaf CF changed across the page round-trip");
            assert_eq!(a.vec_stat_sq().to_bits(), b.vec_stat_sq().to_bits());
        }
        match (&back.kind, &n.kind) {
            (
                NodeKind::Leaf {
                    prev: bp, next: bn, ..
                },
                NodeKind::Leaf {
                    prev: ap, next: an, ..
                },
            ) => {
                assert_eq!(bp, ap);
                assert_eq!(bn, an);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn interior_round_trips_through_page_words_bitwise() {
        let mut n = Node::new_interior();
        for i in 0..3u32 {
            n.push_child(ChildEntry {
                cf: Cf::from_point(&Point::xy(f64::from(i) * 2.5, -f64::from(i))),
                child: NodeId(i * 7 + 1),
            });
        }
        let (kind, count, prev, next, words) = n.to_page_words();
        assert_eq!(kind, PageKind::Interior);
        assert_eq!(count, 3);
        let buf = birch_pager::encode_page(4096, kind, count, prev, next, &words).unwrap();
        let decoded =
            birch_pager::decode_page(&buf, Node::words_per_entry(PageKind::Interior, 2)).unwrap();
        let back = Node::from_decoded_page(&decoded, 2);
        assert_eq!(back.entry_count(), 3);
        for (a, b) in back.children().iter().zip(n.children()) {
            assert_eq!(a.child, b.child);
            assert!(a.cf == b.cf);
        }
    }

    #[test]
    #[should_panic(expected = "children on leaf node")]
    fn children_on_leaf_panics() {
        let n = Node::new_leaf();
        let _ = n.children();
    }

    #[test]
    fn describe_names_id_kind_and_occupancy() {
        let n = Node::new_interior();
        assert_eq!(n.describe(), "n? (interior, 0 children)");
        let mut l = Node::new_leaf();
        l.id = NodeId(4);
        l.push_leaf_entry(Cf::from_point(&Point::xy(0.0, 0.0)));
        assert_eq!(l.describe(), "n4 (leaf, 1 entries)");
    }

    #[test]
    #[should_panic(expected = "push_child on leaf node n9 (leaf, 0 entries)")]
    fn panic_message_names_the_node() {
        let mut n = Node::new_leaf();
        n.id = NodeId(9);
        n.push_child(ChildEntry {
            cf: Cf::from_point(&Point::xy(0.0, 0.0)),
            child: NodeId(0),
        });
    }

    #[test]
    #[should_panic(expected = "leaf_entries on interior node")]
    fn leaf_entries_on_interior_panics() {
        let n = Node::new_interior();
        let _ = n.leaf_entries();
    }

    #[test]
    #[should_panic(expected = "push_leaf_entry on interior node")]
    fn push_leaf_entry_on_interior_panics() {
        let mut n = Node::new_interior();
        n.push_leaf_entry(Cf::from_point(&Point::xy(0.0, 0.0)));
    }
}
