//! Phase 1: load the data into an in-memory CF-tree in a single scan.
//!
//! Paper §5 and Fig. 2. Starting from threshold `T0`, every incoming point
//! is inserted into the CF-tree. When the tree outgrows the memory budget
//! `M`, the threshold is increased (see [`crate::threshold`]) and the tree
//! is rebuilt smaller from its own leaf entries (see [`crate::rebuild`]),
//! optionally spilling low-density entries to the outlier disk. With the
//! delay-split option, points that would force a split while memory is
//! exhausted are parked on disk first, squeezing the most out of the
//! current threshold before paying for a rebuild. After the last point,
//! parked points are folded back in and the outlier disk gets a final
//! re-absorption scan; what remains there is discarded as noise.

use crate::cf::Cf;
use crate::config::BirchConfig;
use crate::obs::mem::MemoryGauge;
use crate::obs::span;
use crate::obs::{Event, EventSink, MetricsRecorder, MetricsReport, NoopSink, Phase, Tee};
use crate::outlier::{DelaySplitBuffer, OutlierConfig, OutlierStore};
use crate::rebuild::rebuild_observed;
use crate::threshold::ThresholdEstimator;
use crate::tree::{CfTree, TreeParams};
use birch_pager::{IoStats, PageLayout};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Hard cap on rebuilds per run: the threshold grows strictly every
/// rebuild, so hitting this means a logic error, and failing loudly beats
/// spinning.
const MAX_REBUILDS: u64 = 10_000;

/// Everything Phase 1 produces.
#[derive(Debug)]
pub struct Phase1Output {
    /// The final CF-tree (fits the memory budget).
    pub tree: CfTree,
    /// Resource counters for the run.
    pub io: IoStats,
    /// The threshold after each rebuild, `T1, T2, …` (empty if no rebuild
    /// was needed).
    pub threshold_history: Vec<f64>,
    /// Input records scanned.
    pub points_scanned: u64,
    /// The outlier store (already finalized — empty unless
    /// `discard_at_end` was off), kept for its disk counters.
    pub outliers: Option<OutlierStore>,
    /// The threshold estimator, carrying its r–N history forward so Phase 2
    /// can continue the same sequence.
    pub estimator: ThresholdEstimator,
    /// Aggregated telemetry of the scan (counters, depth histogram,
    /// threshold trajectory) — the source of `io`'s event-derived fields.
    pub metrics: MetricsReport,
    /// Live/high-water byte accounting against the budget `M`: pager
    /// pages (the paper's unit), node arena, SoA blocks, outlier disk.
    pub memory: MemoryGauge,
}

/// Incremental Phase-1 driver: feed CFs one at a time, inspect the live
/// tree, and `finish()` when the scan ends. [`run`] wraps this for the
/// whole-dataset case; [`crate::stream::StreamingBirch`] wraps it for
/// open-ended streams.
#[derive(Debug)]
pub struct Phase1Builder<S: EventSink = NoopSink> {
    max_pages: usize,
    /// Out-of-core mode ([`BirchConfig::out_of_core`]): the page budget
    /// bounds *residency* through the tree pager instead of triggering
    /// threshold rebuilds, so the tree may grow past `M` on disk.
    out_of_core: bool,
    /// Page-spill file path while paging is active (`None` after
    /// `finish`, and always in in-core mode). Kept so rebuild paths —
    /// which replace the tree wholesale — can re-enable paging on the
    /// replacement.
    spill_path: Option<PathBuf>,
    tree: CfTree,
    estimator: ThresholdEstimator,
    outliers: Option<OutlierStore>,
    delay: Option<DelaySplitBuffer>,
    delay_mode: bool,
    io: IoStats,
    threshold_history: Vec<f64>,
    points_scanned: u64,
    /// Total weight (N) of every CF fed in, including outlier candidates —
    /// the auditor's end-to-end conservation baseline: until `finish`,
    /// every fed point is either in the tree or parked on a disk.
    fed_n: f64,
    /// Reusable scratch CF for the point-feed path ([`Cf::assign_point`]),
    /// so feeding a point costs zero heap allocations once warmed up.
    scratch: Option<Cf>,
    /// Distance-call totals of trees already replaced by rebuilds — the
    /// live tree's [`TreeStats`](crate::tree::TreeStats) reset on every
    /// swap, so lifetime totals are `retired + tree.stats()`.
    retired_distance_calls: u64,
    /// Pruned-candidate totals of replaced trees (same bookkeeping).
    retired_distance_calls_pruned: u64,
    /// Always-on aggregator: `finish()` fills `io`'s event-derived
    /// counters from it, so the tree, the rebuild machinery, and the
    /// builder never keep parallel tallies of the same mutations.
    recorder: MetricsRecorder,
    /// Caller-supplied sink, receiving the same event stream.
    sink: S,
    started: Instant,
    /// Page size, kept so the gauge can convert node counts to bytes.
    page_bytes: usize,
    /// Memory-budget accounting. Pager pages are tracked O(1) on every
    /// page high-water move; the heap-walking components (arena, SoA
    /// blocks) are sampled only at rebuilds and `finish`, off the
    /// per-insert hot path.
    memory: MemoryGauge,
}

/// Runs Phase 1 over a stream of singleton (or subcluster) CFs of
/// dimensionality `dim`.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`BirchConfig::validate`])
/// or if an input CF has the wrong dimension.
pub fn run<I>(config: &BirchConfig, dim: usize, input: I) -> Phase1Output
where
    I: IntoIterator<Item = Cf>,
{
    run_with_sink(config, dim, input, NoopSink)
}

/// Like [`run`], but streaming every telemetry [`Event`] into `sink` as
/// the scan proceeds. With [`NoopSink`] this is exactly [`run`].
///
/// # Panics
///
/// Same as [`run`].
pub fn run_with_sink<I, S>(config: &BirchConfig, dim: usize, input: I, sink: S) -> Phase1Output
where
    I: IntoIterator<Item = Cf>,
    S: EventSink,
{
    let mut b = builder(config, dim, sink);
    for cf in input {
        b.feed(cf);
    }
    b.finish()
}

/// Runs Phase 1 over a slice of points (optionally weighted) using the
/// builder's allocation-free scratch-CF feed path — the preferred entry
/// point for point data; [`run`] remains for pre-aggregated CF input.
///
/// # Panics
///
/// Panics if the configuration is invalid, a point has the wrong
/// dimension, or `weights` is shorter than `points`.
pub fn run_points_with_sink<S>(
    config: &BirchConfig,
    dim: usize,
    points: &[crate::point::Point],
    weights: Option<&[f64]>,
    sink: S,
) -> Phase1Output
where
    S: EventSink,
{
    let mut b = builder(config, dim, sink);
    match weights {
        Some(w) => {
            for (p, &wi) in points.iter().zip(w) {
                b.feed_weighted_point(p, wi);
            }
        }
        None => {
            for p in points {
                b.feed_point(p);
            }
        }
    }
    b.finish()
}

fn builder<S: EventSink>(config: &BirchConfig, dim: usize, sink: S) -> Phase1Builder<S> {
    config.validate();
    let layout = PageLayout::new(config.page_bytes, dim);
    let max_pages = layout.pages_in_budget(config.memory_bytes).max(1);
    let entry_bytes = layout.cf_entry_bytes();

    let both = config.outlier_handling && config.delay_split;
    let outliers = config.outlier_handling.then(|| {
        let bytes = if both {
            config.disk_bytes / 2
        } else {
            config.disk_bytes
        };
        OutlierStore::new(
            bytes,
            entry_bytes,
            OutlierConfig {
                enabled: true,
                factor: config.outlier_factor,
                discard_at_end: true,
            },
        )
    });
    let delay = config.delay_split.then(|| {
        let bytes = if both {
            config.disk_bytes - config.disk_bytes / 2
        } else {
            config.disk_bytes
        };
        DelaySplitBuffer::new(bytes, entry_bytes)
    });

    let params = TreeParams {
        dim,
        branching: layout.branching_factor(),
        leaf_capacity: layout.leaf_capacity(),
        threshold: config.initial_threshold,
        threshold_kind: config.threshold_kind,
        metric: config.metric,
        merge_refinement: config.merge_refinement,
        descend_prune: config.descend_prune,
    };

    let mut b = Phase1Builder {
        max_pages,
        out_of_core: config.out_of_core,
        spill_path: None,
        tree: CfTree::new(params),
        estimator: ThresholdEstimator::new(config.total_points_hint),
        outliers,
        delay,
        delay_mode: false,
        io: IoStats::default(),
        threshold_history: Vec::new(),
        points_scanned: 0,
        fed_n: 0.0,
        scratch: None,
        retired_distance_calls: 0,
        retired_distance_calls_pruned: 0,
        recorder: MetricsRecorder::new(),
        sink,
        started: Instant::now(),
        page_bytes: config.page_bytes,
        memory: MemoryGauge::with_budget(config.memory_bytes as u64),
    };
    if config.out_of_core {
        let dir = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let path = spill_file(&dir, "pages");
        b.tree
            .enable_paging(&path, b.resident_cap())
            .expect("create page spill file");
        b.spill_path = Some(path);
        if let Some(store) = b.outliers.as_mut() {
            store
                .back_with_file(&spill_file(&dir, "journal"))
                .expect("create outlier journal file");
        }
    }
    b.emit(Event::PhaseStarted { phase: Phase::Load });
    b
}

/// Process-wide spill-file sequence, so concurrent builders (parallel
/// shards, test threads) never collide on a path.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_file(dir: &std::path::Path, ext: &str) -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("birch-spill-{}-{seq}.{ext}", std::process::id()))
}

impl Phase1Builder {
    /// Creates an incremental builder for `dim`-dimensional data.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: &BirchConfig, dim: usize) -> Self {
        builder(config, dim, NoopSink)
    }
}

impl<S: EventSink> Phase1Builder<S> {
    /// Creates an incremental builder that streams telemetry into `sink`
    /// (in addition to the internal [`MetricsRecorder`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_sink(config: &BirchConfig, dim: usize, sink: S) -> Self {
        builder(config, dim, sink)
    }

    /// The internal metrics aggregator (live view; snapshot any time).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.recorder
    }

    /// Sends one event to the internal recorder and the user sink.
    fn emit(&mut self, event: Event) {
        self.recorder.record(&event);
        self.sink.record(&event);
    }

    /// Raises the page high-water mark, emitting the event on a new peak.
    fn note_pages(&mut self, pages: usize) {
        self.memory
            .pager_pages
            .record(pages as u64 * self.page_bytes as u64);
        if pages > self.io.peak_pages {
            self.io.peak_pages = pages;
            self.emit(Event::PagesHighWater { pages });
        }
    }

    /// The pager's residency ceiling in out-of-core mode: the page
    /// budget, floored at 2 so a root split always has a resident child.
    fn resident_cap(&self) -> usize {
        self.max_pages.max(2)
    }

    /// Full memory sample (walks the node arena and SoA slabs): kept off
    /// the per-insert path — called after rebuilds and at `finish`, the
    /// moments the footprint actually shifts shape. In out-of-core mode
    /// the budgeted component follows the *resident* page count and the
    /// spill file is accounted separately.
    fn sample_memory(&mut self) {
        let outlier = self.outliers.as_ref().map_or(0, |s| s.used_bytes() as u64)
            + self.delay.as_ref().map_or(0, |b| b.used_bytes() as u64);
        match self.tree.page_stats() {
            Some(ps) => self.memory.sample_paged_tree(
                &self.tree,
                self.page_bytes,
                outlier,
                ps.resident_nodes,
                ps.spill_file_bytes,
            ),
            None => self
                .memory
                .sample_tree(&self.tree, self.page_bytes, outlier),
        }
    }

    /// The memory gauge so far (live view; snapshot any time).
    #[must_use]
    pub fn memory(&self) -> &MemoryGauge {
        &self.memory
    }

    /// The live CF-tree (always within the memory budget between feeds).
    #[must_use]
    pub fn tree(&self) -> &CfTree {
        &self.tree
    }

    /// Input records fed so far.
    #[must_use]
    pub fn points_scanned(&self) -> u64 {
        self.points_scanned
    }

    /// Resource counters so far.
    #[must_use]
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Clones everything currently parked on the simulated disk — the
    /// delay-split buffer and the potential-outlier store (counts the disk
    /// reads). Streaming snapshots fold these in so the anytime clustering
    /// covers every point seen and not yet discarded.
    #[must_use]
    pub fn parked_cfs(&mut self) -> Vec<Cf> {
        let mut out: Vec<Cf> = self
            .delay
            .as_mut()
            .map_or_else(Vec::new, |b| b.scan().to_vec());
        if let Some(store) = self.outliers.as_mut() {
            out.extend_from_slice(store.scan());
        }
        out
    }

    /// Mutable access to the outlier store (if outlier handling is on) —
    /// lets tests and soak harnesses install a
    /// [`birch_pager::FaultPlan`] on its disk mid-run.
    pub fn outliers_mut(&mut self) -> Option<&mut OutlierStore> {
        self.outliers.as_mut()
    }

    /// Mutable access to the delay-split buffer (if delay-split is on),
    /// for the same fault-injection purpose.
    pub fn delay_mut(&mut self) -> Option<&mut DelaySplitBuffer> {
        self.delay.as_mut()
    }

    /// Audits the live tree with run-level cross-checks layered on top of
    /// the structural invariants: the page budget (with the documented
    /// one-insert-plus-rebuild-transient slack of `height + 1` pages) and
    /// end-to-end N conservation — every point fed so far must be in the
    /// tree or parked on the outlier/delay-split disks, since nothing is
    /// discarded before `finish` (§5.1.3).
    ///
    /// In out-of-core mode the whole-tree page cap does not apply (the
    /// pager bounds residency instead, checked here against the cap);
    /// auditing faults every spilled node back in, and the pager evicts
    /// back down at the next insert.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found.
    ///
    /// # Panics
    ///
    /// Panics in out-of-core mode if the pager let residency exceed the
    /// page budget — that is a pager bug, not a data-dependent condition.
    pub fn audit(&mut self) -> Result<crate::audit::AuditReport, crate::audit::AuditViolation> {
        let parked = self.outliers.as_ref().map_or(0.0, OutlierStore::parked_n)
            + self.delay.as_ref().map_or(0.0, DelaySplitBuffer::parked_n);
        let max_pages = if let Some(ps) = self.tree.page_stats() {
            assert!(
                ps.resident_nodes <= self.resident_cap(),
                "pager residency {} exceeds cap {}",
                ps.resident_nodes,
                self.resident_cap()
            );
            self.tree.fault_all();
            None
        } else {
            Some(self.max_pages + self.tree.height() + 1)
        };
        let opts = crate::audit::AuditOptions {
            max_pages,
            expected_n: Some(self.fed_n - parked),
            ..crate::audit::AuditOptions::default()
        };
        crate::audit::audit_with(&self.tree, &opts)
    }

    /// Checkpoints the live tree to `path` mid-scan (see
    /// [`CfTree::checkpoint`]), paged or not — a paged tree is faulted
    /// fully resident for the write and the pager evicts back down at
    /// the next insert boundary.
    ///
    /// # Errors
    ///
    /// Any [`birch_pager::SnapshotError`] from the snapshot writer.
    pub fn checkpoint(&mut self, path: &std::path::Path) -> Result<(), birch_pager::SnapshotError> {
        self.tree.checkpoint(path)
    }

    /// Feeds one CF (a point or a pre-aggregated subcluster).
    ///
    /// # Panics
    ///
    /// Panics if `cf` is empty or of the wrong dimension.
    pub fn feed(&mut self, cf: Cf) {
        self.points_scanned += 1;
        self.fed_n += cf.n();
        if self.delay_mode {
            // §5.1.4: memory is exhausted — absorb what fits without
            // growing the tree, park the rest on disk.
            if self.tree.try_absorb(&cf) {
                return;
            }
            let parked = self
                .delay
                .as_mut()
                .expect("delay_mode implies a delay buffer")
                .park(cf);
            if let Err(cf) = parked {
                // Buffer full: time to actually rebuild, then insert.
                self.rebuild_cycle();
                self.insert_checked(cf);
            }
        } else {
            self.insert_checked(cf);
        }
    }

    /// Feeds one unweighted data point through an internal scratch CF, so
    /// a warm builder pays zero heap allocations per point (the
    /// `Cf::from_point` route boxes a fresh `LS` vector every time).
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong dimension.
    pub fn feed_point(&mut self, p: &crate::point::Point) {
        self.feed_weighted_point(p, 1.0);
    }

    /// Weighted variant of [`Phase1Builder::feed_point`].
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong dimension or `w` is not positive and
    /// finite.
    pub fn feed_weighted_point(&mut self, p: &crate::point::Point, w: f64) {
        let mut scratch = self
            .scratch
            .take()
            .unwrap_or_else(|| Cf::empty(self.tree.dim()));
        scratch.assign_weighted_point(p, w);
        self.feed_ref(&scratch);
        self.scratch = Some(scratch);
    }

    /// Borrowed-CF feed: identical routing to [`Phase1Builder::feed`], but
    /// clones `cf` only when it must outlive the call (parked on the
    /// delay-split disk, or stored as a new leaf entry).
    fn feed_ref(&mut self, cf: &Cf) {
        self.points_scanned += 1;
        self.fed_n += cf.n();
        if self.delay_mode {
            if self.tree.try_absorb(cf) {
                return;
            }
            let parked = self
                .delay
                .as_mut()
                .expect("delay_mode implies a delay buffer")
                .park(cf.clone());
            if let Err(cf) = parked {
                // Buffer full: time to actually rebuild, then insert.
                self.rebuild_cycle();
                self.insert_checked(cf);
            }
        } else {
            self.tree
                .insert_cf_ref_observed(cf, &mut Tee(&mut self.recorder, &mut self.sink));
            self.react_to_pressure();
        }
    }

    /// Inserts and reacts to memory pressure.
    fn insert_checked(&mut self, cf: Cf) {
        self.tree
            .insert_cf_observed(cf, &mut Tee(&mut self.recorder, &mut self.sink));
        self.react_to_pressure();
    }

    /// The post-insert memory check shared by the owned and borrowed feed
    /// paths. In out-of-core mode the pager already evicted down to the
    /// budget at the insert boundary, so pressure never triggers a
    /// rebuild; the high-water mark tracks *resident* pages.
    fn react_to_pressure(&mut self) {
        if self.out_of_core {
            let resident = self
                .tree
                .page_stats()
                .map_or_else(|| self.tree.node_count(), |ps| ps.resident_nodes);
            self.note_pages(resident);
            return;
        }
        self.note_pages(self.tree.node_count());
        if self.tree.node_count() > self.max_pages {
            let can_delay = self.delay.as_ref().is_some_and(DelaySplitBuffer::has_space);
            if can_delay {
                self.delay_mode = true;
            } else {
                self.rebuild_cycle();
            }
        }
    }

    /// Banks the live tree's distance-call counters before it is replaced
    /// by a rebuild, so lifetime totals survive the swap.
    fn retire_tree_counters(&mut self) {
        let s = self.tree.stats();
        self.retired_distance_calls += s.distance_calls;
        self.retired_distance_calls_pruned += s.distance_calls_pruned;
    }

    /// Rebuilds (possibly repeatedly) until the tree fits in memory, then
    /// folds parked delay-split points back in — rebuilding again mid-drain
    /// if they push the tree back over budget, so the page high-water mark
    /// never exceeds `budget + h` (the Reducibility Theorem's transient).
    fn rebuild_cycle(&mut self) {
        self.rebuild_until_fits();
        self.delay_mode = false;
        let parked = match self.delay.as_mut() {
            Some(buf) => buf.drain(),
            None => Vec::new(),
        };
        for cf in parked {
            self.tree
                .insert_cf_observed(cf, &mut Tee(&mut self.recorder, &mut self.sink));
            self.note_pages(self.tree.node_count());
            if self.tree.node_count() > self.max_pages {
                self.rebuild_until_fits();
            }
        }
    }

    /// Re-enables paging after a rebuild replaced the tree (rebuilds work
    /// on a fully-resident tree and produce an unpaged one). No-op unless
    /// an out-of-core spill path is active.
    fn reenable_paging(&mut self) {
        if let Some(path) = self.spill_path.clone() {
            if !self.tree.is_paged() {
                self.tree
                    .enable_paging(&path, self.resident_cap())
                    .expect("recreate page spill file after rebuild");
            }
        }
    }

    /// The inner rebuild loop of Fig. 2: raise the threshold and rebuild
    /// until the tree fits the page budget.
    fn rebuild_until_fits(&mut self) {
        // Rebuilds walk and replace the whole tree: bring it resident
        // first, re-enable paging on the replacement after.
        let was_paged = self.tree.is_paged();
        if was_paged {
            self.tree.disable_paging();
        }
        while self.tree.node_count() > self.max_pages {
            assert!(
                self.io.rebuilds < MAX_REBUILDS,
                "rebuild did not converge after {MAX_REBUILDS} attempts"
            );
            let t_next = self
                .estimator
                .next_threshold(&self.tree, self.points_scanned);
            let old_t = self.tree.threshold();
            self.emit(Event::ThresholdRaised {
                old: old_t,
                new: t_next,
                points_seen: self.points_scanned,
            });
            self.emit(Event::RebuildTriggered {
                old_threshold: old_t,
                new_threshold: t_next,
                leaf_entries: self.tree.leaf_entry_count(),
                pages: self.tree.node_count(),
            });
            let (new_tree, report) = rebuild_observed(
                &self.tree,
                t_next,
                self.outliers.as_mut(),
                &mut Tee(&mut self.recorder, &mut self.sink),
            );
            self.io.rebuilds += 1;
            self.note_pages(report.peak_pages);
            self.threshold_history.push(t_next);
            self.retire_tree_counters();
            self.tree = new_tree;

            // Outlier disk full? Scan it for re-absorption (§5.1.3).
            if let Some(store) = self.outliers.as_mut() {
                if !store.has_space() && !store.is_empty() {
                    let mean = mean_entry_n(&self.tree);
                    store.reabsorb_observed(
                        &mut self.tree,
                        mean,
                        &mut Tee(&mut self.recorder, &mut self.sink),
                    );
                }
            }
            self.sample_memory();
        }
        if was_paged {
            self.reenable_paging();
        }
    }

    /// Raises the tree threshold to at least `t` (rebuilding once), so
    /// entries built under a *foreign* threshold — another shard's or
    /// stream's leaf CFs — can be inserted without violating the leaf
    /// threshold invariant. No-op when the tree is already at or above
    /// `t`. Counts as an ordinary rebuild in the telemetry.
    pub(crate) fn ensure_threshold(&mut self, t: f64) {
        if t <= self.tree.threshold() {
            return;
        }
        let was_paged = self.tree.is_paged();
        if was_paged {
            self.tree.disable_paging();
        }
        let old_t = self.tree.threshold();
        self.emit(Event::ThresholdRaised {
            old: old_t,
            new: t,
            points_seen: self.points_scanned,
        });
        self.emit(Event::RebuildTriggered {
            old_threshold: old_t,
            new_threshold: t,
            leaf_entries: self.tree.leaf_entry_count(),
            pages: self.tree.node_count(),
        });
        let (new_tree, report) = rebuild_observed(
            &self.tree,
            t,
            self.outliers.as_mut(),
            &mut Tee(&mut self.recorder, &mut self.sink),
        );
        self.io.rebuilds += 1;
        self.note_pages(report.peak_pages);
        self.threshold_history.push(t);
        self.retire_tree_counters();
        self.tree = new_tree;
        self.sample_memory();
        if was_paged {
            self.reenable_paging();
        }
    }

    /// Routes a CF that a previous scan already flagged as a potential
    /// outlier: try split-free absorption first, park it on the outlier
    /// disk if there is room, and only fall back to a full insert when
    /// neither works. The parallel merge stage feeds shard-carried
    /// outliers through this so they keep §5.1.3 semantics (one more
    /// re-absorption chance, then the usual end-of-scan disposition)
    /// instead of being promoted to regular data. Public so external
    /// shard-and-merge schemes (and fault-injection tests) can drive the
    /// same path.
    ///
    /// # Panics
    ///
    /// Panics if `cf` is empty or of the wrong dimension.
    pub fn feed_outlier_candidate(&mut self, cf: Cf) {
        self.fed_n += cf.n();
        if self.tree.try_absorb(&cf) {
            return;
        }
        let cf = match self.outliers.as_mut() {
            Some(store) => match store.spill(cf) {
                Ok(()) => return,
                Err(cf) => cf, // disk full: fold into the tree instead
            },
            None => cf,
        };
        self.insert_checked(cf);
    }

    /// Ends the scan: flushes parked delay-split points, runs the final
    /// outlier re-absorption/discard, and returns the Phase-1 output.
    #[must_use]
    pub fn finish(self) -> Phase1Output {
        self.finish_inner(false).0
    }

    /// Like [`Phase1Builder::finish`], but instead of discarding the
    /// entries still parked on the outlier disk, returns them alongside
    /// the output. Used by the sharded parallel build (and available for
    /// any external shard-and-merge scheme): a shard must not declare
    /// noise unilaterally, because an entry that looks sparse within one
    /// shard may re-absorb into the merged tree.
    #[must_use]
    pub fn finish_keeping_outliers(self) -> (Phase1Output, Vec<Cf>) {
        self.finish_inner(true)
    }

    fn finish_inner(mut self, keep_outliers: bool) -> (Phase1Output, Vec<Cf>) {
        let _sp = span::enter("phase1_finish");
        // Flush any parked points.
        if self.delay.as_ref().is_some_and(|b| !b.is_empty()) {
            self.rebuild_cycle();
        }

        // Final outlier disposition: one more absorption scan, then either
        // discard what remains (they are the actual noise) or hand the
        // remainder back for a later merge stage to re-judge.
        let mut carried = Vec::new();
        if let Some(store) = self.outliers.as_mut() {
            if !store.is_empty() {
                let mean = mean_entry_n(&self.tree);
                store.reabsorb_observed(
                    &mut self.tree,
                    mean,
                    &mut Tee(&mut self.recorder, &mut self.sink),
                );
            }
            if keep_outliers {
                carried = store.take_remaining();
            } else {
                let _sp = span::enter("outlier_finalize");
                store.finalize_observed(
                    &mut self.tree,
                    &mut Tee(&mut self.recorder, &mut self.sink),
                );
            }
        }

        // Out-of-core epilogue: bank the pager's counters and take the
        // final sample while residency is still bounded, then bring the
        // tree fully resident — Phases 2–4 walk it in memory, and the
        // spill file is deleted with the page store.
        if self.tree.is_paged() {
            if let Some(ps) = self.tree.page_stats() {
                self.io.page_refs = ps.refs;
                self.io.page_faults = ps.faults;
                self.io.page_evictions = ps.evictions;
                self.note_pages(ps.resident_nodes);
            }
            self.sample_memory();
            self.tree.disable_paging();
            self.spill_path = None;
        } else {
            self.note_pages(self.tree.node_count());
            self.sample_memory();
        }
        self.emit(Event::PhaseFinished {
            phase: Phase::Load,
            wall: self.started.elapsed(),
        });

        // Assemble counters: event-derived fields come from the recorder —
        // the single source the tree, rebuilds, and outlier machinery all
        // report into — so nothing is tallied twice.
        {
            let m = self.recorder.snapshot();
            self.io.rebuilds = m.rebuilds;
            self.io.splits = m.splits;
            self.io.merge_refinements = m.merge_refinements;
            self.io.outliers_discarded = m.outliers_discarded;
            self.io.peak_pages = self.io.peak_pages.max(m.peak_pages);
        }
        if let Some(store) = &self.outliers {
            self.io.disk_writes += store.writes();
            self.io.disk_reads += store.reads();
            self.io.disk_bytes_written += store.bytes_written();
            self.io.disk_bytes_read += store.bytes_read();
            self.io.disk_write_attempts += store.write_attempts();
            self.io.disk_faults_injected += store.faults_injected();
        }
        if let Some(buf) = &self.delay {
            self.io.disk_writes += buf.writes();
            self.io.disk_reads += buf.reads();
            self.io.disk_bytes_written += buf.bytes_written();
            self.io.disk_bytes_read += buf.bytes_read();
            self.io.disk_write_attempts += buf.write_attempts();
            self.io.disk_faults_injected += buf.faults_injected();
        }

        let mut metrics = self.recorder.report();
        {
            let s = self.tree.stats();
            metrics.distance_calls = self.retired_distance_calls + s.distance_calls;
            metrics.distance_calls_pruned =
                self.retired_distance_calls_pruned + s.distance_calls_pruned;
        }
        let out = Phase1Output {
            tree: self.tree,
            io: self.io,
            threshold_history: self.threshold_history,
            points_scanned: self.points_scanned,
            outliers: self.outliers,
            estimator: self.estimator,
            metrics,
            memory: self.memory,
        };
        (out, carried)
    }
}

/// Mean (weighted) points per leaf entry — the outlier rule's baseline.
pub(crate) fn mean_entry_n(tree: &CfTree) -> f64 {
    if tree.leaf_entry_count() == 0 {
        0.0
    } else {
        tree.total_cf().n() / tree.leaf_entry_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    /// Deterministic scatter of `n` points over `k` well-separated blobs.
    fn blobs(n: usize, k: usize) -> Vec<Cf> {
        (0..n)
            .map(|i| {
                let c = (i % k) as f64 * 100.0;
                let j = i as f64;
                Cf::from_point(&Point::xy(
                    c + (j * 0.7).sin() * 2.0,
                    c + (j * 1.3).cos() * 2.0,
                ))
            })
            .collect()
    }

    fn tiny_config() -> BirchConfig {
        // Small memory to force rebuilds on modest data.
        BirchConfig::with_clusters(4)
            .memory(8 * 1024)
            .page_size(1024)
    }

    #[test]
    fn small_data_no_rebuild() {
        let cfg = BirchConfig::with_clusters(2);
        let out = run(&cfg, 2, blobs(100, 2));
        assert_eq!(out.points_scanned, 100);
        assert_eq!(out.io.rebuilds, 0);
        assert!(out.threshold_history.is_empty());
        out.tree.check_invariants().unwrap();
        assert!((out.tree.total_cf().n() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_pressure_triggers_rebuilds_and_fits_budget() {
        let cfg = tiny_config();
        let out = run(&cfg, 2, blobs(20_000, 4));
        assert!(out.io.rebuilds >= 1, "expected rebuilds, io={:?}", out.io);
        let max_pages = cfg.memory_bytes / cfg.page_bytes;
        assert!(
            out.tree.node_count() <= max_pages,
            "tree {} pages > budget {}",
            out.tree.node_count(),
            max_pages
        );
        out.tree.check_invariants().unwrap();
        // Thresholds strictly increase.
        for w in out.threshold_history.windows(2) {
            assert!(
                w[1] > w[0],
                "thresholds not increasing: {:?}",
                out.threshold_history
            );
        }
    }

    #[test]
    fn out_of_core_bounds_residency_not_tree_size() {
        let cfg = tiny_config().out_of_core(true).delay_split(false);
        let max_pages = cfg.memory_bytes / cfg.page_bytes;
        let mut b = Phase1Builder::new(&cfg, 2);
        assert!(b.tree().is_paged());
        let n = 20_000;
        for (i, cf) in blobs(n, 4).into_iter().enumerate() {
            b.feed(cf);
            if i % 4000 == 1999 {
                b.audit().unwrap_or_else(|v| panic!("audit at {i}: {v}"));
            }
        }
        let out = b.finish();
        // Paged mode replaces rebuilds with eviction: the threshold never
        // rose, the tree grew past the page budget on disk, and the
        // resident high-water mark stayed within it.
        assert_eq!(out.io.rebuilds, 0, "paging must replace rebuilds");
        assert!(
            out.tree.node_count() > max_pages,
            "test premise: tree must outgrow the budget ({} nodes <= {max_pages} pages)",
            out.tree.node_count()
        );
        assert!(
            out.io.peak_pages <= max_pages,
            "resident peak {} pages exceeds budget {max_pages}",
            out.io.peak_pages
        );
        assert!(out.io.page_evictions > 0, "nothing was ever spilled");
        assert!(out.io.page_faults > 0, "nothing was ever faulted back");
        assert!(out.io.page_refs >= out.io.page_faults);
        assert!(
            out.memory.page_spill.peak_bytes > 0,
            "spill file never sampled"
        );
        assert!(
            out.memory.overrun_bytes() == 0,
            "resident bytes overran budget M by {}",
            out.memory.overrun_bytes()
        );
        // Phase boundary: the tree is fully resident and intact.
        assert!(!out.tree.is_paged());
        crate::audit::audit(&out.tree).unwrap();
        assert!((out.tree.total_cf().n() - n as f64).abs() < 1e-6);
    }

    #[test]
    fn out_of_core_outlier_journal_round_trips() {
        let cfg = tiny_config().out_of_core(true);
        let mut b = Phase1Builder::new(&cfg, 2);
        for cf in blobs(500, 4) {
            b.feed(cf);
        }
        // Far singletons: absorption fails at the tiny threshold, so they
        // park on the outlier disk — and its real backing journal.
        for i in 0..8 {
            let j = f64::from(i);
            b.feed_outlier_candidate(Cf::from_point(&Point::xy(1e6 + j * 1e4, -1e6 - j * 1e4)));
        }
        assert!(
            !b.outliers_mut().expect("outliers on").is_empty(),
            "test premise: at least one candidate must have parked"
        );
        let out = b.finish();
        let store = out.outliers.as_ref().expect("outlier handling on");
        let (jw, jr) = store.journal_bytes();
        assert!(jw > 0, "parked entries never hit the journal file");
        assert_eq!(
            jw, jr,
            "finalize must read back (and bit-verify) every journaled byte"
        );
        crate::audit::audit(&out.tree).unwrap();
    }

    #[test]
    fn no_data_lost_without_outlier_handling() {
        let cfg = tiny_config().outliers(false);
        let n = 5000;
        let out = run(&cfg, 2, blobs(n, 4));
        assert!((out.tree.total_cf().n() - n as f64).abs() < 1e-6);
        assert_eq!(out.io.outliers_discarded, 0);
    }

    #[test]
    fn delay_split_defers_rebuilds() {
        let with = run(&tiny_config().delay_split(true), 2, blobs(20_000, 4));
        let without = run(&tiny_config().delay_split(false), 2, blobs(20_000, 4));
        assert!(
            with.io.rebuilds <= without.io.rebuilds,
            "delay-split should not increase rebuilds: {} vs {}",
            with.io.rebuilds,
            without.io.rebuilds
        );
        // Both keep all the data (outlier handling may shave some off; use
        // totals net of discards).
        assert!(with.tree.total_cf().n() > 19_000.0);
    }

    #[test]
    fn noise_points_discarded_as_outliers() {
        // Two dense blobs plus isolated noise points far away. With
        // outlier handling on and memory pressure forcing rebuilds, at
        // least some noise should end up discarded.
        let mut input = blobs(10_000, 2);
        for i in 0..50 {
            let j = f64::from(i);
            input.push(Cf::from_point(&Point::xy(
                5_000.0 + j * 211.0,
                -7_000.0 - j * 173.0,
            )));
        }
        let cfg = tiny_config();
        let out = run(&cfg, 2, input);
        assert!(
            out.io.outliers_discarded > 0,
            "expected discarded outliers, io={:?}",
            out.io
        );
        // The blobs themselves survive.
        assert!(out.tree.total_cf().n() >= 10_000.0 - 1.0);
    }

    #[test]
    fn disk_counters_populate_under_pressure() {
        let out = run(&tiny_config(), 2, blobs(20_000, 4));
        // With both options on and rebuilds happening, the simulated disk
        // must see traffic.
        assert!(out.io.disk_writes > 0, "io={:?}", out.io);
    }

    #[test]
    fn empty_input_yields_empty_tree() {
        let out = run(&BirchConfig::with_clusters(1), 2, Vec::new());
        assert_eq!(out.points_scanned, 0);
        assert_eq!(out.tree.leaf_entry_count(), 0);
    }

    #[test]
    fn weighted_subclusters_accepted() {
        let cfg = BirchConfig::with_clusters(2);
        let mut input = Vec::new();
        for i in 0..100 {
            let p = Point::xy(f64::from(i % 10), 0.0);
            input.push(Cf::from_weighted_point(&p, 2.5));
        }
        let out = run(&cfg, 2, input);
        assert!((out.tree.total_cf().n() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn peak_pages_recorded() {
        let out = run(&tiny_config(), 2, blobs(20_000, 4));
        assert!(out.io.peak_pages > 0);
        assert!(out.io.peak_pages >= out.tree.node_count());
    }

    #[test]
    fn peak_pages_bounded_by_budget_plus_height() {
        // The memory budget is only ever exceeded by the one-page insert
        // overshoot plus the rebuild transient (≤ h pages, Reducibility
        // Theorem) — even with delay-split drains in the mix.
        let cfg = tiny_config();
        let out = run(&cfg, 2, blobs(30_000, 4));
        let budget_pages = cfg.memory_bytes / cfg.page_bytes;
        let slack = out.tree.height() + 1;
        assert!(
            out.io.peak_pages <= budget_pages + slack,
            "peak {} > budget {} + slack {}",
            out.io.peak_pages,
            budget_pages,
            slack
        );
    }
}
