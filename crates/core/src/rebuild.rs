//! CF-tree rebuilding (§5.1) — the paper's path-mirroring algorithm and
//! its Reducibility Theorem (§5.1.1).
//!
//! When the tree outgrows memory, BIRCH rebuilds it with a larger
//! threshold `T_{i+1} > T_i`. The paper's algorithm walks the old tree's
//! leaves *path by path* ("OldCurrentPath"), maintaining a mirrored
//! "NewCurrentPath" in the new tree — the same node at every level,
//! created on demand. Each old leaf entry is tested against the new tree:
//! if it can fit into an existing node **without splitting** (absorbed
//! within the threshold, or added to a leaf with free space — necessarily
//! at or left of the current path), it goes there; otherwise it is
//! appended to the mirrored current leaf, which by construction has room.
//! Because nodes are only ever created as mirrors of old nodes and no
//! split ever happens, the new tree cannot have more nodes than the old
//! one — and while both trees are partially alive, the transient overlap
//! is at most the `h` nodes of the current path:
//!
//! > **Reducibility Theorem**: rebuilding with `T_{i+1} ≥ T_i` needs at
//! > most `h` extra pages of memory, and `S_{i+1} ≤ S_i`.
//!
//! Rebuilding is also where outlier handling hooks in (§5.1.3): old leaf
//! entries holding far fewer points than average are potential outliers
//! and go to the outlier disk instead of the new tree.

use crate::cf::Cf;
use crate::node::{ChildEntry, Node, NodeId, NodeKind};
use crate::obs::{Event, EventSink, NoopSink};
use crate::outlier::OutlierStore;
use crate::tree::{CfTree, TreeParams};

/// Accounting record of one rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RebuildReport {
    /// Pages (nodes) of the old tree.
    pub old_pages: usize,
    /// Pages (nodes) of the new tree.
    pub new_pages: usize,
    /// Transient peak of `new-tree pages + not-yet-freed old-tree pages`
    /// during the rebuild — the Reducibility Theorem bounds this by
    /// `old_pages + h`.
    pub peak_pages: usize,
    /// Leaf entries re-inserted into the new tree.
    pub entries_reinserted: usize,
    /// Leaf entries diverted to the outlier disk.
    pub entries_spilled: usize,
}

/// Rebuilds `old` into a fresh tree with threshold `new_threshold`,
/// guaranteeing `new.node_count() <= old.node_count()` (Reducibility).
///
/// If `outliers` is provided, entries whose weight falls below the
/// configured fraction of the average are spilled to the outlier disk;
/// when the disk is full they are kept in the new tree instead (no data
/// is ever dropped here).
///
/// # Panics
///
/// Panics if `new_threshold` is not finite or is smaller than the old
/// threshold — rebuilding with a tighter threshold can only grow the tree.
pub fn rebuild(
    old: &CfTree,
    new_threshold: f64,
    outliers: Option<&mut OutlierStore>,
) -> (CfTree, RebuildReport) {
    rebuild_observed(old, new_threshold, outliers, &mut NoopSink)
}

/// Like [`rebuild`], but reporting telemetry to `sink`: an
/// [`Event::OutlierSpilled`] with the total spill count, plus
/// [`Event::SplitPerformed`] / [`Event::MergeRefinement`] for any tree
/// mutations during construction (the spine builder itself never splits,
/// so these normally stay zero). With [`NoopSink`] this monomorphizes to
/// exactly [`rebuild`].
///
/// # Panics
///
/// Same as [`rebuild`].
pub fn rebuild_observed(
    old: &CfTree,
    new_threshold: f64,
    mut outliers: Option<&mut OutlierStore>,
    sink: &mut impl EventSink,
) -> (CfTree, RebuildReport) {
    let _sp = crate::obs::span::enter("rebuild");
    assert!(
        new_threshold.is_finite() && new_threshold >= old.threshold(),
        "new threshold {new_threshold} must be finite and >= old {}",
        old.threshold()
    );
    let params = TreeParams {
        threshold: new_threshold,
        ..*old.params()
    };
    let mut report = RebuildReport {
        old_pages: old.node_count(),
        ..RebuildReport::default()
    };

    let mean_entry_n = if old.leaf_entry_count() == 0 {
        0.0
    } else {
        old.total_cf().n() / old.leaf_entry_count() as f64
    };

    let h = old.height();
    let mut builder = SpineBuilder::new(params, h);
    let paths = collect_leaf_paths(old);

    // "Old pages still alive": freed suffix-by-suffix as the DFS exits
    // nodes, which is exactly when the paper's algorithm can reuse them.
    let mut old_remaining = old.node_count();
    report.peak_pages = old_remaining;
    let mut prev: Option<&Vec<NodeId>> = None;

    for path in &paths {
        let cp = prev.map_or(0, |p| common_prefix(p, path));
        if let Some(p) = prev {
            // The DFS has exited p[cp..]: those old pages are reusable.
            old_remaining -= p.len() - cp;
        }
        builder.close_from(cp);

        let leaf = *path.last().expect("path includes the leaf");
        for entry in leaf_entries(old, leaf) {
            let is_outlier = outliers
                .as_ref()
                .is_some_and(|s| s.config().is_potential_outlier(entry.n(), mean_entry_n));
            if is_outlier {
                match outliers
                    .as_mut()
                    .expect("checked above")
                    .spill(entry.clone())
                {
                    Ok(()) => {
                        report.entries_spilled += 1;
                        continue;
                    }
                    Err(back) => {
                        builder.insert(back);
                        report.entries_reinserted += 1;
                        continue;
                    }
                }
            }
            builder.insert(entry.clone());
            report.entries_reinserted += 1;
        }
        report.peak_pages = report
            .peak_pages
            .max(builder.tree.node_count() + old_remaining);
        prev = Some(path);
    }

    let new_tree = builder.finish();
    new_tree.strict_audit("rebuild");
    report.new_pages = new_tree.node_count();
    if sink.enabled() {
        if report.entries_spilled > 0 {
            sink.record(&Event::OutlierSpilled {
                count: report.entries_spilled as u64,
            });
        }
        let stats = new_tree.stats();
        if stats.splits > 0 {
            sink.record(&Event::SplitPerformed {
                count: stats.splits,
            });
        }
        if stats.merge_refinements > 0 {
            sink.record(&Event::MergeRefinement {
                count: stats.merge_refinements,
            });
        }
    }
    debug_assert!(
        report.new_pages <= report.old_pages,
        "reducibility violated: {} > {}",
        report.new_pages,
        report.old_pages
    );
    (new_tree, report)
}

/// All root-to-leaf paths (each including the leaf) in DFS order — the
/// paper's path order.
fn collect_leaf_paths(tree: &CfTree) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut path = Vec::with_capacity(tree.height());
    collect_rec(tree, tree.root, &mut path, &mut out);
    out
}

fn collect_rec(tree: &CfTree, id: NodeId, path: &mut Vec<NodeId>, out: &mut Vec<Vec<NodeId>>) {
    path.push(id);
    match &tree.node_view(id).kind {
        NodeKind::Leaf { .. } => out.push(path.clone()),
        NodeKind::Interior { children } => {
            for c in children {
                collect_rec(tree, c.child, path, out);
            }
        }
    }
    path.pop();
}

fn common_prefix(a: &[NodeId], b: &[NodeId]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn leaf_entries(tree: &CfTree, leaf: NodeId) -> &[Cf] {
    match &tree.node_view(leaf).kind {
        NodeKind::Leaf { entries, .. } => entries,
        NodeKind::Interior { .. } => unreachable!("path ends at a leaf"),
    }
}

/// Builds the new tree by mirroring old paths ("NewCurrentPath"): nodes
/// are created lazily, one per old node the current path visits, and only
/// when an entry actually needs appending beneath them.
struct SpineBuilder {
    tree: CfTree,
    /// Mirrored current path; `spine[0]` is the root level, `spine[h-1]`
    /// the leaf level. `None` = not materialized for the current old path.
    spine: Vec<Option<NodeId>>,
    /// Tail of the new tree's leaf chain.
    last_leaf: Option<NodeId>,
    /// Whether any node has been materialized yet (the initial placeholder
    /// root leaf is repurposed as the first spine leaf).
    started: bool,
    height: usize,
}

impl SpineBuilder {
    fn new(params: TreeParams, height: usize) -> Self {
        Self {
            tree: CfTree::new(params),
            spine: vec![None; height],
            last_leaf: None,
            started: false,
            height,
        }
    }

    /// Inserts one old leaf entry per the paper's rule: into an existing
    /// node if that needs no split, otherwise appended to the mirrored
    /// current leaf.
    fn insert(&mut self, ent: Cf) {
        if self.started && self.tree.try_add_no_split(&ent) {
            return;
        }
        self.append(ent);
    }

    /// Appends `ent` to the current spine leaf, materializing the spine
    /// (top-down, mirroring the old path) as needed.
    fn append(&mut self, ent: Cf) {
        self.ensure_spine();
        self.tree.note_atomic_input(&ent);
        let leaf = self.spine[self.height - 1].expect("spine materialized");
        self.tree.nodes[leaf.index()].push_leaf_entry(ent.clone());
        self.tree.leaf_entry_count += 1;
        self.tree.total.merge(&ent);
        // Every spine interior's entry for its spine child is its *last*
        // child entry (children are appended rightward only).
        for lvl in 0..self.height - 1 {
            let nid = self.spine[lvl].expect("spine materialized");
            let child = self.spine[lvl + 1].expect("spine materialized");
            let node = &mut self.tree.nodes[nid.index()];
            let last = node.entry_count() - 1;
            debug_assert_eq!(
                node.children()[last].child,
                child,
                "spine child not rightmost"
            );
            node.merge_into_child_cf(last, &ent);
        }
    }

    /// Materializes any missing spine levels, top-down. The first-ever
    /// materialization repurposes the placeholder root leaf as the first
    /// spine leaf (so pre-spine `try_add_no_split` hits land in the right
    /// node) and stacks the interior levels above it.
    fn ensure_spine(&mut self) {
        let h = self.height;
        if !self.started {
            let leaf = self.tree.root;
            self.spine[h - 1] = Some(leaf);
            let mut child = leaf;
            for lvl in (0..h.saturating_sub(1)).rev() {
                let cf = self.tree.nodes[child.index()].summary(self.tree.dim());
                let mut node = Node::new_interior();
                node.push_child(ChildEntry { cf, child });
                let id = self.tree.alloc(node);
                self.spine[lvl] = Some(id);
                child = id;
            }
            self.tree.root = child;
            self.tree.height = h;
            self.tree.first_leaf = leaf;
            self.last_leaf = Some(leaf);
            self.started = true;
            return;
        }
        // Later paths: create the missing suffix below the deepest
        // materialized level.
        for lvl in 0..h {
            if self.spine[lvl].is_some() {
                continue;
            }
            debug_assert!(lvl > 0, "root level never closes");
            let parent = self.spine[lvl - 1].expect("materialize top-down");
            let is_leaf = lvl == h - 1;
            let id = if is_leaf {
                let id = self.tree.alloc(Node::new_leaf());
                // Link into the leaf chain after the current tail.
                let prev_tail = self.last_leaf.expect("chain started");
                if let NodeKind::Leaf { next, .. } = &mut self.tree.nodes[prev_tail.index()].kind {
                    *next = Some(id);
                }
                if let NodeKind::Leaf { prev, .. } = &mut self.tree.nodes[id.index()].kind {
                    *prev = Some(prev_tail);
                }
                self.last_leaf = Some(id);
                id
            } else {
                self.tree.alloc(Node::new_interior())
            };
            let cf = Cf::empty(self.tree.dim());
            self.tree.nodes[parent.index()].push_child(ChildEntry { cf, child: id });
            self.spine[lvl] = Some(id);
        }
    }

    /// The old path moved: forget the mirrored nodes from level `cp` down
    /// (they stay in the tree if they were materialized — materialized
    /// nodes always hold data).
    fn close_from(&mut self, cp: usize) {
        for slot in self.spine.iter_mut().skip(cp.max(1)) {
            *slot = None;
        }
    }

    /// Collapses single-child root levels and returns the finished tree.
    fn finish(mut self) -> CfTree {
        loop {
            let root = self.tree.root;
            let next = match &self.tree.nodes[root.index()].kind {
                NodeKind::Interior { children } if children.len() == 1 => children[0].child,
                _ => break,
            };
            self.tree.free.push(root);
            self.tree.root = next;
            self.tree.height -= 1;
        }
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{DistanceMetric, ThresholdKind};
    use crate::outlier::OutlierConfig;
    use crate::point::Point;

    fn params(threshold: f64) -> TreeParams {
        TreeParams {
            dim: 2,
            branching: 4,
            leaf_capacity: 4,
            threshold,
            threshold_kind: ThresholdKind::Diameter,
            metric: DistanceMetric::D2,
            merge_refinement: true,
            descend_prune: false,
        }
    }

    fn build_tree(threshold: f64, n: usize) -> CfTree {
        let mut t = CfTree::new(params(threshold));
        for i in 0..n {
            let i = i as f64;
            t.insert_point(&Point::xy(
                (i * 0.618).rem_euclid(30.0),
                (i * 0.414).rem_euclid(30.0),
            ));
        }
        t
    }

    #[test]
    fn rebuild_preserves_total_cf() {
        let old = build_tree(0.2, 400);
        let (new, report) = rebuild(&old, 1.0, None);
        new.check_invariants().unwrap();
        assert_eq!(report.entries_spilled, 0);
        let (a, b) = (old.total_cf(), new.total_cf());
        assert!((a.n() - b.n()).abs() < 1e-9);
        assert!((a.scalar_stat() - b.scalar_stat()).abs() < 1e-6 * a.scalar_stat().abs().max(1.0));
        for (x, y) in a.vec_stat().iter().zip(b.vec_stat()) {
            assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn reducibility_never_more_pages() {
        for (t0, t1, n) in [(0.1, 2.0, 600), (0.0, 0.5, 300), (0.5, 0.5, 500)] {
            let old = build_tree(t0, n);
            let (new, report) = rebuild(&old, t1, None);
            new.check_invariants().unwrap();
            assert!(
                new.node_count() <= old.node_count(),
                "t0={t0} t1={t1}: new {} > old {}",
                new.node_count(),
                old.node_count()
            );
            assert!(new.leaf_entry_count() <= old.leaf_entry_count());
            assert!(report.new_pages <= report.old_pages);
        }
    }

    #[test]
    fn transient_peak_within_h_extra_pages() {
        let old = build_tree(0.1, 600);
        let h = old.height();
        let (_, report) = rebuild(&old, 1.0, None);
        assert!(
            report.peak_pages <= report.old_pages + h,
            "peak {} > old {} + h {}",
            report.peak_pages,
            report.old_pages,
            h
        );
    }

    #[test]
    fn larger_threshold_compresses() {
        let old = build_tree(0.1, 600);
        let (new, _) = rebuild(&old, 4.0, None);
        assert!(
            new.leaf_entry_count() < old.leaf_entry_count() / 2,
            "expected real compression: {} -> {}",
            old.leaf_entry_count(),
            new.leaf_entry_count()
        );
    }

    #[test]
    fn outlier_entries_spilled_during_rebuild() {
        // A dense blob plus isolated singles: the singles' entries hold 1
        // point each while the blob entry holds many, so the singles spill.
        let mut t = CfTree::new(params(0.5));
        for _ in 0..96 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        for i in 0..4 {
            t.insert_point(&Point::xy(100.0 + f64::from(i) * 40.0, 250.0));
        }
        let mut store = OutlierStore::new(4096, 32, OutlierConfig::default());
        let (new, report) = rebuild(&t, 1.0, Some(&mut store));
        assert_eq!(report.entries_spilled, 4, "report: {report:?}");
        assert_eq!(store.len(), 4);
        assert!((new.total_cf().n() - 96.0).abs() < 1e-9);
        new.check_invariants().unwrap();
    }

    #[test]
    fn full_outlier_disk_folds_entries_back() {
        let mut t = CfTree::new(params(0.5));
        for _ in 0..96 {
            t.insert_point(&Point::xy(0.0, 0.0));
        }
        for i in 0..4 {
            t.insert_point(&Point::xy(100.0 + f64::from(i) * 40.0, 250.0));
        }
        // Disk holds exactly 2 records of 32 bytes.
        let mut store = OutlierStore::new(64, 32, OutlierConfig::default());
        let (new, report) = rebuild(&t, 1.0, Some(&mut store));
        assert_eq!(report.entries_spilled, 2);
        assert_eq!(store.len(), 2);
        // No data lost: spilled 2 singles, kept 2 + the blob.
        assert!((new.total_cf().n() - 98.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_empty_tree() {
        let old = CfTree::new(params(0.0));
        let (new, report) = rebuild(&old, 1.0, None);
        assert_eq!(new.leaf_entry_count(), 0);
        assert_eq!(report.entries_reinserted, 0);
        new.check_invariants().unwrap();
    }

    #[test]
    fn rebuilt_tree_accepts_further_inserts() {
        let old = build_tree(0.2, 300);
        let (mut new, _) = rebuild(&old, 1.0, None);
        for i in 0..200 {
            let i = f64::from(i);
            new.insert_point(&Point::xy(
                (i * 0.7).rem_euclid(30.0),
                (i * 0.3).rem_euclid(30.0),
            ));
        }
        new.check_invariants().unwrap();
        assert!((new.total_cf().n() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_rebuilds_shrink_to_one_entry() {
        let mut tree = build_tree(0.0, 200);
        let mut t = 0.5;
        for _ in 0..12 {
            let (next, _) = rebuild(&tree, t, None);
            next.check_invariants().unwrap();
            tree = next;
            t *= 2.0;
        }
        // Threshold 2048 dwarfs the 30x30 data box: everything merges.
        assert_eq!(tree.leaf_entry_count(), 1);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.total_cf().n() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be finite and >=")]
    fn shrinking_threshold_rejected() {
        let old = build_tree(1.0, 10);
        let _ = rebuild(&old, 0.5, None);
    }
}
