//! BIRCH configuration — the knobs of Table 2, with the paper's defaults.
//!
//! | Scope  | Parameter                        | Paper default        |
//! |--------|----------------------------------|----------------------|
//! | Global | Memory `M`                       | 80 × 1024 bytes      |
//! | Global | Disk `R` (outliers)              | 20% of `M`           |
//! | Global | Distance definition              | D2                   |
//! | Global | Quality / threshold statistic    | Diameter `D`         |
//! | Global | Threshold for leaf entry         | threshold on `D`     |
//! | Phase1 | Initial threshold `T0`           | 0.0                  |
//! | Phase1 | Delay-split                      | on                   |
//! | Phase1 | Page size `P`                    | 1024 bytes           |
//! | Phase1 | Outlier handling                 | on (entry < ¼ avg)   |
//! | Phase4 | Refinement passes                | 1 (§6: "refine … once or more") |

use crate::distance::{DistanceMetric, ThresholdKind};
use std::path::PathBuf;

/// How Phase 3 decides the number of clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterCount {
    /// Exactly `K` clusters (the usual BIRCH input).
    Exact(usize),
    /// Cut the dendrogram where the merge distance exceeds this threshold,
    /// letting the data choose `K`.
    ByDistance(f64),
}

/// Full pipeline configuration. Construct with [`BirchConfig::with_clusters`]
/// (or [`BirchConfig::by_distance`]) and override fields via the builder
/// methods.
#[derive(Debug, Clone, PartialEq)]
pub struct BirchConfig {
    /// Memory budget `M` in bytes (Table 2 default: 80 KB).
    pub memory_bytes: usize,
    /// Outlier disk budget `R` in bytes (default: 20% of `M`).
    pub disk_bytes: usize,
    /// Page size `P` in bytes (default 1024). Determines `B` and `L`.
    pub page_bytes: usize,
    /// Distance metric for tree descent, splits and Phase 3 (default D2).
    pub metric: DistanceMetric,
    /// Whether the threshold constrains entry diameter or radius.
    pub threshold_kind: ThresholdKind,
    /// Initial threshold `T0` (default 0.0).
    pub initial_threshold: f64,
    /// Phase-3 stopping rule.
    pub clusters: ClusterCount,
    /// Phase-3 algorithm (default: the paper's agglomerative HC).
    pub global_method: crate::phase3::GlobalMethod,
    /// §4.3 merging refinement (default on).
    pub merge_refinement: bool,
    /// D0 triangle-inequality descent prune (default off). Never changes
    /// which child/entry a descent selects — only skips distance
    /// evaluations that a centroid-norm lower bound proves cannot win (see
    /// [`crate::tree::TreeParams::descend_prune`]). Only effective under
    /// [`DistanceMetric::D0`].
    pub descend_prune: bool,
    /// §5.1.3 outlier handling (default on).
    pub outlier_handling: bool,
    /// Potential-outlier fraction: entry is an outlier candidate when its
    /// weight is below `outlier_factor ×` the mean entry weight (default ¼).
    pub outlier_factor: f64,
    /// §5.1.4 delay-split option (default on).
    pub delay_split: bool,
    /// Run Phase 2 (condense the tree before the global phase; default on).
    pub phase2: bool,
    /// Phase-2 target: maximum number of leaf entries handed to Phase 3
    /// (the paper's "range that the global algorithm works well with";
    /// its experiments use 1000).
    pub phase2_max_entries: usize,
    /// Number of Phase-4 refinement passes (0 disables Phase 4; default 1).
    pub phase4_passes: usize,
    /// Phase-4 outlier discard: drop a point whose distance to its closest
    /// seed exceeds `phase4_outlier_factor ×` that seed cluster's radius.
    /// `None` (default) keeps every point.
    pub phase4_outlier_factor: Option<f64>,
    /// Total dataset size, when known in advance — sharpens the threshold
    /// heuristic's growth target (optional).
    pub total_points_hint: Option<u64>,
    /// Phase-1 worker threads (§7 "opportunities for parallelism").
    /// `1` (the default) is the exact serial scan of the paper; `n > 1`
    /// shards the input across `n` scoped threads, builds one CF-tree per
    /// shard under `M/n` memory, and merges the shard leaf entries into the
    /// final tree by CF additivity (see [`crate::parallel`]).
    ///
    /// The default can be overridden process-wide with the `BIRCH_THREADS`
    /// environment variable (read once per config construction) — CI uses
    /// this to force the parallel path through the whole test suite.
    pub threads: usize,
    /// Out-of-core Phase 1 (default off). When on, the CF-tree is backed
    /// by a file of real pages: instead of raising the threshold and
    /// rebuilding when `node_count × P` exceeds `M`, cold nodes are
    /// evicted to the spill file and faulted back on descent, so budget
    /// `M` bounds *residency* while the tree itself may grow past it.
    /// The threshold stays at `T0` — this trades rebuild CPU for page
    /// I/O, the classic paging trade.
    pub out_of_core: bool,
    /// Directory for out-of-core spill files (page store and outlier
    /// journal). `None` (the default) uses the system temp directory.
    /// Files are uniquely named per process/run and removed when the
    /// owning store drops.
    pub spill_dir: Option<PathBuf>,
}

impl BirchConfig {
    /// Paper-default configuration targeting exactly `k` clusters.
    #[must_use]
    pub fn with_clusters(k: usize) -> Self {
        assert!(k >= 1, "cluster count must be >= 1");
        Self::base(ClusterCount::Exact(k))
    }

    /// Paper-default configuration cutting the Phase-3 dendrogram at
    /// `distance` instead of fixing `K`.
    #[must_use]
    pub fn by_distance(distance: f64) -> Self {
        assert!(
            distance.is_finite() && distance >= 0.0,
            "distance cut must be finite and non-negative"
        );
        Self::base(ClusterCount::ByDistance(distance))
    }

    fn base(clusters: ClusterCount) -> Self {
        let memory_bytes = 80 * 1024;
        Self {
            memory_bytes,
            disk_bytes: memory_bytes / 5,
            page_bytes: 1024,
            metric: DistanceMetric::D2,
            threshold_kind: ThresholdKind::Diameter,
            initial_threshold: 0.0,
            clusters,
            global_method: crate::phase3::GlobalMethod::Hierarchical,
            merge_refinement: true,
            descend_prune: false,
            outlier_handling: true,
            outlier_factor: 0.25,
            delay_split: true,
            phase2: true,
            phase2_max_entries: 1000,
            phase4_passes: 1,
            phase4_outlier_factor: None,
            total_points_hint: None,
            threads: default_threads(),
            out_of_core: false,
            spill_dir: None,
        }
    }

    /// Sets the memory budget `M` (and scales the disk budget to 20% of it).
    #[must_use]
    pub fn memory(mut self, bytes: usize) -> Self {
        self.memory_bytes = bytes;
        self.disk_bytes = bytes / 5;
        self
    }

    /// Sets the outlier-disk budget `R` independently of `M`.
    #[must_use]
    pub fn disk(mut self, bytes: usize) -> Self {
        self.disk_bytes = bytes;
        self
    }

    /// Sets the page size `P`.
    #[must_use]
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.page_bytes = bytes;
        self
    }

    /// Sets the distance metric.
    #[must_use]
    pub fn metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the Phase-3 global algorithm.
    #[must_use]
    pub fn global_method(mut self, method: crate::phase3::GlobalMethod) -> Self {
        self.global_method = method;
        self
    }

    /// Sets the threshold statistic (diameter vs radius).
    #[must_use]
    pub fn threshold_kind(mut self, kind: ThresholdKind) -> Self {
        self.threshold_kind = kind;
        self
    }

    /// Sets the initial threshold `T0`.
    #[must_use]
    pub fn initial_threshold(mut self, t0: f64) -> Self {
        assert!(t0.is_finite() && t0 >= 0.0, "T0 must be finite and >= 0");
        self.initial_threshold = t0;
        self
    }

    /// Enables/disables outlier handling.
    #[must_use]
    pub fn outliers(mut self, enabled: bool) -> Self {
        self.outlier_handling = enabled;
        self
    }

    /// Enables/disables the delay-split option.
    #[must_use]
    pub fn delay_split(mut self, enabled: bool) -> Self {
        self.delay_split = enabled;
        self
    }

    /// Enables/disables Phase 2 (tree condensation).
    #[must_use]
    pub fn phase2(mut self, enabled: bool) -> Self {
        self.phase2 = enabled;
        self
    }

    /// Sets the number of Phase-4 refinement passes (0 disables Phase 4;
    /// the model then carries no point labels).
    #[must_use]
    pub fn refinement_passes(mut self, passes: usize) -> Self {
        self.phase4_passes = passes;
        self
    }

    /// Enables Phase-4 outlier discard with the given factor.
    #[must_use]
    pub fn discard_refinement_outliers(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.phase4_outlier_factor = Some(factor);
        self
    }

    /// Declares the total dataset size when known in advance.
    #[must_use]
    pub fn total_points(mut self, n: u64) -> Self {
        self.total_points_hint = Some(n);
        self
    }

    /// Enables/disables the D0 descent prune.
    #[must_use]
    pub fn descend_prune(mut self, enabled: bool) -> Self {
        self.descend_prune = enabled;
        self
    }

    /// Sets the number of Phase-1 worker threads (`1` = the serial scan).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Enables/disables the out-of-core (file-backed) CF-tree.
    #[must_use]
    pub fn out_of_core(mut self, enabled: bool) -> Self {
        self.out_of_core = enabled;
        self
    }

    /// Sets the directory for out-of-core spill files (implies nothing
    /// about [`BirchConfig::out_of_core`] itself).
    #[must_use]
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Validates cross-field consistency; called by the pipeline.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (e.g. a memory budget smaller than
    /// one page).
    pub fn validate(&self) {
        assert!(
            self.memory_bytes >= self.page_bytes,
            "memory budget {} smaller than one page {}",
            self.memory_bytes,
            self.page_bytes
        );
        assert!(self.outlier_factor > 0.0 && self.outlier_factor < 1.0);
        assert!(self.phase2_max_entries >= 2, "phase2 target too small");
        assert!(self.threads >= 1, "need at least one thread");
    }
}

/// The default Phase-1 parallelism: `BIRCH_THREADS` when set to a positive
/// integer, else 1 (serial).
fn default_threads() -> usize {
    std::env::var("BIRCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = BirchConfig::with_clusters(100);
        assert_eq!(c.memory_bytes, 80 * 1024);
        assert_eq!(c.disk_bytes, 16 * 1024);
        assert_eq!(c.page_bytes, 1024);
        assert_eq!(c.metric, DistanceMetric::D2);
        assert_eq!(c.threshold_kind, ThresholdKind::Diameter);
        assert_eq!(c.initial_threshold, 0.0);
        assert!(c.outlier_handling);
        assert!(c.delay_split);
        assert!(!c.descend_prune);
        assert!((c.outlier_factor - 0.25).abs() < f64::EPSILON);
        c.validate();
    }

    #[test]
    fn builder_chain() {
        let c = BirchConfig::with_clusters(5)
            .memory(1 << 20)
            .page_size(4096)
            .metric(DistanceMetric::D4)
            .threshold_kind(ThresholdKind::Radius)
            .initial_threshold(0.5)
            .outliers(false)
            .delay_split(false)
            .phase2(false)
            .refinement_passes(3)
            .discard_refinement_outliers(2.0)
            .descend_prune(true)
            .total_points(42);
        assert_eq!(c.memory_bytes, 1 << 20);
        assert_eq!(c.disk_bytes, (1 << 20) / 5);
        assert_eq!(c.page_bytes, 4096);
        assert_eq!(c.metric, DistanceMetric::D4);
        assert_eq!(c.threshold_kind, ThresholdKind::Radius);
        assert!(!c.outlier_handling);
        assert!(!c.delay_split);
        assert!(!c.phase2);
        assert_eq!(c.phase4_passes, 3);
        assert_eq!(c.phase4_outlier_factor, Some(2.0));
        assert!(c.descend_prune);
        assert_eq!(c.total_points_hint, Some(42));
        c.validate();
    }

    #[test]
    fn threads_knob() {
        let c = BirchConfig::with_clusters(2).threads(4);
        assert_eq!(c.threads, 4);
        c.validate();
    }

    #[test]
    fn out_of_core_knobs() {
        let c = BirchConfig::with_clusters(2)
            .out_of_core(true)
            .spill_dir("/tmp/birch-spill");
        assert!(c.out_of_core);
        assert_eq!(
            c.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/birch-spill"))
        );
        c.validate();
        let d = BirchConfig::with_clusters(2);
        assert!(!d.out_of_core);
        assert!(d.spill_dir.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = BirchConfig::with_clusters(2).threads(0);
    }

    #[test]
    fn by_distance_variant() {
        let c = BirchConfig::by_distance(3.5);
        assert_eq!(c.clusters, ClusterCount::ByDistance(3.5));
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn memory_below_page_rejected() {
        BirchConfig::with_clusters(2).memory(512).validate();
    }

    #[test]
    #[should_panic(expected = "cluster count must be >= 1")]
    fn zero_clusters_rejected() {
        let _ = BirchConfig::with_clusters(0);
    }
}
