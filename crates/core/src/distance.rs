//! The five inter-cluster distance metrics of §3 (eqs. 4–8), computed
//! exactly from CF vectors.
//!
//! Given clusters with features `CF₁ = (N₁, LS₁, SS₁)` and
//! `CF₂ = (N₂, LS₂, SS₂)`:
//!
//! * **D0** — centroid Euclidean distance `‖X0₁ − X0₂‖` (eq. 4),
//! * **D1** — centroid Manhattan distance `Σ|X0₁(t) − X0₂(t)|` (eq. 5),
//! * **D2** — average inter-cluster distance
//!   `sqrt(Σᵢ∈1 Σⱼ∈2 ‖Xᵢ−Xⱼ‖² / (N₁N₂))` (eq. 6),
//! * **D3** — average intra-cluster distance of the *merged* cluster
//!   (eq. 7) — i.e. the diameter of `CF₁ + CF₂`,
//! * **D4** — variance-increase distance (eq. 8): the growth in total
//!   squared deviation caused by merging.
//!
//! All five reduce to closed forms over `(N, LS, SS)`:
//!
//! ```text
//! D2² = (N₂·SS₁ + N₁·SS₂ − 2·LS₁·LS₂) / (N₁·N₂)
//! D3² = (2N·SSₘ − 2‖LSₘ‖²) / (N(N−1)),  N = N₁+N₂, subscript m = merged
//! D4² = ‖LS₁‖²/N₁ + ‖LS₂‖²/N₂ − ‖LSₘ‖²/N
//! ```
//!
//! (for D4, note `SSₘ = SS₁+SS₂` cancels out of the deviation difference).

use crate::cf::Cf;
use crate::point::dot;
use std::fmt;
use std::str::FromStr;

/// Which of the paper's five distance definitions to use when comparing
/// clusters (choosing the closest child during descent, seeding splits,
/// Phase-3 agglomeration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMetric {
    /// D0 — Euclidean distance between centroids (eq. 4).
    D0,
    /// D1 — Manhattan distance between centroids (eq. 5).
    D1,
    /// D2 — average inter-cluster distance (eq. 6). The paper's default
    /// (Table 2: "Distance def. D2").
    #[default]
    D2,
    /// D3 — average intra-cluster distance of the merged cluster (eq. 7).
    D3,
    /// D4 — variance increase distance (eq. 8).
    D4,
}

impl DistanceMetric {
    /// All five metrics, for sweeps and tests.
    pub const ALL: [DistanceMetric; 5] = [
        DistanceMetric::D0,
        DistanceMetric::D1,
        DistanceMetric::D2,
        DistanceMetric::D3,
        DistanceMetric::D4,
    ];

    /// Distance between two non-empty clusters under this metric.
    ///
    /// All metrics are symmetric and non-negative; all except D3 are zero
    /// for identical singletons (D3 of two coincident singletons is also 0).
    ///
    /// # Panics
    ///
    /// Panics if either CF is empty or dimensions disagree.
    #[must_use]
    pub fn distance(self, a: &Cf, b: &Cf) -> f64 {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "distance between empty clusters is undefined"
        );
        assert_eq!(
            a.dim(),
            b.dim(),
            "dimension mismatch: {} vs {}",
            a.dim(),
            b.dim()
        );
        match self {
            DistanceMetric::D0 => d0(a, b),
            DistanceMetric::D1 => d1(a, b),
            DistanceMetric::D2 => d2(a, b),
            DistanceMetric::D3 => d3(a, b),
            DistanceMetric::D4 => d4(a, b),
        }
    }
}

impl fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistanceMetric::D0 => "D0",
            DistanceMetric::D1 => "D1",
            DistanceMetric::D2 => "D2",
            DistanceMetric::D3 => "D3",
            DistanceMetric::D4 => "D4",
        };
        f.write_str(s)
    }
}

impl FromStr for DistanceMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_uppercase().as_str() {
            "D0" => Ok(DistanceMetric::D0),
            "D1" => Ok(DistanceMetric::D1),
            "D2" => Ok(DistanceMetric::D2),
            "D3" => Ok(DistanceMetric::D3),
            "D4" => Ok(DistanceMetric::D4),
            other => Err(format!("unknown distance metric {other:?} (want D0..D4)")),
        }
    }
}

// The four metric kernels below are closed forms over (N, LS, SS): no
// centroid/merge materialization, hence no allocation. These run once per
// child entry per tree level for *every* insertion (the §6.1 CPU cost
// model's inner loop), so the allocation-free forms matter.

fn d0(a: &Cf, b: &Cf) -> f64 {
    let (na, nb) = (a.n(), b.n());
    a.ls()
        .iter()
        .zip(b.ls())
        .map(|(&x, &y)| {
            let d = x / na - y / nb;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn d1(a: &Cf, b: &Cf) -> f64 {
    let (na, nb) = (a.n(), b.n());
    a.ls()
        .iter()
        .zip(b.ls())
        .map(|(&x, &y)| (x / na - y / nb).abs())
        .sum()
}

fn d2(a: &Cf, b: &Cf) -> f64 {
    let num = b.n() * a.ss() + a.n() * b.ss() - 2.0 * dot(a.ls(), b.ls());
    (num.max(0.0) / (a.n() * b.n())).sqrt()
}

/// ‖LS_a + LS_b‖² without materializing the merged vector.
fn merged_ls_sq(a: &Cf, b: &Cf) -> f64 {
    dot(a.ls(), a.ls()) + 2.0 * dot(a.ls(), b.ls()) + dot(b.ls(), b.ls())
}

fn d3(a: &Cf, b: &Cf) -> f64 {
    let n = a.n() + b.n();
    if n <= 1.0 {
        return 0.0; // fractional weights: merged "cluster" of ≤ one point
    }
    let ss = a.ss() + b.ss();
    let num = 2.0 * n * ss - 2.0 * merged_ls_sq(a, b);
    (num.max(0.0) / (n * (n - 1.0))).sqrt()
}

fn d4(a: &Cf, b: &Cf) -> f64 {
    let n = a.n() + b.n();
    let inc = dot(a.ls(), a.ls()) / a.n() + dot(b.ls(), b.ls()) / b.n() - merged_ls_sq(a, b) / n;
    inc.max(0.0).sqrt()
}

/// What cluster statistic the CF-tree threshold `T` constrains (§4.2: the
/// diameter *or radius* of each leaf entry has to be less than `T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThresholdKind {
    /// Constrain the leaf entry's diameter `D < T` (the paper's default
    /// quality measure, Table 2).
    #[default]
    Diameter,
    /// Constrain the leaf entry's radius `R < T`.
    Radius,
}

impl ThresholdKind {
    /// The constrained statistic of a CF.
    #[must_use]
    pub fn statistic(self, cf: &Cf) -> f64 {
        match self {
            ThresholdKind::Diameter => cf.diameter(),
            ThresholdKind::Radius => cf.radius(),
        }
    }

    /// Whether `cf` satisfies the threshold condition wrt `t`.
    #[must_use]
    pub fn satisfies(self, cf: &Cf, t: f64) -> bool {
        self.statistic(cf) <= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cf_of(raw: &[[f64; 2]]) -> Cf {
        let pts: Vec<Point> = raw.iter().map(|&[x, y]| Point::xy(x, y)).collect();
        Cf::from_points(&pts)
    }

    /// Brute-force D2 straight from the definition for cross-checking.
    fn d2_brute(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
        let mut s = 0.0;
        for p in a {
            for q in b {
                s += (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
            }
        }
        (s / (a.len() * b.len()) as f64).sqrt()
    }

    #[test]
    fn d0_between_singletons_is_euclidean() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D0.distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn d1_between_singletons_is_manhattan() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D1.distance(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn d2_matches_brute_force() {
        let a = [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]];
        let b = [[5.0, 5.0], [6.0, 4.0]];
        let got = DistanceMetric::D2.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - d2_brute(&a, &b)).abs() < 1e-10);
    }

    #[test]
    fn d2_of_singletons_equals_d0() {
        let a = cf_of(&[[1.0, 2.0]]);
        let b = cf_of(&[[4.0, 6.0]]);
        let d0 = DistanceMetric::D0.distance(&a, &b);
        let d2 = DistanceMetric::D2.distance(&a, &b);
        assert!((d0 - d2).abs() < 1e-12);
    }

    #[test]
    fn d3_is_merged_diameter() {
        let a = [[0.0, 0.0], [1.0, 0.0]];
        let b = [[10.0, 0.0]];
        let merged = cf_of(&[[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]);
        let got = DistanceMetric::D3.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - merged.diameter()).abs() < 1e-12);
    }

    #[test]
    fn d4_matches_deviation_increase() {
        let a = [[0.0, 0.0], [2.0, 0.0]];
        let b = [[10.0, 0.0], [12.0, 0.0]];
        let (cfa, cfb) = (cf_of(&a), cf_of(&b));
        let merged = cfa.merged(&cfb);
        let expected = (merged.sq_deviation() - cfa.sq_deviation() - cfb.sq_deviation())
            .max(0.0)
            .sqrt();
        let got = DistanceMetric::D4.distance(&cfa, &cfb);
        assert!((got - expected).abs() < 1e-10, "got {got}, want {expected}");
    }

    #[test]
    fn all_metrics_symmetric_and_nonnegative() {
        let a = cf_of(&[[0.0, 1.0], [2.0, 3.0], [1.0, -2.0]]);
        let b = cf_of(&[[7.0, 7.0], [8.0, 6.0]]);
        for m in DistanceMetric::ALL {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!(ab >= 0.0, "{m} negative");
            assert!((ab - ba).abs() < 1e-12, "{m} asymmetric");
        }
    }

    #[test]
    fn coincident_singletons_have_zero_distance() {
        let a = cf_of(&[[5.0, 5.0]]);
        let b = cf_of(&[[5.0, 5.0]]);
        for m in DistanceMetric::ALL {
            assert!(m.distance(&a, &b).abs() < 1e-12, "{m} nonzero");
        }
    }

    #[test]
    fn metric_ordering_on_separated_blobs() {
        // Far-apart blobs: every metric should report a "large" distance
        // comparable to the centroid separation (within a small factor).
        let a = cf_of(&[[0.0, 0.0], [0.1, 0.1]]);
        let b = cf_of(&[[100.0, 0.0], [100.1, 0.1]]);
        for m in DistanceMetric::ALL {
            let d = m.distance(&a, &b);
            assert!(d > 50.0, "{m} too small: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "empty clusters")]
    fn empty_cf_distance_panics() {
        let a = Cf::empty(2);
        let b = cf_of(&[[1.0, 1.0]]);
        let _ = DistanceMetric::D0.distance(&a, &b);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in DistanceMetric::ALL {
            let parsed: DistanceMetric = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("D9".parse::<DistanceMetric>().is_err());
        assert_eq!("d3".parse::<DistanceMetric>().unwrap(), DistanceMetric::D3);
    }

    #[test]
    fn threshold_kind_statistics() {
        let cf = cf_of(&[[0.0, 0.0], [6.0, 0.0]]);
        assert!((ThresholdKind::Diameter.statistic(&cf) - 6.0).abs() < 1e-12);
        assert!((ThresholdKind::Radius.statistic(&cf) - 3.0).abs() < 1e-12);
        assert!(ThresholdKind::Diameter.satisfies(&cf, 6.0));
        assert!(!ThresholdKind::Diameter.satisfies(&cf, 5.9));
        assert!(ThresholdKind::Radius.satisfies(&cf, 3.5));
    }

    #[test]
    fn default_metric_is_d2_and_default_threshold_is_diameter() {
        assert_eq!(DistanceMetric::default(), DistanceMetric::D2);
        assert_eq!(ThresholdKind::default(), ThresholdKind::Diameter);
    }
}
