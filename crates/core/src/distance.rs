//! The five inter-cluster distance metrics of §3 (eqs. 4–8), computed
//! exactly from CF vectors.
//!
//! Given clusters with features `CF₁ = (N₁, LS₁, SS₁)` and
//! `CF₂ = (N₂, LS₂, SS₂)`:
//!
//! * **D0** — centroid Euclidean distance `‖X0₁ − X0₂‖` (eq. 4),
//! * **D1** — centroid Manhattan distance `Σ|X0₁(t) − X0₂(t)|` (eq. 5),
//! * **D2** — average inter-cluster distance
//!   `sqrt(Σᵢ∈1 Σⱼ∈2 ‖Xᵢ−Xⱼ‖² / (N₁N₂))` (eq. 6),
//! * **D3** — average intra-cluster distance of the *merged* cluster
//!   (eq. 7) — i.e. the diameter of `CF₁ + CF₂`,
//! * **D4** — variance-increase distance (eq. 8): the growth in total
//!   squared deviation caused by merging.
//!
//! Two kernel families compute these, one per CF backend, and both are
//! always compiled (the `classic-cf` feature only selects which one the
//! pipeline routes through; the stable kernel is the default):
//!
//! * [`classic_distance`] over [`ClassicView`] — the paper's closed forms
//!   on `(N, LS, SS)`:
//!
//!   ```text
//!   D2² = (N₂·SS₁ + N₁·SS₂ − 2·LS₁·LS₂) / (N₁·N₂)
//!   D3² = (2N·SSₘ − 2‖LSₘ‖²) / (N(N−1)),  N = N₁+N₂, subscript m = merged
//!   D4² = ‖LS₁‖²/N₁ + ‖LS₂‖²/N₂ − ‖LSₘ‖²/N
//!   ```
//!
//!   (for D4, note `SSₘ = SS₁+SS₂` cancels out of the deviation
//!   difference). These subtract large near-equal quantities, so they
//!   inherit the classic backend's catastrophic cancellation far from the
//!   origin.
//!
//! * [`stable_distance`] over [`StableView`] — deviation forms on
//!   `(N, μ, SSE)` with the compensated centroid difference
//!   `Δμᵢ = (μ₁ᵢ − μ₂ᵢ) + (c₁ᵢ − c₂ᵢ)` (the leading difference of nearby
//!   means is exact by Sterbenz's lemma, so the Neumaier carries `c`
//!   survive into the result):
//!
//!   ```text
//!   D0² = ‖Δμ‖²                 D1 = Σ|Δμᵢ|
//!   D2² = SSE₁/N₁ + SSE₂/N₂ + ‖Δμ‖²
//!   D3² = 2·SSEₘ/(N−1),  SSEₘ = SSE₁ + SSE₂ + (N₁N₂/N)·‖Δμ‖²
//!   D4² = (N₁N₂/N)·‖Δμ‖²
//!   ```
//!
//!   Every term is translation-invariant, so these stay accurate at any
//!   coordinate offset.
//!
//! Both kernels share one contract for empty operands (`N ≤ 0`): they
//! `debug_assert!` (catching the misuse in debug/test builds) and return
//! `+∞` in release builds, so an empty row can never win a closest-entry
//! scan via `NaN` poisoning. The higher-level [`DistanceMetric::distance`]
//! keeps its hard panic: asking for the distance between empty *clusters*
//! is a caller bug in every build.

use crate::cf::Cf;
use crate::point::dot;
use std::fmt;
use std::str::FromStr;

/// Which of the paper's five distance definitions to use when comparing
/// clusters (choosing the closest child during descent, seeding splits,
/// Phase-3 agglomeration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMetric {
    /// D0 — Euclidean distance between centroids (eq. 4).
    D0,
    /// D1 — Manhattan distance between centroids (eq. 5).
    D1,
    /// D2 — average inter-cluster distance (eq. 6). The paper's default
    /// (Table 2: "Distance def. D2").
    #[default]
    D2,
    /// D3 — average intra-cluster distance of the merged cluster (eq. 7).
    D3,
    /// D4 — variance increase distance (eq. 8).
    D4,
}

impl DistanceMetric {
    /// All five metrics, for sweeps and tests.
    pub const ALL: [DistanceMetric; 5] = [
        DistanceMetric::D0,
        DistanceMetric::D1,
        DistanceMetric::D2,
        DistanceMetric::D3,
        DistanceMetric::D4,
    ];

    /// Distance between two non-empty clusters under this metric.
    ///
    /// All metrics are symmetric and non-negative; all except D3 are zero
    /// for identical singletons (D3 of two coincident singletons is also 0).
    ///
    /// # Panics
    ///
    /// Panics if either CF is empty or dimensions disagree.
    #[must_use]
    pub fn distance(self, a: &Cf, b: &Cf) -> f64 {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "distance between empty clusters is undefined"
        );
        assert_eq!(
            a.dim(),
            b.dim(),
            "dimension mismatch: {} vs {}",
            a.dim(),
            b.dim()
        );
        active_kernel(self, &cf_view(a), &cf_view(b))
    }

    /// Whether this metric is a *reducible* linkage: merging mutual
    /// nearest neighbors `i`, `j` can never bring the merged cluster
    /// closer to a third cluster `k` than both parents were —
    /// `d(i∪j, k) ≥ min(d(i,k), d(j,k))` whenever `d(i,j) ≤ d(i,k)` and
    /// `d(i,j) ≤ d(j,k)`. Reducibility is what makes the
    /// nearest-neighbor-chain agglomerator ([`crate::hierarchical`])
    /// exact: it guarantees the chain's locally discovered merges form
    /// the same dendrogram as the globally greedy heap order.
    ///
    /// - **D2** (average inter-cluster distance): reducible. `D2²(i∪j,k)`
    ///   is the *weighted average* `(nᵢ·D2²(i,k) + nⱼ·D2²(j,k))/(nᵢ+nⱼ)`
    ///   — an average of two values is never below their minimum, and
    ///   `sqrt` is monotone.
    /// - **D4** (variance increase): reducible. `D4²` is the Ward merge
    ///   cost `nᵢnⱼ/(nᵢ+nⱼ)·‖Δμ‖²`; Ward's linkage satisfies the
    ///   Lance–Williams reducibility condition.
    /// - **D0/D1** (centroid distances): *not* reducible — the merged
    ///   centroid moves between the parents and can land closer to `k`
    ///   than either parent was. Counterexample: singletons at `(0,0)`
    ///   and `(2,0)` with `k` at `(1,√3)` have all three pairwise
    ///   distances equal to 2, but the merged centroid `(1,0)` sits at
    ///   `√3 < 2` from `k` — an inversion.
    /// - **D3** (merged average intra-cluster distance): *not* reducible
    ///   — coincident singletons `a = b = 0` with a singleton `k = 1`
    ///   give `D3(a,b) = 0` but `D3(a∪b, k)² = 2·(2/3)/2 = 2/3 < 1 =
    ///   D3(a,k)²`.
    ///
    /// Non-reducible metrics fall back to the exhaustive heap
    /// agglomerator (see `crate::hierarchical::agglomerate`).
    #[must_use]
    pub fn is_reducible(self) -> bool {
        matches!(self, DistanceMetric::D2 | DistanceMetric::D4)
    }
}

impl fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistanceMetric::D0 => "D0",
            DistanceMetric::D1 => "D1",
            DistanceMetric::D2 => "D2",
            DistanceMetric::D3 => "D3",
            DistanceMetric::D4 => "D4",
        };
        f.write_str(s)
    }
}

impl FromStr for DistanceMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_uppercase().as_str() {
            "D0" => Ok(DistanceMetric::D0),
            "D1" => Ok(DistanceMetric::D1),
            "D2" => Ok(DistanceMetric::D2),
            "D3" => Ok(DistanceMetric::D3),
            "D4" => Ok(DistanceMetric::D4),
            other => Err(format!("unknown distance metric {other:?} (want D0..D4)")),
        }
    }
}

// ---------------------------------------------------------------------
// Backend views and metric kernels.
//
// Each kernel is a closed form over its view's fields: no centroid/merge
// materialization, hence no allocation. These run once per child entry per
// tree level for *every* insertion (the §6.1 CPU cost model's inner loop),
// so the allocation-free forms matter. Both the scalar path
// (`DistanceMetric::distance`) and the batched block path
// (`distance_to_row` / `pair_in_block`) call the exact same kernel
// function, so scalar and batched results are bit-identical by
// construction.
// ---------------------------------------------------------------------

/// A borrowed `(N, SS, ‖LS‖², LS)` view of a classic-backend CF (or a
/// `CfBlock` row mirroring one).
#[derive(Debug, Clone, Copy)]
pub struct ClassicView<'a> {
    /// Weighted point count `N`.
    pub n: f64,
    /// Scalar square sum `SS`.
    pub ss: f64,
    /// Memoized `‖LS‖²`.
    pub ls_sq: f64,
    /// Linear sum `LS`.
    pub ls: &'a [f64],
}

impl<'a> ClassicView<'a> {
    /// The view of a classic-backend CF.
    #[must_use]
    pub fn of(cf: &'a crate::cf::classic::Cf) -> Self {
        ClassicView {
            n: cf.n(),
            ss: cf.scalar_stat(),
            ls_sq: cf.vec_stat_sq(),
            ls: cf.vec_stat(),
        }
    }
}

/// A borrowed `(N, SSE, μ, carry)` view of a stable-backend CF (or a
/// `CfBlock` row mirroring one). `mean_c` holds the Neumaier compensation
/// terms of the mean — the deviation kernels fold them into `Δμ` so
/// distances keep ~1 ulp accuracy even at coordinate offsets where the
/// raw mean difference rounds coarsely.
#[derive(Debug, Clone, Copy)]
pub struct StableView<'a> {
    /// Weighted point count `N`.
    pub n: f64,
    /// Sum of squared deviations from the mean (compensation folded in).
    pub sse: f64,
    /// The mean vector μ.
    pub mean: &'a [f64],
    /// Neumaier carry of each mean coordinate.
    pub mean_c: &'a [f64],
}

impl<'a> StableView<'a> {
    /// The view of a stable-backend CF.
    #[must_use]
    pub fn of(cf: &'a crate::cf::stable::Cf) -> Self {
        StableView {
            n: cf.n(),
            sse: cf.scalar_stat(),
            mean: cf.mean(),
            mean_c: cf.mean_carry(),
        }
    }
}

/// Distance between two classic-backend views: the paper's closed forms
/// over `(N, LS, SS)`. Empty operands (`N ≤ 0`) debug-assert and return
/// `+∞` in release builds (see the module docs).
#[must_use]
pub fn classic_distance(metric: DistanceMetric, a: &ClassicView<'_>, b: &ClassicView<'_>) -> f64 {
    if a.n <= 0.0 || b.n <= 0.0 {
        debug_assert!(false, "distance with an empty CF operand");
        return f64::INFINITY;
    }
    let (na, nb) = (a.n, b.n);
    match metric {
        DistanceMetric::D0 => {
            a.ls.iter()
                .zip(b.ls)
                .map(|(&x, &y)| {
                    let d = x / na - y / nb;
                    d * d
                })
                .sum::<f64>()
                .sqrt()
        }
        DistanceMetric::D1 => {
            a.ls.iter()
                .zip(b.ls)
                .map(|(&x, &y)| (x / na - y / nb).abs())
                .sum()
        }
        DistanceMetric::D2 => {
            let num = nb * a.ss + na * b.ss - 2.0 * dot(a.ls, b.ls);
            (num.max(0.0) / (na * nb)).sqrt()
        }
        DistanceMetric::D3 => {
            let n = na + nb;
            if n <= 1.0 {
                return 0.0; // fractional weights: merged "cluster" of ≤ one point
            }
            let ss = a.ss + b.ss;
            // ‖LS_a + LS_b‖² without materializing the merged vector: the
            // memoized self-norms are bit-identical to recomputing
            // dot(ls, ls), so this is one dot product instead of three.
            // Summed self-norms first so the result is bit-symmetric in
            // (a, b) — the agglomerators evaluate pairs in either order.
            let merged = (a.ls_sq + b.ls_sq) + 2.0 * dot(a.ls, b.ls);
            let num = 2.0 * n * ss - 2.0 * merged;
            (num.max(0.0) / (n * (n - 1.0))).sqrt()
        }
        DistanceMetric::D4 => {
            let n = na + nb;
            // Self-norms summed first: bit-symmetric in (a, b), as above.
            let merged = (a.ls_sq + b.ls_sq) + 2.0 * dot(a.ls, b.ls);
            let inc = a.ls_sq / na + b.ls_sq / nb - merged / n;
            inc.max(0.0).sqrt()
        }
    }
}

/// Distance between two stable-backend views: translation-invariant
/// deviation forms over `(N, μ, SSE)` with the compensated centroid
/// difference `Δμᵢ = (μ_aᵢ − μ_bᵢ) + (c_aᵢ − c_bᵢ)`. Empty operands
/// (`N ≤ 0`) debug-assert and return `+∞` in release builds (see the
/// module docs).
#[must_use]
pub fn stable_distance(metric: DistanceMetric, a: &StableView<'_>, b: &StableView<'_>) -> f64 {
    if a.n <= 0.0 || b.n <= 0.0 {
        debug_assert!(false, "distance with an empty CF operand");
        return f64::INFINITY;
    }
    let dmu = |i: usize| (a.mean[i] - b.mean[i]) + (a.mean_c[i] - b.mean_c[i]);
    let dmu_sq = || {
        let mut s = 0.0;
        for i in 0..a.mean.len() {
            let d = dmu(i);
            s += d * d;
        }
        s
    };
    match metric {
        DistanceMetric::D0 => dmu_sq().sqrt(),
        DistanceMetric::D1 => (0..a.mean.len()).map(|i| dmu(i).abs()).sum(),
        DistanceMetric::D2 => (a.sse / a.n + b.sse / b.n + dmu_sq()).max(0.0).sqrt(),
        DistanceMetric::D3 => {
            let n = a.n + b.n;
            if n <= 1.0 {
                return 0.0; // fractional weights: merged "cluster" of ≤ one point
            }
            let sse_m = a.sse + b.sse + (a.n * b.n / n) * dmu_sq();
            (2.0 * sse_m / (n - 1.0)).max(0.0).sqrt()
        }
        DistanceMetric::D4 => {
            let n = a.n + b.n;
            ((a.n * b.n / n) * dmu_sq()).max(0.0).sqrt()
        }
    }
}

// The feature-selected routing: which view/kernel pair the pipeline's
// `Cf` alias maps onto. Both kernels stay compiled either way (the
// stability bench compares them side by side in one binary).

#[cfg(feature = "classic-cf")]
use classic_distance as active_kernel;
#[cfg(not(feature = "classic-cf"))]
use stable_distance as active_kernel;

#[cfg(feature = "classic-cf")]
fn cf_view(cf: &Cf) -> ClassicView<'_> {
    ClassicView::of(cf)
}

#[cfg(not(feature = "classic-cf"))]
fn cf_view(cf: &Cf) -> StableView<'_> {
    StableView::of(cf)
}

// ---------------------------------------------------------------------
// Batched distance kernels over a flat SoA block of CFs.
//
// The tree-descent inner loop (§4.3: "find the closest child") walks a
// node's entries calling `DistanceMetric::distance` once per entry; with
// `Vec<Cf>` each call chases a separate `Box<[f64]>`. A `CfBlock` lays the
// same entries out as one stride-padded vector slab plus parallel scalar
// arrays, so the scan is a linear sweep over contiguous memory. The
// scalar block path calls the same kernel function on the same field
// values as `DistanceMetric::distance`, so it returns bit-identical
// distances (and therefore identical argmins, including tie order) by
// construction; the lane path (stable+`simd` builds, `crate::simd`) is
// bit-identical at dim ≤ 4 and within `SIMD_TOLERANCE_REL` above that.
// ---------------------------------------------------------------------

/// Lane width of the explicit-SIMD kernels (`f64x4`), and therefore the
/// row-stride granule of [`CfBlock`]'s vector slabs on the stable backend.
pub const LANE_WIDTH: usize = 4;

/// A flat, cache-resident mirror of a sequence of CFs: one stride-padded
/// vector slab (μ by default plus its carry slab, or `LS` under
/// `classic-cf`) and parallel `(N, scalar stat, ‖vec‖²)` arrays.
///
/// On the stable backend each vector row occupies [`CfBlock::stride`]
/// slots — `dim` live coordinates followed by zero padding up to the next
/// multiple of [`LANE_WIDTH`] — so the lane kernels can sweep row pairs in
/// full lanes with no scalar tail (zero padding contributes exactly `0`
/// to every deviation sum). Classic builds keep `stride == dim`: the
/// classic kernels are scalar-only and their memory layout predates the
/// padding. The row accessors always return exactly `dim` coordinates, so
/// the padding is invisible outside the lane kernels.
///
/// The dimensionality is fixed lazily by the first row pushed, so an empty
/// block is dimension-agnostic (a fresh tree node can own one before any
/// entry exists).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CfBlock {
    /// Row width; 0 until the first push fixes it.
    dim: usize,
    /// Per-row weighted point count `N`.
    n: Vec<f64>,
    /// Per-row scalar statistic: `SS` (classic) or folded `SSE` (stable).
    scalar: Vec<f64>,
    /// Per-row memoized squared norm of the vector statistic (copied from
    /// [`Cf::vec_stat_sq`]).
    vec_sq: Vec<f64>,
    /// Row-major vector-statistic slab: row `i` occupies
    /// `vec[i*dim .. (i+1)*dim]`. `LS` (classic) or μ (stable).
    vec: Vec<f64>,
    /// Row-major Neumaier carry slab for the mean (same striding as
    /// `vec`) — the deviation kernels need it for the compensated Δμ.
    #[cfg(not(feature = "classic-cf"))]
    vec_c: Vec<f64>,
}

impl CfBlock {
    /// An empty block with no fixed dimensionality yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A block mirroring `cfs` in order.
    #[must_use]
    pub fn from_cfs<'a, I: IntoIterator<Item = &'a Cf>>(cfs: I) -> Self {
        let mut b = Self::new();
        for cf in cfs {
            b.push(cf);
        }
        b
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// Whether the block holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }

    /// Row width (0 while the block has never held a row).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slots per row in the `vec`/`vec_c` slabs: `dim` rounded up to a
    /// multiple of [`LANE_WIDTH`] on the stable backend (the padding is
    /// zero-filled), exactly `dim` under `classic-cf`.
    #[must_use]
    pub fn stride(&self) -> usize {
        #[cfg(feature = "classic-cf")]
        {
            self.dim
        }
        #[cfg(not(feature = "classic-cf"))]
        {
            self.dim.next_multiple_of(LANE_WIDTH)
        }
    }

    /// Heap bytes held by the block's slabs — *capacity*, not length,
    /// because the allocation is what occupies memory. Feeds the memory
    /// gauge's `cf_blocks` component ([`crate::obs::mem`]).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        #[cfg_attr(feature = "classic-cf", allow(unused_mut))]
        let mut slots = self.n.capacity()
            + self.scalar.capacity()
            + self.vec_sq.capacity()
            + self.vec.capacity();
        #[cfg(not(feature = "classic-cf"))]
        {
            slots += self.vec_c.capacity();
        }
        slots * std::mem::size_of::<f64>()
    }

    fn fix_dim(&mut self, dim: usize) {
        if self.dim == 0 {
            self.dim = dim;
        }
        assert_eq!(
            dim, self.dim,
            "dimension mismatch: CF {dim} vs block {}",
            self.dim
        );
    }

    /// Appends a row mirroring `cf`.
    ///
    /// # Panics
    ///
    /// Panics if `cf`'s dimension disagrees with earlier rows.
    pub fn push(&mut self, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n.push(cf.n());
        self.scalar.push(cf.scalar_stat());
        self.vec_sq.push(cf.vec_stat_sq());
        let padded = self.n.len() * self.stride();
        self.vec.extend_from_slice(cf.vec_stat());
        self.vec.resize(padded, 0.0);
        #[cfg(not(feature = "classic-cf"))]
        {
            self.vec_c.extend_from_slice(cf.mean_carry());
            self.vec_c.resize(padded, 0.0);
        }
    }

    /// Overwrites row `i` with `cf`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `i` or dimension mismatch.
    pub fn set(&mut self, i: usize, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n[i] = cf.n();
        self.scalar[i] = cf.scalar_stat();
        self.vec_sq[i] = cf.vec_stat_sq();
        let s = self.stride();
        self.vec[i * s..i * s + self.dim].copy_from_slice(cf.vec_stat());
        #[cfg(not(feature = "classic-cf"))]
        self.vec_c[i * s..i * s + self.dim].copy_from_slice(cf.mean_carry());
    }

    /// Inserts a row mirroring `cf` at position `i`, shifting later rows.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()` or on dimension mismatch.
    pub fn insert(&mut self, i: usize, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n.insert(i, cf.n());
        self.scalar.insert(i, cf.scalar_stat());
        self.vec_sq.insert(i, cf.vec_stat_sq());
        let s = self.stride();
        let pad = std::iter::repeat_n(0.0, s - self.dim);
        self.vec.splice(
            i * s..i * s,
            cf.vec_stat().iter().copied().chain(pad.clone()),
        );
        #[cfg(not(feature = "classic-cf"))]
        self.vec_c
            .splice(i * s..i * s, cf.mean_carry().iter().copied().chain(pad));
    }

    /// Removes row `i`, shifting later rows down.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        self.n.remove(i);
        self.scalar.remove(i);
        self.vec_sq.remove(i);
        let s = self.stride();
        self.vec.drain(i * s..(i + 1) * s);
        #[cfg(not(feature = "classic-cf"))]
        self.vec_c.drain(i * s..(i + 1) * s);
    }

    /// Removes every row (the dimensionality stays fixed).
    pub fn clear(&mut self) {
        self.n.clear();
        self.scalar.clear();
        self.vec_sq.clear();
        self.vec.clear();
        #[cfg(not(feature = "classic-cf"))]
        self.vec_c.clear();
    }

    /// Row `i`'s weighted point count `N`.
    #[must_use]
    pub fn row_n(&self, i: usize) -> f64 {
        self.n[i]
    }

    /// Row `i`'s scalar statistic: `SS` (classic) or folded `SSE`
    /// (stable).
    #[must_use]
    pub fn row_scalar(&self, i: usize) -> f64 {
        self.scalar[i]
    }

    /// Row `i`'s memoized squared vector-statistic norm.
    #[must_use]
    pub fn row_vec_sq(&self, i: usize) -> f64 {
        self.vec_sq[i]
    }

    /// Row `i`'s vector-statistic slice inside the slab: μ (stable) or
    /// `LS` (classic). Exactly `dim` coordinates — padding excluded.
    #[must_use]
    pub fn row_vec(&self, i: usize) -> &[f64] {
        let s = self.stride();
        &self.vec[i * s..i * s + self.dim]
    }

    /// Row `i`'s mean-carry slice inside the carry slab. Exactly `dim`
    /// coordinates — padding excluded.
    #[cfg(not(feature = "classic-cf"))]
    #[must_use]
    pub fn row_vec_c(&self, i: usize) -> &[f64] {
        let s = self.stride();
        &self.vec_c[i * s..i * s + self.dim]
    }

    /// The full vector slab including padding, for the lane kernels.
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    pub(crate) fn vec_slab(&self) -> &[f64] {
        &self.vec
    }

    /// The full mean-carry slab including padding, for the lane kernels.
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    pub(crate) fn vec_c_slab(&self) -> &[f64] {
        &self.vec_c
    }

    /// The per-row `N` slab, for the lane kernels.
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    pub(crate) fn n_slab(&self) -> &[f64] {
        &self.n
    }

    /// The per-row scalar-statistic (`SSE`) slab, for the lane kernels.
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    pub(crate) fn scalar_slab(&self) -> &[f64] {
        &self.scalar
    }
}

#[cfg(feature = "classic-cf")]
fn row_view(block: &CfBlock, i: usize) -> ClassicView<'_> {
    ClassicView {
        n: block.row_n(i),
        ss: block.row_scalar(i),
        ls_sq: block.row_vec_sq(i),
        ls: block.row_vec(i),
    }
}

#[cfg(not(feature = "classic-cf"))]
fn row_view(block: &CfBlock, i: usize) -> StableView<'_> {
    StableView {
        n: block.row_n(i),
        sse: block.row_scalar(i),
        mean: block.row_vec(i),
        mean_c: block.row_vec_c(i),
    }
}

/// Distance from `a` to block row `i` — bit-identical to
/// `metric.distance(a, &row_i_cf)`.
///
/// # Panics
///
/// Panics if `a` is empty, `i` is out of range, or dimensions disagree.
#[must_use]
#[inline]
pub fn distance_to_row(metric: DistanceMetric, a: &Cf, block: &CfBlock, i: usize) -> f64 {
    assert!(!a.is_empty(), "distance from an empty cluster is undefined");
    assert_eq!(
        a.dim(),
        block.dim(),
        "dimension mismatch: {} vs {}",
        a.dim(),
        block.dim()
    );
    active_kernel(metric, &cf_view(a), &row_view(block, i))
}

// ---------------------------------------------------------------------
// Kernel routing: every batch scan exists in a scalar form (the oracle —
// bit-identical to `DistanceMetric::distance` by construction) and, on
// the default stable+`simd` build, a lane form in `crate::simd`. The
// production names (`pair_in_block`, `closest_among`, …) route to the
// lane kernels when they are compiled in and to the scalar forms
// otherwise. Lane and scalar results agree bit-for-bit at dim ≤ 4 (the
// small-dim specializations keep scalar accumulation order) and within
// [`SIMD_TOLERANCE_REL`] above that (lane reduction reorders the sums).
// ---------------------------------------------------------------------

/// Which batched kernel family the production scans route through:
/// `"lane"` on stable+`simd` builds, `"scalar"` otherwise. Recorded in
/// the bench JSON so `bench_gate` baselines name the path they measured.
#[cfg(all(feature = "simd", not(feature = "classic-cf")))]
pub const KERNEL_KIND: &str = "lane";
/// Which batched kernel family the production scans route through:
/// `"lane"` on stable+`simd` builds, `"scalar"` otherwise. Recorded in
/// the bench JSON so `bench_gate` baselines name the path they measured.
#[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
pub const KERNEL_KIND: &str = "scalar";

/// Per-call tolerance contract of the lane kernels: for dims above the
/// serial-order specializations a lane-computed distance `d_l` and its
/// scalar oracle `d_s` satisfy `|d_l − d_s| ≤ SIMD_TOLERANCE_REL ·
/// max(|d_s|, 1)`. The slack is enormous against the actual reordering
/// error (four partial sums of non-negative terms differ from the serial
/// sum by O(dim · ε) ≲ 1e-13 relative even at dim 1024), so the
/// differential tests and the auditor can check it as a hard bound.
pub const SIMD_TOLERANCE_REL: f64 = 1e-12;

/// Distance between block rows `i` and `j` by the scalar kernel —
/// bit-identical to `metric.distance(&row_i_cf, &row_j_cf)`. This is the
/// oracle the lane path is differentially tested against.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
#[inline]
pub fn pair_in_block_scalar(metric: DistanceMetric, block: &CfBlock, i: usize, j: usize) -> f64 {
    active_kernel(metric, &row_view(block, i), &row_view(block, j))
}

/// Distance between block rows `i` and `j` — the production form:
/// lane-computed on stable+`simd` builds (within [`SIMD_TOLERANCE_REL`]
/// of [`pair_in_block_scalar`], bit-identical at dim ≤ 4), scalar
/// otherwise.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
#[inline]
pub fn pair_in_block(metric: DistanceMetric, block: &CfBlock, i: usize, j: usize) -> f64 {
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    {
        crate::simd::pair_in_block(metric, block, i, j)
    }
    #[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
    {
        pair_in_block_scalar(metric, block, i, j)
    }
}

/// Scalar form of [`closest_among`]: first-minimum via
/// [`distance_to_row`], so every distance is bit-identical to the scalar
/// `DistanceMetric::distance`.
#[must_use]
#[inline]
pub fn closest_among_scalar(
    metric: DistanceMetric,
    ent: &Cf,
    block: &CfBlock,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    for i in 0..block.len() {
        let d = distance_to_row(metric, ent, block, i);
        if d < best_d {
            best_d = d;
            best = Some((i, d));
        }
    }
    best
}

/// First-minimum closest row to `ent`: the batched form of the descent
/// scan (`best` starts at `+∞`, strictly-smaller wins, so the earliest of
/// tied rows is kept — the same tie-break as `CfTree::descend` and
/// `CfTree::closest_leaf_entry`). Returns `None` on an empty block.
/// Routes through the lane kernels on stable+`simd` builds.
#[must_use]
#[inline]
pub fn closest_among(metric: DistanceMetric, ent: &Cf, block: &CfBlock) -> Option<(usize, f64)> {
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    {
        crate::simd::closest_among(metric, ent, block)
    }
    #[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
    {
        closest_among_scalar(metric, ent, block)
    }
}

/// Per-row distance by whichever kernel family the production scans use
/// — the evaluation the pruned scan must share with [`closest_among`] so
/// prune-on and prune-off descents see identical distances.
#[inline]
fn row_distance_production(metric: DistanceMetric, ent: &Cf, block: &CfBlock, i: usize) -> f64 {
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    {
        crate::simd::distance_to_row(metric, ent, block, i)
    }
    #[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
    {
        distance_to_row(metric, ent, block, i)
    }
}

/// Conservative slack of the stable-backend D0 prune bound, relative to
/// the *sum* of the two centroid norms being compared.
///
/// The stable backend's cached `‖μ‖²` ignores the Neumaier carries that
/// the distances fold in, and the lane kernels reorder sums, so the
/// computed bound `|‖μ_a‖ − ‖μ_b‖|` can sit above the true D0 by a few
/// ulps *of the norms* (not of their difference). Every contributing
/// error is relative to the norms themselves — carry magnitude ≤ 2⁻⁵²‖μ‖,
/// dot-product and `sqrt` rounding O(dim·ε)‖μ‖, lane reordering within
/// [`SIMD_TOLERANCE_REL`] — totalling ≲ 3e-14·(‖μ_a‖+‖μ_b‖) at dim ≤ 128.
/// Subtracting `D0_PRUNE_SLACK_REL · (‖μ_a‖+‖μ_b‖)` therefore makes the
/// bound a true lower bound with ≥ 30× margin, preserving the
/// exact-selection guarantee: a pruned row provably cannot win the
/// strict-`<` comparison.
pub const D0_PRUNE_SLACK_REL: f64 = 1e-12;

/// [`closest_among`] with the D0 triangle-inequality lower-bound prune.
///
/// For D0 (centroid Euclidean distance) the reverse triangle inequality
/// gives `D0(a, b) ≥ |‖c_a‖ − ‖c_b‖|`, and each centroid norm is O(1)
/// from the cached squared norms. A row whose lower bound strictly
/// exceeds the best distance so far cannot win the strict `<` comparison,
/// so skipping it provably never changes the selected index (tie order
/// included). Non-D0 metrics fall back to the plain scan.
///
/// On the classic backend the cached-norm bound is exact (the memo is
/// refreshed by exact recomputation), so no slack is needed. On the
/// stable backend the bound is widened by [`D0_PRUNE_SLACK_REL`] to
/// absorb the carry/rounding mismatch between the uncompensated cached
/// norms and the compensated (and possibly lane-reordered) distances —
/// conservative, so selection safety is preserved at the cost of a few
/// un-pruned borderline rows.
///
/// Returns `(best, evaluated, pruned)`: the winning `(index, distance)`,
/// how many full distance evaluations ran, and how many rows the bound
/// skipped.
#[must_use]
pub fn closest_among_pruned(
    metric: DistanceMetric,
    ent: &Cf,
    block: &CfBlock,
) -> (Option<(usize, f64)>, u64, u64) {
    if metric != DistanceMetric::D0 {
        let best = closest_among(metric, ent, block);
        return (best, block.len() as u64, 0);
    }
    // Centroid norms from the cached squared vector-statistic norms: the
    // vector statistic is LS on the classic backend (divide by N for the
    // centroid) and μ itself on the stable one.
    #[cfg(feature = "classic-cf")]
    let centroid_norm = |sq: f64, n: f64| sq.sqrt() / n;
    #[cfg(not(feature = "classic-cf"))]
    let centroid_norm = |sq: f64, _n: f64| sq.sqrt();
    let ent_norm = centroid_norm(ent.vec_stat_sq(), ent.n());
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    let mut evaluated = 0u64;
    let mut pruned = 0u64;
    for i in 0..block.len() {
        let row_norm = centroid_norm(block.row_vec_sq(i), block.row_n(i));
        #[cfg(feature = "classic-cf")]
        let bound = (ent_norm - row_norm).abs();
        #[cfg(not(feature = "classic-cf"))]
        let bound = (ent_norm - row_norm).abs() - D0_PRUNE_SLACK_REL * (ent_norm + row_norm);
        if bound > best_d {
            pruned += 1;
            continue;
        }
        evaluated += 1;
        let d = row_distance_production(metric, ent, block, i);
        if d < best_d {
            best_d = d;
            best = Some((i, d));
        }
    }
    (best, evaluated, pruned)
}

/// Cheap lower bound on `pair_in_block(metric, block, i, j)` computed
/// from the rows' cached summary statistics alone — no vector sweep.
///
/// This is the candidate prune of the Phase-3 agglomerator
/// ([`crate::hierarchical`]): a row pair whose bound strictly exceeds
/// the best distance found so far provably cannot win a strict-`<`
/// nearest-neighbor scan, so the O(dim) kernel call is skipped.
///
/// Derivation (stable backend, where the cached triple per row is
/// `(N, SSE, ‖μ‖²)`): the reverse triangle inequality gives
/// `‖Δμ‖ ≥ |‖μ_a‖ − ‖μ_b‖|`; widening by [`D0_PRUNE_SLACK_REL`] ·
/// `(‖μ_a‖+‖μ_b‖)` (the PR-4 slack argument: cached norms ignore the
/// Neumaier carries the kernels fold in, and lane kernels reorder sums,
/// every error term relative to the norms) yields a true lower bound
/// `d0b ≤ ‖Δμ‖`. The deviation forms are monotone in `‖Δμ‖²` with all
/// other inputs read bit-identically from the same cached statistics:
///
/// - D0: `d0b`; D1 ≥ D0 coordinate-wise (L1 dominates L2), so `d0b` too.
/// - D2² = SSE_a/N_a + SSE_b/N_b + ‖Δμ‖² ≥ same with `d0b²`.
/// - D3² = 2(SSE_a + SSE_b + (N_aN_b/N)‖Δμ‖²)/(N−1), same substitution.
/// - D4² = (N_aN_b/N)‖Δμ‖² ≥ (N_aN_b/N)·d0b².
///
/// The derived-metric bounds are additionally shaved by one more
/// [`D0_PRUNE_SLACK_REL`] relative step to absorb their own few-ulp
/// assembly round-off, keeping `bound ≤ distance` a hard invariant (the
/// auditor re-checks it on every node; see `crate::audit`).
///
/// Classic backend: only the D0/D1 centroid-norm bound is available —
/// `SSE = SS − ‖LS‖²/N` suffers exactly the catastrophic cancellation
/// that motivated the stable backend, so a cached-stat reconstruction
/// of the D2/D3/D4 deviation terms cannot be trusted as a *lower*
/// bound; those metrics return 0.0 (never prunes) there. The D0/D1
/// bound gets the same relative slack as the stable path: the cached
/// `‖LS‖²` is one rounding sequence and the kernel's coordinate-wise
/// `Σ(Δc)²` another, so the two can disagree by a few ulps even in
/// exact arithmetic's favor — observed live as a 1-ulp overshoot that
/// tripped the audit's `bound ≤ distance` invariant.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn pair_lower_bound(metric: DistanceMetric, block: &CfBlock, i: usize, j: usize) -> f64 {
    let (na, nb) = (block.row_n(i), block.row_n(j));
    #[cfg(feature = "classic-cf")]
    {
        match metric {
            DistanceMetric::D0 | DistanceMetric::D1 => {
                let ca = block.row_vec_sq(i).sqrt() / na;
                let cb = block.row_vec_sq(j).sqrt() / nb;
                ((ca - cb).abs() - D0_PRUNE_SLACK_REL * (ca + cb)).max(0.0)
            }
            _ => 0.0,
        }
    }
    #[cfg(not(feature = "classic-cf"))]
    {
        let ma = block.row_vec_sq(i).sqrt();
        let mb = block.row_vec_sq(j).sqrt();
        let d0b = ((ma - mb).abs() - D0_PRUNE_SLACK_REL * (ma + mb)).max(0.0);
        let shave = 1.0 - D0_PRUNE_SLACK_REL;
        match metric {
            DistanceMetric::D0 | DistanceMetric::D1 => d0b,
            DistanceMetric::D2 => {
                let (sa, sb) = (block.row_scalar(i), block.row_scalar(j));
                (sa / na + sb / nb + d0b * d0b).max(0.0).sqrt() * shave
            }
            DistanceMetric::D3 => {
                let n = na + nb;
                if n <= 1.0 {
                    return 0.0;
                }
                let (sa, sb) = (block.row_scalar(i), block.row_scalar(j));
                let sse_m = sa + sb + (na * nb / n) * (d0b * d0b);
                (2.0 * sse_m / (n - 1.0)).max(0.0).sqrt() * shave
            }
            DistanceMetric::D4 => {
                let n = na + nb;
                ((na * nb / n) * (d0b * d0b)).max(0.0).sqrt() * shave
            }
        }
    }
}

/// Scalar form of [`closest_pair`] — every pair distance bit-identical
/// to the scalar `DistanceMetric::distance`.
#[must_use]
#[inline]
pub fn closest_pair_scalar(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..block.len() {
        for j in (i + 1)..block.len() {
            let d = pair_in_block_scalar(metric, block, i, j);
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((i, j, d));
            }
        }
    }
    best
}

/// First-minimum closest pair among the block's rows (`i < j`, earliest
/// pair wins ties) — the batched form of the §4.3 merging-refinement scan.
/// Returns `None` when the block has fewer than two rows. Routes through
/// the lane kernels on stable+`simd` builds.
#[must_use]
#[inline]
pub fn closest_pair(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    {
        crate::simd::closest_pair(metric, block)
    }
    #[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
    {
        closest_pair_scalar(metric, block)
    }
}

/// Scalar form of [`farthest_pair`] — every pair distance bit-identical
/// to the scalar `DistanceMetric::distance`.
#[must_use]
#[inline]
pub fn farthest_pair_scalar(
    metric: DistanceMetric,
    block: &CfBlock,
) -> Option<(usize, usize, f64)> {
    if block.len() < 2 {
        return None;
    }
    let (mut far, mut far_d) = ((0, 1), f64::NEG_INFINITY);
    for i in 0..block.len() {
        for j in (i + 1)..block.len() {
            let d = pair_in_block_scalar(metric, block, i, j);
            if d > far_d {
                far = (i, j);
                far_d = d;
            }
        }
    }
    Some((far.0, far.1, far_d))
}

/// First-maximum farthest pair among the block's rows (`i < j`, earliest
/// pair wins ties) — the batched form of the split seeding scan (§4.2:
/// "the farthest pair of entries"). Returns `None` when the block has
/// fewer than two rows. Routes through the lane kernels on stable+`simd`
/// builds.
#[must_use]
#[inline]
pub fn farthest_pair(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    #[cfg(all(feature = "simd", not(feature = "classic-cf")))]
    {
        crate::simd::farthest_pair(metric, block)
    }
    #[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
    {
        farthest_pair_scalar(metric, block)
    }
}

/// What cluster statistic the CF-tree threshold `T` constrains (§4.2: the
/// diameter *or radius* of each leaf entry has to be less than `T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThresholdKind {
    /// Constrain the leaf entry's diameter `D < T` (the paper's default
    /// quality measure, Table 2).
    #[default]
    Diameter,
    /// Constrain the leaf entry's radius `R < T`.
    Radius,
}

impl ThresholdKind {
    /// The constrained statistic of a CF.
    #[must_use]
    pub fn statistic(self, cf: &Cf) -> f64 {
        match self {
            ThresholdKind::Diameter => cf.diameter(),
            ThresholdKind::Radius => cf.radius(),
        }
    }

    /// Whether `cf` satisfies the threshold condition wrt `t`.
    #[must_use]
    pub fn satisfies(self, cf: &Cf, t: f64) -> bool {
        self.statistic(cf) <= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cf_of(raw: &[[f64; 2]]) -> Cf {
        let pts: Vec<Point> = raw.iter().map(|&[x, y]| Point::xy(x, y)).collect();
        Cf::from_points(&pts)
    }

    /// Brute-force D2 straight from the definition for cross-checking.
    fn d2_brute(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
        let mut s = 0.0;
        for p in a {
            for q in b {
                s += (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
            }
        }
        (s / (a.len() * b.len()) as f64).sqrt()
    }

    #[test]
    fn d0_between_singletons_is_euclidean() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D0.distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn d1_between_singletons_is_manhattan() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D1.distance(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn d2_matches_brute_force() {
        let a = [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]];
        let b = [[5.0, 5.0], [6.0, 4.0]];
        let got = DistanceMetric::D2.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - d2_brute(&a, &b)).abs() < 1e-10);
    }

    #[test]
    fn d2_of_singletons_equals_d0() {
        let a = cf_of(&[[1.0, 2.0]]);
        let b = cf_of(&[[4.0, 6.0]]);
        let d0 = DistanceMetric::D0.distance(&a, &b);
        let d2 = DistanceMetric::D2.distance(&a, &b);
        assert!((d0 - d2).abs() < 1e-12);
    }

    #[test]
    fn d3_is_merged_diameter() {
        let a = [[0.0, 0.0], [1.0, 0.0]];
        let b = [[10.0, 0.0]];
        let merged = cf_of(&[[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]);
        let got = DistanceMetric::D3.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - merged.diameter()).abs() < 1e-12);
    }

    #[test]
    fn d4_matches_deviation_increase() {
        let a = [[0.0, 0.0], [2.0, 0.0]];
        let b = [[10.0, 0.0], [12.0, 0.0]];
        let (cfa, cfb) = (cf_of(&a), cf_of(&b));
        let merged = cfa.merged(&cfb);
        let expected = (merged.sq_deviation() - cfa.sq_deviation() - cfb.sq_deviation())
            .max(0.0)
            .sqrt();
        let got = DistanceMetric::D4.distance(&cfa, &cfb);
        assert!((got - expected).abs() < 1e-10, "got {got}, want {expected}");
    }

    #[test]
    fn all_metrics_symmetric_and_nonnegative() {
        let a = cf_of(&[[0.0, 1.0], [2.0, 3.0], [1.0, -2.0]]);
        let b = cf_of(&[[7.0, 7.0], [8.0, 6.0]]);
        for m in DistanceMetric::ALL {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!(ab >= 0.0, "{m} negative");
            assert!((ab - ba).abs() < 1e-12, "{m} asymmetric");
        }
    }

    #[test]
    fn coincident_singletons_have_zero_distance() {
        let a = cf_of(&[[5.0, 5.0]]);
        let b = cf_of(&[[5.0, 5.0]]);
        for m in DistanceMetric::ALL {
            assert!(m.distance(&a, &b).abs() < 1e-12, "{m} nonzero");
        }
    }

    #[test]
    fn metric_ordering_on_separated_blobs() {
        // Far-apart blobs: every metric should report a "large" distance
        // comparable to the centroid separation (within a small factor).
        let a = cf_of(&[[0.0, 0.0], [0.1, 0.1]]);
        let b = cf_of(&[[100.0, 0.0], [100.1, 0.1]]);
        for m in DistanceMetric::ALL {
            let d = m.distance(&a, &b);
            assert!(d > 50.0, "{m} too small: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "empty clusters")]
    fn empty_cf_distance_panics() {
        let a = Cf::empty(2);
        let b = cf_of(&[[1.0, 1.0]]);
        let _ = DistanceMetric::D0.distance(&a, &b);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in DistanceMetric::ALL {
            let parsed: DistanceMetric = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("D9".parse::<DistanceMetric>().is_err());
        assert_eq!("d3".parse::<DistanceMetric>().unwrap(), DistanceMetric::D3);
    }

    #[test]
    fn threshold_kind_statistics() {
        let cf = cf_of(&[[0.0, 0.0], [6.0, 0.0]]);
        assert!((ThresholdKind::Diameter.statistic(&cf) - 6.0).abs() < 1e-12);
        assert!((ThresholdKind::Radius.statistic(&cf) - 3.0).abs() < 1e-12);
        assert!(ThresholdKind::Diameter.satisfies(&cf, 6.0));
        assert!(!ThresholdKind::Diameter.satisfies(&cf, 5.9));
        assert!(ThresholdKind::Radius.satisfies(&cf, 3.5));
    }

    #[test]
    fn default_metric_is_d2_and_default_threshold_is_diameter() {
        assert_eq!(DistanceMetric::default(), DistanceMetric::D2);
        assert_eq!(ThresholdKind::default(), ThresholdKind::Diameter);
    }

    /// A varied set of multi-point CFs for kernel-vs-scalar comparisons.
    fn kernel_fixture() -> Vec<Cf> {
        vec![
            cf_of(&[[0.0, 0.0], [1.0, 1.0]]),
            cf_of(&[[5.0, -3.0]]),
            cf_of(&[[2.5, 2.5], [2.5, 2.5], [3.0, 2.0]]),
            cf_of(&[[-7.0, 4.0], [-6.5, 4.5]]),
            cf_of(&[[100.0, 100.0]]),
            cf_of(&[[0.1, 0.2], [0.3, 0.4], [0.5, 0.6], [0.7, 0.8]]),
        ]
    }

    #[test]
    fn block_rows_mirror_cfs() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        assert_eq!(b.len(), cfs.len());
        assert_eq!(b.dim(), 2);
        for (i, cf) in cfs.iter().enumerate() {
            assert_eq!(b.row_n(i), cf.n());
            assert_eq!(b.row_scalar(i), cf.scalar_stat());
            assert_eq!(b.row_vec_sq(i).to_bits(), cf.vec_stat_sq().to_bits());
            assert_eq!(b.row_vec(i), cf.vec_stat());
            #[cfg(not(feature = "classic-cf"))]
            assert_eq!(b.row_vec_c(i), cf.mean_carry());
        }
    }

    #[test]
    fn block_mutators_keep_rows_in_sync() {
        let cfs = kernel_fixture();
        let mut b = CfBlock::from_cfs(&cfs[..3]);
        b.set(1, &cfs[3]);
        assert_eq!(b.row_vec(1), cfs[3].vec_stat());
        b.insert(0, &cfs[4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.row_vec(0), cfs[4].vec_stat());
        assert_eq!(b.row_vec(1), cfs[0].vec_stat());
        b.remove(2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row_vec(2), cfs[2].vec_stat());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2, "dim survives clear");
    }

    #[test]
    fn row_kernels_are_bit_identical_to_scalar() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        let probe = cf_of(&[[1.0, -1.0], [2.0, 0.5]]);
        for m in DistanceMetric::ALL {
            for i in 0..cfs.len() {
                let scalar = m.distance(&probe, &cfs[i]);
                let kernel = distance_to_row(m, &probe, &b, i);
                assert_eq!(scalar.to_bits(), kernel.to_bits(), "{m} row {i}");
                for j in (i + 1)..cfs.len() {
                    let scalar = m.distance(&cfs[i], &cfs[j]);
                    let kernel = pair_in_block(m, &b, i, j);
                    assert_eq!(scalar.to_bits(), kernel.to_bits(), "{m} pair {i},{j}");
                }
            }
        }
    }

    #[test]
    fn closest_among_matches_first_min_reference() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        let probe = cf_of(&[[2.0, 2.0]]);
        for m in DistanceMetric::ALL {
            let mut best: Option<(usize, f64)> = None;
            for (i, cf) in cfs.iter().enumerate() {
                let d = m.distance(&probe, cf);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            let got = closest_among(m, &probe, &b);
            assert_eq!(got.map(|(i, _)| i), best.map(|(i, _)| i), "{m}");
            assert_eq!(
                got.map(|(_, d)| d.to_bits()),
                best.map(|(_, d)| d.to_bits()),
                "{m}"
            );
        }
    }

    #[test]
    fn closest_among_keeps_earliest_of_tied_rows() {
        // Two identical rows: the scan must return the first.
        let twin = cf_of(&[[3.0, 3.0]]);
        let b = CfBlock::from_cfs([&cf_of(&[[9.0, 9.0]]), &twin, &twin.clone()]);
        let probe = cf_of(&[[3.0, 2.0]]);
        for m in DistanceMetric::ALL {
            let (i, _) = closest_among(m, &probe, &b).unwrap();
            assert_eq!(i, 1, "{m} broke tie order");
        }
    }

    #[test]
    fn pruned_scan_picks_identical_winner_and_counts() {
        // Rows with widely spread centroid norms so the D0 bound prunes.
        let rows: Vec<Cf> = (0..40)
            .map(|i| {
                let x = f64::from(i) * 25.0;
                cf_of(&[[x, x * 0.5]])
            })
            .collect();
        let b = CfBlock::from_cfs(&rows);
        let probe = cf_of(&[[26.0, 12.0]]);
        let plain = closest_among(DistanceMetric::D0, &probe, &b);
        let (pruned_best, evaluated, pruned) = closest_among_pruned(DistanceMetric::D0, &probe, &b);
        assert_eq!(plain.map(|(i, _)| i), pruned_best.map(|(i, _)| i));
        assert_eq!(
            plain.map(|(_, d)| d.to_bits()),
            pruned_best.map(|(_, d)| d.to_bits())
        );
        assert!(pruned > 0, "spread norms must prune something");
        assert_eq!(evaluated + pruned, rows.len() as u64);
        // Non-D0 metrics fall back to the plain scan, nothing pruned.
        let (_, ev2, pr2) = closest_among_pruned(DistanceMetric::D2, &probe, &b);
        assert_eq!((ev2, pr2), (rows.len() as u64, 0));
    }

    #[cfg(not(feature = "classic-cf"))]
    #[test]
    fn stable_prune_bound_is_conservative_near_the_boundary() {
        // Rows whose centroid norms equal the probe's exactly sit *on*
        // the prune boundary once a very close best (d = 1e-9) is held:
        // their exact norm-difference bound is 0 and the slack pushes it
        // negative, so the conservative bound must refuse to prune them
        // even though they are far away in actual distance. A wrong-sign
        // slack (or a bound computed on drifted cached norms) would
        // prune them here. Far rows with large norm gaps still prune.
        let probe = cf_of(&[[30.0, 0.0]]);
        let mut rows: Vec<Cf> = vec![
            cf_of(&[[30.0 + 1e-9, 0.0]]), // true winner, evaluated first
            cf_of(&[[0.0, 30.0]]),        // ‖μ‖ = 30 exactly: bound ≤ 0, must evaluate
            cf_of(&[[-30.0, 0.0]]),       // same norm from the other side
        ];
        rows.extend((1..30).map(|i| {
            let x = f64::from(i) * 500.0;
            cf_of(&[[x, x]])
        }));
        let b = CfBlock::from_cfs(&rows);
        let plain = closest_among(DistanceMetric::D0, &probe, &b);
        let (best, evaluated, pruned) = closest_among_pruned(DistanceMetric::D0, &probe, &b);
        assert_eq!(plain.map(|(i, _)| i), best.map(|(i, _)| i));
        assert_eq!(
            plain.map(|(_, d)| d.to_bits()),
            best.map(|(_, d)| d.to_bits())
        );
        assert!(pruned > 0, "far rows must prune");
        assert!(evaluated >= 3, "equal-norm rows must not prune");
        assert_eq!(evaluated + pruned, rows.len() as u64);
    }

    #[test]
    fn pair_in_block_is_bit_symmetric() {
        // The agglomerators evaluate the same pair from either side (the
        // chain from its tip, the heap in index order); bit-identical
        // dendrograms across paths require d(i,j) == d(j,i) exactly. The
        // classic D3/D4 merged-norm assembly once violated this by one
        // ulp through association order.
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        for m in DistanceMetric::ALL {
            for i in 0..cfs.len() {
                for j in 0..cfs.len() {
                    if i == j {
                        continue;
                    }
                    assert_eq!(
                        pair_in_block(m, &b, i, j).to_bits(),
                        pair_in_block(m, &b, j, i).to_bits(),
                        "{m} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn pair_lower_bound_is_sound_for_all_metrics() {
        // The NN-chain prune contract: bound ≤ true distance, on every
        // pair, every metric, both backends — including weighted CFs,
        // tight co-located clusters, and mirrored-norm pairs where the
        // norm-difference term collapses to zero.
        let rows: Vec<Cf> = vec![
            cf_of(&[[0.0, 0.0], [0.2, 0.1]]),
            cf_of(&[[0.1, 0.05]]),
            cf_of(&[[100.0, 100.0], [100.5, 99.5], [99.5, 100.5]]),
            cf_of(&[[-100.0, -100.0]]), // same norm as above, opposite side
            cf_of(&[[3.0, 4.0], [3.0, 4.0], [3.0, 4.0]]), // zero-SSE triple
            cf_of(&[[-5.0, 12.0]]),     // ‖μ‖ = 13, near the (3,4)-norm 5
            cf_of(&[[1e6, 1.0]]),
        ];
        let b = CfBlock::from_cfs(&rows);
        for m in DistanceMetric::ALL {
            for i in 0..rows.len() {
                for j in (i + 1)..rows.len() {
                    let bound = pair_lower_bound(m, &b, i, j);
                    let dist = pair_in_block(m, &b, i, j);
                    assert!(
                        bound <= dist,
                        "{m} rows ({i},{j}): bound {bound} > distance {dist}"
                    );
                    assert!(bound >= 0.0, "{m} rows ({i},{j}): negative bound {bound}");
                }
            }
        }
    }

    #[test]
    fn pair_lower_bound_bites_on_separated_rows() {
        // A bound that is always 0 would be sound but useless: for rows
        // with well-separated centroid norms it must go positive — D0/D1
        // on both backends, the derived D2/D3/D4 forms on the stable one.
        let a = cf_of(&[[1.0, 0.0], [1.2, 0.1]]);
        let z = cf_of(&[[800.0, 600.0], [800.4, 600.2]]);
        let b = CfBlock::from_cfs([&a, &z]);
        for m in [DistanceMetric::D0, DistanceMetric::D1] {
            assert!(pair_lower_bound(m, &b, 0, 1) > 0.0, "{m}");
        }
        #[cfg(not(feature = "classic-cf"))]
        for m in [DistanceMetric::D2, DistanceMetric::D3, DistanceMetric::D4] {
            assert!(pair_lower_bound(m, &b, 0, 1) > 0.0, "{m}");
        }
    }

    #[test]
    fn pair_scans_match_scalar_reference() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        for m in DistanceMetric::ALL {
            // Scalar closest-pair reference (first minimum).
            let mut best: Option<(usize, usize, f64)> = None;
            let (mut far, mut far_d) = ((0, 1), f64::NEG_INFINITY);
            for i in 0..cfs.len() {
                for j in (i + 1)..cfs.len() {
                    let d = m.distance(&cfs[i], &cfs[j]);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                    if d > far_d {
                        far = (i, j);
                        far_d = d;
                    }
                }
            }
            let got = closest_pair(m, &b).unwrap();
            let want = best.unwrap();
            assert_eq!((got.0, got.1), (want.0, want.1), "{m} closest pair");
            assert_eq!(got.2.to_bits(), want.2.to_bits(), "{m}");
            let gf = farthest_pair(m, &b).unwrap();
            assert_eq!((gf.0, gf.1), far, "{m} farthest pair");
            assert_eq!(gf.2.to_bits(), far_d.to_bits(), "{m}");
        }
        assert!(farthest_pair(DistanceMetric::D0, &CfBlock::new()).is_none());
        assert!(closest_pair(DistanceMetric::D0, &CfBlock::new()).is_none());
    }

    /// Exercises the shared empty-operand contract of both kernels for
    /// one metric: debug builds panic on the debug assert, release builds
    /// return `+∞` (never `NaN`, which would poison `closest_among`).
    fn empty_operand_check(metric: DistanceMetric) {
        let ls = [1.0, 2.0];
        let zeros = [0.0, 0.0];
        let full_c = ClassicView {
            n: 1.0,
            ss: 5.0,
            ls_sq: 5.0,
            ls: &ls,
        };
        let empty_c = ClassicView {
            n: 0.0,
            ss: 0.0,
            ls_sq: 0.0,
            ls: &zeros,
        };
        let full_s = StableView {
            n: 1.0,
            sse: 0.0,
            mean: &ls,
            mean_c: &zeros,
        };
        let empty_s = StableView {
            n: 0.0,
            sse: 0.0,
            mean: &zeros,
            mean_c: &zeros,
        };
        #[cfg(debug_assertions)]
        {
            use std::panic::{catch_unwind, AssertUnwindSafe};
            for f in [
                Box::new(|| classic_distance(metric, &full_c, &empty_c)) as Box<dyn Fn() -> f64>,
                Box::new(|| classic_distance(metric, &empty_c, &full_c)),
                Box::new(|| stable_distance(metric, &full_s, &empty_s)),
                Box::new(|| stable_distance(metric, &empty_s, &full_s)),
            ] {
                assert!(
                    catch_unwind(AssertUnwindSafe(f)).is_err(),
                    "{metric} did not debug-assert on an empty operand"
                );
            }
        }
        #[cfg(not(debug_assertions))]
        {
            assert_eq!(classic_distance(metric, &full_c, &empty_c), f64::INFINITY);
            assert_eq!(classic_distance(metric, &empty_c, &full_c), f64::INFINITY);
            assert_eq!(stable_distance(metric, &full_s, &empty_s), f64::INFINITY);
            assert_eq!(stable_distance(metric, &empty_s, &full_s), f64::INFINITY);
        }
    }

    #[test]
    fn empty_operand_contract_d0() {
        empty_operand_check(DistanceMetric::D0);
    }

    #[test]
    fn empty_operand_contract_d1() {
        empty_operand_check(DistanceMetric::D1);
    }

    #[test]
    fn empty_operand_contract_d2() {
        empty_operand_check(DistanceMetric::D2);
    }

    #[test]
    fn empty_operand_contract_d3() {
        empty_operand_check(DistanceMetric::D3);
    }

    #[test]
    fn empty_operand_contract_d4() {
        empty_operand_check(DistanceMetric::D4);
    }

    /// Raw point clouds for cross-backend comparisons (well-conditioned:
    /// near the origin, O(1) spreads).
    fn parity_clouds() -> Vec<Vec<Point>> {
        vec![
            vec![Point::xy(0.0, 0.0), Point::xy(1.0, 1.0)],
            vec![Point::xy(5.0, -3.0)],
            vec![
                Point::xy(2.5, 2.5),
                Point::xy(2.5, 2.5),
                Point::xy(3.0, 2.0),
            ],
            vec![Point::xy(-7.0, 4.0), Point::xy(-6.5, 4.5)],
            vec![Point::xy(100.0, 100.0)],
            vec![
                Point::xy(0.1, 0.2),
                Point::xy(0.3, 0.4),
                Point::xy(0.5, 0.6),
                Point::xy(0.7, 0.8),
            ],
        ]
    }

    #[test]
    fn stable_kernel_parity_with_classic_on_well_conditioned_data() {
        // Both kernel families are always compiled, so the parity claim —
        // same distances (within round-off) and the same winner index on
        // well-conditioned data — is checked regardless of which backend
        // the pipeline alias selects.
        let clouds = parity_clouds();
        let classics: Vec<crate::cf::classic::Cf> = clouds
            .iter()
            .map(crate::cf::classic::Cf::from_points)
            .collect();
        let stables: Vec<crate::cf::stable::Cf> = clouds
            .iter()
            .map(crate::cf::stable::Cf::from_points)
            .collect();
        let probe_pts = vec![Point::xy(1.0, -1.0), Point::xy(2.0, 0.5)];
        let probe_c = crate::cf::classic::Cf::from_points(&probe_pts);
        let probe_s = crate::cf::stable::Cf::from_points(&probe_pts);
        for m in DistanceMetric::ALL {
            let mut win_c: Option<(usize, f64)> = None;
            let mut win_s: Option<(usize, f64)> = None;
            for i in 0..clouds.len() {
                let dc = classic_distance(
                    m,
                    &ClassicView::of(&probe_c),
                    &ClassicView::of(&classics[i]),
                );
                let ds =
                    stable_distance(m, &StableView::of(&probe_s), &StableView::of(&stables[i]));
                let scale = dc.abs().max(1.0);
                assert!(
                    (dc - ds).abs() < 1e-9 * scale,
                    "{m} cloud {i}: classic {dc} vs stable {ds}"
                );
                if win_c.is_none_or(|(_, d)| dc < d) {
                    win_c = Some((i, dc));
                }
                if win_s.is_none_or(|(_, d)| ds < d) {
                    win_s = Some((i, ds));
                }
            }
            assert_eq!(
                win_c.map(|(i, _)| i),
                win_s.map(|(i, _)| i),
                "{m} winner index diverged between backends"
            );
        }
    }

    #[test]
    fn stable_kernel_distances_survive_large_offset() {
        // Two tight dyadic-spread clusters 2⁻³ apart, at the origin and
        // translated by 1e8 (an exact translate: every coordinate is a
        // multiple of ulp(1e8) = 2⁻²⁶). The stable kernel must report the
        // same D0–D4 at both offsets to ~1e-9 relative; the classic closed
        // forms collapse entirely here (that failure is pinned by the
        // translation-invariance suite and the stability bench).
        const S: f64 = 9.765_625e-4; // 2⁻¹⁰
        const GAP: f64 = 0.125; // 2⁻³
        let cloud = |base: f64| {
            vec![
                Point::xy(base, base),
                Point::xy(base + S, base),
                Point::xy(base, base + S),
            ]
        };
        let pair = |off: f64| {
            (
                crate::cf::stable::Cf::from_points(&cloud(off)),
                crate::cf::stable::Cf::from_points(&cloud(off + GAP)),
            )
        };
        let (a0, b0) = pair(0.0);
        let (a8, b8) = pair(1e8);
        for m in DistanceMetric::ALL {
            let d_origin = stable_distance(m, &StableView::of(&a0), &StableView::of(&b0));
            let d_far = stable_distance(m, &StableView::of(&a8), &StableView::of(&b8));
            assert!(d_origin > 0.0, "{m} degenerate fixture");
            assert!(
                ((d_far - d_origin) / d_origin).abs() < 1e-9,
                "{m} drifted under translation: {d_origin} vs {d_far}"
            );
        }
    }
}
