//! The five inter-cluster distance metrics of §3 (eqs. 4–8), computed
//! exactly from CF vectors.
//!
//! Given clusters with features `CF₁ = (N₁, LS₁, SS₁)` and
//! `CF₂ = (N₂, LS₂, SS₂)`:
//!
//! * **D0** — centroid Euclidean distance `‖X0₁ − X0₂‖` (eq. 4),
//! * **D1** — centroid Manhattan distance `Σ|X0₁(t) − X0₂(t)|` (eq. 5),
//! * **D2** — average inter-cluster distance
//!   `sqrt(Σᵢ∈1 Σⱼ∈2 ‖Xᵢ−Xⱼ‖² / (N₁N₂))` (eq. 6),
//! * **D3** — average intra-cluster distance of the *merged* cluster
//!   (eq. 7) — i.e. the diameter of `CF₁ + CF₂`,
//! * **D4** — variance-increase distance (eq. 8): the growth in total
//!   squared deviation caused by merging.
//!
//! All five reduce to closed forms over `(N, LS, SS)`:
//!
//! ```text
//! D2² = (N₂·SS₁ + N₁·SS₂ − 2·LS₁·LS₂) / (N₁·N₂)
//! D3² = (2N·SSₘ − 2‖LSₘ‖²) / (N(N−1)),  N = N₁+N₂, subscript m = merged
//! D4² = ‖LS₁‖²/N₁ + ‖LS₂‖²/N₂ − ‖LSₘ‖²/N
//! ```
//!
//! (for D4, note `SSₘ = SS₁+SS₂` cancels out of the deviation difference).

use crate::cf::Cf;
use crate::point::dot;
use std::fmt;
use std::str::FromStr;

/// Which of the paper's five distance definitions to use when comparing
/// clusters (choosing the closest child during descent, seeding splits,
/// Phase-3 agglomeration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMetric {
    /// D0 — Euclidean distance between centroids (eq. 4).
    D0,
    /// D1 — Manhattan distance between centroids (eq. 5).
    D1,
    /// D2 — average inter-cluster distance (eq. 6). The paper's default
    /// (Table 2: "Distance def. D2").
    #[default]
    D2,
    /// D3 — average intra-cluster distance of the merged cluster (eq. 7).
    D3,
    /// D4 — variance increase distance (eq. 8).
    D4,
}

impl DistanceMetric {
    /// All five metrics, for sweeps and tests.
    pub const ALL: [DistanceMetric; 5] = [
        DistanceMetric::D0,
        DistanceMetric::D1,
        DistanceMetric::D2,
        DistanceMetric::D3,
        DistanceMetric::D4,
    ];

    /// Distance between two non-empty clusters under this metric.
    ///
    /// All metrics are symmetric and non-negative; all except D3 are zero
    /// for identical singletons (D3 of two coincident singletons is also 0).
    ///
    /// # Panics
    ///
    /// Panics if either CF is empty or dimensions disagree.
    #[must_use]
    pub fn distance(self, a: &Cf, b: &Cf) -> f64 {
        assert!(
            !a.is_empty() && !b.is_empty(),
            "distance between empty clusters is undefined"
        );
        assert_eq!(
            a.dim(),
            b.dim(),
            "dimension mismatch: {} vs {}",
            a.dim(),
            b.dim()
        );
        match self {
            DistanceMetric::D0 => d0(a, b),
            DistanceMetric::D1 => d1(a, b),
            DistanceMetric::D2 => d2(a, b),
            DistanceMetric::D3 => d3(a, b),
            DistanceMetric::D4 => d4(a, b),
        }
    }
}

impl fmt::Display for DistanceMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistanceMetric::D0 => "D0",
            DistanceMetric::D1 => "D1",
            DistanceMetric::D2 => "D2",
            DistanceMetric::D3 => "D3",
            DistanceMetric::D4 => "D4",
        };
        f.write_str(s)
    }
}

impl FromStr for DistanceMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_uppercase().as_str() {
            "D0" => Ok(DistanceMetric::D0),
            "D1" => Ok(DistanceMetric::D1),
            "D2" => Ok(DistanceMetric::D2),
            "D3" => Ok(DistanceMetric::D3),
            "D4" => Ok(DistanceMetric::D4),
            other => Err(format!("unknown distance metric {other:?} (want D0..D4)")),
        }
    }
}

// The four metric kernels below are closed forms over (N, LS, SS): no
// centroid/merge materialization, hence no allocation. These run once per
// child entry per tree level for *every* insertion (the §6.1 CPU cost
// model's inner loop), so the allocation-free forms matter.

fn d0(a: &Cf, b: &Cf) -> f64 {
    let (na, nb) = (a.n(), b.n());
    a.ls()
        .iter()
        .zip(b.ls())
        .map(|(&x, &y)| {
            let d = x / na - y / nb;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn d1(a: &Cf, b: &Cf) -> f64 {
    let (na, nb) = (a.n(), b.n());
    a.ls()
        .iter()
        .zip(b.ls())
        .map(|(&x, &y)| (x / na - y / nb).abs())
        .sum()
}

fn d2(a: &Cf, b: &Cf) -> f64 {
    let num = b.n() * a.ss() + a.n() * b.ss() - 2.0 * dot(a.ls(), b.ls());
    (num.max(0.0) / (a.n() * b.n())).sqrt()
}

/// ‖LS_a + LS_b‖² without materializing the merged vector.
///
/// Reads the memoized [`Cf::ls_sq`] for the two self-terms — bit-identical
/// to recomputing `dot(ls, ls)` (the cache is refreshed by exact
/// recomputation), but one dot product instead of three.
fn merged_ls_sq(a: &Cf, b: &Cf) -> f64 {
    a.ls_sq() + 2.0 * dot(a.ls(), b.ls()) + b.ls_sq()
}

fn d3(a: &Cf, b: &Cf) -> f64 {
    let n = a.n() + b.n();
    if n <= 1.0 {
        return 0.0; // fractional weights: merged "cluster" of ≤ one point
    }
    let ss = a.ss() + b.ss();
    let num = 2.0 * n * ss - 2.0 * merged_ls_sq(a, b);
    (num.max(0.0) / (n * (n - 1.0))).sqrt()
}

fn d4(a: &Cf, b: &Cf) -> f64 {
    let n = a.n() + b.n();
    let inc = a.ls_sq() / a.n() + b.ls_sq() / b.n() - merged_ls_sq(a, b) / n;
    inc.max(0.0).sqrt()
}

// ---------------------------------------------------------------------
// Batched distance kernels over a flat SoA block of CFs.
//
// The tree-descent inner loop (§4.3: "find the closest child") walks a
// node's entries calling `DistanceMetric::distance` once per entry; with
// `Vec<Cf>` each call chases a separate `Box<[f64]>`. A `CfBlock` lays the
// same entries out as one dim-strided `LS` slab plus parallel `(n, ss,
// ‖LS‖²)` arrays, so the scan is a linear sweep over contiguous memory and
// the D3/D4 self-terms come from the cached norms. Accumulation inside
// every row kernel is per-element sequential in the exact same operand
// order as the scalar `d0..d4` above — no reassociation — so a kernel scan
// returns bit-identical distances (and therefore identical argmins,
// including tie order) to the scalar reference.
// ---------------------------------------------------------------------

/// A flat, cache-resident mirror of a sequence of CFs: one dim-strided
/// `LS` slab plus parallel `(N, SS, ‖LS‖²)` arrays.
///
/// The dimensionality is fixed lazily by the first row pushed, so an empty
/// block is dimension-agnostic (a fresh tree node can own one before any
/// entry exists).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CfBlock {
    /// Row width; 0 until the first push fixes it.
    dim: usize,
    /// Per-row weighted point count `N`.
    n: Vec<f64>,
    /// Per-row scalar square sum `SS`.
    ss: Vec<f64>,
    /// Per-row memoized `‖LS‖²` (copied from [`Cf::ls_sq`]).
    ls_sq: Vec<f64>,
    /// Row-major `LS` slab: row `i` occupies `ls[i*dim .. (i+1)*dim]`.
    ls: Vec<f64>,
}

impl CfBlock {
    /// An empty block with no fixed dimensionality yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A block mirroring `cfs` in order.
    #[must_use]
    pub fn from_cfs<'a, I: IntoIterator<Item = &'a Cf>>(cfs: I) -> Self {
        let mut b = Self::new();
        for cf in cfs {
            b.push(cf);
        }
        b
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n.len()
    }

    /// Whether the block holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
    }

    /// Row width (0 while the block has never held a row).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn fix_dim(&mut self, dim: usize) {
        if self.dim == 0 {
            self.dim = dim;
        }
        assert_eq!(
            dim, self.dim,
            "dimension mismatch: CF {dim} vs block {}",
            self.dim
        );
    }

    /// Appends a row mirroring `cf`.
    ///
    /// # Panics
    ///
    /// Panics if `cf`'s dimension disagrees with earlier rows.
    pub fn push(&mut self, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n.push(cf.n());
        self.ss.push(cf.ss());
        self.ls_sq.push(cf.ls_sq());
        self.ls.extend_from_slice(cf.ls());
    }

    /// Overwrites row `i` with `cf`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range `i` or dimension mismatch.
    pub fn set(&mut self, i: usize, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n[i] = cf.n();
        self.ss[i] = cf.ss();
        self.ls_sq[i] = cf.ls_sq();
        self.ls[i * self.dim..(i + 1) * self.dim].copy_from_slice(cf.ls());
    }

    /// Inserts a row mirroring `cf` at position `i`, shifting later rows.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()` or on dimension mismatch.
    pub fn insert(&mut self, i: usize, cf: &Cf) {
        self.fix_dim(cf.dim());
        self.n.insert(i, cf.n());
        self.ss.insert(i, cf.ss());
        self.ls_sq.insert(i, cf.ls_sq());
        self.ls
            .splice(i * self.dim..i * self.dim, cf.ls().iter().copied());
    }

    /// Removes row `i`, shifting later rows down.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        self.n.remove(i);
        self.ss.remove(i);
        self.ls_sq.remove(i);
        self.ls.drain(i * self.dim..(i + 1) * self.dim);
    }

    /// Removes every row (the dimensionality stays fixed).
    pub fn clear(&mut self) {
        self.n.clear();
        self.ss.clear();
        self.ls_sq.clear();
        self.ls.clear();
    }

    /// Row `i`'s weighted point count `N`.
    #[must_use]
    pub fn row_n(&self, i: usize) -> f64 {
        self.n[i]
    }

    /// Row `i`'s scalar square sum `SS`.
    #[must_use]
    pub fn row_ss(&self, i: usize) -> f64 {
        self.ss[i]
    }

    /// Row `i`'s memoized `‖LS‖²`.
    #[must_use]
    pub fn row_ls_sq(&self, i: usize) -> f64 {
        self.ls_sq[i]
    }

    /// Row `i`'s `LS` slice inside the slab.
    #[must_use]
    pub fn row_ls(&self, i: usize) -> &[f64] {
        &self.ls[i * self.dim..(i + 1) * self.dim]
    }
}

/// Distance from `a` to block row `i` — bit-identical to
/// `metric.distance(a, &row_i_cf)`.
///
/// # Panics
///
/// Panics if `a` is empty, `i` is out of range, or dimensions disagree.
#[must_use]
pub fn distance_to_row(metric: DistanceMetric, a: &Cf, block: &CfBlock, i: usize) -> f64 {
    assert!(!a.is_empty(), "distance from an empty cluster is undefined");
    assert_eq!(
        a.dim(),
        block.dim(),
        "dimension mismatch: {} vs {}",
        a.dim(),
        block.dim()
    );
    row_distance(
        metric,
        (a.n(), a.ss(), a.ls_sq(), a.ls()),
        (
            block.row_n(i),
            block.row_ss(i),
            block.row_ls_sq(i),
            block.row_ls(i),
        ),
    )
}

/// Distance between block rows `i` and `j` — bit-identical to
/// `metric.distance(&row_i_cf, &row_j_cf)`.
///
/// # Panics
///
/// Panics if either index is out of range.
#[must_use]
pub fn pair_in_block(metric: DistanceMetric, block: &CfBlock, i: usize, j: usize) -> f64 {
    row_distance(
        metric,
        (
            block.row_n(i),
            block.row_ss(i),
            block.row_ls_sq(i),
            block.row_ls(i),
        ),
        (
            block.row_n(j),
            block.row_ss(j),
            block.row_ls_sq(j),
            block.row_ls(j),
        ),
    )
}

/// The shared row kernel: each arm repeats the scalar `d0..d4` arithmetic
/// verbatim (same operand order, sequential per-element accumulation) over
/// `(n, ss, ‖LS‖², ls)` views instead of `&Cf`s.
fn row_distance(
    metric: DistanceMetric,
    (na, ssa, lsq_a, lsa): (f64, f64, f64, &[f64]),
    (nb, ssb, lsq_b, lsb): (f64, f64, f64, &[f64]),
) -> f64 {
    match metric {
        DistanceMetric::D0 => lsa
            .iter()
            .zip(lsb)
            .map(|(&x, &y)| {
                let d = x / na - y / nb;
                d * d
            })
            .sum::<f64>()
            .sqrt(),
        DistanceMetric::D1 => lsa
            .iter()
            .zip(lsb)
            .map(|(&x, &y)| (x / na - y / nb).abs())
            .sum(),
        DistanceMetric::D2 => {
            let num = nb * ssa + na * ssb - 2.0 * dot(lsa, lsb);
            (num.max(0.0) / (na * nb)).sqrt()
        }
        DistanceMetric::D3 => {
            let n = na + nb;
            if n <= 1.0 {
                return 0.0;
            }
            let ss = ssa + ssb;
            let merged = lsq_a + 2.0 * dot(lsa, lsb) + lsq_b;
            let num = 2.0 * n * ss - 2.0 * merged;
            (num.max(0.0) / (n * (n - 1.0))).sqrt()
        }
        DistanceMetric::D4 => {
            let n = na + nb;
            let merged = lsq_a + 2.0 * dot(lsa, lsb) + lsq_b;
            let inc = lsq_a / na + lsq_b / nb - merged / n;
            inc.max(0.0).sqrt()
        }
    }
}

/// First-minimum closest row to `ent`: the batched form of the descent
/// scan (`best` starts at `+∞`, strictly-smaller wins, so the earliest of
/// tied rows is kept — the same tie-break as `CfTree::descend` and
/// `CfTree::closest_leaf_entry`). Returns `None` on an empty block.
#[must_use]
pub fn closest_among(metric: DistanceMetric, ent: &Cf, block: &CfBlock) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    for i in 0..block.len() {
        let d = distance_to_row(metric, ent, block, i);
        if d < best_d {
            best_d = d;
            best = Some((i, d));
        }
    }
    best
}

/// [`closest_among`] with the D0 triangle-inequality lower-bound prune.
///
/// For D0 (centroid Euclidean distance) the reverse triangle inequality
/// gives `D0(a, b) ≥ |‖c_a‖ − ‖c_b‖|`, and each centroid norm is
/// `sqrt(‖LS‖²)/N` — O(1) from the cached norms. A row whose lower bound
/// strictly exceeds the best distance so far cannot win the strict `<`
/// comparison, so skipping it provably never changes the selected index
/// (tie order included). Non-D0 metrics fall back to the plain scan.
///
/// Returns `(best, evaluated, pruned)`: the winning `(index, distance)`,
/// how many full distance evaluations ran, and how many rows the bound
/// skipped.
#[must_use]
pub fn closest_among_pruned(
    metric: DistanceMetric,
    ent: &Cf,
    block: &CfBlock,
) -> (Option<(usize, f64)>, u64, u64) {
    if metric != DistanceMetric::D0 {
        let best = closest_among(metric, ent, block);
        return (best, block.len() as u64, 0);
    }
    let ent_norm = ent.ls_sq().sqrt() / ent.n();
    let mut best: Option<(usize, f64)> = None;
    let mut best_d = f64::INFINITY;
    let mut evaluated = 0u64;
    let mut pruned = 0u64;
    for i in 0..block.len() {
        let row_norm = block.row_ls_sq(i).sqrt() / block.row_n(i);
        if (ent_norm - row_norm).abs() > best_d {
            pruned += 1;
            continue;
        }
        evaluated += 1;
        let d = distance_to_row(metric, ent, block, i);
        if d < best_d {
            best_d = d;
            best = Some((i, d));
        }
    }
    (best, evaluated, pruned)
}

/// First-minimum closest pair among the block's rows (`i < j`, earliest
/// pair wins ties) — the batched form of the §4.3 merging-refinement scan.
/// Returns `None` when the block has fewer than two rows.
#[must_use]
pub fn closest_pair(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..block.len() {
        for j in (i + 1)..block.len() {
            let d = pair_in_block(metric, block, i, j);
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((i, j, d));
            }
        }
    }
    best
}

/// First-maximum farthest pair among the block's rows (`i < j`, earliest
/// pair wins ties) — the batched form of the split seeding scan (§4.2:
/// "the farthest pair of entries"). Returns `None` when the block has
/// fewer than two rows.
#[must_use]
pub fn farthest_pair(metric: DistanceMetric, block: &CfBlock) -> Option<(usize, usize, f64)> {
    if block.len() < 2 {
        return None;
    }
    let (mut far, mut far_d) = ((0, 1), f64::NEG_INFINITY);
    for i in 0..block.len() {
        for j in (i + 1)..block.len() {
            let d = pair_in_block(metric, block, i, j);
            if d > far_d {
                far = (i, j);
                far_d = d;
            }
        }
    }
    Some((far.0, far.1, far_d))
}

/// What cluster statistic the CF-tree threshold `T` constrains (§4.2: the
/// diameter *or radius* of each leaf entry has to be less than `T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThresholdKind {
    /// Constrain the leaf entry's diameter `D < T` (the paper's default
    /// quality measure, Table 2).
    #[default]
    Diameter,
    /// Constrain the leaf entry's radius `R < T`.
    Radius,
}

impl ThresholdKind {
    /// The constrained statistic of a CF.
    #[must_use]
    pub fn statistic(self, cf: &Cf) -> f64 {
        match self {
            ThresholdKind::Diameter => cf.diameter(),
            ThresholdKind::Radius => cf.radius(),
        }
    }

    /// Whether `cf` satisfies the threshold condition wrt `t`.
    #[must_use]
    pub fn satisfies(self, cf: &Cf, t: f64) -> bool {
        self.statistic(cf) <= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn cf_of(raw: &[[f64; 2]]) -> Cf {
        let pts: Vec<Point> = raw.iter().map(|&[x, y]| Point::xy(x, y)).collect();
        Cf::from_points(&pts)
    }

    /// Brute-force D2 straight from the definition for cross-checking.
    fn d2_brute(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
        let mut s = 0.0;
        for p in a {
            for q in b {
                s += (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2);
            }
        }
        (s / (a.len() * b.len()) as f64).sqrt()
    }

    #[test]
    fn d0_between_singletons_is_euclidean() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D0.distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn d1_between_singletons_is_manhattan() {
        let a = cf_of(&[[0.0, 0.0]]);
        let b = cf_of(&[[3.0, 4.0]]);
        assert!((DistanceMetric::D1.distance(&a, &b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn d2_matches_brute_force() {
        let a = [[0.0, 0.0], [1.0, 1.0], [2.0, -1.0]];
        let b = [[5.0, 5.0], [6.0, 4.0]];
        let got = DistanceMetric::D2.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - d2_brute(&a, &b)).abs() < 1e-10);
    }

    #[test]
    fn d2_of_singletons_equals_d0() {
        let a = cf_of(&[[1.0, 2.0]]);
        let b = cf_of(&[[4.0, 6.0]]);
        let d0 = DistanceMetric::D0.distance(&a, &b);
        let d2 = DistanceMetric::D2.distance(&a, &b);
        assert!((d0 - d2).abs() < 1e-12);
    }

    #[test]
    fn d3_is_merged_diameter() {
        let a = [[0.0, 0.0], [1.0, 0.0]];
        let b = [[10.0, 0.0]];
        let merged = cf_of(&[[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]);
        let got = DistanceMetric::D3.distance(&cf_of(&a), &cf_of(&b));
        assert!((got - merged.diameter()).abs() < 1e-12);
    }

    #[test]
    fn d4_matches_deviation_increase() {
        let a = [[0.0, 0.0], [2.0, 0.0]];
        let b = [[10.0, 0.0], [12.0, 0.0]];
        let (cfa, cfb) = (cf_of(&a), cf_of(&b));
        let merged = cfa.merged(&cfb);
        let expected = (merged.sq_deviation() - cfa.sq_deviation() - cfb.sq_deviation())
            .max(0.0)
            .sqrt();
        let got = DistanceMetric::D4.distance(&cfa, &cfb);
        assert!((got - expected).abs() < 1e-10, "got {got}, want {expected}");
    }

    #[test]
    fn all_metrics_symmetric_and_nonnegative() {
        let a = cf_of(&[[0.0, 1.0], [2.0, 3.0], [1.0, -2.0]]);
        let b = cf_of(&[[7.0, 7.0], [8.0, 6.0]]);
        for m in DistanceMetric::ALL {
            let ab = m.distance(&a, &b);
            let ba = m.distance(&b, &a);
            assert!(ab >= 0.0, "{m} negative");
            assert!((ab - ba).abs() < 1e-12, "{m} asymmetric");
        }
    }

    #[test]
    fn coincident_singletons_have_zero_distance() {
        let a = cf_of(&[[5.0, 5.0]]);
        let b = cf_of(&[[5.0, 5.0]]);
        for m in DistanceMetric::ALL {
            assert!(m.distance(&a, &b).abs() < 1e-12, "{m} nonzero");
        }
    }

    #[test]
    fn metric_ordering_on_separated_blobs() {
        // Far-apart blobs: every metric should report a "large" distance
        // comparable to the centroid separation (within a small factor).
        let a = cf_of(&[[0.0, 0.0], [0.1, 0.1]]);
        let b = cf_of(&[[100.0, 0.0], [100.1, 0.1]]);
        for m in DistanceMetric::ALL {
            let d = m.distance(&a, &b);
            assert!(d > 50.0, "{m} too small: {d}");
        }
    }

    #[test]
    #[should_panic(expected = "empty clusters")]
    fn empty_cf_distance_panics() {
        let a = Cf::empty(2);
        let b = cf_of(&[[1.0, 1.0]]);
        let _ = DistanceMetric::D0.distance(&a, &b);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in DistanceMetric::ALL {
            let parsed: DistanceMetric = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("D9".parse::<DistanceMetric>().is_err());
        assert_eq!("d3".parse::<DistanceMetric>().unwrap(), DistanceMetric::D3);
    }

    #[test]
    fn threshold_kind_statistics() {
        let cf = cf_of(&[[0.0, 0.0], [6.0, 0.0]]);
        assert!((ThresholdKind::Diameter.statistic(&cf) - 6.0).abs() < 1e-12);
        assert!((ThresholdKind::Radius.statistic(&cf) - 3.0).abs() < 1e-12);
        assert!(ThresholdKind::Diameter.satisfies(&cf, 6.0));
        assert!(!ThresholdKind::Diameter.satisfies(&cf, 5.9));
        assert!(ThresholdKind::Radius.satisfies(&cf, 3.5));
    }

    #[test]
    fn default_metric_is_d2_and_default_threshold_is_diameter() {
        assert_eq!(DistanceMetric::default(), DistanceMetric::D2);
        assert_eq!(ThresholdKind::default(), ThresholdKind::Diameter);
    }

    /// A varied set of multi-point CFs for kernel-vs-scalar comparisons.
    fn kernel_fixture() -> Vec<Cf> {
        vec![
            cf_of(&[[0.0, 0.0], [1.0, 1.0]]),
            cf_of(&[[5.0, -3.0]]),
            cf_of(&[[2.5, 2.5], [2.5, 2.5], [3.0, 2.0]]),
            cf_of(&[[-7.0, 4.0], [-6.5, 4.5]]),
            cf_of(&[[100.0, 100.0]]),
            cf_of(&[[0.1, 0.2], [0.3, 0.4], [0.5, 0.6], [0.7, 0.8]]),
        ]
    }

    #[test]
    fn block_rows_mirror_cfs() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        assert_eq!(b.len(), cfs.len());
        assert_eq!(b.dim(), 2);
        for (i, cf) in cfs.iter().enumerate() {
            assert_eq!(b.row_n(i), cf.n());
            assert_eq!(b.row_ss(i), cf.ss());
            assert_eq!(b.row_ls_sq(i).to_bits(), cf.ls_sq().to_bits());
            assert_eq!(b.row_ls(i), cf.ls());
        }
    }

    #[test]
    fn block_mutators_keep_rows_in_sync() {
        let cfs = kernel_fixture();
        let mut b = CfBlock::from_cfs(&cfs[..3]);
        b.set(1, &cfs[3]);
        assert_eq!(b.row_ls(1), cfs[3].ls());
        b.insert(0, &cfs[4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.row_ls(0), cfs[4].ls());
        assert_eq!(b.row_ls(1), cfs[0].ls());
        b.remove(2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row_ls(2), cfs[2].ls());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2, "dim survives clear");
    }

    #[test]
    fn row_kernels_are_bit_identical_to_scalar() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        let probe = cf_of(&[[1.0, -1.0], [2.0, 0.5]]);
        for m in DistanceMetric::ALL {
            for i in 0..cfs.len() {
                let scalar = m.distance(&probe, &cfs[i]);
                let kernel = distance_to_row(m, &probe, &b, i);
                assert_eq!(scalar.to_bits(), kernel.to_bits(), "{m} row {i}");
                for j in (i + 1)..cfs.len() {
                    let scalar = m.distance(&cfs[i], &cfs[j]);
                    let kernel = pair_in_block(m, &b, i, j);
                    assert_eq!(scalar.to_bits(), kernel.to_bits(), "{m} pair {i},{j}");
                }
            }
        }
    }

    #[test]
    fn closest_among_matches_first_min_reference() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        let probe = cf_of(&[[2.0, 2.0]]);
        for m in DistanceMetric::ALL {
            let mut best: Option<(usize, f64)> = None;
            for (i, cf) in cfs.iter().enumerate() {
                let d = m.distance(&probe, cf);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            let got = closest_among(m, &probe, &b);
            assert_eq!(got.map(|(i, _)| i), best.map(|(i, _)| i), "{m}");
            assert_eq!(
                got.map(|(_, d)| d.to_bits()),
                best.map(|(_, d)| d.to_bits()),
                "{m}"
            );
        }
    }

    #[test]
    fn closest_among_keeps_earliest_of_tied_rows() {
        // Two identical rows: the scan must return the first.
        let twin = cf_of(&[[3.0, 3.0]]);
        let b = CfBlock::from_cfs([&cf_of(&[[9.0, 9.0]]), &twin, &twin.clone()]);
        let probe = cf_of(&[[3.0, 2.0]]);
        for m in DistanceMetric::ALL {
            let (i, _) = closest_among(m, &probe, &b).unwrap();
            assert_eq!(i, 1, "{m} broke tie order");
        }
    }

    #[test]
    fn pruned_scan_picks_identical_winner_and_counts() {
        // Rows with widely spread centroid norms so the D0 bound prunes.
        let rows: Vec<Cf> = (0..40)
            .map(|i| {
                let x = f64::from(i) * 25.0;
                cf_of(&[[x, x * 0.5]])
            })
            .collect();
        let b = CfBlock::from_cfs(&rows);
        let probe = cf_of(&[[26.0, 12.0]]);
        let plain = closest_among(DistanceMetric::D0, &probe, &b);
        let (pruned_best, evaluated, pruned) = closest_among_pruned(DistanceMetric::D0, &probe, &b);
        assert_eq!(plain.map(|(i, _)| i), pruned_best.map(|(i, _)| i));
        assert_eq!(
            plain.map(|(_, d)| d.to_bits()),
            pruned_best.map(|(_, d)| d.to_bits())
        );
        assert!(pruned > 0, "spread norms must prune something");
        assert_eq!(evaluated + pruned, rows.len() as u64);
        // Non-D0 metrics fall back to the plain scan, nothing pruned.
        let (_, ev2, pr2) = closest_among_pruned(DistanceMetric::D2, &probe, &b);
        assert_eq!((ev2, pr2), (rows.len() as u64, 0));
    }

    #[test]
    fn pair_scans_match_scalar_reference() {
        let cfs = kernel_fixture();
        let b = CfBlock::from_cfs(&cfs);
        for m in DistanceMetric::ALL {
            // Scalar closest-pair reference (first minimum).
            let mut best: Option<(usize, usize, f64)> = None;
            let (mut far, mut far_d) = ((0, 1), f64::NEG_INFINITY);
            for i in 0..cfs.len() {
                for j in (i + 1)..cfs.len() {
                    let d = m.distance(&cfs[i], &cfs[j]);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                    if d > far_d {
                        far = (i, j);
                        far_d = d;
                    }
                }
            }
            let got = closest_pair(m, &b).unwrap();
            let want = best.unwrap();
            assert_eq!((got.0, got.1), (want.0, want.1), "{m} closest pair");
            assert_eq!(got.2.to_bits(), want.2.to_bits(), "{m}");
            let gf = farthest_pair(m, &b).unwrap();
            assert_eq!((gf.0, gf.1), far, "{m} farthest pair");
            assert_eq!(gf.2.to_bits(), far_d.to_bits(), "{m}");
        }
        assert!(farthest_pair(DistanceMetric::D0, &CfBlock::new()).is_none());
        assert!(closest_pair(DistanceMetric::D0, &CfBlock::new()).is_none());
    }
}
