//! Minimal double-double ("quad") arithmetic for ground-truth
//! recomputation.
//!
//! A [`Dd`] value represents a real number as an unevaluated sum
//! `hi + lo` of two `f64`s with `|lo| ≤ ulp(hi)/2`, giving ~106 bits of
//! significand (~32 decimal digits). The auditor's cancellation-drift
//! measurable and the `cf_stability` bench use it as the reference
//! evaluation: statistics recomputed in `Dd` are exact far below any f64
//! round-off the CF backends can introduce, so `|f64 − Dd|` isolates the
//! backend's own error.
//!
//! Only the handful of operations those consumers need are implemented
//! (error-free sum/product plus `Dd` add/sub/mul/div-by-f64), using the
//! classical Knuth TwoSum and Dekker split-multiplication algorithms —
//! branch-free and FMA-free, so results are identical on every target.

/// Knuth's TwoSum: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly. Branch-free; no magnitude precondition.
#[must_use]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Fast TwoSum (Dekker): like [`two_sum`] but requires `|a| ≥ |b|` (or an
/// exact sum). One subtraction cheaper; used to renormalize a `Dd` pair.
#[must_use]
pub fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Dekker/Veltkamp split constant: `2^27 + 1`.
const SPLIT: f64 = 134_217_729.0;

/// Dekker's TwoProduct: returns `(p, e)` with `p = fl(a · b)` and
/// `a · b = p + e` exactly (for non-overflowing inputs).
#[must_use]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let ca = SPLIT * a;
    let ah = ca - (ca - a);
    let al = a - ah;
    let cb = SPLIT * b;
    let bh = cb - (cb - b);
    let bl = b - bh;
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// A double-double value: the unevaluated, renormalized sum `hi + lo`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dd {
    /// Leading component (the correctly rounded f64 approximation).
    pub hi: f64,
    /// Trailing error term, `|lo| ≤ ulp(hi)/2`.
    pub lo: f64,
}

impl Dd {
    /// The additive identity.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };

    /// Promotes an `f64` exactly.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Rounds back to the nearest `f64`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Adds an `f64` term.
    #[must_use]
    pub fn add_f64(self, x: f64) -> Dd {
        self + Dd::from_f64(x)
    }

    /// Multiplies by an `f64` factor.
    #[must_use]
    pub fn mul_f64(self, x: f64) -> Dd {
        self * Dd::from_f64(x)
    }

    /// Divides by an `f64` divisor (one Newton correction step).
    #[must_use]
    pub fn div_f64(self, x: f64) -> Dd {
        let q = self.hi / x;
        let (p, pe) = two_prod(q, x);
        let r = (((self.hi - p) - pe) + self.lo) / x;
        let (hi, lo) = quick_two_sum(q, r);
        Dd { hi, lo }
    }
}

/// Double-double addition (Knuth accumulation, renormalized).
impl std::ops::Add for Dd {
    type Output = Dd;

    fn add(self, o: Dd) -> Dd {
        let (s, e) = two_sum(self.hi, o.hi);
        let e = e + self.lo + o.lo;
        let (hi, lo) = quick_two_sum(s, e);
        Dd { hi, lo }
    }
}

/// Double-double subtraction.
impl std::ops::Sub for Dd {
    type Output = Dd;

    fn sub(self, o: Dd) -> Dd {
        self + Dd {
            hi: -o.hi,
            lo: -o.lo,
        }
    }
}

/// Double-double multiplication (Dekker product plus cross terms).
impl std::ops::Mul for Dd {
    type Output = Dd;

    fn mul(self, o: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, o.hi);
        let e = e + self.hi * o.lo + self.lo * o.hi;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }
}

/// Sums squared Euclidean deviations `Σᵢ ‖xᵢ − μ‖²` of coordinate rows
/// from a double-double mean, entirely in `Dd`. `points` yields coordinate
/// slices; `mean` has one `Dd` per dimension.
///
/// # Panics
///
/// Panics if a row's length differs from `mean.len()`.
#[must_use]
pub fn dd_sq_deviation<'a, I: IntoIterator<Item = &'a [f64]>>(points: I, mean: &[Dd]) -> Dd {
    let mut acc = Dd::ZERO;
    for row in points {
        assert_eq!(row.len(), mean.len(), "dimension mismatch");
        for (x, m) in row.iter().zip(mean) {
            let d = Dd::from_f64(*x) - *m;
            acc = acc + d * d;
        }
    }
    acc
}

/// The double-double mean of coordinate rows (dimension `dim`).
///
/// # Panics
///
/// Panics if `points` is empty or a row's length differs from `dim`.
#[must_use]
pub fn dd_mean<'a, I: IntoIterator<Item = &'a [f64]>>(points: I, dim: usize) -> Vec<Dd> {
    let mut sums = vec![Dd::ZERO; dim];
    let mut n = 0u64;
    for row in points {
        assert_eq!(row.len(), dim, "dimension mismatch");
        for (s, x) in sums.iter_mut().zip(row) {
            *s = s.add_f64(*x);
        }
        n += 1;
    }
    assert!(n > 0, "dd_mean needs at least one point");
    #[allow(clippy::cast_precision_loss)]
    let nf = n as f64;
    sums.iter().map(|s| s.div_f64(nf)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_error_free() {
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16); // 1.0 is below ulp(1e16)/2 = 1
        assert_eq!(e, 1.0); // ...but the error term recovers it exactly
    }

    #[test]
    fn two_prod_recovers_rounding_error() {
        let a = 1.0 + f64::EPSILON;
        let (p, e) = two_prod(a, a);
        // (1+ε)² = 1 + 2ε + ε²; the ε² term falls out of fl(a·a).
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(e, f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn dd_add_tracks_tiny_terms() {
        let mut acc = Dd::from_f64(1e16);
        for _ in 0..1000 {
            acc = acc.add_f64(0.25);
        }
        // Plain f64 would have dropped every one of the 0.25s.
        assert_eq!((acc - Dd::from_f64(1e16)).to_f64(), 250.0);
    }

    #[test]
    fn dd_div_round_trips() {
        let x = Dd::from_f64(1.0).div_f64(3.0);
        let back = x.mul_f64(3.0);
        assert!((back.to_f64() - 1.0).abs() < 1e-30);
    }

    #[test]
    fn dd_statistics_survive_large_offset() {
        // Four points at offset 1e8 with spread 1e-3: classic f64
        // evaluation of SS − ‖LS‖²/N loses every significant digit here;
        // the Dd path must keep the exact deviation.
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|i| vec![1e8 + f64::from(i) * 1e-3, 1e8 - f64::from(i) * 1e-3])
            .collect();
        let slices: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let mean = dd_mean(slices.iter().copied(), 2);
        let sq = dd_sq_deviation(slices.iter().copied(), &mean);
        // Deviations per dim: ±(1.5, 0.5, 0.5, 1.5)·1e-3. The *inputs*
        // themselves round at ulp(1e8) ≈ 1.5e-8 (a ~1e-5 relative shift of
        // each deviation), so compare against the ideal at 1e-4 relative —
        // still ten+ orders tighter than what the classic f64 evaluation
        // achieves here (total collapse).
        let ideal = 2.0 * (2.0 * 1.5e-3 * 1.5e-3 + 2.0 * 0.5e-3 * 0.5e-3);
        assert!(
            (sq.to_f64() - ideal).abs() < 1e-4 * ideal,
            "dd sq_deviation {} vs ideal {ideal}",
            sq.to_f64()
        );
    }
}
