//! Full-tree invariant auditor: the machine-checked statement of what a
//! valid CF-tree *is*.
//!
//! The paper's correctness rests on structural invariants that the code
//! maintains incrementally across three mutation paths (serial insert,
//! rebuild, shard merge); this module re-derives every one of them from
//! scratch and compares. The checked invariants (numbered list with paper
//! citations and tolerances in DESIGN.md §7):
//!
//! 1. **Additivity** (§4.1): every interior `[CF, child]` entry equals the
//!    CF recomputed bottom-up from the child's subtree, and the tracked
//!    total CF equals the root's recomputed summary.
//! 2. **Branching bounds** (§4.2): interior nodes hold ≤ `B` children,
//!    leaves ≤ `L` entries, and (optionally) the live page count respects
//!    the budget `M/P`.
//! 3. **Leaf chain** (§4.2): the `prev`/`next` chain is a complete,
//!    acyclic, two-way-consistent traversal of exactly the leaves
//!    reachable from the root.
//! 4. **Threshold** (§4.2, §5.1): every leaf entry's diameter/radius
//!    satisfies the current threshold `T` — widened to the largest atomic
//!    multi-point input CF the tree has accepted as a standalone entry
//!    (weighted/CF input cannot be split, so such an entry may
//!    legitimately exceed `T`; see `CfTree::note_atomic_input`).
//! 5. **Bookkeeping**: uniform leaf depth equal to the recorded height,
//!    cached `leaf_entry_count` correct, arena ids consistent, free-list
//!    slots unreachable, and (optionally) end-to-end N conservation
//!    against the points actually fed.
//! 6. **Cached statistics**: every CF's memoized `‖LS‖²` matches a
//!    from-scratch `LS·LS` within tolerance (drift is additionally
//!    reported as the measurable [`AuditReport::norm_cache_drift`] —
//!    exactly `0` under the current refresh-by-recomputation policy), and
//!    every node's flat SoA mirror ([`crate::distance::CfBlock`]) matches
//!    its entries bit for bit.
//! 7. **Kernel agreement** (lane builds only): every node's row distances
//!    replayed through the production SIMD kernel ([`crate::simd`]) agree
//!    with the bit-exact scalar oracle within the tolerance contract
//!    [`crate::distance::SIMD_TOLERANCE_REL`] (worst case reported as
//!    [`AuditReport::simd_kernel_drift`]).
//! 8. **Prune-bound soundness**: the Phase 3 candidate lower bound
//!    ([`crate::distance::pair_lower_bound`]) never exceeds the true pair
//!    distance, replayed for every same-node CF pair under every D0–D4
//!    metric (tightest margin reported as
//!    [`AuditReport::prune_bound_margin`]).
//!
//! Floating-point drift between the incrementally maintained CFs and the
//! recomputed-from-scratch ones is reported as a *measurable*
//! ([`AuditReport::interior_drift`] / [`AuditReport::root_drift`]), not
//! just a pass/fail — BETULA (Lang & Schubert) shows naive `(N, LS, SS)`
//! arithmetic drifts, so we measure it instead of assuming it away. Drift
//! beyond the configured tolerance *is* a violation. The auditor also
//! recomputes the tree's total squared deviation in ~106-bit double-double
//! arithmetic ([`crate::quad`]) and reports the disagreement with the
//! active backend's f64 value as [`AuditReport::cancellation_drift`] —
//! the catastrophic-cancellation measurable (report-only; see the field
//! docs).
//!
//! The auditor runs in O(size of tree). It is wired into the test suites
//! and, behind the `strict-audit` cargo feature, after every mutating
//! tree operation (debug soak runs; see `CfTree::strict_audit`).

use crate::cf::Cf;
use crate::node::{Node, NodeId, NodeKind};
use crate::quad::Dd;
use crate::tree::CfTree;
use std::collections::HashSet;
use std::fmt;

/// Tolerances and optional cross-checks for one audit pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditOptions {
    /// Relative tolerance for CF component comparisons (stored vs
    /// recomputed): components `x`, `y` match when
    /// `|x − y| ≤ rel_tol · (1 + max(|x|, |y|))`.
    pub rel_tol: f64,
    /// Relative slack on the threshold test: a leaf entry passes when its
    /// statistic is `≤ T · (1 + threshold_rel_tol) + threshold_abs_tol`
    /// (the same slack the incremental insert uses, so an entry accepted
    /// by [`crate::distance::ThresholdKind::satisfies`] never fails the
    /// audit on round-off alone).
    pub threshold_rel_tol: f64,
    /// Absolute slack on the threshold test (covers `T = 0`).
    pub threshold_abs_tol: f64,
    /// When set, the live node (= page) count must not exceed this budget.
    pub max_pages: Option<usize>,
    /// When set, the tree's total CF weight must equal this value within
    /// `rel_tol` — end-to-end N conservation (points fed minus points
    /// resident elsewhere, e.g. the outlier store).
    pub expected_n: Option<f64>,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-6,
            threshold_rel_tol: 1e-9,
            threshold_abs_tol: 1e-12,
            max_pages: None,
            expected_n: None,
        }
    }
}

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// An interior `[CF, child]` entry disagrees with the child subtree's
    /// recomputed CF beyond tolerance (Additivity, §4.1).
    ParentCfMismatch,
    /// The tracked total CF disagrees with the root's recomputed summary
    /// beyond tolerance.
    RootCfMismatch,
    /// The tracked total N disagrees with the caller-supplied expected
    /// value (end-to-end conservation).
    NConservation,
    /// A node holds more entries than `B` (interior) or `L` (leaf).
    NodeOverflow,
    /// An interior node holds no children.
    EmptyInterior,
    /// A leaf stores an empty CF entry.
    EmptyEntry,
    /// The live page count exceeds the supplied budget.
    PageBudgetExceeded,
    /// The leaf chain revisits a node (cycle).
    ChainCycle,
    /// A `prev`/`next` pointer is inconsistent, or the chain contains a
    /// non-leaf or starts off the head.
    ChainBroken,
    /// The chain does not visit exactly the leaves reachable from the
    /// root.
    ChainIncomplete,
    /// A leaf entry's diameter/radius exceeds the threshold `T`.
    ThresholdViolation,
    /// A leaf sits at a depth other than the recorded height.
    DepthMismatch,
    /// A node is reachable from the root along two paths.
    NodeRevisited,
    /// A free-list slot is reachable from the root.
    FreeNodeReachable,
    /// The cached `leaf_entry_count` disagrees with the actual count.
    CountMismatch,
    /// A node's stamped arena id disagrees with its slot.
    IdMismatch,
    /// A CF's memoized `‖LS‖²` disagrees with a from-scratch `LS·LS`
    /// beyond tolerance.
    NormCacheMismatch,
    /// A node's flat SoA mirror disagrees with its entries.
    BlockDesync,
    /// The lane (SIMD) distance kernel disagrees with the scalar oracle
    /// beyond [`crate::distance::SIMD_TOLERANCE_REL`] on a node's rows.
    SimdKernelMismatch,
    /// [`crate::distance::pair_lower_bound`] exceeded the true pair
    /// distance — the Phase 3 candidate prune could discard a winner.
    PruneBoundUnsound,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ViolationKind::ParentCfMismatch => "parent CF mismatch",
            ViolationKind::RootCfMismatch => "root CF mismatch",
            ViolationKind::NConservation => "N conservation failure",
            ViolationKind::NodeOverflow => "node overflow",
            ViolationKind::EmptyInterior => "empty interior node",
            ViolationKind::EmptyEntry => "empty leaf entry",
            ViolationKind::PageBudgetExceeded => "page budget exceeded",
            ViolationKind::ChainCycle => "leaf chain cycle",
            ViolationKind::ChainBroken => "leaf chain broken",
            ViolationKind::ChainIncomplete => "leaf chain incomplete",
            ViolationKind::ThresholdViolation => "threshold violation",
            ViolationKind::DepthMismatch => "leaf depth mismatch",
            ViolationKind::NodeRevisited => "node reachable twice",
            ViolationKind::FreeNodeReachable => "free node reachable",
            ViolationKind::CountMismatch => "leaf entry count mismatch",
            ViolationKind::IdMismatch => "arena id mismatch",
            ViolationKind::NormCacheMismatch => "norm cache mismatch",
            ViolationKind::BlockDesync => "block mirror desync",
            ViolationKind::SimdKernelMismatch => "simd kernel mismatch",
            ViolationKind::PruneBoundUnsound => "prune bound unsound",
        };
        f.write_str(name)
    }
}

/// One invariant violation: which invariant, where, and the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// The broken invariant.
    pub kind: ViolationKind,
    /// The offending node, when the violation is local to one.
    pub node: Option<NodeId>,
    /// Human-readable evidence (values, bounds, indices).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(id) => write!(f, "{} at {:?}: {}", self.kind, id, self.detail),
            None => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Maximum relative floating-point drift observed between incrementally
/// maintained CFs and CFs recomputed from scratch, per component.
///
/// Relative drift of components `x` (stored) and `y` (recomputed) is
/// `|x − y| / (1 + max(|x|, |y|))`; for the vector statistic the worst
/// coordinate counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Drift {
    /// Drift in the point count `N`.
    pub n: f64,
    /// Worst-coordinate drift in the vector statistic (`LS` classic,
    /// μ stable).
    pub vec: f64,
    /// Drift in the scalar statistic (`SS` classic, `SSE` stable).
    pub scalar: f64,
}

impl Drift {
    fn component(x: f64, y: f64) -> f64 {
        (x - y).abs() / (1.0 + x.abs().max(y.abs()))
    }

    /// Folds the drift between `stored` and `recomputed` into `self`.
    fn observe(&mut self, stored: &Cf, recomputed: &Cf) {
        self.n = self.n.max(Self::component(stored.n(), recomputed.n()));
        self.scalar = self.scalar.max(Self::component(
            stored.scalar_stat(),
            recomputed.scalar_stat(),
        ));
        for (&x, &y) in stored.vec_stat().iter().zip(recomputed.vec_stat()) {
            self.vec = self.vec.max(Self::component(x, y));
        }
    }

    /// The worst drift across all components.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.n.max(self.vec).max(self.scalar)
    }
}

/// Everything a successful audit measured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Live nodes reachable from the root (= pages in use).
    pub nodes: usize,
    /// Leaf nodes among them.
    pub leaves: usize,
    /// CF entries across all leaves.
    pub leaf_entries: usize,
    /// Tree height (1 = the root is a leaf).
    pub height: usize,
    /// Worst drift between any interior `[CF, child]` entry and the
    /// child subtree's recomputed CF — the accumulated incremental
    /// round-off of the insert/split/merge arithmetic.
    pub interior_drift: Drift,
    /// Drift between the tracked total CF and the root's recomputed
    /// summary (end-to-end accumulation over the whole run).
    pub root_drift: Drift,
    /// Worst relative drift between any CF's memoized `‖LS‖²` and a
    /// from-scratch `LS·LS` dot product. The cache is refreshed by exact
    /// recomputation after every `LS` mutation, so this is `0` unless the
    /// refresh policy regresses — the measurable exists to catch exactly
    /// that.
    pub norm_cache_drift: f64,
    /// Relative disagreement between the tree's total squared deviation
    /// as the active CF backend computes it in `f64` and the same
    /// statistic recomputed from the leaf-entry statistics in ~106-bit
    /// double-double arithmetic ([`crate::quad`]).
    ///
    /// This is the catastrophic-cancellation measurable: the classic
    /// `(N, LS, SS)` backend evaluates `SS − ‖LS‖²/N`, which collapses for
    /// tight clusters far from the origin, so its drift explodes (often to
    /// `1.0`, the statistic clamped to exact `0`) at large coordinate
    /// offsets. The stable `(N, μ, SSE)` backend reads the deviation sum
    /// directly and stays at round-off level regardless of offset.
    /// Report-only: it never fails the audit — the classic backend's
    /// nonzero drift is a documented bug, not a tree invariant violation.
    pub cancellation_drift: f64,
    /// Worst relative disagreement between the lane (SIMD) row-distance
    /// kernel and the bit-exact scalar oracle across every node's rows,
    /// probed with the tree's own metric. Exactly `0` when the lane path
    /// is not compiled (`classic-cf`, or `--no-default-features`) and at
    /// dim ≤ 4 (where the lane kernel is the scalar loop, bit for bit);
    /// above that, disagreement beyond
    /// [`crate::distance::SIMD_TOLERANCE_REL`] *is* a violation
    /// ([`ViolationKind::SimdKernelMismatch`]) — the tolerance contract,
    /// machine-enforced on real trees rather than just test fixtures.
    pub simd_kernel_drift: f64,
    /// Tightest observed safety margin of the Phase 3 candidate prune:
    /// the minimum of `distance − pair_lower_bound` over every same-node
    /// CF pair under every D0–D4 metric (`None` when no node holds two
    /// entries). A negative margin means the bound overshot a real
    /// distance — the prune would skip a true winner — and is a violation
    /// ([`ViolationKind::PruneBoundUnsound`]); the measurable exists so
    /// bound-tightening work can see how much headroom is left.
    pub prune_bound_margin: Option<f64>,
}

/// Audits `tree` with default [`AuditOptions`].
///
/// # Errors
///
/// Returns the first [`AuditViolation`] found.
pub fn audit(tree: &CfTree) -> Result<AuditReport, AuditViolation> {
    audit_with(tree, &AuditOptions::default())
}

/// Audits `tree` against `opts`, verifying every invariant in the module
/// docs and measuring floating-point drift.
///
/// # Errors
///
/// Returns the first [`AuditViolation`] found.
pub fn audit_with(tree: &CfTree, opts: &AuditOptions) -> Result<AuditReport, AuditViolation> {
    let mut report = AuditReport {
        height: tree.height,
        ..AuditReport::default()
    };
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut dfs_leaves: Vec<NodeId> = Vec::new();

    // ---- Structural DFS: depth, bounds, ids, threshold, Additivity. ----
    let root_cf = check_subtree(
        tree,
        tree.root,
        1,
        opts,
        &mut seen,
        &mut dfs_leaves,
        &mut report,
    )?;

    report.nodes = seen.len();
    report.leaves = dfs_leaves.len();

    // ---- Free list: no reachable node may sit on it. ----
    for &id in &tree.free {
        if seen.contains(&id) {
            return Err(AuditViolation {
                kind: ViolationKind::FreeNodeReachable,
                node: Some(id),
                detail: format!("{id:?} is on the free list but reachable from the root"),
            });
        }
    }

    // ---- Page budget. ----
    if let Some(budget) = opts.max_pages {
        if report.nodes > budget {
            return Err(AuditViolation {
                kind: ViolationKind::PageBudgetExceeded,
                node: None,
                detail: format!("{} live pages > budget {budget}", report.nodes),
            });
        }
    }

    // ---- Leaf chain: complete, acyclic, two-way consistent. ----
    check_chain(tree, &dfs_leaves)?;

    // ---- Cached counts. ----
    if report.leaf_entries != tree.leaf_entry_count {
        return Err(AuditViolation {
            kind: ViolationKind::CountMismatch,
            node: None,
            detail: format!(
                "cached leaf_entry_count {} != counted {}",
                tree.leaf_entry_count, report.leaf_entries
            ),
        });
    }

    // ---- Root Additivity: tracked total vs recomputed-from-scratch. ----
    if tree.leaf_entry_count > 0 {
        report.root_drift.observe(&tree.total, &root_cf);
        if report.root_drift.max() > opts.rel_tol {
            return Err(AuditViolation {
                kind: ViolationKind::RootCfMismatch,
                node: Some(tree.root),
                detail: format!(
                    "tracked total {:?} vs recomputed root {root_cf:?} (drift {:.3e})",
                    tree.total,
                    report.root_drift.max()
                ),
            });
        }
    }

    // ---- End-to-end N conservation. ----
    if let Some(expected) = opts.expected_n {
        let got = tree.total.n();
        if (got - expected).abs() > opts.rel_tol * (1.0 + expected.abs()) {
            return Err(AuditViolation {
                kind: ViolationKind::NConservation,
                node: None,
                detail: format!("tree holds N = {got}, expected {expected}"),
            });
        }
    }

    // ---- Cancellation drift (report-only measurable). ----
    report.cancellation_drift = measure_cancellation_drift(tree);

    Ok(report)
}

/// Per-leaf-entry `(N, centroid, internal squared deviation)` with the
/// last two promoted to double-double, extracted from whatever the active
/// backend stores.
///
/// Classic: centroid `LS/N` and deviation `SS − ‖LS‖²/N`, both evaluated
/// in `Dd` — note the *inputs* are the stored f64 `LS`/`SS`, so precision
/// the backend already discarded cannot come back; that is exactly what
/// the measurable exposes. Stable: the mean (carry folded in, exactly)
/// and the deviation sum read directly.
#[cfg(feature = "classic-cf")]
fn dd_entry_stats(cf: &Cf) -> (f64, Vec<Dd>, Dd) {
    let n = cf.n();
    let c: Vec<Dd> = cf
        .vec_stat()
        .iter()
        .map(|&x| Dd::from_f64(x).div_f64(n))
        .collect();
    let mut ls_sq = Dd::ZERO;
    for &x in cf.vec_stat() {
        ls_sq = ls_sq + Dd::from_f64(x).mul_f64(x);
    }
    let s = Dd::from_f64(cf.scalar_stat()) - ls_sq.div_f64(n);
    (n, c, s)
}

#[cfg(not(feature = "classic-cf"))]
fn dd_entry_stats(cf: &Cf) -> (f64, Vec<Dd>, Dd) {
    let n = cf.n();
    let c: Vec<Dd> = cf
        .mean()
        .iter()
        .zip(cf.mean_carry())
        .map(|(&m, &e)| Dd::from_f64(m).add_f64(e))
        .collect();
    (n, c, Dd::from_f64(cf.scalar_stat()))
}

/// Recomputes the tree's total squared deviation from its leaf-entry
/// statistics in double-double arithmetic and returns the relative
/// disagreement with the active backend's own f64 evaluation
/// ([`AuditReport::cancellation_drift`]).
///
/// Decomposition: with per-entry weight `nᵢ`, centroid `cᵢ` and internal
/// deviation `sᵢ`, the total deviation around the grand mean
/// `M = Σnᵢcᵢ/Σnᵢ` is `Σsᵢ + Σnᵢ·‖cᵢ − M‖²`. Every term is evaluated in
/// [`Dd`] (~32 significant digits), so the reference sits far below any
/// cancellation an f64 backend can exhibit.
fn measure_cancellation_drift(tree: &CfTree) -> f64 {
    let total = tree.total_cf();
    if total.is_empty() {
        return 0.0;
    }
    let dim = total.dim();
    let mut n_sum = Dd::ZERO;
    let mut weighted = vec![Dd::ZERO; dim];
    let mut inner = Dd::ZERO;
    let mut parts: Vec<(f64, Vec<Dd>)> = Vec::new();
    for cf in tree.leaf_entries() {
        let (n, c, s) = dd_entry_stats(cf);
        n_sum = n_sum.add_f64(n);
        for (w, ci) in weighted.iter_mut().zip(&c) {
            *w = *w + ci.mul_f64(n);
        }
        inner = inner + s;
        parts.push((n, c));
    }
    let nf = n_sum.to_f64();
    if nf <= 0.0 {
        return 0.0;
    }
    let mean: Vec<Dd> = weighted.iter().map(|w| w.div_f64(nf)).collect();
    let mut between = Dd::ZERO;
    for (n, c) in &parts {
        for (ci, mi) in c.iter().zip(&mean) {
            let d = *ci - *mi;
            between = between + (d * d).mul_f64(*n);
        }
    }
    let reference = (inner + between).to_f64().max(0.0);
    Drift::component(total.sq_deviation(), reference)
}

/// Verifies a node's SoA mirror matches its entries bit for bit. The
/// mutators copy each statistic into the mirror verbatim, so anything
/// short of bit equality means a mutation bypassed them.
fn check_block_sync(node: &Node, id: NodeId) -> Result<(), AuditViolation> {
    let block = node.block();
    let count = node.entry_count();
    if block.len() != count {
        return Err(AuditViolation {
            kind: ViolationKind::BlockDesync,
            node: Some(id),
            detail: format!(
                "mirror holds {} rows, node holds {count} entries",
                block.len()
            ),
        });
    }
    for i in 0..count {
        let cf = match &node.kind {
            NodeKind::Leaf { entries, .. } => &entries[i],
            NodeKind::Interior { children } => &children[i].cf,
        };
        let exact = block.row_n(i).to_bits() == cf.n().to_bits()
            && block.row_scalar(i).to_bits() == cf.scalar_stat().to_bits()
            && block.row_vec_sq(i).to_bits() == cf.vec_stat_sq().to_bits()
            && block.row_vec(i).len() == cf.vec_stat().len()
            && block
                .row_vec(i)
                .iter()
                .zip(cf.vec_stat())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !exact {
            return Err(AuditViolation {
                kind: ViolationKind::BlockDesync,
                node: Some(id),
                detail: format!(
                    "mirror row {i} (n {}, scalar {}, ‖vec‖² {}) disagrees with entry {cf:?}",
                    block.row_n(i),
                    block.row_scalar(i),
                    block.row_vec_sq(i)
                ),
            });
        }
    }
    Ok(())
}

/// Replays every row distance of a node's SoA mirror through both the
/// production lane kernel and the bit-exact scalar oracle, folding the
/// worst relative disagreement into
/// [`AuditReport::simd_kernel_drift`] and failing beyond
/// [`crate::distance::SIMD_TOLERANCE_REL`]. The probe is the node's own
/// first entry — the same shape (`Cf` vs block row) the descend and
/// split paths evaluate.
#[cfg(all(feature = "simd", not(feature = "classic-cf")))]
fn check_simd_kernel(
    node: &Node,
    id: NodeId,
    metric: crate::distance::DistanceMetric,
    report: &mut AuditReport,
) -> Result<(), AuditViolation> {
    let block = node.block();
    if block.is_empty() {
        return Ok(());
    }
    let probe = match &node.kind {
        NodeKind::Leaf { entries, .. } => &entries[0],
        NodeKind::Interior { children } => &children[0].cf,
    };
    for i in 0..block.len() {
        let lane = crate::simd::distance_to_row(metric, probe, block, i);
        let scalar = crate::distance::distance_to_row(metric, probe, block, i);
        let drift = (lane - scalar).abs() / scalar.abs().max(1.0);
        report.simd_kernel_drift = report.simd_kernel_drift.max(drift);
        if drift > crate::distance::SIMD_TOLERANCE_REL {
            return Err(AuditViolation {
                kind: ViolationKind::SimdKernelMismatch,
                node: Some(id),
                detail: format!(
                    "row {i}: lane {metric} distance {lane} vs scalar {scalar} \
                     (drift {drift:.3e} > contract {:.0e})",
                    crate::distance::SIMD_TOLERANCE_REL
                ),
            });
        }
    }
    Ok(())
}

/// Scalar-only builds have no second kernel to disagree with; the
/// measurable stays at its `0` default.
#[cfg(not(all(feature = "simd", not(feature = "classic-cf"))))]
fn check_simd_kernel(
    _node: &Node,
    _id: NodeId,
    _metric: crate::distance::DistanceMetric,
    _report: &mut AuditReport,
) -> Result<(), AuditViolation> {
    Ok(())
}

/// Replays [`crate::distance::pair_lower_bound`] against the true
/// [`crate::distance::pair_in_block`] distance for every CF pair in a
/// node's SoA mirror, under every D0–D4 metric (the Phase 3 agglomerator
/// may be configured with any of them). The bound must never exceed the
/// distance — that is the whole soundness contract of the NN-chain
/// candidate prune — and the tightest margin is folded into
/// [`AuditReport::prune_bound_margin`].
fn check_prune_bounds(
    node: &Node,
    id: NodeId,
    report: &mut AuditReport,
) -> Result<(), AuditViolation> {
    let block = node.block();
    for metric in crate::distance::DistanceMetric::ALL {
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let bound = crate::distance::pair_lower_bound(metric, block, i, j);
                let dist = crate::distance::pair_in_block(metric, block, i, j);
                let margin = dist - bound;
                report.prune_bound_margin = Some(match report.prune_bound_margin {
                    Some(m) => m.min(margin),
                    None => margin,
                });
                if bound > dist {
                    return Err(AuditViolation {
                        kind: ViolationKind::PruneBoundUnsound,
                        node: Some(id),
                        detail: format!(
                            "rows ({i},{j}): {metric} lower bound {bound} exceeds \
                             true distance {dist}"
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Measures the drift between a CF's memoized `‖LS‖²` and a from-scratch
/// `LS·LS`, folding it into the report and failing beyond tolerance.
fn check_norm_cache(
    cf: &Cf,
    id: NodeId,
    what: &str,
    i: usize,
    opts: &AuditOptions,
    report: &mut AuditReport,
) -> Result<(), AuditViolation> {
    let recomputed: f64 = cf.vec_stat().iter().map(|x| x * x).sum();
    let drift = Drift::component(cf.vec_stat_sq(), recomputed);
    report.norm_cache_drift = report.norm_cache_drift.max(drift);
    if drift > opts.rel_tol {
        return Err(AuditViolation {
            kind: ViolationKind::NormCacheMismatch,
            node: Some(id),
            detail: format!(
                "{what} {i} caches ‖vec‖² = {} but a from-scratch dot product \
                 recomputes to {recomputed} (drift {drift:.3e})",
                cf.vec_stat_sq()
            ),
        });
    }
    Ok(())
}

/// Recursively audits the subtree at `id`, returning its
/// recomputed-from-scratch CF.
fn check_subtree(
    tree: &CfTree,
    id: NodeId,
    depth: usize,
    opts: &AuditOptions,
    seen: &mut HashSet<NodeId>,
    dfs_leaves: &mut Vec<NodeId>,
    report: &mut AuditReport,
) -> Result<Cf, AuditViolation> {
    if !seen.insert(id) {
        return Err(AuditViolation {
            kind: ViolationKind::NodeRevisited,
            node: Some(id),
            detail: format!("{id:?} reachable along two paths"),
        });
    }
    let node = tree.node_view(id);
    if node.id() != id {
        return Err(AuditViolation {
            kind: ViolationKind::IdMismatch,
            node: Some(id),
            detail: format!("arena slot {id:?} holds a node stamped {:?}", node.id()),
        });
    }
    check_block_sync(node, id)?;
    check_simd_kernel(node, id, tree.params.metric, report)?;
    check_prune_bounds(node, id, report)?;
    match &node.kind {
        NodeKind::Leaf { entries, .. } => {
            if depth != tree.height {
                return Err(AuditViolation {
                    kind: ViolationKind::DepthMismatch,
                    node: Some(id),
                    detail: format!("leaf at depth {depth}, recorded height {}", tree.height),
                });
            }
            if entries.len() > tree.params.leaf_capacity {
                return Err(AuditViolation {
                    kind: ViolationKind::NodeOverflow,
                    node: Some(id),
                    detail: format!(
                        "leaf holds {} entries > L = {}",
                        entries.len(),
                        tree.params.leaf_capacity
                    ),
                });
            }
            let mut cf = Cf::empty(tree.params.dim);
            let t = tree.params.threshold;
            // An entry must satisfy T unless it descends from an atomic
            // multi-point input CF (which the tree cannot split and so
            // accepts unconditionally); the tree records the worst such
            // input statistic and the check widens to it.
            let bound = t.max(tree.max_input_stat);
            let limit = bound * (1.0 + opts.threshold_rel_tol) + opts.threshold_abs_tol;
            for (i, e) in entries.iter().enumerate() {
                if e.is_empty() {
                    return Err(AuditViolation {
                        kind: ViolationKind::EmptyEntry,
                        node: Some(id),
                        detail: format!("entry {i} is empty"),
                    });
                }
                // Before the threshold test: the statistic itself reads
                // the memoized norm, so a poisoned cache must be reported
                // as a cache failure, not a threshold one.
                check_norm_cache(e, id, "entry", i, opts, report)?;
                let stat = tree.params.threshold_kind.statistic(e);
                if e.n() > 1.0 && stat > limit {
                    return Err(AuditViolation {
                        kind: ViolationKind::ThresholdViolation,
                        node: Some(id),
                        detail: format!(
                            "entry {i} has {:?} {stat} > max(T = {t}, atomic input {}) \
                             (+{:.0e} rel slack)",
                            tree.params.threshold_kind, tree.max_input_stat, opts.threshold_rel_tol
                        ),
                    });
                }
                cf.merge(e);
            }
            report.leaf_entries += entries.len();
            dfs_leaves.push(id);
            Ok(cf)
        }
        NodeKind::Interior { children } => {
            if children.is_empty() {
                return Err(AuditViolation {
                    kind: ViolationKind::EmptyInterior,
                    node: Some(id),
                    detail: "interior node with no children".to_string(),
                });
            }
            if children.len() > tree.params.branching {
                return Err(AuditViolation {
                    kind: ViolationKind::NodeOverflow,
                    node: Some(id),
                    detail: format!(
                        "interior holds {} children > B = {}",
                        children.len(),
                        tree.params.branching
                    ),
                });
            }
            let mut cf = Cf::empty(tree.params.dim);
            for (i, c) in children.iter().enumerate() {
                check_norm_cache(&c.cf, id, "child", i, opts, report)?;
                let child_cf =
                    check_subtree(tree, c.child, depth + 1, opts, seen, dfs_leaves, report)?;
                let mut drift = Drift::default();
                drift.observe(&c.cf, &child_cf);
                report.interior_drift.observe(&c.cf, &child_cf);
                if drift.max() > opts.rel_tol {
                    return Err(AuditViolation {
                        kind: ViolationKind::ParentCfMismatch,
                        node: Some(id),
                        detail: format!(
                            "entry {i} stores {:?} but child {:?} recomputes to {child_cf:?} \
                             (drift {:.3e})",
                            c.cf,
                            c.child,
                            drift.max()
                        ),
                    });
                }
                cf.merge(&child_cf);
            }
            Ok(cf)
        }
    }
}

/// Verifies the leaf chain is an acyclic, two-way-consistent traversal of
/// exactly `dfs_leaves` (as a set; order may legitimately differ from DFS
/// order after interior splits redistribute children by proximity).
fn check_chain(tree: &CfTree, dfs_leaves: &[NodeId]) -> Result<(), AuditViolation> {
    let mut chain: Vec<NodeId> = Vec::with_capacity(dfs_leaves.len());
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut prev: Option<NodeId> = None;
    let mut cur = Some(tree.first_leaf);
    while let Some(id) = cur {
        if !visited.insert(id) {
            return Err(AuditViolation {
                kind: ViolationKind::ChainCycle,
                node: Some(id),
                detail: format!("chain revisits {id:?} after {} hops", chain.len()),
            });
        }
        let (p, n) = match &tree.node_view(id).kind {
            NodeKind::Leaf { prev, next, .. } => (*prev, *next),
            NodeKind::Interior { .. } => {
                return Err(AuditViolation {
                    kind: ViolationKind::ChainBroken,
                    node: Some(id),
                    detail: format!("chain reaches interior node {id:?}"),
                });
            }
        };
        if p != prev {
            return Err(AuditViolation {
                kind: ViolationKind::ChainBroken,
                node: Some(id),
                detail: format!("prev pointer {p:?} but predecessor in chain is {prev:?}"),
            });
        }
        chain.push(id);
        prev = Some(id);
        cur = n;
    }

    if chain.len() != dfs_leaves.len() || !dfs_leaves.iter().all(|id| visited.contains(id)) {
        let missing: Vec<NodeId> = dfs_leaves
            .iter()
            .filter(|id| !visited.contains(id))
            .copied()
            .collect();
        let extra: Vec<NodeId> = chain
            .iter()
            .filter(|id| !dfs_leaves.contains(id))
            .copied()
            .collect();
        return Err(AuditViolation {
            kind: ViolationKind::ChainIncomplete,
            node: None,
            detail: format!(
                "chain visits {} leaves, DFS finds {}; unreached {missing:?}, stray {extra:?}",
                chain.len(),
                dfs_leaves.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{DistanceMetric, ThresholdKind};
    use crate::node::NodeKind;
    use crate::point::Point;
    use crate::tree::TreeParams;

    fn params(threshold: f64) -> TreeParams {
        TreeParams {
            dim: 2,
            branching: 3,
            leaf_capacity: 3,
            threshold,
            threshold_kind: ThresholdKind::Diameter,
            metric: DistanceMetric::D2,
            merge_refinement: true,
            descend_prune: false,
        }
    }

    /// A multi-level tree with several leaves, for corrupting.
    fn grown_tree() -> CfTree {
        let mut t = CfTree::new(params(0.5));
        for i in 0..60 {
            let i = f64::from(i);
            t.insert_point(&Point::xy(
                (i * 3.7).rem_euclid(40.0),
                (i * 1.9).rem_euclid(40.0),
            ));
        }
        assert!(t.height() >= 2, "need a multi-level tree to corrupt");
        audit(&t).unwrap();
        t
    }

    fn first_interior_with_child(t: &CfTree) -> NodeId {
        // The root of a multi-level tree is interior.
        t.root
    }

    #[test]
    fn clean_tree_reports_structure() {
        let t = grown_tree();
        let r = audit(&t).unwrap();
        assert_eq!(r.leaf_entries, t.leaf_entry_count());
        assert_eq!(r.height, t.height());
        assert!(r.leaves >= 2);
        assert!(r.nodes >= r.leaves);
        // Incremental maintenance drifts, but far below tolerance here.
        assert!(r.interior_drift.max() <= 1e-9, "{:?}", r.interior_drift);
        assert!(r.root_drift.max() <= 1e-9, "{:?}", r.root_drift);
        // Well-conditioned data: both CF backends agree with the
        // double-double reference.
        assert!(r.cancellation_drift <= 1e-9, "{}", r.cancellation_drift);
    }

    /// Tight clusters (dyadic spread ≈ 1e-3) translated to `offset`. At
    /// offset 1e8 the classic backend's quality statistics collapse.
    fn offset_tree(offset: f64) -> CfTree {
        let mut t = CfTree::new(params(0.5));
        const S: f64 = 9.765_625e-4; // 2⁻¹⁰, an exact multiple of ulp(1e8)
        for c in 0..6 {
            let base = offset + f64::from(c) * 8.0;
            for i in 0..10 {
                let d = f64::from(i % 3) * S;
                let e = f64::from(i % 4) * S;
                t.insert_point(&Point::xy(base + d, base - e));
            }
        }
        t
    }

    #[cfg(feature = "classic-cf")]
    #[test]
    fn cancellation_drift_exposes_classic_collapse_at_large_offset() {
        // Near the origin the measurable is quiet...
        let near = audit(&offset_tree(0.0)).unwrap();
        assert!(
            near.cancellation_drift <= 1e-9,
            "{}",
            near.cancellation_drift
        );
        // ...but at offset 1e8 the classic backend's f64 evaluation of
        // SS − ‖LS‖²/N has lost every significant digit of the true
        // deviation (~1e-4), and the double-double reference says so.
        let far = audit(&offset_tree(1e8)).unwrap();
        assert!(
            far.cancellation_drift > 1e-3,
            "classic cancellation drift unexpectedly small: {}",
            far.cancellation_drift
        );
    }

    #[cfg(not(feature = "classic-cf"))]
    #[test]
    fn cancellation_drift_stays_flat_for_stable_at_large_offset() {
        let near = audit(&offset_tree(0.0)).unwrap();
        assert!(
            near.cancellation_drift <= 1e-9,
            "{}",
            near.cancellation_drift
        );
        let far = audit(&offset_tree(1e8)).unwrap();
        assert!(
            far.cancellation_drift <= 1e-9,
            "stable backend drifted: {}",
            far.cancellation_drift
        );
    }

    #[test]
    fn empty_tree_audits_clean() {
        let t = CfTree::new(params(1.0));
        let r = audit(&t).unwrap();
        assert_eq!(r.nodes, 1);
        assert_eq!(r.leaf_entries, 0);
    }

    // ---- Seeded corruptions: the auditor self-test. Each corruption is
    // crafted to break exactly one invariant so the reported kind is
    // deterministic. ----

    #[test]
    fn detects_bad_parent_cf() {
        let mut t = grown_tree();
        let nid = first_interior_with_child(&t);
        if let NodeKind::Interior { children } = &mut t.nodes[nid.index()].kind {
            let bump = Cf::from_point(&Point::xy(1e6, -1e6));
            children[0].cf.merge(&bump);
        }
        // Resync the SoA mirror so only Additivity breaks; the tracked
        // total also stays consistent because the recomputed root is built
        // from leaves, which are untouched.
        t.nodes[nid.index()].rebuild_block();
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::ParentCfMismatch, "{v}");
        assert_eq!(v.node, Some(nid));
    }

    #[test]
    fn detects_broken_leaf_chain_prev() {
        let mut t = grown_tree();
        // Corrupt the second leaf's prev pointer.
        let second = t.leaf_ids().nth(1).expect("at least two leaves");
        if let NodeKind::Leaf { prev, .. } = &mut t.nodes[second.index()].kind {
            *prev = None;
        }
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::ChainBroken, "{v}");
        assert_eq!(v.node, Some(second));
    }

    #[test]
    fn detects_leaf_chain_cycle() {
        let mut t = grown_tree();
        let head = t.first_leaf;
        let second = t.leaf_ids().nth(1).expect("at least two leaves");
        // Point the second leaf back at the head: a 2-cycle. Fix the
        // head's prev so the cycle is the first inconsistency met.
        if let NodeKind::Leaf { next, .. } = &mut t.nodes[second.index()].kind {
            *next = Some(head);
        }
        let v = audit(&t).unwrap_err();
        assert!(
            matches!(
                v.kind,
                ViolationKind::ChainCycle | ViolationKind::ChainBroken
            ),
            "{v}"
        );
    }

    #[test]
    fn detects_chain_missing_a_leaf() {
        let mut t = grown_tree();
        // Splice the second leaf out of the chain (next skips it) without
        // touching the tree structure: the spliced-out leaf stays
        // reachable from the root, so the chain is incomplete.
        let leaves: Vec<NodeId> = t.leaf_ids().collect();
        assert!(leaves.len() >= 3, "need >= 3 leaves to splice");
        let (a, b, c) = (leaves[0], leaves[1], leaves[2]);
        if let NodeKind::Leaf { next, .. } = &mut t.nodes[a.index()].kind {
            *next = Some(c);
        }
        if let NodeKind::Leaf { prev, .. } = &mut t.nodes[c.index()].kind {
            *prev = Some(a);
        }
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::ChainIncomplete, "{v}");
        assert!(v.detail.contains(&format!("{b:?}")), "{v}");
    }

    #[test]
    fn detects_oversize_node() {
        let mut t = grown_tree();
        // Shrink the recorded capacity under a leaf that is fuller: pure
        // bounds violation, no CF touched.
        let fullest = t
            .leaf_ids()
            .max_by_key(|&id| t.node_view(id).entry_count())
            .unwrap();
        let n = t.node_view(fullest).entry_count();
        assert!(n >= 2);
        t.params.leaf_capacity = n - 1;
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NodeOverflow, "{v}");
    }

    #[test]
    fn detects_threshold_violation() {
        let mut t = grown_tree();
        // The scattered fixture points all live in single-point entries
        // (statistic 0), so plant a close pair that absorbs into one
        // multi-point entry with a nonzero diameter.
        t.insert_point(&Point::xy(200.0, 200.0));
        t.insert_point(&Point::xy(200.1, 200.1));
        audit(&t).unwrap();
        // Lower T below what the existing entries were built under.
        let worst = t
            .leaf_entries()
            .filter(|e| e.n() > 1.0)
            .map(|e| t.params.threshold_kind.statistic(e))
            .fold(0.0f64, f64::max);
        assert!(worst > 0.0, "need a multi-point entry");
        t.params.threshold = worst / 2.0;
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::ThresholdViolation, "{v}");
    }

    #[test]
    fn detects_total_cf_drift() {
        let mut t = grown_tree();
        t.total.merge(&Cf::from_point(&Point::xy(0.0, 0.0)));
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::RootCfMismatch, "{v}");
    }

    #[test]
    fn detects_page_budget_excess() {
        let t = grown_tree();
        let opts = AuditOptions {
            max_pages: Some(t.node_count() - 1),
            ..AuditOptions::default()
        };
        let v = audit_with(&t, &opts).unwrap_err();
        assert_eq!(v.kind, ViolationKind::PageBudgetExceeded, "{v}");
        let ok = AuditOptions {
            max_pages: Some(t.node_count()),
            ..AuditOptions::default()
        };
        audit_with(&t, &ok).unwrap();
    }

    #[test]
    fn detects_n_conservation_failure() {
        let t = grown_tree();
        let opts = AuditOptions {
            expected_n: Some(t.total_cf().n() + 5.0),
            ..AuditOptions::default()
        };
        let v = audit_with(&t, &opts).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NConservation, "{v}");
        let ok = AuditOptions {
            expected_n: Some(t.total_cf().n()),
            ..AuditOptions::default()
        };
        audit_with(&t, &ok).unwrap();
    }

    #[test]
    fn detects_cached_count_mismatch() {
        let mut t = grown_tree();
        t.leaf_entry_count += 1;
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::CountMismatch, "{v}");
    }

    #[test]
    fn detects_norm_cache_mismatch() {
        let mut t = grown_tree();
        let leaf = t.first_leaf;
        if let NodeKind::Leaf { entries, .. } = &mut t.nodes[leaf.index()].kind {
            entries[0].corrupt_norm_memo_for_test(0.5);
        }
        // Resync the mirror so the poisoned cache is the only defect.
        t.nodes[leaf.index()].rebuild_block();
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::NormCacheMismatch, "{v}");
        assert_eq!(v.node, Some(leaf));
    }

    #[test]
    fn detects_block_desync() {
        let mut t = grown_tree();
        let leaf = t.first_leaf;
        // Mutate an entry's CF behind the mutators' back: the SoA mirror
        // goes stale, which must be caught before anything downstream
        // (threshold, Additivity) trips over the same mutation.
        if let NodeKind::Leaf { entries, .. } = &mut t.nodes[leaf.index()].kind {
            entries[0].merge(&Cf::from_point(&Point::xy(3.0, 3.0)));
        }
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::BlockDesync, "{v}");
        assert_eq!(v.node, Some(leaf));
    }

    #[test]
    fn norm_cache_drift_is_exactly_zero() {
        // The refresh-by-recomputation policy promises a bit-exact cache;
        // the measurable must read 0, not merely "within tolerance".
        let t = grown_tree();
        let r = audit(&t).unwrap();
        assert_eq!(r.norm_cache_drift, 0.0);
    }

    #[test]
    fn simd_kernel_drift_is_zero_at_dim_2() {
        // dim ≤ 4 dispatches to the serial specializations, which are the
        // scalar loop bit for bit — so the measurable must read exactly 0
        // on lane builds, and trivially 0 on scalar-only builds.
        let t = grown_tree();
        let r = audit(&t).unwrap();
        assert_eq!(r.simd_kernel_drift, 0.0);
    }

    #[test]
    fn simd_kernel_drift_respects_contract_at_wide_dims() {
        // A dim-8 tree exercises the lane sweep proper; the audit itself
        // fails on any row beyond the contract, and the reported worst
        // case must sit within it.
        let mut t = CfTree::new(TreeParams {
            dim: 8,
            ..params(0.5)
        });
        let mut s = 0xD1A8_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 30.0
        };
        for _ in 0..80 {
            t.insert_point(&Point::new((0..8).map(|_| next()).collect()));
        }
        let r = audit(&t).unwrap();
        assert!(
            r.simd_kernel_drift <= crate::distance::SIMD_TOLERANCE_REL,
            "{}",
            r.simd_kernel_drift
        );
    }

    #[test]
    fn prune_bound_margin_nonnegative_on_grown_tree() {
        // Invariant 8: the Phase 3 candidate bound never overshoots a
        // real distance, on a real tree, for every metric — and a grown
        // tree has multi-entry nodes, so the measurable is populated.
        let t = grown_tree();
        let r = audit(&t).unwrap();
        let margin = r.prune_bound_margin.expect("multi-entry nodes probed");
        assert!(margin >= 0.0, "negative prune margin {margin}");
    }

    #[test]
    fn prune_bound_margin_probed_at_wide_dims() {
        // Same contract on a dim-8 tree, where the lane kernel (when
        // compiled) takes its vectorized path rather than the serial
        // specialization.
        let mut t = CfTree::new(TreeParams {
            dim: 8,
            ..params(0.5)
        });
        let mut s = 0x9E37_u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 30.0
        };
        for _ in 0..80 {
            t.insert_point(&Point::new((0..8).map(|_| next()).collect()));
        }
        let r = audit(&t).unwrap();
        let margin = r.prune_bound_margin.expect("multi-entry nodes probed");
        assert!(margin >= 0.0, "negative prune margin {margin}");
    }

    #[test]
    fn detects_id_mismatch() {
        let mut t = grown_tree();
        let second = t.leaf_ids().nth(1).expect("two leaves");
        t.nodes[second.index()].id = NodeId(999);
        let v = audit(&t).unwrap_err();
        assert_eq!(v.kind, ViolationKind::IdMismatch, "{v}");
    }

    #[test]
    fn violation_renders_node_and_kind() {
        let mut t = grown_tree();
        let nid = first_interior_with_child(&t);
        if let NodeKind::Interior { children } = &mut t.nodes[nid.index()].kind {
            children[0].cf.merge(&Cf::from_point(&Point::xy(1e6, 0.0)));
        }
        t.nodes[nid.index()].rebuild_block();
        let msg = audit(&t).unwrap_err().to_string();
        assert!(msg.contains("parent CF mismatch"), "{msg}");
        assert!(msg.contains("NodeId"), "{msg}");
    }

    #[test]
    fn drift_is_measured_not_assumed() {
        // A long absorb-heavy run accumulates real (tiny) drift; the
        // report must expose it as a number rather than hiding it.
        let mut t = CfTree::new(TreeParams {
            threshold: 2.0,
            ..params(2.0)
        });
        let mut x = 0.0f64;
        for i in 0..5000 {
            x = (x * 1.000_1 + f64::from(i) * 0.013).rem_euclid(25.0);
            t.insert_point(&Point::xy(x, 25.0 - x));
        }
        let r = audit(&t).unwrap();
        assert!(r.root_drift.max() < 1e-6);
        assert!(r.interior_drift.max() < 1e-6);
        // The measurement is finite and non-negative by construction.
        assert!(r.root_drift.max() >= 0.0);
    }
}
