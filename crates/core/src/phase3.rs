//! Phase 3: global clustering of the leaf entries.
//!
//! Paper §5: the CF-tree's leaf entries form a fine, memory-sized summary
//! of the data; Phase 3 clusters *them* with a standard global algorithm.
//! The paper "adapted an agglomerative hierarchical clustering algorithm by
//! applying it directly to the subclusters represented by their CF
//! vectors", using any of the D0–D4 metrics, with O(m²) complexity on the
//! m leaf entries.
//!
//! This module wraps [`crate::hierarchical`] and produces cluster CFs plus
//! the per-entry assignment that Phase 4 (or labeling) consumes.

use crate::cf::Cf;
use crate::config::ClusterCount;
use crate::distance::DistanceMetric;
use crate::hierarchical::{agglomerate, HacStats, StopRule};

/// Which global algorithm Phase 3 applies to the leaf entries. The paper
/// adapted agglomerative HC "because of its accuracy and flexibility" but
/// notes any global/semi-global method can slot in here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlobalMethod {
    /// Agglomerative hierarchical clustering over CF vectors (the paper's
    /// choice; supports all of D0–D4 and the by-distance cut).
    #[default]
    Hierarchical,
    /// Weighted Lloyd iterations over the entry centroids (each entry
    /// weighted by its point count) with farthest-point seeding. Requires
    /// an exact `K`; the by-distance stopping rule falls back to HC.
    KMeans {
        /// Lloyd iteration cap.
        max_iters: usize,
    },
}

/// Output of the global clustering pass.
#[derive(Debug, Clone)]
pub struct Phase3Result {
    /// The final cluster summaries.
    pub clusters: Vec<Cf>,
    /// For each input leaf entry, the index of its cluster.
    pub entry_labels: Vec<usize>,
    /// The input leaf entries (kept so callers can map entries → clusters
    /// without re-walking the tree).
    pub entries: Vec<Cf>,
    /// Agglomeration work counters when the hierarchical path ran
    /// (`None` for k-means — it evaluates no CF pair distances).
    pub hac: Option<HacStats>,
}

/// Clusters `entries` into the requested number of clusters (or by the
/// dendrogram distance cut).
///
/// If `K` exceeds the number of entries, every entry becomes its own
/// cluster — the data simply doesn't support more resolution, which is the
/// paper's behaviour too (BIRCH clusters can be fewer than requested when
/// the tree is coarse).
///
/// # Panics
///
/// Panics if `entries` is empty.
#[must_use]
pub fn global_cluster(
    entries: Vec<Cf>,
    metric: DistanceMetric,
    clusters: ClusterCount,
) -> Phase3Result {
    global_cluster_with(entries, metric, clusters, GlobalMethod::Hierarchical)
}

/// Like [`global_cluster`] with an explicit algorithm choice.
///
/// # Panics
///
/// Panics if `entries` is empty.
#[must_use]
pub fn global_cluster_with(
    entries: Vec<Cf>,
    metric: DistanceMetric,
    clusters: ClusterCount,
    method: GlobalMethod,
) -> Phase3Result {
    assert!(!entries.is_empty(), "phase 3 requires at least one entry");
    match (method, clusters) {
        (GlobalMethod::KMeans { max_iters }, ClusterCount::Exact(k)) => {
            kmeans_cf(entries, k, max_iters)
        }
        _ => {
            let stop = match clusters {
                ClusterCount::Exact(k) => StopRule::ClusterCount(k.min(entries.len())),
                ClusterCount::ByDistance(d) => StopRule::DistanceThreshold(d),
            };
            let result = agglomerate(&entries, metric, stop);
            Phase3Result {
                clusters: result.clusters,
                entry_labels: result.labels,
                entries,
                hac: Some(result.stats),
            }
        }
    }
}

/// Deterministic weighted k-means over entry centroids: farthest-point
/// ("k-means‖-lite") seeding followed by weighted Lloyd iterations, all in
/// CF space so cluster summaries stay exact.
fn kmeans_cf(entries: Vec<Cf>, k: usize, max_iters: usize) -> Phase3Result {
    let k = k.min(entries.len()).max(1);
    let dim = entries[0].dim();
    let centroids: Vec<Vec<f64>> = entries
        .iter()
        .map(|e| e.centroid().coords().to_vec())
        .collect();
    let weights: Vec<f64> = entries.iter().map(Cf::n).collect();

    // Farthest-point seeding from the heaviest entry (deterministic).
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    let first = weights
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    seeds.push(first);
    let mut min_sq: Vec<f64> = centroids
        .iter()
        .map(|c| crate::point::sq_dist(c, &centroids[first]))
        .collect();
    while seeds.len() < k {
        let far = min_sq
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        seeds.push(far);
        for (d, c) in min_sq.iter_mut().zip(&centroids) {
            *d = d.min(crate::point::sq_dist(c, &centroids[far]));
        }
    }
    let mut means: Vec<Vec<f64>> = seeds.iter().map(|&s| centroids[s].clone()).collect();

    let mut labels = vec![0usize; entries.len()];
    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        for (i, c) in centroids.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, m) in means.iter().enumerate() {
                let d = crate::point::sq_dist(c, m);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut totals = vec![0.0; k];
        for (i, c) in centroids.iter().enumerate() {
            totals[labels[i]] += weights[i];
            for (s, &v) in sums[labels[i]].iter_mut().zip(c) {
                *s += weights[i] * v;
            }
        }
        for (j, m) in means.iter_mut().enumerate() {
            if totals[j] > 0.0 {
                for (mv, s) in m.iter_mut().zip(&sums[j]) {
                    *mv = s / totals[j];
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build exact cluster CFs from the assignment; drop empty clusters.
    let mut cluster_cfs: Vec<Cf> = (0..k).map(|_| Cf::empty(dim)).collect();
    for (e, &l) in entries.iter().zip(&labels) {
        cluster_cfs[l].merge(e);
    }
    let mut remap = vec![usize::MAX; k];
    let mut compact = Vec::new();
    for (j, cf) in cluster_cfs.into_iter().enumerate() {
        if !cf.is_empty() {
            remap[j] = compact.len();
            compact.push(cf);
        }
    }
    for l in &mut labels {
        *l = remap[*l];
    }
    Phase3Result {
        clusters: compact,
        entry_labels: labels,
        entries,
        hac: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn blob_entries() -> Vec<Cf> {
        // Six subclusters forming two groups of three.
        let mut out = Vec::new();
        for g in 0..2 {
            for s in 0..3 {
                let cx = f64::from(g) * 100.0 + f64::from(s);
                let pts: Vec<Point> = (0..10)
                    .map(|i| Point::xy(cx + f64::from(i) * 0.01, cx))
                    .collect();
                out.push(Cf::from_points(&pts));
            }
        }
        out
    }

    #[test]
    fn groups_subclusters_correctly() {
        let r = global_cluster(blob_entries(), DistanceMetric::D2, ClusterCount::Exact(2));
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.entry_labels.len(), 6);
        assert_eq!(r.entry_labels[0], r.entry_labels[1]);
        assert_eq!(r.entry_labels[1], r.entry_labels[2]);
        assert_eq!(r.entry_labels[3], r.entry_labels[4]);
        assert_ne!(r.entry_labels[0], r.entry_labels[3]);
        // Each cluster holds 30 points.
        for c in &r.clusters {
            assert!((c.n() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_entry_count_saturates() {
        let entries = blob_entries();
        let m = entries.len();
        let r = global_cluster(entries, DistanceMetric::D0, ClusterCount::Exact(50));
        assert_eq!(r.clusters.len(), m);
    }

    #[test]
    fn by_distance_cut() {
        let r = global_cluster(
            blob_entries(),
            DistanceMetric::D0,
            ClusterCount::ByDistance(10.0),
        );
        // Within-group centroid gaps are ~1, across-group ~100.
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn entries_preserved_in_result() {
        let entries = blob_entries();
        let r = global_cluster(entries.clone(), DistanceMetric::D2, ClusterCount::Exact(2));
        assert_eq!(r.entries.len(), entries.len());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_entries_panics() {
        let _ = global_cluster(Vec::new(), DistanceMetric::D2, ClusterCount::Exact(1));
    }

    #[test]
    fn kmeans_method_groups_subclusters() {
        let r = global_cluster_with(
            blob_entries(),
            DistanceMetric::D2,
            ClusterCount::Exact(2),
            GlobalMethod::KMeans { max_iters: 50 },
        );
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.entry_labels[0], r.entry_labels[1]);
        assert_eq!(r.entry_labels[1], r.entry_labels[2]);
        assert_ne!(r.entry_labels[0], r.entry_labels[3]);
        for c in &r.clusters {
            assert!((c.n() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_method_weight_conserved() {
        let entries = blob_entries();
        let total: f64 = entries.iter().map(Cf::n).sum();
        let r = global_cluster_with(
            entries,
            DistanceMetric::D0,
            ClusterCount::Exact(4),
            GlobalMethod::KMeans { max_iters: 20 },
        );
        let got: f64 = r.clusters.iter().map(Cf::n).sum();
        assert!((got - total).abs() < 1e-9);
        assert!(r.clusters.len() <= 4);
        // Labels point at live clusters.
        for &l in &r.entry_labels {
            assert!(l < r.clusters.len());
        }
    }

    #[test]
    fn kmeans_method_k_saturates_at_entry_count() {
        let entries = blob_entries();
        let m = entries.len();
        let r = global_cluster_with(
            entries,
            DistanceMetric::D2,
            ClusterCount::Exact(100),
            GlobalMethod::KMeans { max_iters: 10 },
        );
        assert!(r.clusters.len() <= m);
    }

    #[test]
    fn kmeans_with_by_distance_falls_back_to_hc() {
        let r = global_cluster_with(
            blob_entries(),
            DistanceMetric::D0,
            ClusterCount::ByDistance(10.0),
            GlobalMethod::KMeans { max_iters: 10 },
        );
        assert_eq!(r.clusters.len(), 2);
    }

    #[test]
    fn default_method_is_hierarchical() {
        assert_eq!(GlobalMethod::default(), GlobalMethod::Hierarchical);
    }

    #[test]
    fn hac_stats_present_only_on_hierarchical_path() {
        let r = global_cluster(blob_entries(), DistanceMetric::D2, ClusterCount::Exact(2));
        let stats = r.hac.expect("hierarchical path reports HAC stats");
        assert!(stats.pairs_evaluated > 0);
        let km = global_cluster_with(
            blob_entries(),
            DistanceMetric::D2,
            ClusterCount::Exact(2),
            GlobalMethod::KMeans { max_iters: 10 },
        );
        assert!(km.hac.is_none());
    }
}
