//! Translation-invariance tests: BIRCH's statistics and decisions are
//! functions of deviations from cluster means, so translating the whole
//! dataset must not change radii, diameters, inter-cluster distances, or
//! the clustering itself.
//!
//! The classic (N, LS, SS) backend violates this in floating point:
//! `SS − ‖LS‖²/N` cancels catastrophically once coordinates are large
//! relative to the spread. The stable (N, μ, SSE) backend — the default
//! since the flip — keeps every statistic in deviation form and stays
//! flat, so the default build must pass every offset outright. Tests on
//! the 1e8 offset are `should_panic` only under the `classic-cf` compat
//! feature, where the collapse is the documented expected failure.
//!
//! Every fixture coordinate is a dyadic rational (multiples of 2⁻¹¹)
//! and every offset is an exact small-integer float, so the shifted
//! cloud is an *exact* translate of the origin cloud: any reported
//! difference is arithmetic error inside the CF algebra, not input
//! rounding.

use birch_core::{Birch, BirchConfig, Cf, DistanceMetric, Point};
use std::collections::HashMap;

/// Dyadic spreads: 2⁻¹⁰ and 2⁻¹¹, exact multiples of ulp(1e8) = 2⁻²⁶.
const S: f64 = 9.765_625e-4;
const H: f64 = 4.882_812_5e-4;
/// Inter-cluster gap (2³, trivially exact at every offset).
const GAP: f64 = 8.0;
const CLUSTERS: usize = 3;
const PER_CLUSTER: usize = 12;

/// Three tight, well-separated 2-D clusters translated by `offset`.
/// Spread patterns are asymmetric (no two within-cluster points are
/// equidistant from a centroid) so nearest-entry decisions have no exact
/// ties for rounding noise to flip.
fn cloud_with_gap(offset: f64, gap: f64) -> Vec<Point> {
    let mut pts = Vec::with_capacity(CLUSTERS * PER_CLUSTER);
    for c in 0..CLUSTERS {
        #[allow(clippy::cast_precision_loss)]
        let base = offset + (c as f64) * gap;
        for i in 0..PER_CLUSTER {
            #[allow(clippy::cast_precision_loss)]
            let (fx, fy) = ((i % 3) as f64, (i % 4) as f64);
            #[allow(clippy::cast_precision_loss)]
            let tweak = ((i % 5) as f64) * H;
            pts.push(Point::xy(base + fx * S + tweak, base + fy * S + fx * H));
        }
    }
    pts
}

/// One CF per cluster, built directly from the points.
fn cluster_cfs(offset: f64) -> Vec<Cf> {
    cloud_with_gap(offset, GAP)
        .chunks(PER_CLUSTER)
        .map(Cf::from_points)
        .collect()
}

fn rel_diff(shifted: f64, origin: f64) -> f64 {
    (shifted - origin).abs() / origin.abs().max(1e-300)
}

/// Worst relative drift across radius, diameter, and all five metrics
/// on every cluster pair, comparing the cloud at `offset` to the same
/// cloud at the origin.
fn max_translation_drift(offset: f64) -> f64 {
    let origin = cluster_cfs(0.0);
    let shifted = cluster_cfs(offset);
    let mut worst: f64 = 0.0;
    for (a, b) in origin.iter().zip(&shifted) {
        worst = worst.max(rel_diff(b.radius(), a.radius()));
        worst = worst.max(rel_diff(b.diameter(), a.diameter()));
    }
    let metrics = [
        DistanceMetric::D0,
        DistanceMetric::D1,
        DistanceMetric::D2,
        DistanceMetric::D3,
        DistanceMetric::D4,
    ];
    for i in 0..origin.len() {
        for j in 0..origin.len() {
            if i == j {
                continue;
            }
            for m in metrics {
                let d0 = m.distance(&origin[i], &origin[j]);
                let d1 = m.distance(&shifted[i], &shifted[j]);
                worst = worst.max(rel_diff(d1, d0));
            }
        }
    }
    worst
}

fn assert_statistics_invariant(offset: f64, tol: f64) {
    let drift = max_translation_drift(offset);
    assert!(
        drift <= tol,
        "translation drift {drift:.3e} exceeds {tol:.0e} at offset {offset:.0e}"
    );
}

#[test]
fn statistics_translation_invariant_at_1e4() {
    // The classic backend already cancels measurably here (the spread is
    // ~1e-3 against coordinates of 1e4, i.e. ~14 of the 53 mantissa bits
    // survive squaring); it just hasn't collapsed yet. The stable
    // backend is held to the full 1e-9 bar.
    let tol = if cfg!(feature = "classic-cf") {
        1e-2
    } else {
        1e-9
    };
    assert_statistics_invariant(1e4, tol);
}

#[test]
#[cfg_attr(feature = "classic-cf", should_panic(expected = "translation drift"))]
fn statistics_translation_invariant_at_1e8() {
    // Documented expected failure for (N, LS, SS): at offset 1e8 the
    // squared terms are ~1e16, so the ~1e-6 squared deviations sit 22
    // decimal digits down — entirely below f64's 16 — and `SS − ‖LS‖²/N`
    // returns pure rounding noise (usually clamped to exactly 0).
    assert_statistics_invariant(1e8, 1e-9);
}

// ---------------------------------------------------------------------
// End-to-end: the full Phase 1 → 3 (+4 labelling) pipeline must put the
// same points in the same clusters regardless of translation.
// ---------------------------------------------------------------------

fn memberships(offset: f64) -> Vec<Option<usize>> {
    // A tighter gap (2⁻³) than the statistics fixture: cluster
    // separation must sit *below* the classic backend's distance noise
    // at offset 1e8 (several units — `nb·SSa + na·SSb − 2·LS_a·LS_b`
    // cancels at the ulp(1e16·N) ≈ unit scale) for the bug to actually
    // fuse clusters, while staying ~128× the point spread so the
    // clustering itself is unambiguous.
    let config = BirchConfig::with_clusters(CLUSTERS).threads(1);
    let model = Birch::new(config)
        .fit(&cloud_with_gap(offset, 0.125))
        .expect("fit");
    model
        .labels()
        .expect("phase 4 labels enabled by default")
        .to_vec()
}

/// Asserts two labelings are the same partition up to renaming clusters.
fn assert_same_partition(origin: &[Option<usize>], shifted: &[Option<usize>], offset: f64) {
    assert_eq!(origin.len(), shifted.len());
    let mut fwd: HashMap<usize, usize> = HashMap::new();
    let mut rev: HashMap<usize, usize> = HashMap::new();
    for (i, (a, b)) in origin.iter().zip(shifted).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                let f = *fwd.entry(*a).or_insert(*b);
                let r = *rev.entry(*b).or_insert(*a);
                assert!(
                    f == *b && r == *a,
                    "memberships diverge at offset {offset:.0e}: point {i} maps \
                     cluster {a} -> {b}, but an earlier point mapped {a} -> {f} \
                     and {b} <- {r}"
                );
            }
            _ => panic!(
                "memberships diverge at offset {offset:.0e}: point {i} is an \
                 outlier in one run ({a:?}) but clustered in the other ({b:?})"
            ),
        }
    }
}

fn assert_pipeline_invariant(offset: f64) {
    let origin = memberships(0.0);
    let shifted = memberships(offset);
    assert_same_partition(&origin, &shifted, offset);
}

#[test]
fn pipeline_memberships_translation_invariant_at_1e4() {
    assert_pipeline_invariant(1e4);
}

#[test]
#[cfg_attr(feature = "classic-cf", should_panic(expected = "memberships diverge"))]
fn pipeline_memberships_translation_invariant_at_1e8() {
    // Expected failure for the classic backend: with every radius and
    // diameter collapsed to 0 the threshold test always passes, entries
    // fuse across true cluster boundaries, and Phase 3 cannot recover
    // the origin partition.
    assert_pipeline_invariant(1e8);
}
